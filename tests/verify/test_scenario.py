"""Tests for the seeded scenario generator (repro.verify.scenario)."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.machine.systems import tiny_cluster
from repro.verify import Scenario, ScenarioGenerator
from repro.workloads import uniform


def _uniform_scenario(**overrides) -> Scenario:
    base = dict(
        seed=7, system="tiny", cluster=tiny_cluster(num_nodes=2), num_nodes=2,
        ppn=4, family="uniform", msg_bytes=16, matrix=None, group_size=2,
        inner="pairwise",
    )
    base.update(overrides)
    return Scenario(**base)


class TestScenario:
    def test_needs_exactly_one_traffic_description(self):
        with pytest.raises(ConfigurationError):
            _uniform_scenario(msg_bytes=None)
        with pytest.raises(ConfigurationError):
            _uniform_scenario(matrix=uniform(8, 4))

    def test_matrix_shape_must_match_placement(self):
        with pytest.raises(ConfigurationError):
            _uniform_scenario(msg_bytes=None, matrix=uniform(4, 16), family="workload")

    def test_digest_is_stable_and_shape_sensitive(self):
        assert _uniform_scenario().digest() == _uniform_scenario().digest()
        assert _uniform_scenario().digest() != _uniform_scenario(msg_bytes=32).digest()
        assert _uniform_scenario().digest() != replace(_uniform_scenario(), ppn=2).digest()

    def test_describe_mentions_seed_and_shape(self):
        text = _uniform_scenario().describe()
        assert "seed 7" in text and "2 nodes x 4 ppn" in text and "16 B" in text

    def test_workload_pattern_surfaces(self):
        scenario = _uniform_scenario(
            family="workload", msg_bytes=None, matrix=uniform(8, 4)
        )
        assert scenario.pattern == "uniform"
        assert scenario.nprocs == 8


class TestScenarioGenerator:
    def test_same_seed_same_scenario(self):
        generator = ScenarioGenerator()
        assert generator.scenario(2025).digest() == generator.scenario(2025).digest()
        assert (
            ScenarioGenerator().scenario(123).canonical()
            == ScenarioGenerator().scenario(123).canonical()
        )

    def test_consecutive_seed_contract(self):
        """Scenario i of (base, count) is exactly the scenario of seed base+i."""
        generator = ScenarioGenerator()
        batch = generator.scenarios(500, 5)
        for i, scenario in enumerate(batch):
            assert scenario.seed == 500 + i
            assert scenario.digest() == generator.scenario(500 + i).digest()

    def test_seeds_explore_distinct_scenarios(self):
        generator = ScenarioGenerator()
        digests = {generator.scenario(seed).digest() for seed in range(100)}
        assert len(digests) == 100

    def test_respects_max_ranks(self):
        generator = ScenarioGenerator(max_ranks=6)
        for seed in range(50):
            assert generator.scenario(seed).nprocs <= 6

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioGenerator(max_ranks=0)
        with pytest.raises(ConfigurationError):
            ScenarioGenerator().scenarios(0, 0)

    def test_group_size_always_divides_ppn(self):
        generator = ScenarioGenerator()
        for seed in range(100):
            scenario = generator.scenario(seed)
            assert scenario.ppn % scenario.group_size == 0

    def test_sampled_space_hits_degenerate_shapes(self):
        """Both families, zero-row matrices, self-only traffic and single-rank
        jobs must all appear in a modest sample — the degenerate cases are
        the point of the fuzzing subsystem."""
        generator = ScenarioGenerator()
        scenarios = [generator.scenario(seed) for seed in range(400)]
        families = {s.family for s in scenarios}
        assert families == {"uniform", "workload"}
        patterns = {s.pattern for s in scenarios if s.family == "workload"}
        assert "self-only" in patterns
        assert any(p.endswith("+zero-rows") for p in patterns)
        assert any(s.nprocs == 1 for s in scenarios)
        systems = {s.system for s in scenarios}
        assert "random" in systems and len(systems) >= 3
