"""Golden-corpus regression tests: frozen digests and result hashes.

The corpus under ``tests/golden/`` pins what the scenario generator samples
(digest) and what bytes every conforming algorithm must deliver
(result_hash) for a fixed seed set.  If either changes, this test fails
until the corpus is deliberately refreshed with
``python -m repro.verify.golden refresh`` — delivered bytes cannot drift
silently.
"""

import json
from pathlib import Path

from repro.verify import DifferentialRunner, ScenarioGenerator
from repro.verify.golden import (
    DEFAULT_CORPUS_PATH,
    GOLDEN_SEEDS,
    PHASED_GOLDEN_SEEDS,
    build_corpus,
    check_corpus,
    write_corpus,
)

CORPUS = Path(__file__).resolve().parents[1] / "golden" / "verify_corpus.json"


class TestCorpusFile:
    def test_checked_in_corpus_is_current(self):
        assert CORPUS.exists(), "tests/golden/verify_corpus.json is missing"
        assert check_corpus(CORPUS) == []

    def test_default_path_points_at_checked_in_corpus(self):
        assert Path(DEFAULT_CORPUS_PATH) == CORPUS

    def test_corpus_covers_both_families(self):
        entries = json.loads(CORPUS.read_text())["entries"]
        default = [e for e in entries if e.get("sampler") is None]
        assert {entry["seed"] for entry in default} == set(GOLDEN_SEEDS)
        assert {entry["family"] for entry in default} == {"uniform", "workload"}

    def test_corpus_covers_the_phased_sampler(self):
        entries = json.loads(CORPUS.read_text())["entries"]
        phased = [e for e in entries if e.get("sampler") == "phased"]
        assert {entry["seed"] for entry in phased} == set(PHASED_GOLDEN_SEEDS)
        assert {entry["family"] for entry in phased} == {"phased"}


class TestCorpusMechanics:
    def test_build_is_deterministic(self):
        assert build_corpus(GOLDEN_SEEDS[:4]) == build_corpus(GOLDEN_SEEDS[:4])

    def test_tampered_result_hash_detected(self, tmp_path):
        target = tmp_path / "corpus.json"
        write_corpus(target, GOLDEN_SEEDS[:3])
        corpus = json.loads(target.read_text())
        corpus["entries"][1]["result_hash"] = "0" * 64
        target.write_text(json.dumps(corpus))
        problems = check_corpus(target)
        assert len(problems) == 1 and "result_hash" in problems[0]

    def test_missing_file_reported(self, tmp_path):
        problems = check_corpus(tmp_path / "nope.json")
        assert problems and "cannot read" in problems[0]

    def test_malformed_but_valid_json_reported_not_crashed(self, tmp_path):
        """Valid JSON with the wrong shape (missing keys) must come back as
        a divergence message, not an uncaught KeyError."""
        target = tmp_path / "corpus.json"
        for malformed in (
            {"version": 1},                                   # no entries
            {"version": 1, "entries": [{"seed": 2025000}]},   # entry missing keys
            {"version": 1, "entries": 3},                     # wrong type
        ):
            target.write_text(json.dumps(malformed))
            problems = check_corpus(target)
            assert problems and "malformed" in problems[0]

    def test_version_drift_reported(self, tmp_path):
        target = tmp_path / "corpus.json"
        write_corpus(target, GOLDEN_SEEDS[:2])
        corpus = json.loads(target.read_text())
        corpus["version"] = 999
        target.write_text(json.dumps(corpus))
        problems = check_corpus(target)
        assert problems and "version" in problems[0]


class TestCorpusScenariosStillConform:
    def test_first_corpus_scenarios_verify_green(self):
        """The frozen scenarios are not just hashed — they still pass the
        full differential check (a slice, to keep the suite fast; the CLI
        sweep in CI covers volume)."""
        generator = ScenarioGenerator()
        runner = DifferentialRunner()
        for seed in GOLDEN_SEEDS[:3]:
            record = runner.verify(generator.scenario(seed))
            assert record.ok, record.failures
