"""Tests for the ``repro-bench verify`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.verify import VerificationRecord
from repro.verify.golden import GOLDEN_SEEDS, write_corpus


class TestArguments:
    def test_invalid_count_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--count", "0"])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--jobs", "-2"])

    def test_invalid_max_ranks_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--max-ranks", "0"])

    def test_invalid_engine_jobs_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--engine-jobs", "0"])
        assert excinfo.value.code == 2

    def test_count_rejected_at_parse_time(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--count", "-3"])
        assert excinfo.value.code == 2


class TestSweep:
    def test_small_green_sweep_exits_zero(self, capsys):
        assert main(["verify", "--seed", "2025", "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 scenario(s)" in out and "0 scenario(s) failing" in out
        assert "seed 2025" in out and "seed 2027" in out

    def test_max_ranks_is_honoured(self, capsys):
        assert main(["verify", "--seed", "1", "--count", "2", "--max-ranks", "4"]) == 0

    def test_engine_jobs_sweep_is_bit_identical(self, capsys):
        assert main(["verify", "--seed", "2025", "--count", "2"]) == 0
        serial = capsys.readouterr().out
        assert main(["verify", "--seed", "2025", "--count", "2",
                     "--engine-jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_failure_exits_nonzero_with_reproducer(self, capsys, monkeypatch):
        import repro.verify

        def failing_task(task):
            seed, _max_ranks = task
            record = VerificationRecord(
                seed=seed, digest="f" * 64, family="uniform",
                description="injected", result_hash="0" * 64,
            )
            from repro.verify import FailureReport

            record.failures.append(FailureReport(
                kind="mismatch", seed=seed, digest="f" * 64,
                algorithm="pairwise", detail="injected failure",
            ))
            return record

        monkeypatch.setattr(repro.verify, "verify_task", failing_task)
        assert main(["verify", "--seed", "5", "--count", "1"]) == 1
        out = capsys.readouterr().out
        assert "FAILURE [mismatch]" in out
        assert "repro-bench verify --seed 5 --count 1" in out


class TestGoldenFlag:
    def test_consistent_corpus_passes(self, tmp_path, capsys):
        corpus = write_corpus(tmp_path / "corpus.json", GOLDEN_SEEDS[:2])
        code = main(["verify", "--seed", "2025", "--count", "1",
                     "--golden", str(corpus)])
        assert code == 0
        assert "golden corpus: consistent" in capsys.readouterr().out

    def test_drifted_corpus_fails(self, tmp_path, capsys):
        corpus = write_corpus(tmp_path / "corpus.json", GOLDEN_SEEDS[:2])
        data = json.loads(corpus.read_text())
        data["entries"][0]["digest"] = "0" * 64
        corpus.write_text(json.dumps(data))
        code = main(["verify", "--seed", "2025", "--count", "1",
                     "--golden", str(corpus)])
        assert code == 1
        assert "digest changed" in capsys.readouterr().err


class TestPhasedFlag:
    def test_phased_sweep_exits_zero(self, capsys):
        # Seed 2025100 samples the phased family under --phased.
        assert main(["verify", "--seed", "2025100", "--count", "2",
                     "--phased", "--max-ranks", "12"]) == 0
        out = capsys.readouterr().out
        assert "phased" in out

    def test_phased_flag_off_keeps_old_sampling(self, capsys):
        assert main(["verify", "--seed", "2025100", "--count", "1",
                     "--max-ranks", "12"]) == 0
        assert "phased" not in capsys.readouterr().out

    def test_phased_composes_with_engine_jobs(self, capsys):
        assert main(["verify", "--seed", "2025100", "--count", "1", "--phased",
                     "--engine-jobs", "2", "--max-ranks", "12"]) == 0
        assert "phased" in capsys.readouterr().out
