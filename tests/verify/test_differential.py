"""Tests for the differential runner, failure reports and shrinking."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.systems import tiny_cluster
from repro.runtime import SweepExecutor
from repro.verify import (
    AlgorithmConfig,
    DifferentialRunner,
    FailureReport,
    Scenario,
    ScenarioGenerator,
    format_failure,
    result_hash,
    shrink_scenario,
    uniform_configurations,
    verify_seed,
    verify_task,
    workload_configurations,
)
from repro.workloads import TrafficMatrix, uniform


def _scenario(**overrides) -> Scenario:
    base = dict(
        seed=11, system="tiny", cluster=tiny_cluster(num_nodes=2), num_nodes=2,
        ppn=4, family="uniform", msg_bytes=8, matrix=None, group_size=2,
        inner="pairwise",
    )
    base.update(overrides)
    return Scenario(**base)


def _workload_scenario(**overrides) -> Scenario:
    matrix = overrides.pop("matrix", uniform(8, 16))
    return _scenario(family="workload", msg_bytes=None, matrix=matrix, **overrides)


class TestGreenPath:
    def test_uniform_scenario_verifies_every_algorithm(self):
        record = DifferentialRunner().verify(_scenario())
        assert record.ok
        assert len(record.verified) == len(uniform_configurations(_scenario()))
        assert record.skipped == []
        assert record.result_hash == result_hash(_scenario())
        assert "ok" in record.summary_line()

    def test_workload_scenario_verifies_every_v_algorithm(self):
        record = DifferentialRunner().verify(_workload_scenario())
        assert record.ok
        assert len(record.verified) == len(workload_configurations(_workload_scenario()))

    def test_degenerate_scenarios_verify(self):
        zero_rows = uniform(8, 16).with_zero_rows([0, 3, 7])
        assert DifferentialRunner().verify(_workload_scenario(matrix=zero_rows)).ok
        all_zero = TrafficMatrix(np.zeros((8, 8), dtype=np.int64))
        assert DifferentialRunner().verify(_workload_scenario(matrix=all_zero)).ok
        single = _scenario(
            cluster=tiny_cluster(num_nodes=1), num_nodes=1, ppn=1, msg_bytes=4,
            group_size=1,
        )
        assert DifferentialRunner().verify(single).ok

    def test_verify_seed_and_task_agree(self):
        assert verify_seed(2025).digest == verify_task((2025, 24)).digest

    def test_result_hash_tracks_traffic(self):
        assert result_hash(_scenario()) != result_hash(_scenario(msg_bytes=16))


class TestApplicabilityFilter:
    def test_non_dividing_group_size_is_skipped_not_failed(self):
        runner = DifferentialRunner()
        config = AlgorithmConfig.make("locality-aware", procs_per_group=3)
        failure = runner.check_configuration(_scenario(), config)
        assert failure is not None and failure.kind == "inapplicable"
        record = runner.verify(_scenario(group_size=2))
        assert record.ok  # sampled group sizes always divide, nothing skipped


class TestFailureDetection:
    def _corrupting(self, real):
        """Wrap a runner entry point to corrupt rank 0's delivered bytes."""

        def run(*args, **kwargs):
            outcome = real(*args, **kwargs)
            results = outcome.job.results
            if results and np.asarray(results[0]).size:
                np.asarray(results[0])[0] += 1
            return outcome

        return run

    def test_corrupted_uniform_buffers_reported_and_shrunk(self, monkeypatch):
        import repro.verify.differential as differential

        monkeypatch.setattr(
            differential, "run_alltoall", self._corrupting(differential.run_alltoall)
        )
        record = DifferentialRunner().verify(_scenario(msg_bytes=8))
        assert not record.ok
        failure = record.failures[0]
        assert failure.kind == "mismatch"
        assert failure.seed == 11
        assert "--seed 11 --count 1" in failure.command
        # Shrinking must reach the smallest scenario that still fails:
        # 1 node x 1 ppn at 1 byte.
        assert failure.minimal_payload is not None
        assert failure.minimal_payload["num_nodes"] == 1
        assert failure.minimal_payload["ppn"] == 1
        assert failure.minimal_payload["msg_bytes"] == 1
        text = format_failure(failure)
        assert "minimal reproducer" in text and "repro-bench verify" in text

    def test_corrupted_workload_buffers_reported(self, monkeypatch):
        import repro.verify.differential as differential

        monkeypatch.setattr(
            differential, "run_workload", self._corrupting(differential.run_workload)
        )
        record = DifferentialRunner(shrink=False).verify(_workload_scenario())
        assert not record.ok
        assert all(f.kind == "mismatch" for f in record.failures)

    def test_crash_reported_as_error(self, monkeypatch):
        import repro.verify.differential as differential

        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(differential, "run_alltoall", explode)
        record = DifferentialRunner(shrink=False).verify(_scenario())
        assert not record.ok
        assert all(f.kind == "error" for f in record.failures)
        assert "boom" in record.failures[0].detail


class TestShrinkerExceptions:
    """Exception policy of the shrinking search.

    A reduction raising :class:`ConfigurationError` is a shape the failing
    configuration legitimately cannot run — skipped.  Any *other* exception
    is the checker crashing on a valid reduced scenario: that reduction is a
    smaller (louder) reproducer and must be adopted, not discarded — the
    old bare ``except Exception`` silently threw such findings away.
    """

    def test_configuration_error_skips_the_reduction(self):
        scenario, config = _scenario(), AlgorithmConfig.make("pairwise")

        def still_fails(candidate, candidate_config):
            raise ConfigurationError("this shape cannot host the configuration")

        minimal, minimal_config, crash = shrink_scenario(scenario, config, still_fails)
        assert minimal is scenario and minimal_config is config
        assert crash is None

    def test_unexpected_crash_adopted_as_smaller_reproducer(self):
        scenario, config = _scenario(), AlgorithmConfig.make("pairwise")

        def still_fails(candidate, candidate_config):
            raise RuntimeError("kaboom at reduced scale")

        minimal, _minimal_config, crash = shrink_scenario(scenario, config, still_fails)
        # Every reduction "fails" loudly, so the shrinker walks all the way
        # down instead of giving up at the first crash.
        assert minimal is not scenario
        assert minimal.num_nodes == 1 and minimal.ppn == 1 and minimal.msg_bytes == 1
        assert crash == "RuntimeError: kaboom at reduced scale"

    def test_crash_after_clean_reductions_keeps_both(self):
        scenario, config = _scenario(), AlgorithmConfig.make("pairwise")

        def still_fails(candidate, candidate_config):
            if candidate.num_nodes > 1:
                return True  # normal shrink step
            raise RuntimeError("only the single-node shape crashes")

        minimal, _minimal_config, crash = shrink_scenario(scenario, config, still_fails)
        assert minimal.num_nodes == 1
        assert crash == "RuntimeError: only the single-node shape crashes"

    def test_crash_detail_rendered_in_failure_report(self):
        failure = FailureReport(
            kind="mismatch", seed=7, digest="ab" * 16, algorithm="pairwise",
            detail="wrong bytes", shrink_crash="RuntimeError: boom",
        )
        text = format_failure(failure)
        assert "shrink crash" in text and "RuntimeError: boom" in text

    def test_runner_records_shrink_crash_on_the_failure(self, monkeypatch):
        import repro.verify.differential as differential

        scenario = _scenario()
        original_ranks = scenario.nprocs

        def corrupting(*args, **kwargs):
            outcome = real_run(*args, **kwargs)
            np.asarray(outcome.job.results[0])[0] += 1
            return outcome

        real_run = differential.run_alltoall
        monkeypatch.setattr(differential, "run_alltoall", corrupting)
        # Reduced shapes crash *outside* check_configuration's try-block
        # (scenario setup, before the runner is even called) — the path the
        # old bare except swallowed.
        real_process_map = Scenario.process_map

        def crashing_process_map(self):
            if self.nprocs < original_ranks:
                raise RuntimeError("reduced scenario crashes the checker")
            return real_process_map(self)

        monkeypatch.setattr(Scenario, "process_map", crashing_process_map)
        record = DifferentialRunner().verify(scenario)
        assert not record.ok
        failure = record.failures[0]
        assert failure.kind == "mismatch"
        # The crashing reduction was adopted as the reproducer and the
        # crash itself was recorded on the report.
        assert failure.minimal_payload is not None
        assert failure.minimal_payload["num_nodes"] * failure.minimal_payload["ppn"] \
            < original_ranks
        assert failure.shrink_crash is not None
        assert "reduced scenario crashes the checker" in failure.shrink_crash
        assert "shrink crash" in format_failure(failure)


class TestTimingSanity:
    def test_non_monotone_model_reported(self, monkeypatch):
        import repro.verify.differential as differential

        def shrinking_model(algorithm, pmap, msg_bytes, **options):
            return 1.0 / msg_bytes  # more bytes, less time: must be flagged

        monkeypatch.setattr(differential, "predict_time", shrinking_model)
        runner = DifferentialRunner(shrink=False)
        failure = runner.check_configuration(_scenario(), AlgorithmConfig.make("pairwise"))
        assert failure is not None and failure.kind == "timing"
        assert "monotone" in failure.detail

    def test_negative_model_time_reported(self, monkeypatch):
        import repro.verify.differential as differential

        monkeypatch.setattr(differential, "predict_time", lambda *a, **k: -1.0)
        runner = DifferentialRunner(shrink=False)
        failure = runner.check_configuration(_scenario(), AlgorithmConfig.make("pairwise"))
        assert failure is not None and failure.kind == "timing"

    def test_system_mpi_threshold_switch_is_exempt(self):
        """256 -> 512 B crosses the Bruck/nonblocking switch, where both the
        model and the simulator are legitimately non-monotone."""
        runner = DifferentialRunner(shrink=False)
        scenario = _scenario(msg_bytes=256)
        assert runner.check_configuration(scenario, AlgorithmConfig.make("system-mpi")) is None


class TestExecutorFanOut:
    def test_parallel_map_matches_serial(self):
        tasks = [(2025, 24), (2026, 24), (2027, 24), (2028, 24)]
        serial = [verify_task(task) for task in tasks]
        with SweepExecutor(jobs=2) as executor:
            parallel = executor.map(verify_task, tasks)
        assert parallel == serial

    def test_map_generic_helper(self):
        with SweepExecutor(jobs=1) as executor:
            assert executor.map(abs, [-1, 2, -3]) == [1, 2, 3]
            assert executor.map(abs, []) == []


@pytest.mark.parametrize("seed", [1, 17, 333, 90210])
def test_random_seeds_are_green(seed):
    """A sample of arbitrary seeds across the sampled space verifies clean."""
    assert verify_seed(seed).ok
