"""Tests of the phased verify family: sampler, differential runner, corpus."""

import pytest

from repro.errors import ConfigurationError
from repro.verify.differential import DifferentialRunner, verify_seed, verify_task
from repro.verify.golden import GOLDEN_SEEDS, PHASED_GOLDEN_SEEDS, build_corpus
from repro.verify.scenario import Scenario, ScenarioGenerator
from repro.workloads import Phase, PhasedWorkload, uniform

#: A seed known to sample the phased family under the phased-aware
#: generator at max_ranks=16 (see PHASED_GOLDEN_SEEDS for the 24-rank set).
PHASED_SEED = 2025100


class TestPhasedScenarioSampling:
    def test_phased_generator_samples_phased_family(self):
        generator = ScenarioGenerator(max_ranks=16, phased=True)
        families = {generator.scenario(seed).family for seed in range(2025100, 2025130)}
        assert "phased" in families
        assert families - {"phased"}, "non-phased families must still be sampled"

    def test_default_generator_never_samples_phased(self):
        generator = ScenarioGenerator(max_ranks=16)
        for seed in range(2025100, 2025130):
            assert generator.scenario(seed).family != "phased"

    def test_default_digests_unchanged_by_the_phased_option(self):
        # The invariant everything else hangs off: for any seed whose draw
        # misses the phased family, phased=True and phased=False sample the
        # *byte-identical* scenario.  (The phased roll consumes RNG state
        # only when it hits, by design of the sampling order.)
        plain = ScenarioGenerator(max_ranks=16)
        phased = ScenarioGenerator(max_ranks=16, phased=True)
        for seed in range(2025100, 2025130):
            sampled = phased.scenario(seed)
            if sampled.family == "phased":
                continue
            assert sampled.digest() == plain.scenario(seed).digest()

    def test_golden_seeds_digests_are_stable(self):
        # GOLDEN_SEEDS go through the default generator in the corpus; the
        # phased extension must not have moved any of them.
        plain = ScenarioGenerator()
        entries = build_corpus(GOLDEN_SEEDS, phased_seeds=())["entries"]
        for entry in entries:
            assert entry["digest"] == plain.scenario(entry["seed"]).digest()

    def test_phased_scenario_payload_carries_phases(self):
        generator = ScenarioGenerator(max_ranks=16, phased=True)
        scenario = generator.scenario(PHASED_SEED)
        assert scenario.family == "phased"
        assert "phases" in scenario.payload()
        assert scenario.pattern == "phased"
        assert scenario.phases.nprocs == scenario.nprocs

    def test_non_phased_payload_has_no_phases_key(self):
        generator = ScenarioGenerator(max_ranks=16)
        assert "phases" not in generator.scenario(2025000).payload()


class TestPhasedScenarioValidation:
    def _phases(self, nprocs=4):
        return PhasedWorkload((Phase("p0", uniform(nprocs, 8)),))

    def _scenario(self, **overrides):
        from repro.machine import tiny_cluster

        base = dict(
            seed=1, system="tiny", cluster=tiny_cluster(num_nodes=2),
            num_nodes=2, ppn=2, family="phased", msg_bytes=None, matrix=None,
            group_size=1, inner="pairwise", phases=self._phases(4),
        )
        base.update(overrides)
        return Scenario(**base)

    def test_phased_scenario_constructs(self):
        assert self._scenario().family == "phased"

    def test_phased_family_requires_matching_rank_count(self):
        with pytest.raises(ConfigurationError):
            self._scenario(ppn=4)  # 2 nodes x 4 ppn != 4 phase ranks

    def test_phased_family_requires_phases(self):
        with pytest.raises(ConfigurationError):
            self._scenario(phases=None)

    def test_other_families_reject_phases(self):
        with pytest.raises(ConfigurationError):
            self._scenario(family="uniform", msg_bytes=64)


class TestPhasedDifferential:
    def test_phased_seed_verifies_green(self):
        record = verify_seed(PHASED_SEED, 16, phased=True)
        assert record.family == "phased"
        assert record.ok, [f.detail for f in record.failures]
        assert len(record.verified) > 0

    def test_bit_identical_across_engine_jobs(self):
        serial = verify_seed(PHASED_SEED, 16, phased=True)
        parallel = verify_seed(PHASED_SEED, 16, phased=True, engine_jobs=4)
        assert serial.digest == parallel.digest
        assert serial.result_hash == parallel.result_hash
        assert serial.ok == parallel.ok

    def test_verify_task_trailing_phased_slot(self):
        record = verify_task((PHASED_SEED, 16, None, 1, None, True))
        assert record.family == "phased"
        assert record.ok

    def test_task_without_phased_slot_keeps_old_sampling(self):
        record = verify_task((PHASED_SEED, 16))
        assert record.family != "phased"

    def test_runner_skips_shrinking_phased_scenarios(self):
        scenario = ScenarioGenerator(max_ranks=16, phased=True).scenario(PHASED_SEED)
        runner = DifferentialRunner(shrink=True)
        record = runner.verify(scenario)
        assert record.ok


class TestPhasedGoldenCorpus:
    def test_phased_golden_seeds_sample_phased(self):
        generator = ScenarioGenerator(phased=True)
        for seed in PHASED_GOLDEN_SEEDS:
            assert generator.scenario(seed).family == "phased", seed

    def test_corpus_entries_tag_their_sampler(self):
        corpus = build_corpus((), phased_seeds=PHASED_GOLDEN_SEEDS[:1])
        (entry,) = corpus["entries"]
        assert entry["sampler"] == "phased"
        assert entry["family"] == "phased"

    def test_default_entries_carry_no_sampler_key(self):
        corpus = build_corpus(GOLDEN_SEEDS[:1], phased_seeds=())
        (entry,) = corpus["entries"]
        assert "sampler" not in entry
