"""The symmetry-folding differential gate: folded timings must be bit-exact.

These tests are the acceptance criterion of the folding refactor: at scales
the full engine can still simulate, a folded run must reproduce the full
run's elapsed time, per-representative finish times and (multiplicity-
scaled) traffic exactly — not approximately — on contention-free fabrics,
and within the documented tolerance on contended ones.
"""

import numpy as np
import pytest

from repro.core.runner import run_alltoall, run_workload
from repro.errors import ConfigurationError
from repro.machine import ProcessMap, tiny_cluster
from repro.netsim.fabric import FatTreeFabric
from repro.verify.folding import (
    FABRIC_REL_TOL,
    compare_alltoall_fold,
    model_crosscheck,
    run_fold_gate,
)
from repro.workloads.generators import skewed_moe, uniform


@pytest.fixture
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=4)


# -- the gate itself ---------------------------------------------------------


def test_fold_gate_passes_across_the_registry():
    """Every algorithm, eager + rendezvous, uniform + symmetric workloads."""
    report = run_fold_gate(num_nodes=4, ppn=4)
    assert report.ok, report.describe()
    exact = [r for r in report.records if r.equivalence == "exact"]
    assert len(exact) >= 20  # 10 algorithms x 2 sizes + 3 workloads
    for record in exact:
        assert record.full_elapsed == record.folded_elapsed
        assert record.multiplicity == 4


def test_fold_gate_rejects_unfoldable_scale():
    with pytest.raises(ValueError):
        run_fold_gate(num_nodes=128)


def test_contended_fabric_within_documented_tolerance():
    fabric = FatTreeFabric(hosts_per_switch=2, oversubscription=2.0)
    pmap = ProcessMap(tiny_cluster(num_nodes=8, fabric=fabric), ppn=4)
    record = compare_alltoall_fold("pairwise", pmap, 32768, equivalence="aggregate")
    assert record.ok
    scale = max(record.full_elapsed, record.folded_elapsed)
    assert abs(record.full_elapsed - record.folded_elapsed) <= FABRIC_REL_TOL * scale


def test_contended_fabric_aggregate_accounting_is_exact():
    """Folded per-link busy_time/bytes must equal the full run's exactly."""
    fabric = FatTreeFabric(hosts_per_switch=2, oversubscription=2.0)
    pmap = ProcessMap(tiny_cluster(num_nodes=8, fabric=fabric), ppn=4)
    full = run_alltoall("pairwise", pmap, 32768, fold="off")
    folded = run_alltoall("pairwise", pmap, 32768, fold="on")
    full_stats = {s["link"]: s for s in full.job.fabric_statistics}
    folded_stats = {s["link"]: s for s in folded.job.fabric_statistics}
    # The representative node's uplink carries, weighted, the whole fabric's
    # load pattern: its aggregate accounting matches the full run bit-exact.
    assert folded_stats["ft-up0"]["busy_time"] == pytest.approx(
        full_stats["ft-up0"]["busy_time"], rel=1e-12
    )
    assert folded_stats["ft-up0"]["bytes"] == full_stats["ft-up0"]["bytes"]


def test_model_crosscheck_agrees_at_scale():
    points = model_crosscheck(node_counts=(256,), algorithms=("pairwise",))
    assert points and all(p.ok for p in points)
    # Measured agreement is ~1.15x; anything past 2x would signal a folded
    # timeline silently dropping the absent nodes' serialization.
    assert all(0.5 <= p.ratio <= 2.0 for p in points)


# -- runner-level fold modes -------------------------------------------------


def test_fold_on_unfoldable_workload_raises(pmap):
    matrix = skewed_moe(16, 64, concentration=8.0)
    with pytest.raises(ConfigurationError):
        run_workload("pairwise", pmap, matrix, fold="on")


def test_fold_auto_falls_back_to_full_width(pmap):
    matrix = skewed_moe(16, 64, concentration=8.0)
    outcome = run_workload("pairwise", pmap, matrix, fold="auto")
    assert outcome.fold is None
    assert outcome.correct


def test_fold_auto_folds_symmetric_workload(pmap):
    outcome = run_workload("pairwise", pmap, uniform(16, 64), fold="auto")
    assert outcome.fold is not None
    assert outcome.fold["multiplicity"] == 4
    assert outcome.fold["kind"] == "uniform"
    assert outcome.correct


def test_invalid_fold_mode_rejected(pmap):
    with pytest.raises(ConfigurationError):
        run_alltoall("pairwise", pmap, 64, fold="sometimes")


def test_folded_traffic_matches_full_run_totals(pmap):
    full = run_alltoall("node-aware", pmap, 256, fold="off")
    folded = run_alltoall("node-aware", pmap, 256, fold="on")
    assert folded.traffic_by_level == full.traffic_by_level
    assert folded.elapsed == full.elapsed
    # Folded runs process roughly 1/multiplicity of the events.
    assert folded.job.events_processed < full.job.events_processed


def test_folded_contents_validate_against_closed_form(pmap):
    """The folded receive buffers equal the rotated closed-form reference."""
    from repro.core.validation import expected_folded_alltoall_result

    outcome = run_alltoall("bruck", pmap, 64, fold="on", dtype=np.int64)
    assert outcome.correct
    for rank, got in enumerate(outcome.job.results):
        expected = expected_folded_alltoall_result(rank, 16, 4, 8, dtype=np.int64)
        assert np.array_equal(got, expected)


def test_paper_scale_headroom_smoke():
    """A 64k-rank machine simulates folded in interactive time.

    The unfolded engine's O(P^2) message count makes this shape unreachable
    (the committed 64-node/512-rank headline job takes seconds); folded it
    is one rank's timeline.  This is the issue's >= 100x rank-count headroom
    gate at smoke scale.
    """
    pmap = ProcessMap(tiny_cluster(num_nodes=65536), ppn=1)
    outcome = run_alltoall("pairwise", pmap, 64, fold="on", validate=False,
                           keep_job=False)
    assert outcome.fold["logical_ranks"] == 65536
    assert outcome.fold["simulated_ranks"] == 1
    assert outcome.elapsed > 0.0
