"""CLI surface of the folding refactor: --fold, --nodes paper, validation."""

import pytest

from repro.cli import main


class TestPositiveCountValidation:
    """--nodes/--ppn must be rejected with a clean SystemExit, not a traceback."""

    @pytest.mark.parametrize("argv", [
        ["run", "--nodes", "0"],
        ["run", "--nodes", "-3"],
        ["run", "--ppn", "0"],
        ["run", "--nodes", "two"],
        ["figures", "--id", "fig10", "--nodes", "-1"],
        ["figures", "--id", "fig10", "--ppn", "0"],
        ["select", "--nodes", "0"],
        ["select", "--ppn", "-2"],
        ["workload", "--nodes", "0"],
        ["workload", "--ppn", "-1"],
        ["trace", "--nodes", "-4"],
        ["trace", "--ppn", "0"],
    ])
    def test_rejected_cleanly(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2  # argparse usage error
        assert "positive integer" in capsys.readouterr().err


class TestRunFold:
    def test_run_folded_reports_representatives(self, capsys):
        assert main(["run", "--system", "tiny", "--algorithm", "pairwise",
                     "--nodes", "4", "--ppn", "4", "--msg-bytes", "64",
                     "--fold", "on"]) == 0
        out = capsys.readouterr().out
        assert "[folded: 4 representatives x 4]" in out

    def test_run_folded_matches_unfolded_elapsed(self, capsys):
        main(["run", "--system", "tiny", "--algorithm", "pairwise",
              "--nodes", "4", "--ppn", "4", "--msg-bytes", "64"])
        plain = capsys.readouterr().out.splitlines()[0]
        main(["run", "--system", "tiny", "--algorithm", "pairwise",
              "--nodes", "4", "--ppn", "4", "--msg-bytes", "64", "--fold", "on"])
        folded = capsys.readouterr().out.splitlines()[0]
        plain_elapsed = plain.split("->")[1].split("s")[0].strip()
        folded_elapsed = folded.split("->")[1].split("s")[0].strip()
        assert plain_elapsed == folded_elapsed

    def test_nodes_paper_requires_table1_system(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--system", "tiny", "--nodes", "paper"])
        assert "Table-1" in str(exc.value)


class TestWorkloadFold:
    def test_workload_folds_symmetric_pattern(self, capsys):
        assert main(["workload", "--system", "tiny", "--pattern", "uniform",
                     "--algorithm", "pairwise", "--nodes", "4", "--ppn", "4",
                     "--msg-bytes", "64", "--fold", "auto", "--no-model"]) == 0
        out = capsys.readouterr().out
        assert "Folded: 4 representatives x 4" in out
        assert "validated against the reference transposition" in out

    def test_workload_fold_on_asymmetric_pattern_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["workload", "--system", "tiny", "--pattern", "skewed-moe",
                  "--algorithm", "pairwise", "--nodes", "4", "--ppn", "4",
                  "--msg-bytes", "64", "--fold", "on", "--no-model"])

    def test_workload_fold_auto_asymmetric_falls_back(self, capsys):
        assert main(["workload", "--system", "tiny", "--pattern", "skewed-moe",
                     "--algorithm", "pairwise", "--nodes", "4", "--ppn", "4",
                     "--msg-bytes", "64", "--fold", "auto", "--no-model"]) == 0
        assert "Folded:" not in capsys.readouterr().out


class TestVerifyFoldGate:
    def test_fold_gate_green(self, capsys):
        assert main(["verify", "--count", "1", "--fold-gate"]) == 0
        out = capsys.readouterr().out
        assert "fold gate: PASS" in out
