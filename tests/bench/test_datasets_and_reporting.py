"""Tests for the benchmark data containers and report rendering."""

import pytest

from repro.bench.datasets import DataSeries, FigureResult
from repro.bench.reporting import format_figure, format_speedup_summary, format_table1, to_csv
from repro.bench.figures import table1
from repro.errors import ConfigurationError


def _sample_figure() -> FigureResult:
    fig = FigureResult("figX", "Sample", "message size (bytes)", configuration="test rig")
    fast = DataSeries("fast")
    slow = DataSeries("slow")
    for x, f, s in [(4, 1.0e-5, 3.0e-5), (64, 2.0e-5, 8.0e-5)]:
        fast.add(x, f)
        slow.add(x, s)
    fig.add_series(fast)
    fig.add_series(slow)
    return fig


class TestDataSeries:
    def test_add_and_access(self):
        series = DataSeries("s")
        series.add(4, 1.5e-6, phases={"inter": 1e-6})
        assert series.xs() == [4]
        assert series.ys() == [1.5e-6]
        assert series.at(4).details["phases"]["inter"] == 1e-6
        assert len(series) == 1

    def test_missing_point_rejected(self):
        with pytest.raises(ConfigurationError):
            DataSeries("s").at(4)


class TestFigureResult:
    def test_labels_and_get(self):
        fig = _sample_figure()
        assert fig.labels() == ["fast", "slow"]
        assert fig.get("slow").at(4).seconds == 3.0e-5
        with pytest.raises(ConfigurationError):
            fig.get("missing")

    def test_xs_union(self):
        fig = _sample_figure()
        extra = DataSeries("extra")
        extra.add(256, 1.0e-4)
        fig.add_series(extra)
        assert fig.xs() == [4, 64, 256]

    def test_best_at(self):
        fig = _sample_figure()
        assert fig.best_at(4) == ("fast", 1.0e-5)

    def test_best_at_missing_x_rejected(self):
        with pytest.raises(ConfigurationError):
            _sample_figure().best_at(9999)

    def test_speedup_over(self):
        fig = _sample_figure()
        assert fig.speedup_over("slow", 4) == pytest.approx(3.0)


class TestReporting:
    def test_format_figure_contains_all_series_and_sizes(self):
        text = format_figure(_sample_figure())
        assert "fast" in text and "slow" in text
        assert "figX" in text and "test rig" in text
        assert "64" in text

    def test_format_figure_handles_missing_points(self):
        fig = _sample_figure()
        sparse = DataSeries("sparse")
        sparse.add(4, 5.0e-5)
        fig.add_series(sparse)
        text = format_figure(fig)
        assert "-" in text  # the missing 64-byte point renders as a dash

    def test_format_figure_propagates_real_defects(self):
        """Only missing points render as '-'; other errors are real defects."""

        class BrokenSeries(DataSeries):
            def at(self, x):
                raise RuntimeError("broken cost model")

        fig = _sample_figure()
        broken = BrokenSeries("broken")
        broken.add(4, 1.0)
        fig.add_series(broken)
        with pytest.raises(RuntimeError, match="broken cost model"):
            format_figure(fig)
        with pytest.raises(RuntimeError, match="broken cost model"):
            to_csv(fig)

    def test_to_csv_missing_points_render_empty(self):
        fig = _sample_figure()
        sparse = DataSeries("sparse")
        sparse.add(4, 5.0e-5)
        fig.add_series(sparse)
        lines = to_csv(fig).strip().splitlines()
        assert lines[2].endswith(",")  # the missing 64-byte point is empty

    def test_to_csv_roundtrip(self):
        csv = to_csv(_sample_figure())
        lines = csv.strip().splitlines()
        assert lines[0] == "message size (bytes),fast,slow"
        assert len(lines) == 3
        assert lines[1].startswith("4,")

    def test_format_table1_lists_all_systems(self):
        text = format_table1(table1())
        for name in ("dane", "amber", "tuolomne"):
            assert name in text
        assert "112" in text and "96" in text

    def test_format_speedup_summary(self):
        summary = {
            "per_size": {4: 3.0, 4096: 1.2},
            "best_size": 4,
            "best_speedup": 3.0,
            "configuration": "rig",
        }
        text = format_speedup_summary(summary)
        assert "3.00x" in text and "4096" in text and "rig" in text
