"""Tests that every figure of the paper can be regenerated and has the right structure."""

import pytest

from repro.bench.figures import (
    FIGURES,
    figure07,
    figure08,
    figure10,
    figure13,
    figure15,
    figure16,
    headline_speedup,
    table1,
)
from repro.bench.harness import PAPER_MESSAGE_SIZES
from repro.machine.systems import tiny_cluster


SMALL_SIZES = (4, 256, 4096)


class TestTable1:
    def test_rows(self):
        rows = table1()
        assert [r["name"] for r in rows] == ["dane", "amber", "tuolomne"]
        assert rows[0]["cores_per_node"] == "112"
        assert rows[2]["cores_per_node"] == "96"
        assert "Omni-Path" in rows[1]["network"]
        assert "MPICH" in rows[2]["mpi"]


class TestEveryFigure:
    @pytest.mark.parametrize("figure_id", sorted(FIGURES))
    def test_model_engine_produces_series(self, figure_id):
        fig = FIGURES[figure_id]()
        assert fig.figure_id == figure_id
        assert len(fig.series) >= 2
        for series in fig.series:
            assert len(series) >= 2
            assert all(y >= 0.0 for y in series.ys())

    @pytest.mark.parametrize("figure_id", ["fig07", "fig10", "fig13"])
    def test_simulate_engine_reduced_scale(self, figure_id):
        """The same figure definitions run through the event simulator at reduced scale."""
        fig = FIGURES[figure_id](
            tiny_cluster(num_nodes=4), ppn=8, engine="simulate", msg_sizes=(16, 256)
        )
        assert len(fig.series) >= 2
        for series in fig.series:
            assert all(y > 0.0 for y in series.ys())

    def test_simulate_engine_breakdown_figure16(self):
        fig = figure16(tiny_cluster(num_nodes=4), ppn=8, engine="simulate", msg_bytes=256)
        assert set(fig.labels()) == {"Intra-Node Alltoall", "Inter-Node Alltoall"}
        assert all(y > 0.0 for series in fig.series for y in series.ys())


class TestFigureContents:
    def test_figure07_series_labels(self):
        fig = figure07(msg_sizes=SMALL_SIZES)
        labels = fig.labels()
        assert "Hierarchical" in labels and "System MPI" in labels
        assert any("Processes Per Leader" in label for label in labels)

    def test_figure08_includes_node_aware_and_groups(self):
        fig = figure08(msg_sizes=SMALL_SIZES)
        assert "Node-Aware" in fig.labels()
        assert "4 Processes Per Group" in fig.labels()

    def test_figure10_covers_all_algorithms(self):
        fig = figure10(msg_sizes=SMALL_SIZES)
        assert set(fig.labels()) == {
            "System MPI", "Hierarchical", "Node-Aware", "Multileader",
            "Locality-Aware", "Multileader + Locality",
        }

    def test_figure13_breakdown_series(self):
        fig = figure13(msg_sizes=SMALL_SIZES)
        assert set(fig.labels()) == {
            "MPI Gather", "MPI Scatter", "Alltoall (Pairwise)", "Alltoall (Nonblocking)",
        }

    def test_figure15_x_axis_is_nodes(self):
        fig = figure15(node_counts=(2, 8, 32))
        assert fig.xs() == [2, 8, 32]
        assert set(fig.labels()) == {"Intra-Node Alltoall", "Inter-Node Alltoall"}

    def test_figure16_group_configurations(self):
        fig = figure16()
        # node-aware encoded as the whole node (112), plus group sizes 16, 8, 4.
        assert fig.get("Inter-Node Alltoall").xs() == [112, 16, 8, 4]

    def test_default_sizes_are_paper_sizes(self):
        fig = figure10()
        assert tuple(fig.xs()) == PAPER_MESSAGE_SIZES


class TestHeadlineSpeedup:
    def test_structure(self):
        summary = headline_speedup(msg_sizes=SMALL_SIZES)
        assert set(summary["per_size"]) == set(SMALL_SIZES)
        assert summary["best_speedup"] == max(summary["per_size"].values())
        assert summary["best_size"] in SMALL_SIZES

    def test_reproduces_paper_scale_speedup(self):
        """Section 1: 'up to 3x speedup over system MPI when scaled to 32 nodes'."""
        summary = headline_speedup()
        assert summary["best_speedup"] >= 2.5
