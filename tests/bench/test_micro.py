"""Tests of the hot-path microbenchmark subsystem (repro.bench.micro)."""

import json

import pytest

from repro.bench import micro
from repro.errors import ConfigurationError


def _result(key, wall, events=1000):
    return micro.MicroResult(key=key, description=key, wall_seconds=wall,
                             sim_elapsed=1e-4, events=events, repeats=1)


class TestRunJob:
    def test_times_a_small_uniform_job(self):
        job = micro.MicroJob(key="t/pairwise", kind="uniform", algorithm="pairwise",
                             nodes=2, ppn=2, msg_bytes=64)
        result = micro.run_job(job, repeats=1)
        assert result.wall_seconds > 0.0
        assert result.events > 0
        assert result.sim_elapsed > 0.0
        assert result.events_per_sec > 0.0

    def test_times_a_small_workload_job(self):
        job = micro.MicroJob(key="t/workload", kind="workload", algorithm="pairwise",
                             nodes=2, ppn=2, msg_bytes=32, pattern="skewed-moe")
        result = micro.run_job(job, repeats=1)
        assert result.events > 0

    def test_rejects_zero_repeats(self):
        job = micro.CANONICAL_JOBS[0]
        with pytest.raises(ConfigurationError):
            micro.run_job(job, repeats=0)

    def test_quick_subset_is_nonempty_and_proper(self):
        quick = micro.quick_jobs()
        assert quick
        assert len(quick) < len(micro.CANONICAL_JOBS)
        assert all(job.quick for job in quick)

    def test_canonical_keys_are_unique(self):
        keys = [job.key for job in micro.CANONICAL_JOBS]
        assert len(keys) == len(set(keys))

    def test_headline_point_present(self):
        assert any(job.key == "pairwise/64n8p/256B" for job in micro.CANONICAL_JOBS)


class TestReport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        report = micro.load_report(path)  # missing file -> skeleton
        micro.merge_results(report, [_result("a", 1.0)], 0.5, label="first")
        micro.write_report(report, path)
        loaded = micro.load_report(path)
        assert loaded["current"]["points"]["a"]["wall_seconds"] == 1.0
        assert loaded["current"]["calibration_seconds"] == 0.5

    def test_quick_merge_keeps_unmeasured_points(self, tmp_path):
        report = {"schema": 1}
        micro.merge_results(report, [_result("a", 1.0), _result("b", 2.0)], 0.5,
                            label="full")
        micro.merge_results(report, [_result("a", 0.9)], 0.5, label="quick")
        points = report["current"]["points"]
        assert points["a"]["wall_seconds"] == 0.9
        assert points["b"]["wall_seconds"] == 2.0, "quick runs must not erase points"

    def test_kept_points_retain_their_own_calibration(self):
        # Full run on a fast machine (0.5s probe), then a quick run on a 2x
        # slower machine (1.0s probe) re-measuring only point "a": point "b"
        # must keep the calibration it was measured under, so a later check
        # on the fast machine does not scale it by the slow probe.
        report = {"schema": 1}
        micro.merge_results(report, [_result("a", 1.0), _result("b", 2.0)], 0.5,
                            label="full fast machine")
        micro.merge_results(report, [_result("a", 2.0)], 1.0, label="quick slow machine")
        points = report["current"]["points"]
        assert points["b"]["calibration_seconds"] == 0.5
        problems = micro.compare_results(
            report, [_result("a", 2.0), _result("b", 2.0)], 1.0, tolerance=0.25
        )
        assert problems == [], "b's 2x wall on the 2x-slower machine is not a regression"

    def test_speedup_derived_from_baseline_and_current(self):
        report = {"schema": 1}
        micro.merge_results(report, [_result("a", 3.0)], 0.5, label="pre",
                            section="baseline")
        micro.merge_results(report, [_result("a", 1.0)], 0.5, label="post")
        assert report["speedup"]["a"] == pytest.approx(3.0)

    def test_malformed_report_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ConfigurationError):
            micro.load_report(path)
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ConfigurationError):
            micro.load_report(path)


class TestCompare:
    def _report(self, wall=1.0, calibration=0.5):
        report = {"schema": 1}
        micro.merge_results(report, [_result("a", wall)], calibration, label="rec")
        return report

    def test_no_regression_within_tolerance(self):
        report = self._report(wall=1.0)
        problems = micro.compare_results(report, [_result("a", 1.2)], 0.5,
                                         tolerance=0.25)
        assert problems == []

    def test_regression_detected(self):
        report = self._report(wall=1.0)
        problems = micro.compare_results(report, [_result("a", 1.3)], 0.5,
                                         tolerance=0.25)
        assert len(problems) == 1 and "a" in problems[0]

    def test_slower_machine_is_scaled_out(self):
        # The checking machine's calibration probe is 2x slower, so a 2x
        # wall-clock is expected and must not be flagged.
        report = self._report(wall=1.0, calibration=0.5)
        problems = micro.compare_results(report, [_result("a", 2.0)], 1.0,
                                         tolerance=0.25)
        assert problems == []

    def test_empty_report_is_a_problem(self):
        problems = micro.compare_results({"schema": 1}, [_result("a", 1.0)], 0.5)
        assert problems

    def test_disjoint_points_are_a_problem(self):
        report = self._report()
        problems = micro.compare_results(report, [_result("zzz", 1.0)], 0.5)
        assert problems, "no overlap means the check silently checks nothing"

    def test_formats_results_with_baseline_ratio(self):
        report = {"schema": 1}
        micro.merge_results(report, [_result("a", 2.0)], 0.5, label="pre",
                            section="baseline")
        text = micro.format_results([_result("a", 1.0)], report)
        assert "2.00x" in text
