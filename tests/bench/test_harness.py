"""Tests of the benchmark harness (both engines) and the ablation sweeps."""

import pytest

from repro.bench.harness import PAPER_MESSAGE_SIZES, PAPER_NODE_COUNTS, BenchmarkHarness
from repro.bench.sweep import (
    group_size_sweep,
    injection_bandwidth_sweep,
    inner_exchange_sweep,
    matching_cost_sweep,
)
from repro.core.instrumentation import PHASE_INTER
from repro.errors import ConfigurationError
from repro.machine.systems import dane, tiny_cluster


class TestConstants:
    def test_paper_sweep_ranges(self):
        assert PAPER_MESSAGE_SIZES[0] == 4 and PAPER_MESSAGE_SIZES[-1] == 4096
        assert PAPER_NODE_COUNTS == (2, 4, 8, 16, 32)


class TestHarnessModelEngine:
    @pytest.fixture(scope="class")
    def harness(self):
        return BenchmarkHarness(dane(32), 112, engine="model")

    def test_time_point(self, harness):
        point = harness.time_point("node-aware", 1024, 32)
        assert point.seconds > 0.0
        assert PHASE_INTER in point.phases

    def test_size_sweep(self, harness):
        series = harness.size_sweep("system-mpi", msg_sizes=(4, 64, 1024), num_nodes=32)
        assert series.xs() == [4, 64, 1024]
        assert series.ys() == sorted(series.ys())  # monotone in size

    def test_node_sweep(self, harness):
        series = harness.node_sweep("node-aware", msg_bytes=1024, node_counts=(2, 8, 32))
        assert series.xs() == [2, 8, 32]
        assert series.ys() == sorted(series.ys())  # more nodes -> more time

    def test_phase_series(self, harness):
        series = harness.phase_series("hierarchical", PHASE_INTER, msg_sizes=(4, 256), num_nodes=32)
        assert all(y > 0 for y in series.ys())

    def test_label_override(self, harness):
        series = harness.size_sweep("node-aware", msg_sizes=(4,), num_nodes=32, label="NA")
        assert series.label == "NA"

    def test_too_many_nodes_rejected(self, harness):
        with pytest.raises(ConfigurationError):
            harness.time_point("node-aware", 64, 64)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkHarness(dane(2), 4, engine="hardware")

    def test_invalid_repetitions_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkHarness(dane(2), 4, repetitions=0)

    def test_describe(self, harness):
        assert "dane" in harness.describe() and "model" in harness.describe()


class TestHarnessSimulateEngine:
    @pytest.fixture(scope="class")
    def harness(self):
        return BenchmarkHarness(tiny_cluster(num_nodes=4), 4, engine="simulate")

    def test_time_point_runs_simulation(self, harness):
        point = harness.time_point("node-aware", 64, 4)
        assert point.seconds > 0.0
        assert PHASE_INTER in point.phases

    def test_repetitions_min_policy(self):
        harness = BenchmarkHarness(tiny_cluster(num_nodes=2), 4, engine="simulate", repetitions=3)
        point = harness.time_point("pairwise", 16, 2)
        assert point.seconds > 0.0

    def test_sweep_matches_direct_runner(self, harness):
        from repro.core import run_alltoall

        series = harness.size_sweep("pairwise", msg_sizes=(16,), num_nodes=4)
        direct = run_alltoall("pairwise", harness.process_map(4), 16, validate=False, keep_job=False)
        assert series.at(16).seconds == pytest.approx(direct.elapsed)


class TestAblationSweeps:
    def test_inner_exchange_sweep(self):
        fig = inner_exchange_sweep(dane(32), 112, msg_sizes=(4, 4096))
        assert set(fig.labels()) == {"pairwise", "nonblocking", "bruck"}

    def test_group_size_sweep_covers_divisors(self):
        series = group_size_sweep(dane(32), 112, msg_bytes=4096, group_sizes=(4, 8, 16, 112))
        assert series.xs() == [4, 8, 16, 112]
        assert all(y > 0 for y in series.ys())

    def test_injection_bandwidth_sweep_monotone(self):
        series = injection_bandwidth_sweep(dane(32), 112, msg_bytes=4096, factors=(0.5, 1.0, 4.0))
        # More injection bandwidth never makes the exchange slower.
        ys = series.ys()
        assert ys[0] >= ys[1] >= ys[2]

    def test_matching_cost_sweep_monotone(self):
        series = matching_cost_sweep(dane(32), 112, msg_bytes=1024, factors=(0.0, 1.0, 8.0))
        ys = series.ys()
        assert ys[0] <= ys[1] <= ys[2]


class TestRepetitionPhaseConsistency:
    """The phase breakdown must come from the run that produced the minimum."""

    def _harness_with_fake_runs(self, monkeypatch, outcomes, target):
        import repro.bench.harness as harness_module

        queue = list(outcomes)

        def fake_run(*args, **kwargs):
            return queue.pop(0)

        monkeypatch.setattr(harness_module, target, fake_run)
        return BenchmarkHarness(tiny_cluster(num_nodes=2), 4, engine="simulate",
                                repetitions=len(outcomes))

    class _FakeOutcome:
        def __init__(self, elapsed, phases):
            self.elapsed = elapsed
            self.phase_times = phases

    def test_time_point_phases_match_min_run(self, monkeypatch):
        outcomes = [
            self._FakeOutcome(3.0, {"inter-node alltoall": 3.0}),
            self._FakeOutcome(1.0, {"inter-node alltoall": 1.0}),
            self._FakeOutcome(2.0, {"inter-node alltoall": 2.0}),
        ]
        harness = self._harness_with_fake_runs(monkeypatch, outcomes, "run_alltoall")
        point = harness.time_point("pairwise", 16, 2)
        assert point.seconds == 1.0
        assert point.phases == {"inter-node alltoall": 1.0}

    def test_workload_point_phases_match_min_run(self, monkeypatch):
        from repro.workloads import uniform

        outcomes = [
            self._FakeOutcome(2.0, {"pack": 2.0}),
            self._FakeOutcome(5.0, {"pack": 5.0}),
        ]
        harness = self._harness_with_fake_runs(monkeypatch, outcomes, "run_workload")
        point = harness.workload_point("pairwise", uniform(8, 16), 2)
        assert point.seconds == 2.0
        assert point.phases == {"pack": 2.0}

    def test_real_repetitions_still_deterministic(self):
        harness = BenchmarkHarness(tiny_cluster(num_nodes=2), 4, engine="simulate",
                                   repetitions=3)
        point = harness.time_point("node-aware", 64, 2)
        single = BenchmarkHarness(tiny_cluster(num_nodes=2), 4,
                                  engine="simulate").time_point("node-aware", 64, 2)
        assert point.seconds == pytest.approx(single.seconds)
        assert point.phases == single.phases
