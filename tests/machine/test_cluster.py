"""Tests for repro.machine.cluster."""

import pytest

from repro.errors import TopologyError
from repro.machine.cluster import Cluster
from repro.machine.params import MachineParameters
from repro.machine.topology import NodeArchitecture


@pytest.fixture
def node() -> NodeArchitecture:
    return NodeArchitecture("n", sockets=2, numa_per_socket=2, cores_per_numa=4)


class TestCluster:
    def test_totals(self, node):
        cluster = Cluster(name="c", node=node, num_nodes=8)
        assert cluster.cores_per_node == 16
        assert cluster.total_cores == 128

    def test_invalid_node_count(self, node):
        with pytest.raises(TopologyError):
            Cluster(name="c", node=node, num_nodes=0)

    def test_with_nodes_returns_copy(self, node):
        cluster = Cluster(name="c", node=node, num_nodes=8)
        smaller = cluster.with_nodes(2)
        assert smaller.num_nodes == 2
        assert cluster.num_nodes == 8
        assert smaller.node is cluster.node

    def test_with_params_returns_copy(self, node):
        cluster = Cluster(name="c", node=node, num_nodes=4)
        new_params = MachineParameters(eager_limit=1)
        modified = cluster.with_params(new_params)
        assert modified.params.eager_limit == 1
        assert cluster.params.eager_limit != 1

    def test_describe_mentions_name_and_network(self, node):
        cluster = Cluster(name="testsys", node=node, num_nodes=4, network_name="fabric-x")
        text = cluster.describe()
        assert "testsys" in text and "fabric-x" in text
