"""Tests for repro.machine.topology."""

import pytest

from repro.errors import TopologyError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.topology import NodeArchitecture


@pytest.fixture
def sapphire() -> NodeArchitecture:
    """The paper's Sapphire Rapids node: 2 sockets x 4 NUMA x 14 cores."""
    return NodeArchitecture(name="spr", sockets=2, numa_per_socket=4, cores_per_numa=14)


class TestSizes:
    def test_derived_counts(self, sapphire):
        assert sapphire.cores_per_socket == 56
        assert sapphire.cores_per_node == 112
        assert sapphire.numa_domains == 8

    def test_single_socket_node(self):
        node = NodeArchitecture("flat", sockets=1, numa_per_socket=1, cores_per_numa=4)
        assert node.cores_per_node == 4
        assert node.numa_domains == 1

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            NodeArchitecture("bad", sockets=0, numa_per_socket=1, cores_per_numa=1)
        with pytest.raises(TopologyError):
            NodeArchitecture("bad", sockets=1, numa_per_socket=-1, cores_per_numa=1)
        with pytest.raises(TopologyError):
            NodeArchitecture("bad", sockets=1, numa_per_socket=1, cores_per_numa=0)


class TestPlacement:
    def test_socket_of_core(self, sapphire):
        assert sapphire.socket_of_core(0) == 0
        assert sapphire.socket_of_core(55) == 0
        assert sapphire.socket_of_core(56) == 1
        assert sapphire.socket_of_core(111) == 1

    def test_numa_of_core(self, sapphire):
        assert sapphire.numa_of_core(0) == 0
        assert sapphire.numa_of_core(13) == 0
        assert sapphire.numa_of_core(14) == 1
        assert sapphire.numa_of_core(111) == 7

    def test_out_of_range_core_rejected(self, sapphire):
        with pytest.raises(TopologyError):
            sapphire.socket_of_core(112)
        with pytest.raises(TopologyError):
            sapphire.numa_of_core(-1)

    def test_cores_in_numa(self, sapphire):
        assert list(sapphire.cores_in_numa(0)) == list(range(0, 14))
        assert list(sapphire.cores_in_numa(7)) == list(range(98, 112))
        with pytest.raises(TopologyError):
            sapphire.cores_in_numa(8)

    def test_cores_in_socket(self, sapphire):
        assert list(sapphire.cores_in_socket(1)) == list(range(56, 112))
        with pytest.raises(TopologyError):
            sapphire.cores_in_socket(2)


class TestLocality:
    def test_same_core(self, sapphire):
        assert sapphire.core_locality(5, 5) == LocalityLevel.SELF

    def test_same_numa(self, sapphire):
        assert sapphire.core_locality(0, 13) == LocalityLevel.NUMA

    def test_same_socket_different_numa(self, sapphire):
        assert sapphire.core_locality(0, 14) == LocalityLevel.SOCKET
        assert sapphire.core_locality(13, 55) == LocalityLevel.SOCKET

    def test_different_socket(self, sapphire):
        assert sapphire.core_locality(0, 56) == LocalityLevel.NODE
        assert sapphire.core_locality(55, 111) == LocalityLevel.NODE

    def test_symmetry(self, sapphire):
        for a, b in [(0, 13), (0, 14), (0, 56), (30, 100)]:
            assert sapphire.core_locality(a, b) == sapphire.core_locality(b, a)


class TestDescribe:
    def test_mentions_core_count(self, sapphire):
        assert "112" in sapphire.describe()
