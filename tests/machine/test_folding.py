"""Unit tests for the symmetry-folded process map and its mirror maps."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import ProcessMap, tiny_cluster
from repro.machine.folding import (
    FoldCertificate,
    FoldedProcessMap,
    fold_process_map,
    uniform_certificate,
)


@pytest.fixture
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=4)


def test_plain_process_map_fold_surface(pmap):
    assert pmap.is_folded is False
    assert pmap.sim_nodes == pmap.num_nodes == 4
    assert pmap.sim_nprocs == pmap.nprocs == 16
    assert pmap.multiplicity == 1


def test_folded_map_shrinks_simulated_extent_only(pmap):
    folded = fold_process_map(pmap)
    assert folded.is_folded is True
    assert folded.nprocs == 16            # logical machine unchanged
    assert folded.num_nodes == 4
    assert folded.sim_nodes == 1          # simulated extent: one node
    assert folded.sim_nprocs == 4
    assert folded.multiplicity == 4
    assert tuple(folded.representatives) == (0, 1, 2, 3)


def test_fold_is_idempotent(pmap):
    folded = fold_process_map(pmap)
    assert fold_process_map(folded) is folded
    assert pmap.folded().folded().is_folded


def test_unfolded_roundtrip(pmap):
    back = fold_process_map(pmap).unfolded()
    assert not back.is_folded
    assert back == pmap


def test_mirror_inbound_maps_phantom_pairs_onto_node_zero(pmap):
    folded = fold_process_map(pmap)
    # A send rep 1 -> phantom 10 (node 2) mirrors to the inbound pair the
    # representative node receives from the rotated source.
    mirror_src, mirror_dst = folded.mirror_inbound(1, 10)
    assert mirror_dst == 10 % 4 == 2          # destination's local index
    assert mirror_src == 1 + (4 - 2) * 4 == 9  # source rotated by (N - node)
    # And the outbound recovery inverts it exactly.
    assert folded.mirror_outbound(mirror_src, mirror_dst) == (1, 10)


def test_mirror_maps_are_inverse_over_all_phantom_pairs(pmap):
    folded = fold_process_map(pmap)
    ppn, nprocs = 4, 16
    for src in range(ppn):
        for dst in range(ppn, nprocs):
            m_src, m_dst = folded.mirror_inbound(src, dst)
            assert 0 <= m_dst < ppn
            assert ppn <= m_src < nprocs  # phantom source, detectable
            assert folded.mirror_outbound(m_src, m_dst) == (src, dst)


def test_certificate_attaches_and_describes(pmap):
    cert = uniform_certificate(16, 4)
    folded = fold_process_map(pmap, cert)
    assert folded.certificate == cert
    assert "representative" in folded.describe() or "fold" in folded.describe().lower()


def test_certificate_is_frozen_value_object():
    a = FoldCertificate(kind="uniform", detail="x")
    b = FoldCertificate(kind="uniform", detail="x")
    assert a == b
    with pytest.raises(Exception):
        a.kind = "other"


def test_folded_map_is_a_process_map_subtype(pmap):
    folded = fold_process_map(pmap)
    assert isinstance(folded, ProcessMap)
    assert isinstance(folded, FoldedProcessMap)
    # Locality queries still answer for the whole logical machine.
    assert folded.node_of(13) == 3


def test_paper_scale_presets():
    from repro.machine import TABLE1_NODE_COUNTS, paper_scale

    dane = paper_scale("dane")
    assert dane.num_nodes == TABLE1_NODE_COUNTS["dane"] == 1536
    assert dane.total_cores == 1536 * 112
    assert paper_scale("tuolomne").num_nodes == 1152
    with pytest.raises(ConfigurationError):
        paper_scale("tiny")
