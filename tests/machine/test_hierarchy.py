"""Tests for repro.machine.hierarchy."""

from repro.machine.hierarchy import (
    INTRA_NODE_LEVELS,
    LocalityLevel,
    coarsest_level,
    finest_level,
)


class TestOrdering:
    def test_levels_strictly_ordered(self):
        assert (
            LocalityLevel.SELF
            < LocalityLevel.NUMA
            < LocalityLevel.SOCKET
            < LocalityLevel.NODE
            < LocalityLevel.NETWORK
        )

    def test_finest_and_coarsest(self):
        assert finest_level() == LocalityLevel.NUMA
        assert coarsest_level() == LocalityLevel.NETWORK


class TestClassification:
    def test_intra_node_levels(self):
        for level in INTRA_NODE_LEVELS:
            assert level.is_intra_node
            assert not level.is_inter_node

    def test_network_is_inter_node(self):
        assert LocalityLevel.NETWORK.is_inter_node
        assert not LocalityLevel.NETWORK.is_intra_node

    def test_intra_node_levels_complete(self):
        assert set(INTRA_NODE_LEVELS) | {LocalityLevel.NETWORK} == set(LocalityLevel)


class TestDescribe:
    def test_all_levels_have_descriptions(self):
        for level in LocalityLevel:
            text = level.describe()
            assert isinstance(text, str) and text
