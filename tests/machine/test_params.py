"""Tests for repro.machine.params."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.params import LevelCosts, MachineParameters


class TestLevelCosts:
    def test_byte_time_is_inverse_bandwidth(self):
        costs = LevelCosts(latency=1e-6, bandwidth=1e9)
        assert costs.byte_time == pytest.approx(1e-9)

    def test_message_time(self):
        costs = LevelCosts(latency=2e-6, bandwidth=1e9)
        assert costs.message_time(1000) == pytest.approx(2e-6 + 1e-6)

    def test_zero_byte_message_is_latency(self):
        costs = LevelCosts(latency=5e-7, bandwidth=1e10)
        assert costs.message_time(0) == pytest.approx(5e-7)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LevelCosts(latency=-1e-6, bandwidth=1e9)

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LevelCosts(latency=1e-6, bandwidth=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            LevelCosts(latency=1e-6, bandwidth=1e9).message_time(-1)


class TestMachineParameters:
    def test_defaults_cover_all_levels(self):
        params = MachineParameters()
        for level in LocalityLevel:
            assert params.latency(level) >= 0.0
            assert params.byte_time(level) > 0.0

    def test_network_slower_than_numa_by_default(self):
        params = MachineParameters()
        assert params.latency(LocalityLevel.NETWORK) > params.latency(LocalityLevel.NUMA)

    def test_missing_level_rejected(self):
        levels = {LocalityLevel.SELF: LevelCosts(0.0, 1e9)}
        with pytest.raises(ConfigurationError, match="missing"):
            MachineParameters(levels=levels)

    def test_injection_time_components(self):
        params = MachineParameters(nic_message_overhead=1e-6, injection_bandwidth=1e9)
        assert params.injection_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_fabric_time(self):
        params = MachineParameters(cross_numa_bandwidth=1e9)
        assert params.fabric_time(2000) == pytest.approx(2e-6)

    def test_copy_time_zero_bytes(self):
        assert MachineParameters().copy_time(0) == 0.0

    def test_copy_time_includes_latency(self):
        params = MachineParameters(copy_latency=1e-6, copy_bandwidth=1e9)
        assert params.copy_time(1000) == pytest.approx(2e-6)

    def test_eager_threshold(self):
        params = MachineParameters(eager_limit=100)
        assert params.is_eager(100)
        assert not params.is_eager(101)

    def test_negative_sizes_rejected(self):
        params = MachineParameters()
        with pytest.raises(ConfigurationError):
            params.injection_time(-1)
        with pytest.raises(ConfigurationError):
            params.copy_time(-1)
        with pytest.raises(ConfigurationError):
            params.fabric_time(-1)

    def test_invalid_scalars_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParameters(injection_bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            MachineParameters(send_overhead=-1.0)
        with pytest.raises(ConfigurationError):
            MachineParameters(eager_limit=-1)

    def test_with_overrides(self):
        params = MachineParameters()
        modified = params.with_overrides(eager_limit=1)
        assert modified.eager_limit == 1
        assert params.eager_limit != 1  # original untouched

    def test_scale_level(self):
        params = MachineParameters()
        scaled = params.scale_level(LocalityLevel.NETWORK, latency_factor=2.0, bandwidth_factor=0.5)
        assert scaled.latency(LocalityLevel.NETWORK) == pytest.approx(
            2.0 * params.latency(LocalityLevel.NETWORK)
        )
        assert scaled.byte_time(LocalityLevel.NETWORK) == pytest.approx(
            2.0 * params.byte_time(LocalityLevel.NETWORK)
        )
        # other levels untouched
        assert scaled.latency(LocalityLevel.NUMA) == params.latency(LocalityLevel.NUMA)

    def test_scale_level_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            MachineParameters().scale_level(LocalityLevel.NUMA, bandwidth_factor=0.0)
