"""Tests for repro.machine.process_map."""

import pytest

from repro.errors import TopologyError
from repro.machine import ProcessMap, tiny_cluster
from repro.machine.hierarchy import LocalityLevel
from repro.machine.systems import dane


@pytest.fixture
def pmap() -> ProcessMap:
    # tiny cluster: 2 sockets x 2 NUMA x 2 cores = 8 cores/node, 4 nodes
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=8)


class TestConstruction:
    def test_sizes(self, pmap):
        assert pmap.nprocs == 32
        assert pmap.ppn == 8
        assert pmap.num_nodes == 4

    def test_defaults_to_whole_cluster(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=4), ppn=2)
        assert pmap.num_nodes == 4
        assert pmap.nprocs == 8

    def test_subset_of_nodes(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=8), ppn=4, num_nodes=2)
        assert pmap.nprocs == 8

    def test_ppn_exceeding_cores_rejected(self):
        with pytest.raises(TopologyError):
            ProcessMap(tiny_cluster(num_nodes=2), ppn=9)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(TopologyError):
            ProcessMap(tiny_cluster(num_nodes=2), ppn=4, num_nodes=3)

    def test_non_positive_ppn_rejected(self):
        with pytest.raises(TopologyError):
            ProcessMap(tiny_cluster(num_nodes=2), ppn=0)


class TestPlacement:
    def test_node_of_block_mapping(self, pmap):
        assert pmap.node_of(0) == 0
        assert pmap.node_of(7) == 0
        assert pmap.node_of(8) == 1
        assert pmap.node_of(31) == 3

    def test_local_rank(self, pmap):
        assert pmap.local_rank(0) == 0
        assert pmap.local_rank(7) == 7
        assert pmap.local_rank(8) == 0

    def test_numa_and_socket(self, pmap):
        # 2 cores per NUMA, 4 cores per socket on the tiny node
        assert pmap.numa_of(0) == 0
        assert pmap.numa_of(2) == 1
        assert pmap.socket_of(3) == 0
        assert pmap.socket_of(4) == 1

    def test_out_of_range_rank(self, pmap):
        with pytest.raises(TopologyError):
            pmap.node_of(32)

    def test_node_assignment_cache(self, pmap):
        assignment = pmap.node_assignment
        assert len(assignment) == 32
        assert assignment[:8] == [0] * 8
        assert assignment[-1] == 3


class TestLocality:
    def test_self(self, pmap):
        assert pmap.locality(3, 3) == LocalityLevel.SELF

    def test_same_numa(self, pmap):
        assert pmap.locality(0, 1) == LocalityLevel.NUMA

    def test_same_socket(self, pmap):
        assert pmap.locality(0, 2) == LocalityLevel.SOCKET

    def test_same_node_cross_socket(self, pmap):
        assert pmap.locality(0, 4) == LocalityLevel.NODE

    def test_cross_node(self, pmap):
        assert pmap.locality(0, 8) == LocalityLevel.NETWORK

    def test_same_node_predicate(self, pmap):
        assert pmap.same_node(0, 7)
        assert not pmap.same_node(7, 8)

    def test_symmetry(self, pmap):
        for a, b in [(0, 1), (0, 2), (0, 4), (0, 8), (5, 29)]:
            assert pmap.locality(a, b) == pmap.locality(b, a)


class TestGroupings:
    def test_ranks_on_node(self, pmap):
        assert pmap.ranks_on_node(1) == list(range(8, 16))
        with pytest.raises(TopologyError):
            pmap.ranks_on_node(4)

    def test_ranks_with_local_rank(self, pmap):
        assert pmap.ranks_with_local_rank(3) == [3, 11, 19, 27]
        with pytest.raises(TopologyError):
            pmap.ranks_with_local_rank(8)

    def test_ranks_in_numa(self, pmap):
        assert pmap.ranks_in_numa(0, 0) == [0, 1]
        assert pmap.ranks_in_numa(1, 3) == [14, 15]

    def test_ranks_in_numa_partial_occupancy(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=3)
        # only 3 ranks per node: NUMA 1 holds a single rank, NUMA 2/3 none
        assert pmap.ranks_in_numa(0, 1) == [2]
        assert pmap.ranks_in_numa(0, 2) == []

    def test_leader_groups(self, pmap):
        groups = pmap.leader_groups(1, 4)
        assert groups == [[8, 9, 10, 11], [12, 13, 14, 15]]

    def test_leader_groups_whole_node(self, pmap):
        assert pmap.leader_groups(0, 8) == [list(range(8))]

    def test_group_of(self, pmap):
        assert pmap.group_of(0, 4) == 0
        assert pmap.group_of(5, 4) == 1
        assert pmap.group_of(13, 4) == 1

    def test_full_scale_dane_mapping(self):
        pmap = ProcessMap(dane(32), ppn=112)
        assert pmap.nprocs == 3584
        assert pmap.node_of(3583) == 31
        assert pmap.locality(0, 13) == LocalityLevel.NUMA
        assert pmap.locality(0, 14) == LocalityLevel.SOCKET
        assert pmap.locality(0, 56) == LocalityLevel.NODE
        assert pmap.locality(0, 112) == LocalityLevel.NETWORK
        assert len(pmap.leader_groups(0, 4)) == 28

    def test_describe(self, pmap):
        text = pmap.describe()
        assert "32" in text and "tiny" in text
