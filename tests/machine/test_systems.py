"""Tests for repro.machine.systems (Table 1 presets)."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.hierarchy import LocalityLevel
from repro.machine.systems import (
    amber,
    dane,
    get_system,
    list_systems,
    mi300a_node,
    sapphire_rapids_node,
    tiny_cluster,
    tuolomne,
)
from repro.netsim.fabric import FatTreeFabric, FullBisectionFabric, parse_fabric


class TestNodeArchitectures:
    def test_sapphire_rapids_core_count(self):
        # Table 1 / Section 1: 112 cores per node, 2 sockets, 4 NUMA per socket.
        node = sapphire_rapids_node()
        assert node.cores_per_node == 112
        assert node.sockets == 2
        assert node.numa_domains == 8
        assert node.cores_per_numa == 14

    def test_mi300a_core_count(self):
        # Table 1 / Section 1: 96 cores per node on Tuolomne.
        node = mi300a_node()
        assert node.cores_per_node == 96


class TestPresets:
    def test_default_node_counts(self):
        # The paper's largest evaluation scale is 32 nodes.
        assert dane().num_nodes == 32
        assert amber().num_nodes == 32
        assert tuolomne().num_nodes == 32

    def test_custom_node_count(self):
        assert dane(2).num_nodes == 2

    def test_dane_and_amber_share_architecture(self):
        assert dane().node == amber().node
        assert dane().cores_per_node == 112

    def test_amber_slower_than_dane(self):
        # Amber's older libfabric shows up as slightly higher latency.
        assert amber().params.latency(LocalityLevel.NETWORK) > dane().params.latency(
            LocalityLevel.NETWORK
        )

    def test_tuolomne_uses_mi300a_and_slingshot(self):
        cluster = tuolomne()
        assert cluster.cores_per_node == 96
        assert "Slingshot" in cluster.network_name
        assert cluster.params.injection_bandwidth > dane().params.injection_bandwidth

    def test_network_slower_than_intra_node_everywhere(self):
        for cluster in (dane(), amber(), tuolomne(), tiny_cluster()):
            params = cluster.params
            assert params.latency(LocalityLevel.NETWORK) > params.latency(LocalityLevel.NUMA)

    def test_describe_reports_system_mpi(self):
        assert "OpenMPI" in dane().describe()
        assert "MPICH" in tuolomne().describe()


class TestRegistry:
    def test_list_systems(self):
        names = list_systems()
        assert {"dane", "amber", "tuolomne", "tiny"} <= set(names)

    def test_get_system_case_insensitive(self):
        assert get_system("DANE").name == "dane"

    def test_get_system_with_node_count(self):
        assert get_system("amber", 4).num_nodes == 4

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown system"):
            get_system("frontier")


class TestTinyCluster:
    def test_default_shape(self):
        cluster = tiny_cluster()
        assert cluster.num_nodes == 4
        assert cluster.cores_per_node == 8

    def test_custom_shape(self):
        cluster = tiny_cluster(num_nodes=2, sockets=1, numa_per_socket=2, cores_per_numa=3)
        assert cluster.cores_per_node == 6
        assert cluster.num_nodes == 2


class TestPresetFabrics:
    def test_every_preset_defaults_to_full_bisection(self):
        for factory in (dane, amber, tuolomne, tiny_cluster):
            assert factory().fabric == FullBisectionFabric()

    def test_every_preset_accepts_a_fabric_override(self):
        spec = FatTreeFabric(hosts_per_switch=2, oversubscription=2)
        for factory in (dane, amber, tuolomne, tiny_cluster):
            cluster = factory(4, fabric=spec)
            assert cluster.fabric == spec
            assert "fat-tree" in cluster.describe()

    def test_get_system_fabric_parameter(self):
        spec = parse_fabric("dragonfly:hosts=2,routers=2,taper=4")
        assert get_system("tuolomne", 8, fabric=spec).fabric == spec
        # Without an override the preset keeps its default.
        assert get_system("tuolomne", 8).fabric == FullBisectionFabric()

    def test_fabric_override_keeps_params_identical(self):
        spec = FatTreeFabric(hosts_per_switch=2, oversubscription=2)
        assert dane(4, fabric=spec).params == dane(4).params
