"""Integration tests: workloads through the runner, harness and model layers."""

import numpy as np
import pytest

from repro.bench.harness import BenchmarkHarness
from repro.core import run_alltoall, run_workload
from repro.core.alltoall.valgorithms import get_v_algorithm, list_v_algorithms
from repro.core.instrumentation import PHASE_INTER, PHASE_INTRA, PHASE_PACK
from repro.errors import BufferSizeError, ConfigurationError
from repro.machine import ProcessMap, tiny_cluster
from repro.model.predict import (
    WORKLOAD_MODELED_ALGORITHMS,
    predict_workload_breakdown,
    predict_workload_time,
)
from repro.workloads import TrafficMatrix, skewed_moe, sparse, uniform


@pytest.fixture
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=2), ppn=4)


class TestRunWorkload:
    @pytest.mark.parametrize("algorithm", list_v_algorithms())
    def test_validates_on_skewed_traffic(self, pmap, algorithm):
        matrix = skewed_moe(pmap.nprocs, 32, seed=4)
        outcome = run_workload(algorithm, pmap, matrix, keep_job=False)
        assert outcome.correct
        assert outcome.elapsed > 0.0
        assert outcome.pattern == "skewed-moe"
        assert outcome.total_bytes == matrix.total_bytes

    def test_locality_aware_grouping(self, pmap):
        matrix = sparse(pmap.nprocs, 16, out_degree=3, seed=1)
        outcome = run_workload(
            "node-aware", pmap, matrix, procs_per_group=2, inner="nonblocking", keep_job=False
        )
        assert outcome.correct
        assert "procs_per_group=2" in outcome.algorithm

    def test_node_aware_reports_phases(self, pmap):
        outcome = run_workload("node-aware", pmap, uniform(pmap.nprocs, 64), keep_job=False)
        assert {PHASE_INTER, PHASE_INTRA, PHASE_PACK} <= set(outcome.phase_times)

    def test_uniform_matrix_matches_run_alltoall(self, pmap):
        """A uniform TrafficMatrix through the v-path reproduces the uniform runner's timing."""
        flat = run_alltoall("pairwise", pmap, 64, validate=False, keep_job=False)
        v = run_workload("pairwise", pmap, uniform(pmap.nprocs, 64), keep_job=False)
        assert v.elapsed == pytest.approx(flat.elapsed, rel=1e-9)

    def test_aggregation_reduces_inter_node_messages(self, pmap):
        matrix = skewed_moe(pmap.nprocs, 256, seed=2)
        flat = run_workload("pairwise", pmap, matrix, validate=False, keep_job=False)
        aggregated = run_workload("node-aware", pmap, matrix, validate=False, keep_job=False)
        assert aggregated.inter_node_bytes == flat.inter_node_bytes
        assert aggregated.inter_node_messages < flat.inter_node_messages

    def test_raw_array_accepted(self, pmap):
        raw = np.full((pmap.nprocs, pmap.nprocs), 8, dtype=np.int64)
        assert run_workload("pairwise", pmap, raw, keep_job=False).correct

    def test_wider_dtype(self, pmap):
        matrix = uniform(pmap.nprocs, 64)
        outcome = run_workload("pairwise", pmap, matrix, dtype=np.int64, keep_job=False)
        assert outcome.correct

    def test_size_mismatch_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            run_workload("pairwise", pmap, uniform(pmap.nprocs + 1, 8))

    def test_options_with_instance_rejected(self, pmap):
        algo = get_v_algorithm("pairwise")
        with pytest.raises(ConfigurationError):
            run_workload(algo, pmap, uniform(pmap.nprocs, 8), inner="pairwise")

    def test_bad_group_size_rejected_before_running(self, pmap):
        with pytest.raises(ConfigurationError):
            run_workload("node-aware", pmap, uniform(pmap.nprocs, 8), procs_per_group=3)

    def test_summary_mentions_pattern_and_skew(self, pmap):
        outcome = run_workload("pairwise", pmap, skewed_moe(pmap.nprocs, 16), keep_job=False)
        text = outcome.summary()
        assert "skewed-moe" in text and "skew" in text


class TestWorkloadModel:
    def test_all_modeled_algorithms_positive(self, pmap):
        matrix = skewed_moe(pmap.nprocs, 64, seed=1)
        for name in WORKLOAD_MODELED_ALGORITHMS:
            assert predict_workload_time(name, pmap, matrix) > 0.0

    def test_uniform_matrix_matches_scalar_model(self, pmap):
        from repro.model.predict import predict_time

        matrix = uniform(pmap.nprocs, 256)
        for name in ("pairwise", "nonblocking", "node-aware"):
            assert predict_workload_time(name, pmap, matrix) == pytest.approx(
                predict_time(name, pmap, 256)
            )

    def test_more_traffic_never_cheaper(self, pmap):
        small = skewed_moe(pmap.nprocs, 32, seed=3)
        large = TrafficMatrix(small.bytes * 16, pattern=small.pattern)
        for name in WORKLOAD_MODELED_ALGORITHMS:
            assert predict_workload_time(name, pmap, large) >= predict_workload_time(
                name, pmap, small
            )

    def test_breakdown_phases(self, pmap):
        breakdown = predict_workload_breakdown("node-aware", pmap, uniform(pmap.nprocs, 64))
        assert {PHASE_INTER, PHASE_INTRA, PHASE_PACK} <= set(breakdown.phases)

    def test_unmodeled_algorithm_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            predict_workload_breakdown("bruck", pmap, uniform(pmap.nprocs, 64))

    def test_unknown_option_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            predict_workload_breakdown(
                "node-aware", pmap, uniform(pmap.nprocs, 64), procs_per_leader=4
            )

    def test_model_tracks_simulation_within_factor(self, pmap):
        """The analytic estimate stays within an order of magnitude of the simulator."""
        matrix = skewed_moe(pmap.nprocs, 128, seed=5)
        for name in WORKLOAD_MODELED_ALGORITHMS:
            simulated = run_workload(name, pmap, matrix, validate=False, keep_job=False).elapsed
            modelled = predict_workload_time(name, pmap, matrix)
            assert 0.1 < simulated / modelled < 10.0


class TestHarnessWorkloadPoint:
    def test_model_engine(self):
        harness = BenchmarkHarness(tiny_cluster(num_nodes=2), 4, engine="model")
        matrix = skewed_moe(8, 64, seed=1)
        point = harness.workload_point("node-aware", matrix, num_nodes=2)
        assert point.seconds > 0.0
        assert PHASE_INTER in point.phases

    def test_simulate_engine(self):
        harness = BenchmarkHarness(tiny_cluster(num_nodes=2), 4, engine="simulate",
                                   repetitions=2)
        matrix = sparse(8, 32, out_degree=2, seed=0)
        point = harness.workload_point("pairwise", matrix, num_nodes=2)
        direct = run_workload("pairwise", harness.process_map(2), matrix,
                              validate=False, keep_job=False)
        assert point.seconds == pytest.approx(direct.elapsed)

    def test_matrix_size_checked(self):
        harness = BenchmarkHarness(tiny_cluster(num_nodes=2), 4, engine="model")
        with pytest.raises(ConfigurationError):
            harness.workload_point("pairwise", uniform(9, 8), num_nodes=2)


class TestVAlgorithmValidation:
    def test_buffer_size_mismatch_detected(self, pmap):
        from repro.simmpi import run_spmd

        counts = uniform(pmap.nprocs, 4).item_counts()

        def program(ctx):
            algo = get_v_algorithm("node-aware")
            bad_send = np.zeros(1, dtype=np.uint8)
            recv = np.zeros(int(counts[:, ctx.rank].sum()), dtype=np.uint8)
            yield from algo.run(ctx, counts, bad_send, recv)

        with pytest.raises(BufferSizeError):
            run_spmd(pmap, program)

    def test_count_matrix_shape_checked(self, pmap):
        algo = get_v_algorithm("pairwise")
        with pytest.raises(BufferSizeError):
            algo.validate(pmap, np.zeros((3, 3)))
        get_v_algorithm("node-aware").validate(
            pmap, np.zeros((pmap.nprocs, pmap.nprocs), dtype=np.int64)
        )

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            get_v_algorithm("teleport")

    def test_describe_distinguishes_v_family(self):
        assert get_v_algorithm("pairwise").describe() == "pairwisev"
