"""Tests for phased workloads (:mod:`repro.workloads.phased`) and traceio fixes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    Phase,
    PhasedWorkload,
    TrafficMatrix,
    load_phased,
    load_trace,
    save_phased,
    skewed_moe,
    uniform,
)


def _workload(nprocs: int = 4) -> PhasedWorkload:
    return PhasedWorkload(
        (
            Phase("dispatch", skewed_moe(nprocs, 256, seed=0), repeats=2),
            Phase("combine", uniform(nprocs, 16)),
        )
    )


class TestPhase:
    def test_total_bytes_includes_repeats(self):
        matrix = uniform(4, 8)
        assert Phase("p", matrix, repeats=3).total_bytes == 3 * matrix.total_bytes

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            Phase("", uniform(2, 8))

    def test_rejects_newline_in_name(self):
        with pytest.raises(ConfigurationError):
            Phase("a\nb", uniform(2, 8))

    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigurationError):
            Phase("p", [[0, 1], [1, 0]])

    @pytest.mark.parametrize("repeats", [0, -1, 1.5, True])
    def test_rejects_bad_repeats(self, repeats):
        with pytest.raises(ConfigurationError):
            Phase("p", uniform(2, 8), repeats=repeats)


class TestPhasedWorkload:
    def test_needs_at_least_one_phase(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload(())

    def test_rejects_mixed_rank_counts(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload((Phase("a", uniform(2, 8)), Phase("b", uniform(4, 8))))

    def test_rejects_non_phase_entries(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload((uniform(2, 8),))

    def test_sizes(self):
        workload = _workload(4)
        assert workload.nprocs == 4
        assert workload.num_phases == 2
        assert workload.names == ("dispatch", "combine")
        assert workload.total_bytes == sum(p.total_bytes for p in workload.phases)

    def test_combined_matrix_sums_repeats(self):
        workload = _workload(4)
        expected = sum(p.matrix.bytes * p.repeats for p in workload.phases)
        assert np.array_equal(workload.combined_matrix().bytes, expected)

    def test_payload_round_trip_is_identity(self):
        workload = _workload(4)
        rebuilt = PhasedWorkload.from_payload(workload.payload())
        assert rebuilt == workload
        assert rebuilt.digest() == workload.digest()

    def test_digest_is_content_pure(self):
        assert _workload(4).digest() == _workload(4).digest()
        other = PhasedWorkload((Phase("dispatch", uniform(4, 8)),))
        assert other.digest() != _workload(4).digest()

    def test_save_load_round_trip(self, tmp_path):
        workload = _workload(4)
        path = tmp_path / "phased.json"
        save_phased(workload, path)
        assert load_phased(path) == workload
        # And the canonical text itself loads too.
        assert load_phased(path.read_text(encoding="utf-8")) == workload

    def test_load_rejects_nprocs_mismatch(self):
        payload = _workload(4).payload()
        payload["nprocs"] = 8
        with pytest.raises(ConfigurationError):
            load_phased(payload)

    def test_load_rejects_malformed_payloads(self):
        with pytest.raises(ConfigurationError):
            load_phased("{not json")
        with pytest.raises(ConfigurationError):
            load_phased({"phases": "nope"})
        with pytest.raises(ConfigurationError):
            load_phased({"phases": [{"name": "p"}]})  # no 'bytes' matrix
        with pytest.raises(ConfigurationError):
            load_phased(42)

    def test_load_missing_file_reports_read_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_phased(tmp_path / "{missing}.json")


class TestTraceioValidation:
    """Regression tests for the traceio validation fix.

    Negative ranks used to size a non-positive matrix and surface as a raw
    numpy ``ValueError``; a non-integer ``nprocs`` as a raw ``TypeError``
    from the max-rank comparison.  Both must be ConfigurationErrors.
    """

    def test_all_negative_ranks_rejected_cleanly(self):
        with pytest.raises(ConfigurationError):
            load_trace([{"src": -1, "dst": -2, "bytes": 8}])

    def test_mixed_negative_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            load_trace([{"src": 0, "dst": -1, "bytes": 8}])

    def test_non_integer_nprocs_rejected_cleanly(self):
        with pytest.raises(ConfigurationError):
            load_trace({"nprocs": "four", "records": [{"src": 0, "dst": 1, "bytes": 8}]})

    def test_boolean_nprocs_rejected(self):
        with pytest.raises(ConfigurationError):
            load_trace({"nprocs": True, "records": [{"src": 0, "dst": 0, "bytes": 8}]})

    def test_valid_trace_still_loads(self):
        matrix = load_trace({"nprocs": 3, "records": [{"src": 0, "dst": 2, "bytes": 8}]})
        assert isinstance(matrix, TrafficMatrix)
        assert matrix.nprocs == 3
        assert matrix.bytes[0, 2] == 8
