"""Tests for the traffic-pattern generators (repro.workloads.generators)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    PATTERNS,
    block_diagonal,
    incast,
    list_patterns,
    load_trace,
    make_pattern,
    neighbor_shift,
    save_trace,
    skewed_moe,
    sparse,
    uniform,
    zipf,
)


class TestUniform:
    def test_every_pair_equal(self):
        matrix = uniform(8, 64)
        assert matrix.is_uniform and matrix.bytes[0, 0] == 64
        assert matrix.total_bytes == 8 * 8 * 64

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            uniform(0, 64)
        with pytest.raises(ConfigurationError):
            uniform(8, 0)


class TestSkewedMoe:
    def test_hot_experts_receive_more(self):
        matrix = skewed_moe(32, 64, concentration=8.0, jitter=0.0, seed=3)
        recv = matrix.recv_totals
        hot = recv.max()
        cold = recv.min()
        assert hot == pytest.approx(8.0 * cold)
        assert matrix.skew > 2.0

    def test_deterministic_per_seed(self):
        assert skewed_moe(16, 32, seed=5) == skewed_moe(16, 32, seed=5)
        assert skewed_moe(16, 32, seed=5) != skewed_moe(16, 32, seed=6)

    def test_every_pair_positive(self):
        assert (skewed_moe(16, 4).bytes > 0).all()

    def test_invalid_options(self):
        with pytest.raises(ConfigurationError):
            skewed_moe(8, 64, concentration=0.5)
        with pytest.raises(ConfigurationError):
            skewed_moe(8, 64, hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            skewed_moe(8, 64, jitter=1.0)


class TestBlockDiagonal:
    def test_traffic_stays_in_groups(self):
        matrix = block_diagonal(8, 100, group_size=4)
        groups = np.arange(8) // 4
        same = groups[:, None] == groups[None, :]
        assert (matrix.bytes[same] == 100).all()
        assert (matrix.bytes[~same] == 0).all()

    def test_background_traffic(self):
        matrix = block_diagonal(8, 100, group_size=2, remote_bytes=1)
        assert matrix.bytes[0, 7] == 1

    def test_group_size_must_divide(self):
        with pytest.raises(ConfigurationError):
            block_diagonal(8, 100, group_size=3)


class TestZipf:
    def test_power_law_row_profile(self):
        matrix = zipf(16, 4096, exponent=1.0, seed=0)
        for row in matrix.bytes:
            assert sorted(row, reverse=True)[0] == 4096
        # Heavy pairs are spread: not every source favours the same destination.
        favourites = matrix.bytes.argmax(axis=1)
        assert len(set(favourites.tolist())) > 1

    def test_higher_exponent_more_concentrated(self):
        flat = zipf(16, 4096, exponent=0.5, seed=1)
        steep = zipf(16, 4096, exponent=2.5, seed=1)
        assert steep.total_bytes < flat.total_bytes

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            zipf(8, 64, exponent=0.0)


class TestSparse:
    def test_out_degree_bounds_fanout(self):
        matrix = sparse(16, 64, out_degree=3, seed=2)
        nonzero_per_row = (matrix.bytes > 0).sum(axis=1)
        assert (nonzero_per_row == 3).all()
        assert np.diagonal(matrix.bytes).sum() == 0

    def test_degree_clamped_to_peers(self):
        matrix = sparse(4, 64, out_degree=100)
        assert ((matrix.bytes > 0).sum(axis=1) == 3).all()

    def test_single_rank_degenerate(self):
        matrix = sparse(1, 64, out_degree=2)
        assert matrix.total_bytes == 64

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            sparse(8, 64, out_degree=0)


class TestIncast:
    def test_victims_receive_from_every_source(self):
        matrix = incast(8, 64, hotspots=2, seed=1)
        column_totals = matrix.bytes.sum(axis=0)
        victims = np.flatnonzero(column_totals == 8 * 64)
        assert len(victims) == 2
        assert matrix.bytes[:, victims].min() == 64
        # Everything else is silent by default.
        assert matrix.total_bytes == 2 * 8 * 64

    def test_background_traffic(self):
        matrix = incast(4, 64, hotspots=1, background_bytes=2, seed=0)
        assert matrix.bytes.min() == 2

    def test_deterministic_per_seed(self):
        assert np.array_equal(incast(8, 64, seed=5).bytes, incast(8, 64, seed=5).bytes)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            incast(8, 64, hotspots=0)
        with pytest.raises(ConfigurationError):
            incast(8, 64, hotspots=9)
        with pytest.raises(ConfigurationError):
            incast(8, 64, background_bytes=-1)


class TestNeighborShift:
    def test_single_shift_ring(self):
        matrix = neighbor_shift(6, 32, shift=1)
        for rank in range(6):
            assert matrix.bytes[rank, (rank + 1) % 6] == 32
        assert matrix.total_bytes == 6 * 32

    def test_degree_adds_neighbours(self):
        matrix = neighbor_shift(8, 16, shift=2, degree=3)
        assert matrix.bytes[0, 2] == 16 and matrix.bytes[0, 4] == 16 and matrix.bytes[0, 6] == 16
        assert matrix.bytes[0, 1] == 0

    def test_node_crossing_shift(self):
        # shift == ppn sends every message to the next node over.
        matrix = neighbor_shift(8, 16, shift=4)
        assert matrix.bytes[0, 4] == 16 and matrix.bytes[5, 1] == 16

    def test_traffic_stays_off_the_diagonal(self):
        # A wrap-around multiple (k * shift == n) is skipped, not turned
        # into a self-send.
        matrix = neighbor_shift(8, 16, shift=4, degree=2)
        assert np.diagonal(matrix.bytes).sum() == 0
        assert matrix.total_bytes == 8 * 16

    def test_shift_multiple_of_nprocs_rejected(self):
        with pytest.raises(ConfigurationError):
            neighbor_shift(8, 16, shift=0)
        with pytest.raises(ConfigurationError):
            neighbor_shift(8, 16, shift=8)

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            neighbor_shift(8, 16, degree=0)


class TestRegistry:
    def test_all_patterns_listed(self):
        assert set(list_patterns()) == {
            "uniform", "skewed-moe", "block-diagonal", "zipf", "sparse", "self-only",
            "incast", "neighbor-shift",
        }

    def test_make_pattern_dispatch(self):
        matrix = make_pattern("block-diagonal", 8, 32, group_size=2)
        assert matrix.pattern == "block-diagonal"

    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            make_pattern("fractal", 8, 32)

    def test_bad_option_reported(self):
        with pytest.raises(ConfigurationError):
            make_pattern("uniform", 8, 32, concentration=2.0)

    def test_every_generator_produces_valid_matrix(self):
        for name in PATTERNS:
            matrix = make_pattern(name, 8, 32)
            assert matrix.nprocs == 8
            assert matrix.total_bytes > 0
            assert matrix.pattern == name


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        original = skewed_moe(8, 64, seed=9)
        path = tmp_path / "trace.json"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded == original
        assert loaded.pattern == "skewed-moe"

    def test_record_list(self):
        records = [
            {"src": 0, "dst": 1, "bytes": 10},
            {"src": 1, "dst": 0, "bytes": 20},
            {"src": 0, "dst": 1, "bytes": 5},  # accumulates
        ]
        matrix = load_trace(records)
        assert matrix.nprocs == 2
        assert matrix.bytes[0, 1] == 15

    def test_records_with_declared_size(self):
        matrix = load_trace({"nprocs": 4, "records": [{"src": 0, "dst": 1, "bytes": 8}]})
        assert matrix.nprocs == 4

    def test_json_string(self):
        matrix = load_trace('{"bytes": [[0, 1], [2, 0]]}')
        assert matrix.bytes[1, 0] == 2

    def test_rank_out_of_declared_range(self):
        with pytest.raises(ConfigurationError):
            load_trace({"nprocs": 2, "records": [{"src": 0, "dst": 5, "bytes": 8}]})

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(tmp_path / "nope.json")

    def test_malformed_records(self):
        with pytest.raises(ConfigurationError):
            load_trace([{"source": 0}])

    def test_existing_file_wins_over_inline_json(self, tmp_path, monkeypatch):
        """A real path is read even when the path string itself looks like JSON."""
        monkeypatch.chdir(tmp_path)
        original = uniform(4, 32)
        save_trace(original, "[v1]trace.json")
        loaded = load_trace("[v1]trace.json")  # starts with '[' but is a file
        assert loaded == original

    def test_file_named_like_json_object(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        original = uniform(4, 8)
        save_trace(original, "{run0}.json")
        assert load_trace("{run0}.json") == original

    def test_unreadable_pathlike_reports_read_error(self, tmp_path):
        # PathLike sources are always files, even with JSON-looking names.
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_trace(tmp_path / "{missing}.json")

    def test_inline_json_fallback_for_nonexistent_strings(self):
        matrix = load_trace('[{"src": 0, "dst": 1, "bytes": 4}]')
        assert matrix.bytes[0, 1] == 4
