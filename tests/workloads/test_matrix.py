"""Tests for the TrafficMatrix abstraction (repro.workloads.matrix)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import TrafficMatrix, uniform


class TestConstruction:
    def test_square_required(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix(np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix(np.zeros((0, 0)))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix([[1, -1], [0, 2]])

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix([[1.5, 0.0], [0.0, 1.0]])

    def test_whole_floats_accepted(self):
        matrix = TrafficMatrix([[2.0, 4.0], [8.0, 16.0]])
        assert matrix.bytes.dtype == np.int64
        assert matrix.total_bytes == 30

    def test_copies_input(self):
        raw = np.ones((2, 2), dtype=np.int64)
        matrix = TrafficMatrix(raw)
        raw[0, 0] = 99
        assert matrix.bytes[0, 0] == 1


class TestAggregates:
    @pytest.fixture
    def matrix(self):
        return TrafficMatrix([[0, 10, 0, 0], [5, 0, 5, 0], [0, 0, 0, 20], [1, 1, 1, 1]])

    def test_totals(self, matrix):
        assert matrix.nprocs == 4
        assert matrix.total_bytes == 44
        assert matrix.send_bytes(2) == 20
        assert matrix.recv_bytes(3) == 21
        assert list(matrix.send_totals) == [10, 10, 20, 4]
        assert list(matrix.recv_totals) == [6, 11, 6, 21]

    def test_conservation(self, matrix):
        assert matrix.send_totals.sum() == matrix.recv_totals.sum() == matrix.total_bytes

    def test_max_pair(self, matrix):
        assert matrix.max_pair_bytes == 20

    def test_skew_and_density(self, matrix):
        assert matrix.skew > 1.0
        assert matrix.density == pytest.approx(8 / 16)
        assert not matrix.is_uniform

    def test_uniform_flags(self):
        assert uniform(4, 16).is_uniform
        assert uniform(4, 16).skew == 1.0
        assert uniform(4, 16).density == 1.0

    def test_node_aggregation(self, matrix):
        nodes = matrix.node_bytes(2)
        assert nodes.shape == (2, 2)
        assert nodes[0, 0] == 15  # ranks 0,1 -> ranks 0,1
        assert nodes[1, 0] == 2  # rank 3 -> ranks 0, 1
        assert nodes.sum() == matrix.total_bytes
        assert matrix.inter_node_bytes(2) == 5 + 1 + 1  # 1->2 plus 3->0 and 3->1

    def test_node_aggregation_requires_divisor(self, matrix):
        with pytest.raises(ConfigurationError):
            matrix.node_bytes(3)


class TestConversion:
    def test_item_counts_uint8(self):
        matrix = TrafficMatrix([[3, 5], [7, 11]])
        assert np.array_equal(matrix.item_counts(np.uint8), matrix.bytes)

    def test_item_counts_divisibility(self):
        matrix = TrafficMatrix([[8, 16], [24, 32]])
        assert np.array_equal(matrix.item_counts(np.int64), matrix.bytes // 8)
        with pytest.raises(ConfigurationError):
            TrafficMatrix([[3, 5], [7, 11]]).item_counts(np.int64)

    def test_scaled(self):
        matrix = TrafficMatrix([[1, 2], [3, 4]], pattern="custom").scaled(3)
        assert matrix.total_bytes == 30
        with pytest.raises(ConfigurationError):
            matrix.scaled(0)

    def test_equality(self):
        assert TrafficMatrix([[1, 2], [3, 4]]) == TrafficMatrix([[1, 2], [3, 4]])
        assert TrafficMatrix([[1, 2], [3, 4]]) != TrafficMatrix([[1, 2], [3, 5]])

    def test_describe_mentions_pattern(self):
        assert "uniform" in uniform(4, 8).describe()
