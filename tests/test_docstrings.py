"""Documentation-layer gate: every module in ``src/repro`` has a docstring.

CI additionally runs ``ruff check src`` with the ``D100``/``D104`` rules
(see ``pyproject.toml``); this test enforces the same invariant for plain
``pytest`` runs in environments without ruff, and goes one step further for
packages: a package docstring must be more than a single bare line, because
the package docstrings double as the architecture overview referenced from
``docs/ARCHITECTURE.md``.
"""

import ast
from pathlib import Path

import pytest

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

MODULES = sorted(SRC_ROOT.rglob("*.py"))


def _module_id(path: Path) -> str:
    return str(path.relative_to(SRC_ROOT.parent))


@pytest.mark.parametrize("path", MODULES, ids=_module_id)
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree)
    assert docstring, f"{_module_id(path)} is missing a module docstring (ruff D100/D104)"


@pytest.mark.parametrize(
    "path", [p for p in MODULES if p.name == "__init__.py"], ids=_module_id
)
def test_package_docstring_describes_the_layer(path):
    docstring = ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))
    assert docstring and len(docstring.strip()) >= 40, (
        f"{_module_id(path)}: package docstrings are the architecture overview; "
        "say what the layer does and who sits above/below it"
    )
