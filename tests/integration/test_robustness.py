"""Integration pin of the robustness figure: the fault-induced winner flip.

The figure's claim is operational, not cosmetic: an algorithm selection
tuned on the healthy machine is *wrong* on the degraded one.  This test
pins the flip itself — healthy, the flat non-blocking exchange wins the
skewed MoE shuffle on the tapered dragonfly; with one global link degraded
and flapping, node-aware aggregation wins — and the determinism that makes
the figure reproducible.
"""

from repro.bench.figures import ROBUSTNESS_FAULTS, figure_robustness
from repro.faults import parse_faults


def _winners(fig):
    """(healthy winner label, faulted winner label) of the figure."""
    by_state = {0: {}, 1: {}}
    for series in fig.series:
        for point in series.points:
            by_state[int(point.x)][series.label] = point.seconds
    return (min(by_state[0], key=by_state[0].get),
            min(by_state[1], key=by_state[1].get))


class TestWinnerFlip:
    def test_one_degraded_global_link_flips_the_winner(self):
        healthy_winner, faulted_winner = _winners(figure_robustness())
        assert healthy_winner == "Nonblocking"
        assert faulted_winner == "Node-Aware"

    def test_figure_is_deterministic(self):
        first = figure_robustness()
        second = figure_robustness()
        for a, b in zip(first.series, second.series):
            assert a.label == b.label
            assert [p.seconds for p in a.points] == [p.seconds for p in b.points]

    def test_default_fault_spec_parses_and_names_one_link(self):
        spec = parse_faults(ROBUSTNESS_FAULTS)
        assert spec
        assert {f.link for f in spec.link_faults()} == {"df-g0-1"}

    def test_engine_jobs_do_not_move_the_figure(self):
        serial = figure_robustness()
        parallel = figure_robustness(engine_jobs=2)
        for a, b in zip(serial.series, parallel.series):
            assert [p.seconds for p in a.points] == [p.seconds for p in b.points]
