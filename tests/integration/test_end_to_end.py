"""End-to-end integration tests exercising the full public API path.

These tests cover the complete workflow a user of the library follows:
pick a system preset, place ranks, run an exchange through the simulator,
cross-check against the analytic model, build a tuning table and regenerate
a figure — all in one scenario.
"""

import numpy as np
import pytest

from repro.bench import BenchmarkHarness, figure10, format_figure, to_csv
from repro.core import run_alltoall
from repro.core.selection import AlgorithmSelector, SelectionTable, default_candidates
from repro.machine import ProcessMap, get_system
from repro.model.predict import predict_time


class TestFullWorkflow:
    @pytest.fixture(scope="class")
    def pmap(self):
        cluster = get_system("dane", 4)
        return ProcessMap(cluster, ppn=8, num_nodes=4)

    def test_simulate_validate_and_model_one_exchange(self, pmap):
        outcome = run_alltoall(
            "multileader-node-aware", pmap, msg_bytes=256, procs_per_leader=4, record_trace=True
        )
        assert outcome.correct
        # The trace, traffic counters and phase breakdown must be mutually consistent.
        assert outcome.job.trace.message_count(inter_node=True) == outcome.inter_node_messages
        assert outcome.job.trace.byte_count(inter_node=True) == outcome.inter_node_bytes
        # Every instrumented phase fits within the total exchange duration.
        assert all(v <= outcome.elapsed for v in outcome.phase_times.values())
        # The analytic model for the same configuration is within an order of magnitude.
        modelled = predict_time(
            "multileader-node-aware", pmap, 256, procs_per_leader=4
        )
        assert 0.1 < modelled / outcome.elapsed < 10.0

    def test_tuning_table_from_simulated_sweep(self, pmap):
        table = SelectionTable()
        for candidate in default_candidates(pmap.ppn):
            for msg_bytes in (16, 512):
                outcome = run_alltoall(
                    candidate.algorithm, pmap, msg_bytes, validate=False, keep_job=False,
                    **candidate.as_kwargs(),
                )
                table.record(pmap.num_nodes, msg_bytes, candidate.describe(), outcome.elapsed)
        assert table.best(4, 16)
        assert table.best(4, 512)
        assert len(table.as_rows()) == 2

    def test_model_selector_consistent_with_figure(self):
        """The selector's winner at 4 bytes equals the fastest series of Figure 10."""
        fig = figure10(msg_sizes=(4,))
        selector = AlgorithmSelector(get_system("dane", 32), ppn=112)
        best, _ = selector.select(num_nodes=32, msg_bytes=4)
        label_by_algorithm = {
            "system-mpi": "System MPI",
            "hierarchical": "Hierarchical",
            "node-aware": "Node-Aware",
            "multileader": "Multileader",
            "locality-aware": "Locality-Aware",
            "multileader-node-aware": "Multileader + Locality",
        }
        assert label_by_algorithm[best.algorithm] == fig.best_at(4)[0]

    def test_figure_rendering_roundtrip(self):
        fig = figure10(msg_sizes=(4, 1024))
        text = format_figure(fig)
        csv = to_csv(fig)
        assert "System MPI" in text
        assert csv.count("\n") == 3  # header + two sizes
        assert str(1024) in csv

    def test_harness_engines_agree_on_ordering(self):
        """Simulated and modelled engines agree which of two algorithms is faster."""
        cluster = get_system("dane", 4)
        simulated = BenchmarkHarness(cluster, 8, engine="simulate")
        modelled = BenchmarkHarness(cluster, 8, engine="model")
        for msg_bytes in (8, 2048):
            sim_flat = simulated.time_point("pairwise", msg_bytes, 4).seconds
            sim_agg = simulated.time_point("node-aware", msg_bytes, 4).seconds
            mod_flat = modelled.time_point("pairwise", msg_bytes, 4).seconds
            mod_agg = modelled.time_point("node-aware", msg_bytes, 4).seconds
            assert (sim_agg < sim_flat) == (mod_agg < mod_flat), (
                f"engines disagree at {msg_bytes} B: sim {sim_agg:.2e}/{sim_flat:.2e} "
                f"model {mod_agg:.2e}/{mod_flat:.2e}"
            )

    def test_amber_and_tuolomne_runnable_end_to_end(self):
        for system in ("amber", "tuolomne"):
            cluster = get_system(system, 2)
            pmap = ProcessMap(cluster, ppn=4, num_nodes=2)
            outcome = run_alltoall("node-aware", pmap, msg_bytes=64)
            assert outcome.correct
