"""Frozen simulated-timing fixture: the hot-path overhaul must be exact.

The golden verify corpus pins the *bytes* every algorithm delivers; this
fixture pins the *simulated timings*.  It freezes, for a diverse set of
small jobs (every uniform algorithm, eager and rendezvous sizes, uniform
and skewed workloads), the exact simulated elapsed time, the sum of the
per-rank finish times (catches per-rank drift that the max hides) and the
number of discrete events processed.

Any change to the simulator, the matching layer or the timing model that
alters a single floating-point operation shows up here as a bitwise
difference.  Performance refactors must keep this file green *unchanged*;
an intentional timing-model change refreshes it::

    PYTHONPATH=src python tests/integration/test_timing_fixture.py --refresh
    git diff tests/golden/simulated_timings.json   # review, commit
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core.runner import run_alltoall, run_workload
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system
from repro.netsim.fabric import parse_fabric
from repro.workloads import make_pattern

FIXTURE_PATH = Path(__file__).resolve().parents[1] / "golden" / "simulated_timings.json"

#: Contended fabrics pinned alongside the full-bisection default.
_FAT_TREE = "fat-tree:hosts=2,oversub=4"
_DRAGONFLY = "dragonfly:hosts=1,routers=2,taper=4"

#: (key, kind, algorithm, nodes, ppn, msg_bytes, pattern, options[, fabric])
JOBS = [
    ("pairwise/4n4p/256B", "uniform", "pairwise", 4, 4, 256, None, {}),
    ("nonblocking/4n4p/256B", "uniform", "nonblocking", 4, 4, 256, None, {}),
    ("bruck/4n4p/256B", "uniform", "bruck", 4, 4, 256, None, {}),
    ("batched/4n4p/256B", "uniform", "batched", 4, 4, 256, None, {}),
    ("system-mpi/4n4p/256B", "uniform", "system-mpi", 4, 4, 256, None, {}),
    ("hierarchical/4n4p/256B", "uniform", "hierarchical", 4, 4, 256, None, {}),
    ("multileader/4n4p/256B", "uniform", "multileader", 4, 4, 256, None,
     {"procs_per_leader": 2}),
    ("node-aware/4n4p/256B", "uniform", "node-aware", 4, 4, 256, None, {}),
    ("locality-aware/4n4p/256B", "uniform", "locality-aware", 4, 4, 256, None,
     {"procs_per_group": 2}),
    ("multileader-node-aware/4n4p/256B", "uniform", "multileader-node-aware",
     4, 4, 256, None, {"procs_per_leader": 2}),
    # Above the eager limit: exercises the rendezvous handshake path.
    ("pairwise/4n4p/16384B", "uniform", "pairwise", 4, 4, 16384, None, {}),
    ("nonblocking/2n4p/32768B", "uniform", "nonblocking", 2, 4, 32768, None, {}),
    # Non-uniform workloads (alltoallv path, zero-count pairs included).
    ("workload-pairwise/4n4p/skewed-moe", "workload", "pairwise", 4, 4, 64,
     "skewed-moe", {}),
    ("workload-nonblocking/4n4p/zipf", "workload", "nonblocking", 4, 4, 64,
     "zipf", {}),
    ("workload-node-aware/4n4p/skewed-moe", "workload", "node-aware", 4, 4, 64,
     "skewed-moe", {}),
    ("workload-node-aware/4n4p/sparse", "workload", "node-aware", 4, 4, 64,
     "sparse", {}),
    # Contended inter-node fabrics (repro.netsim.fabric): the same exchanges
    # through an oversubscribed fat-tree and a tapered dragonfly.  The
    # full-bisection entries above must stay bit-identical regardless.
    ("pairwise/4n4p/256B/fat-tree-o4", "uniform", "pairwise", 4, 4, 256, None,
     {}, _FAT_TREE),
    ("nonblocking/4n4p/256B/fat-tree-o4", "uniform", "nonblocking", 4, 4, 256, None,
     {}, _FAT_TREE),
    ("node-aware/4n4p/256B/fat-tree-o4", "uniform", "node-aware", 4, 4, 256, None,
     {}, _FAT_TREE),
    ("pairwise/4n4p/256B/dragonfly", "uniform", "pairwise", 4, 4, 256, None,
     {}, _DRAGONFLY),
    ("node-aware/4n4p/256B/dragonfly", "uniform", "node-aware", 4, 4, 256, None,
     {}, _DRAGONFLY),
    ("workload-nonblocking/4n4p/incast/fat-tree-o4", "workload", "nonblocking",
     4, 4, 64, "incast", {}, _FAT_TREE),
    ("workload-node-aware/4n4p/incast/dragonfly", "workload", "node-aware",
     4, 4, 64, "incast", {}, _DRAGONFLY),
]

_PATTERN_SEED = 3


def _run(kind, algorithm, nodes, ppn, msg_bytes, pattern, options, fabric=None):
    spec = None if fabric is None else parse_fabric(fabric)
    cluster = get_system("dane", nodes, fabric=spec)
    pmap = ProcessMap(cluster, ppn=ppn, num_nodes=nodes)
    if kind == "workload":
        matrix = make_pattern(pattern, pmap.nprocs, msg_bytes, seed=_PATTERN_SEED)
        outcome = run_workload(algorithm, pmap, matrix, validate=False, **options)
    else:
        outcome = run_alltoall(algorithm, pmap, msg_bytes, validate=False, **options)
    job = outcome.job
    return {
        "elapsed": outcome.elapsed,
        "finish_time_sum": sum(job.finish_times),
        "events": job.events_processed,
    }


def build_fixture() -> dict:
    return {
        "comment": "frozen simulated timings; refresh only on an intentional "
                   "timing-model change (see module docstring)",
        "jobs": {key: _run(*spec) for key, *spec in JOBS},
    }


@pytest.mark.parametrize("key", [job[0] for job in JOBS])
def test_simulated_timings_are_bit_identical(key):
    frozen = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))["jobs"]
    assert key in frozen, (
        f"fixture has no entry for {key}; refresh it with "
        f"`python {Path(__file__).name} --refresh`"
    )
    spec = next(job[1:] for job in JOBS if job[0] == key)
    live = _run(*spec)
    expected = frozen[key]
    # Exact equality on purpose: the simulation is deterministic and the
    # perf overhaul is required to preserve every float bit-for-bit.
    assert live["events"] == expected["events"], f"{key}: event count drifted"
    assert live["elapsed"] == expected["elapsed"], (
        f"{key}: simulated elapsed drifted "
        f"({expected['elapsed']!r} -> {live['elapsed']!r})"
    )
    assert live["finish_time_sum"] == expected["finish_time_sum"], (
        f"{key}: per-rank finish times drifted"
    )


if __name__ == "__main__":
    if "--refresh" not in sys.argv:
        print("usage: python test_timing_fixture.py --refresh", file=sys.stderr)
        sys.exit(2)
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(build_fixture(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {FIXTURE_PATH}")
