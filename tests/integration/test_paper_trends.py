"""Qualitative reproduction checks of the paper's findings.

These tests assert the *shape* of the paper's results — which algorithm wins
in which regime — rather than absolute times.  The full-scale checks use the
analytic model on the Dane/Amber/Tuolomne presets (32 nodes, all cores per
node); the reduced-scale checks rerun key comparisons through the
discrete-event simulator to confirm the trends are not an artefact of the
closed forms.

Flake-risk policy: every input is deterministic — fixed system presets,
fixed message sizes and node counts, and a deterministic model/simulator
(any randomness in the stack is behind fixed seeds).  The only residual
nondeterminism is floating-point jitter when a refactor reorders
mathematically-equivalent arithmetic (e.g. the summation order inside a
cost model), which moves results by ULPs, not percents.  Comparisons
therefore go through the tolerance helpers below instead of raw
``<``/``==`` on floats; each tolerance documents what it absorbs.
"""

import pytest

from repro.bench.figures import figure07, figure08, figure09, figure10, figure12, figure14, figure15, figure17, figure18, headline_speedup
from repro.core import run_alltoall
from repro.core.instrumentation import PHASE_INTER, PHASE_INTRA
from repro.machine import ProcessMap


SIZES = (4, 64, 1024, 4096)

#: Relative slack for strict-trend comparisons (a beats b).  The winning
#: margins in the paper's regimes are tens of percent; 1e-9 only absorbs
#: reordered-arithmetic jitter and can never flip a real trend.
REL_EPS = 1e-9

#: Relative slack for threshold claims (speedup >= 3x).  The modelled
#: headline speedup clears 3x with margin; the slack again only covers
#: float jitter, not modelling drift.
THRESHOLD_EPS = 1e-9


def assert_faster(fast: float, slow: float, label: str = "") -> None:
    """``fast`` beats ``slow`` up to float jitter (strict in exact arithmetic)."""
    assert fast < slow * (1.0 + REL_EPS), (
        f"{label}: expected {fast:.6e} s to beat {slow:.6e} s"
    )


def assert_nondecreasing(values, label: str = "") -> None:
    """Each step may dip below its predecessor only by float jitter."""
    for i in range(len(values) - 1):
        assert values[i + 1] >= values[i] * (1.0 - REL_EPS), (
            f"{label}: value {i + 1} ({values[i + 1]:.6e}) dropped below "
            f"value {i} ({values[i]:.6e})"
        )


class TestDaneFullScaleTrends:
    """Figures 7-12 on the modelled 32-node, 112-rank Dane machine."""

    def test_fig07_multileader_beats_hierarchical_at_large_sizes(self):
        fig = figure07(msg_sizes=SIZES)
        hierarchical = fig.get("Hierarchical")
        for label in fig.labels():
            if "Processes Per Leader" in label:
                assert_faster(fig.get(label).at(4096).seconds,
                              hierarchical.at(4096).seconds, label)

    def test_fig07_more_leaders_help_large_messages(self):
        """'For large data sizes, performance increases with the number of leaders per node.'"""
        fig = figure07(msg_sizes=SIZES)
        assert_faster(
            fig.get("4 Processes Per Leader").at(4096).seconds,
            fig.get("16 Processes Per Leader").at(4096).seconds,
            "fig07 large-message leader trend",
        )

    def test_fig07_fewer_leaders_help_small_messages(self):
        """'For smaller data sizes ... fewer leaders are beneficial.'"""
        fig = figure07(msg_sizes=SIZES)
        assert_faster(
            fig.get("16 Processes Per Leader").at(4).seconds,
            fig.get("4 Processes Per Leader").at(4).seconds,
            "fig07 small-message leader trend",
        )

    def test_fig08_node_aware_best_at_small_and_mid_sizes(self):
        fig = figure08(msg_sizes=SIZES)
        node_aware = fig.get("Node-Aware")
        for size in (4, 64):
            for label in fig.labels():
                if "Processes Per Group" in label:
                    assert_faster(node_aware.at(size).seconds,
                                  fig.get(label).at(size).seconds,
                                  f"fig08 @ {size} B vs {label}")

    def test_fig08_locality_aware_wins_at_largest_size(self):
        """The paper's first novel result: locality-aware aggregation wins at 4096 B."""
        fig = figure08(msg_sizes=SIZES)
        node_aware = fig.get("Node-Aware").at(4096).seconds
        best_locality = min(
            fig.get(label).at(4096).seconds
            for label in fig.labels()
            if "Processes Per Group" in label
        )
        assert_faster(best_locality, node_aware, "fig08 locality-aware @ 4096 B")

    def test_fig09_mlna_best_at_small_sizes_with_intermediate_leader_count(self):
        """Algorithm 5 beats both of its limits (hierarchical, node-aware) at 4 bytes."""
        fig = figure09(msg_sizes=SIZES)
        best_mlna = min(
            fig.get(label).at(4).seconds for label in fig.labels() if "Processes Per Leader" in label
        )
        assert_faster(best_mlna, fig.get("Hierarchical").at(4).seconds, "fig09 vs hierarchical")
        assert_faster(best_mlna, fig.get("Node-Aware").at(4).seconds, "fig09 vs node-aware")
        assert_faster(best_mlna, fig.get("System MPI").at(4).seconds, "fig09 vs system MPI")

    def test_fig10_multileader_node_aware_best_at_small_sizes(self):
        fig = figure10(msg_sizes=SIZES)
        assert fig.best_at(4)[0] == "Multileader + Locality"

    def test_fig10_aggregating_algorithms_best_at_large_sizes(self):
        fig = figure10(msg_sizes=SIZES)
        assert fig.best_at(1024)[0] in ("Node-Aware", "Locality-Aware", "Multileader")
        assert fig.best_at(4096)[0] in ("Node-Aware", "Locality-Aware")

    def test_fig10_novel_algorithms_beat_system_mpi_at_every_size(self):
        fig = figure10(msg_sizes=SIZES)
        for size in SIZES:
            # The observed speedups are 1.5x-5x; the epsilon only guards the
            # ratio computation's float jitter, never a real 1.0x tie.
            assert fig.speedup_over("System MPI", size) > 1.0 * (1.0 - REL_EPS)

    def test_headline_up_to_3x_speedup(self):
        """Abstract: 'achieving up to 3x speedup over system MPI at 32 nodes'."""
        summary = headline_speedup(msg_sizes=SIZES)
        assert summary["best_speedup"] >= 3.0 * (1.0 - THRESHOLD_EPS)

    def test_fig11_fig12_times_grow_with_node_count(self):
        for fig in (figure12(node_counts=(2, 8, 32)),):
            for label in fig.labels():
                assert_nondecreasing(fig.get(label).ys(), label)

    def test_fig12_node_aware_family_beats_system_mpi_when_scaled(self):
        fig = figure12(node_counts=(2, 8, 32))
        system = fig.get("System MPI").at(32).seconds
        assert_faster(fig.get("Node-Aware").at(32).seconds, system, "fig12 node-aware")
        assert_faster(fig.get("Locality-Aware").at(32).seconds, system, "fig12 locality-aware")


class TestBreakdownTrends:
    """Figures 13-16: intra- vs inter-node decomposition."""

    def test_fig14_inter_node_dominates_node_aware_at_all_sizes(self):
        fig = figure14(msg_sizes=SIZES)
        for size in SIZES:
            inter = fig.get("Inter-Node (Pairwise)").at(size).seconds
            intra = fig.get("Intra-Node (Pairwise)").at(size).seconds
            assert_faster(intra, inter, f"fig14 breakdown @ {size} B")

    def test_fig15_inter_node_dominates_at_every_node_count(self):
        fig = figure15(node_counts=(2, 8, 32))
        for nodes in (2, 8, 32):
            assert_faster(
                fig.get("Intra-Node Alltoall").at(nodes).seconds,
                fig.get("Inter-Node Alltoall").at(nodes).seconds,
                f"fig15 @ {nodes} nodes",
            )

    def test_fig14_intra_node_scales_with_inter_node(self):
        """Section 4.1: 'intra-node communication scales with internode communication'."""
        fig = figure14(msg_sizes=SIZES)
        intra = fig.get("Intra-Node (Pairwise)")
        assert_faster(intra.at(4).seconds, intra.at(4096).seconds, "fig14 intra scaling")


class TestOtherSystems:
    def test_fig17_amber_matches_dane_trends(self):
        fig = figure17(msg_sizes=SIZES)
        assert fig.best_at(4)[0] == "Multileader + Locality"
        assert fig.best_at(4096)[0] in ("Node-Aware", "Locality-Aware")
        assert_faster(fig.get("Node-Aware").at(1024).seconds,
                      fig.get("System MPI").at(1024).seconds, "fig17 @ 1024 B")

    def test_fig18_tuolomne_system_mpi_is_competitive(self):
        """On Tuolomne the Cray MPICH baseline is much harder to beat (Figure 18)."""
        fig = figure18(msg_sizes=SIZES)
        system = fig.get("System MPI")
        node_aware = fig.get("Node-Aware")
        # The factor-2 headroom *is* the tolerance here: the claim is "within
        # ~2x of the best novel algorithm, unlike the ~5x gaps on Dane", so
        # the bound itself carries the slack and needs no extra epsilon.
        best = fig.best_at(4096)[1]
        assert system.at(4096).seconds < 2.0 * best
        # Node-aware remains the best of the novel algorithms at small sizes.
        assert_faster(node_aware.at(4).seconds,
                      fig.get("Locality-Aware").at(4).seconds, "fig18 @ 4 B")


class TestReducedScaleSimulation:
    """The same qualitative findings, observed in the event-driven simulation.

    The simulator cannot run 3 584 ranks in reasonable time, so these checks
    use the Dane cost parameters at 8 nodes x 16 ranks — small enough to
    simulate, large enough that the many-core effects (per-node NIC
    serialization, message-count reduction from aggregation) are visible.
    The simulator is deterministic (no seeds involved), so the REL_EPS
    helpers cover these comparisons too.
    """

    @pytest.fixture(scope="class")
    def pmap(self):
        from repro.machine.systems import dane

        return ProcessMap(dane(8), ppn=16, num_nodes=8)

    def test_node_aware_beats_flat_pairwise_for_small_messages(self, pmap):
        """Aggregation removes most per-message overheads of the flat exchange."""
        flat = run_alltoall("pairwise", pmap, msg_bytes=8, keep_job=False, validate=False)
        node_aware = run_alltoall("node-aware", pmap, msg_bytes=8, keep_job=False, validate=False)
        assert_faster(node_aware.elapsed, flat.elapsed, "node-aware vs pairwise @ 8 B")

    def test_bruck_loses_to_pairwise_for_large_messages(self, pmap):
        """Bruck's extra forwarded volume makes it uncompetitive at 2 KiB (Section 2)."""
        bruck = run_alltoall("bruck", pmap, msg_bytes=2048, keep_job=False, validate=False)
        pairwise = run_alltoall("pairwise", pmap, msg_bytes=2048, keep_job=False, validate=False)
        assert_faster(pairwise.elapsed, bruck.elapsed, "pairwise vs bruck @ 2 KiB")

    def test_mlna_beats_hierarchical_for_small_messages(self, pmap):
        hierarchical = run_alltoall("hierarchical", pmap, msg_bytes=8, keep_job=False, validate=False)
        mlna = run_alltoall("multileader-node-aware", pmap, msg_bytes=8, procs_per_leader=4,
                            keep_job=False, validate=False)
        assert_faster(mlna.elapsed, hierarchical.elapsed, "mlna vs hierarchical @ 8 B")

    def test_multileader_beats_single_leader_for_large_messages(self, pmap):
        """Figure 7's large-message trend: more leaders per node help."""
        hierarchical = run_alltoall("hierarchical", pmap, msg_bytes=2048, keep_job=False,
                                    validate=False)
        multileader = run_alltoall("multileader", pmap, msg_bytes=2048, procs_per_leader=4,
                                   keep_job=False, validate=False)
        node_aware = run_alltoall("node-aware", pmap, msg_bytes=2048, keep_job=False, validate=False)
        assert_faster(multileader.elapsed, hierarchical.elapsed, "multileader vs hierarchical")
        assert_faster(node_aware.elapsed, hierarchical.elapsed, "node-aware vs hierarchical")

    def test_node_aware_inter_node_phase_dominates(self, pmap):
        outcome = run_alltoall("node-aware", pmap, msg_bytes=1024, keep_job=False, validate=False)
        assert_faster(outcome.phase_times[PHASE_INTRA], outcome.phase_times[PHASE_INTER],
                      "node-aware phase breakdown")
