"""Qualitative reproduction checks of the paper's findings.

These tests assert the *shape* of the paper's results — which algorithm wins
in which regime — rather than absolute times.  The full-scale checks use the
analytic model on the Dane/Amber/Tuolomne presets (32 nodes, all cores per
node); the reduced-scale checks rerun key comparisons through the
discrete-event simulator to confirm the trends are not an artefact of the
closed forms.
"""

import pytest

from repro.bench.figures import figure07, figure08, figure09, figure10, figure12, figure14, figure15, figure17, figure18, headline_speedup
from repro.core import run_alltoall
from repro.core.instrumentation import PHASE_INTER, PHASE_INTRA
from repro.machine import ProcessMap, tiny_cluster


SIZES = (4, 64, 1024, 4096)


class TestDaneFullScaleTrends:
    """Figures 7-12 on the modelled 32-node, 112-rank Dane machine."""

    def test_fig07_multileader_beats_hierarchical_at_large_sizes(self):
        fig = figure07(msg_sizes=SIZES)
        hierarchical = fig.get("Hierarchical")
        for label in fig.labels():
            if "Processes Per Leader" in label:
                assert fig.get(label).at(4096).seconds < hierarchical.at(4096).seconds

    def test_fig07_more_leaders_help_large_messages(self):
        """'For large data sizes, performance increases with the number of leaders per node.'"""
        fig = figure07(msg_sizes=SIZES)
        assert (
            fig.get("4 Processes Per Leader").at(4096).seconds
            < fig.get("16 Processes Per Leader").at(4096).seconds
        )

    def test_fig07_fewer_leaders_help_small_messages(self):
        """'For smaller data sizes ... fewer leaders are beneficial.'"""
        fig = figure07(msg_sizes=SIZES)
        assert (
            fig.get("16 Processes Per Leader").at(4).seconds
            < fig.get("4 Processes Per Leader").at(4).seconds
        )

    def test_fig08_node_aware_best_at_small_and_mid_sizes(self):
        fig = figure08(msg_sizes=SIZES)
        node_aware = fig.get("Node-Aware")
        for size in (4, 64):
            for label in fig.labels():
                if "Processes Per Group" in label:
                    assert node_aware.at(size).seconds < fig.get(label).at(size).seconds

    def test_fig08_locality_aware_wins_at_largest_size(self):
        """The paper's first novel result: locality-aware aggregation wins at 4096 B."""
        fig = figure08(msg_sizes=SIZES)
        node_aware = fig.get("Node-Aware").at(4096).seconds
        best_locality = min(
            fig.get(label).at(4096).seconds
            for label in fig.labels()
            if "Processes Per Group" in label
        )
        assert best_locality < node_aware

    def test_fig09_mlna_best_at_small_sizes_with_intermediate_leader_count(self):
        """Algorithm 5 beats both of its limits (hierarchical, node-aware) at 4 bytes."""
        fig = figure09(msg_sizes=SIZES)
        best_mlna = min(
            fig.get(label).at(4).seconds for label in fig.labels() if "Processes Per Leader" in label
        )
        assert best_mlna < fig.get("Hierarchical").at(4).seconds
        assert best_mlna < fig.get("Node-Aware").at(4).seconds
        assert best_mlna < fig.get("System MPI").at(4).seconds

    def test_fig10_multileader_node_aware_best_at_small_sizes(self):
        fig = figure10(msg_sizes=SIZES)
        assert fig.best_at(4)[0] == "Multileader + Locality"

    def test_fig10_aggregating_algorithms_best_at_large_sizes(self):
        fig = figure10(msg_sizes=SIZES)
        assert fig.best_at(1024)[0] in ("Node-Aware", "Locality-Aware", "Multileader")
        assert fig.best_at(4096)[0] in ("Node-Aware", "Locality-Aware")

    def test_fig10_novel_algorithms_beat_system_mpi_at_every_size(self):
        fig = figure10(msg_sizes=SIZES)
        for size in SIZES:
            assert fig.speedup_over("System MPI", size) > 1.0

    def test_headline_up_to_3x_speedup(self):
        """Abstract: 'achieving up to 3x speedup over system MPI at 32 nodes'."""
        summary = headline_speedup(msg_sizes=SIZES)
        assert summary["best_speedup"] >= 3.0

    def test_fig11_fig12_times_grow_with_node_count(self):
        for fig in (figure12(node_counts=(2, 8, 32)),):
            for label in fig.labels():
                ys = fig.get(label).ys()
                assert ys == sorted(ys), label

    def test_fig12_node_aware_family_beats_system_mpi_when_scaled(self):
        fig = figure12(node_counts=(2, 8, 32))
        assert fig.get("Node-Aware").at(32).seconds < fig.get("System MPI").at(32).seconds
        assert fig.get("Locality-Aware").at(32).seconds < fig.get("System MPI").at(32).seconds


class TestBreakdownTrends:
    """Figures 13-16: intra- vs inter-node decomposition."""

    def test_fig14_inter_node_dominates_node_aware_at_all_sizes(self):
        fig = figure14(msg_sizes=SIZES)
        for size in SIZES:
            inter = fig.get("Inter-Node (Pairwise)").at(size).seconds
            intra = fig.get("Intra-Node (Pairwise)").at(size).seconds
            assert inter > intra

    def test_fig15_inter_node_dominates_at_every_node_count(self):
        fig = figure15(node_counts=(2, 8, 32))
        for nodes in (2, 8, 32):
            assert (
                fig.get("Inter-Node Alltoall").at(nodes).seconds
                > fig.get("Intra-Node Alltoall").at(nodes).seconds
            )

    def test_fig14_intra_node_scales_with_inter_node(self):
        """Section 4.1: 'intra-node communication scales with internode communication'."""
        fig = figure14(msg_sizes=SIZES)
        intra = fig.get("Intra-Node (Pairwise)")
        assert intra.at(4096).seconds > intra.at(4).seconds


class TestOtherSystems:
    def test_fig17_amber_matches_dane_trends(self):
        fig = figure17(msg_sizes=SIZES)
        assert fig.best_at(4)[0] == "Multileader + Locality"
        assert fig.best_at(4096)[0] in ("Node-Aware", "Locality-Aware")
        assert fig.get("Node-Aware").at(1024).seconds < fig.get("System MPI").at(1024).seconds

    def test_fig18_tuolomne_system_mpi_is_competitive(self):
        """On Tuolomne the Cray MPICH baseline is much harder to beat (Figure 18)."""
        fig = figure18(msg_sizes=SIZES)
        system = fig.get("System MPI")
        node_aware = fig.get("Node-Aware")
        # At the largest size the baseline is within ~2x of (or better than)
        # the best novel algorithm, unlike the ~5x gaps seen on Dane.
        best = fig.best_at(4096)[1]
        assert system.at(4096).seconds < 2.0 * best
        # Node-aware remains the best of the novel algorithms at small sizes.
        assert node_aware.at(4).seconds < fig.get("Locality-Aware").at(4).seconds


class TestReducedScaleSimulation:
    """The same qualitative findings, observed in the event-driven simulation.

    The simulator cannot run 3 584 ranks in reasonable time, so these checks
    use the Dane cost parameters at 8 nodes x 16 ranks — small enough to
    simulate, large enough that the many-core effects (per-node NIC
    serialization, message-count reduction from aggregation) are visible.
    """

    @pytest.fixture(scope="class")
    def pmap(self):
        from repro.machine.systems import dane

        return ProcessMap(dane(8), ppn=16, num_nodes=8)

    def test_node_aware_beats_flat_pairwise_for_small_messages(self, pmap):
        """Aggregation removes most per-message overheads of the flat exchange."""
        flat = run_alltoall("pairwise", pmap, msg_bytes=8, keep_job=False, validate=False)
        node_aware = run_alltoall("node-aware", pmap, msg_bytes=8, keep_job=False, validate=False)
        assert node_aware.elapsed < flat.elapsed

    def test_bruck_loses_to_pairwise_for_large_messages(self, pmap):
        """Bruck's extra forwarded volume makes it uncompetitive at 2 KiB (Section 2)."""
        bruck = run_alltoall("bruck", pmap, msg_bytes=2048, keep_job=False, validate=False)
        pairwise = run_alltoall("pairwise", pmap, msg_bytes=2048, keep_job=False, validate=False)
        assert bruck.elapsed > pairwise.elapsed

    def test_mlna_beats_hierarchical_for_small_messages(self, pmap):
        hierarchical = run_alltoall("hierarchical", pmap, msg_bytes=8, keep_job=False, validate=False)
        mlna = run_alltoall("multileader-node-aware", pmap, msg_bytes=8, procs_per_leader=4,
                            keep_job=False, validate=False)
        assert mlna.elapsed < hierarchical.elapsed

    def test_multileader_beats_single_leader_for_large_messages(self, pmap):
        """Figure 7's large-message trend: more leaders per node help."""
        hierarchical = run_alltoall("hierarchical", pmap, msg_bytes=2048, keep_job=False,
                                    validate=False)
        multileader = run_alltoall("multileader", pmap, msg_bytes=2048, procs_per_leader=4,
                                   keep_job=False, validate=False)
        node_aware = run_alltoall("node-aware", pmap, msg_bytes=2048, keep_job=False, validate=False)
        assert multileader.elapsed < hierarchical.elapsed
        assert node_aware.elapsed < hierarchical.elapsed

    def test_node_aware_inter_node_phase_dominates(self, pmap):
        outcome = run_alltoall("node-aware", pmap, msg_bytes=1024, keep_job=False, validate=False)
        assert outcome.phase_times[PHASE_INTER] > outcome.phase_times[PHASE_INTRA]
