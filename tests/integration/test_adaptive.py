"""End-to-end tests of trace ingestion + adaptive per-phase selection.

Pins the headline claim of the phased subsystem: on a tapered dragonfly
shared with a background tenant, per-phase (adaptive) selection beats the
single static pick — the winner *flips* between the skewed dispatch phase
and the dense low-byte combine phase.  The pinned fixture is the shipped
sample MoE routing trace, so the whole chain (parse -> normalise ->
select -> simulate) is exercised against frozen expectations.
"""

import pytest

from repro.bench.figures import (
    ADAPTIVE_FABRIC,
    adaptive_demo_workload,
    figure_adaptive,
)
from repro.core.selection import select_phased
from repro.ingest import ingest_trace
from repro.machine.systems import dane
from repro.netsim.fabric import parse_fabric
from repro.runtime import ResultStore, SweepExecutor

import pathlib

SAMPLE_TRACE = str(
    pathlib.Path(__file__).resolve().parents[2]
    / "examples" / "traces" / "moe_routing_sample.jsonl"
)
#: Content digest of the ingested sample trace: moves only if the trace
#: file or the ingestion chain changes semantics.
SAMPLE_DIGEST = "4c816d482261662bb15c7b6c91655ba8387ce60c76fb8408a276525ea3011b7c"


def _cluster():
    return dane(8).with_fabric(parse_fabric(ADAPTIVE_FABRIC))


class TestSampleTraceFixture:
    def test_ingested_digest_is_pinned(self):
        workload = ingest_trace(SAMPLE_TRACE)
        assert workload.digest() == SAMPLE_DIGEST
        assert workload.nprocs == 16
        assert workload.names == (
            "layer0/dispatch",
            "layer0/combine",
            "layer1/dispatch",
            "layer1/combine",
        )

    def test_winner_flips_on_the_sample_trace(self):
        workload = ingest_trace(SAMPLE_TRACE)
        selection = select_phased(_cluster(), 4, workload)
        assert selection.is_flip, (
            "adaptive selection must deviate from the static pick on the "
            "pinned sample trace"
        )
        assert selection.adaptive_seconds < selection.static_seconds
        # The flip's shape is pinned too: the skewed dispatch phases keep
        # the static (flat) winner, the dense tiny combine phases switch
        # to the hierarchical candidate.
        per_phase = [choice.candidate.algorithm for choice in selection.choices]
        assert per_phase[0] == "nonblocking"
        assert per_phase[2] == "node-aware"
        assert per_phase[0] != per_phase[2]


class TestAdaptiveFigure:
    def test_adaptive_beats_static_under_interference(self):
        figure = figure_adaptive()
        by_label = {series.label: series for series in figure.series}
        assert set(by_label) == {"Static", "Adaptive"}
        static_total = by_label["Static"].points[-1].seconds
        adaptive_total = by_label["Adaptive"].points[-1].seconds
        assert adaptive_total < static_total, (
            f"adaptive ({adaptive_total:.3e} s) must beat static "
            f"({static_total:.3e} s) on the interference scenario"
        )

    def test_figure_is_deterministic_across_engine_jobs(self):
        def rows(figure):
            return [
                (series.label, point.x, point.seconds)
                for series in figure.series
                for point in series.points
            ]

        workload = adaptive_demo_workload(16)
        reference = figure_adaptive(workload=workload)
        for engine_jobs in (2, 4):
            assert rows(figure_adaptive(workload=workload, engine_jobs=engine_jobs)) == rows(reference)

    def test_cached_rerun_simulates_nothing(self, tmp_path):
        workload = adaptive_demo_workload(16)
        store = ResultStore(tmp_path / "cache")
        with SweepExecutor(1, store=store) as executor:
            first = figure_adaptive(workload=workload, executor=executor)
            simulated_first = executor.executed_points
            cached_first = executor.cached_points
        assert simulated_first > 0
        with SweepExecutor(1, store=store) as executor:
            second = figure_adaptive(workload=workload, executor=executor)
            simulated_second = executor.executed_points
            cached_second = executor.cached_points
        assert simulated_second == 0, (
            "a cached rerun of the adaptive figure must simulate nothing"
        )
        assert cached_second == simulated_first + cached_first

        def rows(figure):
            return [
                (series.label, point.x, point.seconds)
                for series in figure.series
                for point in series.points
            ]

        assert rows(first) == rows(second)


class TestAdaptiveCli:
    def test_cli_ingest_reports_digest(self, capsys):
        from repro.cli import main

        assert main(["ingest", SAMPLE_TRACE]) == 0
        out = capsys.readouterr().out
        assert SAMPLE_DIGEST in out
        assert "moe-routing" in out

    def test_cli_ingest_store_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "traces")
        assert main(["ingest", SAMPLE_TRACE, "--store", store, "--name", "moe"]) == 0
        capsys.readouterr()
        assert main(["ingest", "--list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "moe" in out and SAMPLE_DIGEST[:12] in out

    def test_cli_select_phases_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        # Ingest the sample trace to its canonical JSON, then feed that to
        # the adaptive selector: the full CLI chain of docs/TRACES.md.
        out = str(tmp_path / "moe.json")
        assert main(["ingest", SAMPLE_TRACE, "--out", out]) == 0
        capsys.readouterr()
        code = main([
            "select", "--system", "dane", "--nodes", "4", "--ppn", "4",
            "--engine", "simulate", "--fabric", ADAPTIVE_FABRIC,
            "--phases", out,
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Adaptive per-phase selection" in printed
        assert "static pick" in printed

    def test_cli_select_phases_rejects_raw_trace(self):
        from repro.cli import main

        # --phases takes an *ingested* workload, not a raw trace log.
        with pytest.raises(SystemExit):
            main([
                "select", "--system", "dane", "--nodes", "4", "--ppn", "4",
                "--phases", SAMPLE_TRACE,
            ])
