"""Fabric contention end-to-end: timing identities, ordering flip, verify sweep.

Three properties of the inter-node fabric layer that only show end-to-end:

* the full-bisection default and an ``oversubscription=1`` fat-tree are the
  *same machine* — simulated timings must be bit-identical, and self /
  intra-node traffic must never reserve a fabric link;
* a contended fabric must change which algorithm wins a skewed workload
  (the acceptance demo of the fabric subsystem): flat non-blocking wins on
  full bisection, node-aware aggregation wins on a tapered dragonfly;
* the differential conformance sweep must stay green over fabric-enabled
  scenarios — contention shifts timings, never delivered bytes.
"""

import pytest

from repro.bench.figures import figure_contention
from repro.core.runner import run_alltoall, run_workload
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system, tiny_cluster
from repro.netsim.fabric import parse_fabric
from repro.verify import verify_seed
from repro.workloads import make_pattern

_FLIP_FABRIC = "dragonfly:hosts=1,routers=2,taper=8"


def _elapsed(algorithm, fabric, *, nodes=4, ppn=4, msg_bytes=256):
    cluster = get_system("dane", nodes, fabric=fabric)
    pmap = ProcessMap(cluster, ppn=ppn, num_nodes=nodes)
    matrix = make_pattern("skewed-moe", pmap.nprocs, msg_bytes, seed=0)
    return run_workload(algorithm, pmap, matrix).elapsed


class TestTimingIdentities:
    def test_oversub_one_fat_tree_equals_full_bisection(self):
        """A 1:1 fat-tree is non-blocking: timings must be bit-identical."""
        plain = _elapsed("nonblocking", None)
        nonblocking_tree = _elapsed("nonblocking", parse_fabric("fat-tree:oversub=1"))
        assert plain == nonblocking_tree

    def test_single_node_job_never_touches_the_fabric(self):
        cluster = tiny_cluster(num_nodes=1, fabric=parse_fabric("fat-tree:hosts=1,oversub=4"))
        pmap = ProcessMap(cluster, ppn=4, num_nodes=1)
        outcome = run_alltoall("pairwise", pmap, 64)
        assert outcome.correct
        assert outcome.job.fabric_statistics == []

    def test_self_and_intra_node_traffic_never_reserve_links(self):
        # All traffic stays on-node (diagonal blocks): every fabric link of
        # a heavily contended tree must end the job with zero reservations.
        cluster = tiny_cluster(num_nodes=2, fabric=parse_fabric("fat-tree:hosts=1,oversub=8"))
        pmap = ProcessMap(cluster, ppn=4, num_nodes=2)
        matrix = make_pattern("block-diagonal", 8, 64, group_size=4)
        outcome = run_workload("pairwise", pmap, matrix)
        assert outcome.correct
        stats = outcome.job.fabric_statistics
        assert stats and all(entry["messages"] == 0 for entry in stats)

    def test_contended_fabric_only_delays(self):
        fast = _elapsed("nonblocking", None)
        slow = _elapsed("nonblocking", parse_fabric("fat-tree:hosts=2,oversub=8"))
        assert slow > fast


class TestOrderingFlip:
    def test_contention_flips_the_winner_on_a_skewed_workload(self):
        """The fabric subsystem's acceptance demo, pinned as a test."""
        dragonfly = parse_fabric(_FLIP_FABRIC)
        assert _elapsed("nonblocking", None) < _elapsed("node-aware", None)
        assert _elapsed("node-aware", dragonfly) < _elapsed("nonblocking", dragonfly)

    def test_contention_figure_shows_the_flip(self):
        fig = figure_contention(
            get_system("dane", 4), ppn=4, engine="simulate", msg_bytes=256
        )
        nonblocking = fig.get("Nonblocking")
        node_aware = fig.get("Node-Aware")
        # Ladder index 0 = full bisection, last index = tapered dragonfly.
        first, last = 0, len(fig.xs()) - 1
        assert nonblocking.at(first).seconds < node_aware.at(first).seconds
        assert node_aware.at(last).seconds < nonblocking.at(last).seconds


class TestFabricVerifySweep:
    @pytest.mark.parametrize("seed", [2025, 2031])
    def test_differential_sweep_passes_with_a_fabric(self, seed):
        record = verify_seed(seed, max_ranks=12, fabric=parse_fabric("fat-tree:hosts=2,oversub=4"))
        assert record.ok, [f.detail for f in record.failures]
        assert record.verified
