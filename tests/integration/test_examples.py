"""Smoke tests: every example script runs to completion and prints its report."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLES = [
    ("quickstart.py", ["Simulated machine", "Modelled machine"]),
    ("fft_transpose.py", ["matched numpy.fft.fft2"]),
    ("matrix_transpose.py", ["matrix.T exactly"]),
    ("moe_shuffle.py", ["routing verified", "Best algorithm per hidden dimension"]),
    ("algorithm_selection.py", ["Model-driven tuning table", "Measurement-driven table"]),
]


@pytest.mark.parametrize("script,expected_phrases", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected_phrases):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    # Forward the package path explicitly so the smoke tests also pass when
    # pytest found repro via the pyproject `pythonpath` setting rather than
    # an exported PYTHONPATH.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=600, env=env
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for phrase in expected_phrases:
        assert phrase in completed.stdout, f"{script} output missing {phrase!r}"
