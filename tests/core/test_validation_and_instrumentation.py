"""Tests for repro.core.validation and repro.core.instrumentation."""

import numpy as np
import pytest

from repro.core.instrumentation import PHASE_GATHER, PHASE_INTER, PhaseRecorder
from repro.core.validation import (
    alltoall_reference,
    expected_alltoall_result,
    validate_alltoall_results,
)
from repro.errors import AlgorithmError, BufferSizeError
from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd
from repro.utils.buffers import make_alltoall_sendbuf


class TestExpectedResult:
    def test_matches_bruteforce_construction(self):
        nprocs, block = 5, 3
        for rank in range(nprocs):
            expected = expected_alltoall_result(rank, nprocs, block)
            brute = np.concatenate(
                [make_alltoall_sendbuf(src, nprocs, block).reshape(nprocs, block)[rank]
                 for src in range(nprocs)]
            )
            assert np.array_equal(expected, brute)

    def test_uint8_consistency_with_sendbuf(self):
        nprocs, block = 9, 4
        expected = expected_alltoall_result(2, nprocs, block, dtype=np.uint8)
        brute = np.concatenate(
            [make_alltoall_sendbuf(src, nprocs, block, dtype=np.uint8).reshape(nprocs, block)[2]
             for src in range(nprocs)]
        )
        assert np.array_equal(expected, brute)

    def test_negative_block_rejected(self):
        with pytest.raises(BufferSizeError):
            expected_alltoall_result(0, 4, -1)


class TestAlltoallReference:
    def test_transposition(self):
        sendbufs = [make_alltoall_sendbuf(r, 4, 2) for r in range(4)]
        recvbufs = alltoall_reference(sendbufs)
        for rank, buf in enumerate(recvbufs):
            assert np.array_equal(buf, expected_alltoall_result(rank, 4, 2))

    def test_double_application_is_identity_for_symmetric_layout(self):
        rng = np.random.default_rng(0)
        sendbufs = [rng.integers(0, 100, size=12) for _ in range(4)]
        once = alltoall_reference(sendbufs)
        twice = alltoall_reference(once)
        # Applying the block transposition twice returns the original data.
        for original, roundtrip in zip(sendbufs, twice):
            assert np.array_equal(original, roundtrip)

    def test_empty_rejected(self):
        with pytest.raises(BufferSizeError):
            alltoall_reference([])

    def test_indivisible_rejected(self):
        with pytest.raises(BufferSizeError):
            alltoall_reference([np.zeros(5), np.zeros(5)])


class TestValidateResults:
    def test_accepts_correct_results(self):
        nprocs, block = 6, 2
        results = [expected_alltoall_result(r, nprocs, block) for r in range(nprocs)]
        assert validate_alltoall_results(results, nprocs, block)

    def test_rejects_corrupted_value(self):
        nprocs, block = 6, 2
        results = [expected_alltoall_result(r, nprocs, block) for r in range(nprocs)]
        results[3][4] += 1
        assert not validate_alltoall_results(results, nprocs, block)

    def test_rejects_missing_rank(self):
        nprocs, block = 4, 2
        results = [expected_alltoall_result(r, nprocs, block) for r in range(nprocs)]
        results[1] = None
        assert not validate_alltoall_results(results, nprocs, block)

    def test_wrong_count_rejected(self):
        with pytest.raises(BufferSizeError):
            validate_alltoall_results([np.zeros(4)], 2, 2)

    def test_wrong_size_rejected(self):
        nprocs, block = 4, 2
        results = [expected_alltoall_result(r, nprocs, block) for r in range(nprocs)]
        results[0] = np.zeros(3)
        with pytest.raises(BufferSizeError):
            validate_alltoall_results(results, nprocs, block)


class TestPhaseRecorder:
    def test_records_elapsed_time(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=2)

        def program(ctx):
            from repro.simmpi.ops import Delay

            phases = PhaseRecorder(ctx)
            phases.start(PHASE_GATHER)
            yield Delay(1.0e-4)
            phases.stop(PHASE_GATHER)
            phases.start(PHASE_INTER)
            yield Delay(2.0e-4)
            phases.stop(PHASE_INTER)

        result = run_spmd(pmap, program)
        assert result.phase_time(PHASE_GATHER) == pytest.approx(1.0e-4, rel=1e-6)
        assert result.phase_time(PHASE_INTER) == pytest.approx(2.0e-4, rel=1e-6)

    def test_phases_accumulate(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=1)

        def program(ctx):
            from repro.simmpi.ops import Delay

            phases = PhaseRecorder(ctx)
            for _ in range(3):
                phases.start("work")
                yield Delay(1.0e-5)
                phases.stop("work")

        result = run_spmd(pmap, program)
        assert result.phase_time("work") == pytest.approx(3.0e-5, rel=1e-6)

    def test_nested_phases_rejected(self, two_node_pmap):
        def program(ctx):
            phases = PhaseRecorder(ctx)
            phases.start("a")
            phases.start("b")
            return
            yield  # pragma: no cover

        with pytest.raises(AlgorithmError):
            run_spmd(two_node_pmap, program)

    def test_stopping_wrong_phase_rejected(self, two_node_pmap):
        def program(ctx):
            phases = PhaseRecorder(ctx)
            phases.start("a")
            phases.stop("b")
            return
            yield  # pragma: no cover

        with pytest.raises(AlgorithmError):
            run_spmd(two_node_pmap, program)


class TestPhaseContextManager:
    def test_with_block_records_like_start_stop(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=2)

        def program(ctx):
            from repro.simmpi.ops import Delay

            phases = PhaseRecorder(ctx)
            with phases.phase(PHASE_GATHER):
                yield Delay(1.0e-4)
            with phases.phase(PHASE_INTER):
                yield Delay(2.0e-4)

        result = run_spmd(pmap, program)
        assert result.phase_time(PHASE_GATHER) == pytest.approx(1.0e-4, rel=1e-6)
        assert result.phase_time(PHASE_INTER) == pytest.approx(2.0e-4, rel=1e-6)

    def test_with_blocks_accumulate_and_mix_with_start_stop(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=1)

        def program(ctx):
            from repro.simmpi.ops import Delay

            phases = PhaseRecorder(ctx)
            with phases.phase("work"):
                yield Delay(1.0e-5)
            phases.start("work")          # legacy API still composes
            yield Delay(1.0e-5)
            phases.stop("work")
            with phases.phase("work"):
                yield Delay(1.0e-5)

        result = run_spmd(pmap, program)
        assert result.phase_time("work") == pytest.approx(3.0e-5, rel=1e-6)

    def test_nested_with_blocks_rejected(self, two_node_pmap):
        def program(ctx):
            phases = PhaseRecorder(ctx)
            with phases.phase("a"):
                with phases.phase("b"):
                    pass
            return
            yield  # pragma: no cover

        with pytest.raises(AlgorithmError):
            run_spmd(two_node_pmap, program)

    def test_raising_block_discards_open_phase(self):
        recorded = []

        class Ctx:
            rank = 0
            now = 0.0

            class _engine:
                sink = None

            def add_timing(self, phase, seconds):
                recorded.append((phase, seconds))

        phases = PhaseRecorder(Ctx())
        with pytest.raises(RuntimeError):
            with phases.phase("a"):
                raise RuntimeError("boom")
        # The failed phase recorded nothing and the recorder stays usable.
        assert recorded == []
        assert phases.open_phase is None
        with phases.phase("b"):
            pass
        assert [name for name, _ in recorded] == ["b"]
