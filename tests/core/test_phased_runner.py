"""Tests for phased runs: PhasedJob, run_phased, job views and select_phased."""

import numpy as np
import pytest

from repro.core import (
    PhasedJob,
    run_phased,
    run_phased_workload,
)
from repro.core.selection import CandidateConfig, select_phased
from repro.errors import ConfigurationError
from repro.machine import ProcessMap, tiny_cluster
from repro.netsim.fabric import parse_fabric
from repro.workloads import Phase, PhasedWorkload, skewed_moe, uniform


def _workload(nprocs: int, seed: int = 0) -> PhasedWorkload:
    return PhasedWorkload(
        (
            Phase("dispatch", skewed_moe(nprocs, 128, seed=seed), repeats=2),
            Phase("combine", uniform(nprocs, 8)),
        )
    )


class TestPhasedJob:
    def test_broadcasts_single_algorithm_to_all_phases(self):
        job = PhasedJob.make(_workload(4), "nonblocking", 2)
        assert job.algorithms == (("nonblocking", ()), ("nonblocking", ()))

    def test_accepts_name_options_pairs(self):
        job = PhasedJob.make(_workload(4), ("node-aware", {"inner": "nonblocking"}), 2)
        assert job.algorithms[0] == ("node-aware", (("inner", "nonblocking"),))

    def test_accepts_candidate_configs(self):
        candidate = CandidateConfig.make("node-aware", inner="nonblocking")
        job = PhasedJob.make(_workload(4), candidate, 2)
        assert job.algorithms[1][0] == "node-aware"

    def test_per_phase_sequence_must_match_phase_count(self):
        with pytest.raises(ConfigurationError):
            PhasedJob.make(_workload(4), ["nonblocking"], 2)

    def test_rejects_uninterpretable_entries(self):
        with pytest.raises(ConfigurationError):
            PhasedJob.make(_workload(4), [42, 43], 2)

    def test_describe_assignment_names_phases(self):
        job = PhasedJob.make(_workload(4), ["pairwise", "nonblocking"], 2)
        assert job.describe_assignment() == "dispatch=pairwise; combine=nonblocking"


class TestRunPhasedSingleJob:
    def test_runs_phases_back_to_back(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=2)
        outcome = run_phased_workload("nonblocking", pmap, _workload(4))
        assert outcome.correct
        assert len(outcome.jobs) == 1
        job = outcome.jobs[0]
        assert [p.name for p in job.phases] == ["dispatch", "combine"]
        assert all(p.correct for p in job.phases)
        assert outcome.elapsed > 0.0

    def test_phase_labels_and_totals_recorded(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=2)
        outcome = run_phased_workload("nonblocking", pmap, _workload(4))
        assert "phase0:dispatch" in outcome.phase_times
        assert "phase1:combine" in outcome.phase_times
        assert "job:total" in outcome.phase_times
        total = outcome.phase_times["job:total"]
        assert total == pytest.approx(outcome.elapsed)

    def test_rejects_rank_count_mismatch(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=2)
        with pytest.raises(ConfigurationError):
            run_phased_workload("nonblocking", pmap, _workload(8))

    def test_bit_identical_across_engine_jobs(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=4), ppn=2)
        workload = _workload(8)
        reference = run_phased_workload("node-aware", pmap, workload)
        for engine_jobs in (2, 4):
            outcome = run_phased_workload(
                "node-aware", pmap, workload, engine_jobs=engine_jobs
            )
            assert outcome.elapsed == reference.elapsed
            assert outcome.phase_times == reference.phase_times
            for got, want in zip(outcome.job.results, reference.job.results):
                for a, b in zip(got, want):
                    assert np.array_equal(a, b)


class TestRunPhasedMultiJob:
    def _pmap(self, num_nodes=4, ppn=2):
        cluster = tiny_cluster(num_nodes=num_nodes).with_fabric(
            parse_fabric("dragonfly:hosts=1,routers=2,taper=4")
        )
        return ProcessMap(cluster, ppn=ppn)

    def test_two_jobs_share_one_timeline(self):
        pmap = self._pmap()
        jobs = [
            PhasedJob.make(_workload(4, seed=0), "nonblocking", 2),
            PhasedJob.make(_workload(4, seed=1), "pairwise", 2),
        ]
        outcome = run_phased(jobs, pmap)
        assert outcome.correct
        assert len(outcome.jobs) == 2
        assert "job0/phase0:dispatch" in outcome.phase_times
        assert "job1/phase1:combine" in outcome.phase_times
        assert outcome.elapsed == pytest.approx(
            max(job.elapsed for job in outcome.jobs)
        )

    def test_interference_slows_a_tenant_down(self):
        # The same job alone on the machine vs sharing the fabric with a
        # busy neighbour: contention must never make it *faster*.
        pmap = self._pmap()
        alone = run_phased(
            [PhasedJob.make(_workload(4, seed=0), "nonblocking", 2)],
            ProcessMap(pmap.cluster, ppn=2, num_nodes=2),
        )
        shared = run_phased(
            [
                PhasedJob.make(_workload(4, seed=0), "nonblocking", 2),
                PhasedJob.make(_workload(4, seed=1), "nonblocking", 2),
            ],
            pmap,
        )
        assert shared.jobs[0].elapsed >= alone.jobs[0].elapsed

    def test_node_counts_must_sum_to_machine(self):
        pmap = self._pmap()
        with pytest.raises(ConfigurationError):
            run_phased([PhasedJob.make(_workload(4), "nonblocking", 2)], pmap)

    def test_job_rank_count_must_match_slice(self):
        pmap = self._pmap()
        with pytest.raises(ConfigurationError):
            run_phased(
                [
                    PhasedJob.make(_workload(8), "nonblocking", 2),
                    PhasedJob.make(_workload(4), "nonblocking", 2),
                ],
                pmap,
            )

    def test_multi_job_bit_identical_across_engine_jobs(self):
        pmap = self._pmap()
        jobs = [
            PhasedJob.make(_workload(4, seed=0), "nonblocking", 2),
            PhasedJob.make(_workload(4, seed=1), "node-aware", 2),
        ]
        reference = run_phased(jobs, pmap)
        for engine_jobs in (2, 4):
            outcome = run_phased(jobs, pmap, engine_jobs=engine_jobs)
            assert outcome.elapsed == reference.elapsed
            assert outcome.phase_times == reference.phase_times


class TestSelectPhased:
    def test_adaptive_never_beats_static_by_construction(self):
        selection = select_phased(tiny_cluster(num_nodes=2), 2, _workload(4))
        assert selection.adaptive_seconds <= selection.static_seconds
        assert len(selection.choices) == 2
        assert selection.static in selection.candidates

    def test_assignment_matches_choices(self):
        selection = select_phased(tiny_cluster(num_nodes=2), 2, _workload(4))
        assert selection.assignment == [c.candidate for c in selection.choices]
        assert selection.is_flip == any(
            c.candidate != selection.static for c in selection.choices
        )

    def test_rejects_indivisible_rank_count(self):
        with pytest.raises(ConfigurationError):
            select_phased(tiny_cluster(num_nodes=2), 3, _workload(4))

    def test_inapplicable_candidates_are_skipped(self):
        candidates = [
            CandidateConfig.make("nonblocking"),
            CandidateConfig.make("node-aware", procs_per_group=3),  # ppn=2: invalid
        ]
        selection = select_phased(
            tiny_cluster(num_nodes=2), 2, _workload(4), candidates=candidates
        )
        assert [c.describe() for c in selection.skipped] == [candidates[1].describe()]
        assert selection.candidates == [candidates[0]]

    def test_all_inapplicable_raises(self):
        candidates = [CandidateConfig.make("node-aware", procs_per_group=3)]
        with pytest.raises(ConfigurationError):
            select_phased(
                tiny_cluster(num_nodes=2), 2, _workload(4), candidates=candidates
            )
