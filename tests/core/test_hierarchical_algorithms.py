"""Correctness and structure tests of the hierarchical / node-aware / locality-aware /
multi-leader + node-aware algorithms (Algorithms 3-5 of the paper)."""

import numpy as np
import pytest

from repro.core import get_algorithm, run_alltoall
from repro.core.instrumentation import (
    PHASE_GATHER,
    PHASE_INTER,
    PHASE_INTRA,
    PHASE_SCATTER,
)
from repro.errors import ConfigurationError
from repro.machine import ProcessMap, tiny_cluster


@pytest.fixture(scope="module")
def pmap():
    # 4 nodes x 8 ranks: large enough for every group size {1, 2, 4, 8}.
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=8)


class TestHierarchical:
    @pytest.mark.parametrize("inner", ["pairwise", "nonblocking", "bruck"])
    def test_single_leader_correct(self, pmap, inner):
        assert run_alltoall("hierarchical", pmap, msg_bytes=16, inner=inner).correct

    @pytest.mark.parametrize("ppl", [1, 2, 4, 8])
    def test_multileader_group_sizes(self, pmap, ppl):
        assert run_alltoall("hierarchical", pmap, msg_bytes=16, procs_per_leader=ppl).correct

    def test_large_messages(self, pmap):
        assert run_alltoall("hierarchical", pmap, msg_bytes=2048, procs_per_leader=4).correct

    def test_single_node(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=8)
        assert run_alltoall("hierarchical", pmap, msg_bytes=16, procs_per_leader=4).correct

    def test_invalid_group_size_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            run_alltoall("hierarchical", pmap, msg_bytes=16, procs_per_leader=3)

    def test_phase_breakdown_present(self, pmap):
        outcome = run_alltoall("hierarchical", pmap, msg_bytes=64)
        for phase in (PHASE_GATHER, PHASE_INTER, PHASE_SCATTER):
            assert outcome.phase_times.get(phase, 0.0) > 0.0

    def test_fewer_inter_node_messages_than_flat(self, pmap):
        hierarchical = run_alltoall("hierarchical", pmap, msg_bytes=16)
        flat = run_alltoall("pairwise", pmap, msg_bytes=16)
        assert hierarchical.inter_node_messages < flat.inter_node_messages

    def test_single_leader_minimises_inter_node_messages(self, pmap):
        """One leader per node sends exactly one message per remote node."""
        outcome = run_alltoall("hierarchical", pmap, msg_bytes=16)
        nodes = pmap.num_nodes
        assert outcome.inter_node_messages == nodes * (nodes - 1)

    def test_multileader_alias_registered(self, pmap):
        algo = get_algorithm("multileader", procs_per_leader=2)
        assert algo.procs_per_leader == 2
        assert run_alltoall(algo, pmap, msg_bytes=16).correct


class TestNodeAware:
    @pytest.mark.parametrize("inner", ["pairwise", "nonblocking", "bruck"])
    def test_correct_with_each_inner_exchange(self, pmap, inner):
        assert run_alltoall("node-aware", pmap, msg_bytes=16, inner=inner).correct

    def test_large_messages(self, pmap):
        assert run_alltoall("node-aware", pmap, msg_bytes=4096).correct

    def test_inter_node_message_count(self, pmap):
        """Each rank sends one message to each remote node (to its same-local-rank peer)."""
        outcome = run_alltoall("node-aware", pmap, msg_bytes=16)
        expected = pmap.nprocs * (pmap.num_nodes - 1)
        assert outcome.inter_node_messages == expected

    def test_inter_node_bytes_match_flat_volume(self, pmap):
        """Node-aware aggregation moves the same inter-node volume, in fewer messages."""
        node_aware = run_alltoall("node-aware", pmap, msg_bytes=32)
        flat = run_alltoall("pairwise", pmap, msg_bytes=32)
        assert node_aware.inter_node_bytes == flat.inter_node_bytes
        assert node_aware.inter_node_messages < flat.inter_node_messages

    def test_phase_breakdown_present(self, pmap):
        outcome = run_alltoall("node-aware", pmap, msg_bytes=64)
        assert outcome.phase_times.get(PHASE_INTER, 0.0) > 0.0
        assert outcome.phase_times.get(PHASE_INTRA, 0.0) > 0.0

    def test_two_nodes(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=8)
        assert run_alltoall("node-aware", pmap, msg_bytes=16).correct


class TestLocalityAware:
    @pytest.mark.parametrize("ppg", [1, 2, 4, 8])
    def test_group_sizes(self, pmap, ppg):
        assert run_alltoall("locality-aware", pmap, msg_bytes=16, procs_per_group=ppg).correct

    @pytest.mark.parametrize("inner", ["pairwise", "nonblocking"])
    def test_inner_exchanges(self, pmap, inner):
        assert run_alltoall(
            "locality-aware", pmap, msg_bytes=16, procs_per_group=4, inner=inner
        ).correct

    def test_group_of_whole_node_equals_node_aware_traffic(self, pmap):
        locality = run_alltoall("locality-aware", pmap, msg_bytes=16, procs_per_group=pmap.ppn)
        node_aware = run_alltoall("node-aware", pmap, msg_bytes=16)
        assert locality.inter_node_messages == node_aware.inter_node_messages
        assert locality.inter_node_bytes == node_aware.inter_node_bytes

    def test_smaller_groups_send_more_inter_node_messages(self, pmap):
        small_groups = run_alltoall("locality-aware", pmap, msg_bytes=16, procs_per_group=2)
        whole_node = run_alltoall("node-aware", pmap, msg_bytes=16)
        assert small_groups.inter_node_messages > whole_node.inter_node_messages
        # ... while the aggregate inter-node volume stays the same.
        assert small_groups.inter_node_bytes == whole_node.inter_node_bytes

    def test_invalid_group_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            run_alltoall("locality-aware", pmap, msg_bytes=16, procs_per_group=5)

    def test_large_messages(self, pmap):
        assert run_alltoall("locality-aware", pmap, msg_bytes=2048, procs_per_group=4).correct


class TestMultiLeaderNodeAware:
    @pytest.mark.parametrize("ppl", [1, 2, 4, 8])
    def test_group_sizes(self, pmap, ppl):
        assert run_alltoall(
            "multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=ppl
        ).correct

    @pytest.mark.parametrize("inner", ["pairwise", "nonblocking", "bruck"])
    def test_inner_exchanges(self, pmap, inner):
        assert run_alltoall(
            "multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=4, inner=inner
        ).correct

    def test_large_messages(self, pmap):
        assert run_alltoall(
            "multileader-node-aware", pmap, msg_bytes=2048, procs_per_leader=4
        ).correct

    def test_two_nodes(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=8)
        assert run_alltoall("multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=4).correct

    def test_single_node(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=8)
        assert run_alltoall("multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=2).correct

    def test_inter_node_message_count(self, pmap):
        """Each leader sends exactly one message per remote node (Section 3.3's key property)."""
        ppl = 4
        outcome = run_alltoall("multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=ppl)
        leaders = pmap.nprocs // ppl
        expected = leaders * (pmap.num_nodes - 1)
        assert outcome.inter_node_messages == expected

    def test_fewer_inter_node_messages_than_node_aware(self, pmap):
        mlna = run_alltoall("multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=4)
        node_aware = run_alltoall("node-aware", pmap, msg_bytes=16)
        assert mlna.inter_node_messages < node_aware.inter_node_messages

    def test_full_phase_breakdown(self, pmap):
        outcome = run_alltoall("multileader-node-aware", pmap, msg_bytes=64, procs_per_leader=4)
        for phase in (PHASE_GATHER, PHASE_INTER, PHASE_INTRA, PHASE_SCATTER):
            assert outcome.phase_times.get(phase, 0.0) > 0.0, phase

    def test_invalid_group_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            run_alltoall("multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=3)
