"""Tests for dynamic algorithm selection (repro.core.selection)."""

import pytest

from repro.core.selection import (
    AlgorithmSelector,
    CandidateConfig,
    SelectionTable,
    build_selection_table,
    default_candidates,
)
from repro.errors import ConfigurationError
from repro.machine.systems import dane, tiny_cluster
from repro.runtime import ResultStore, SweepExecutor


class TestCandidateConfig:
    def test_make_sorts_options(self):
        a = CandidateConfig.make("x", b=2, a=1)
        b = CandidateConfig.make("x", a=1, b=2)
        assert a == b

    def test_as_kwargs_roundtrip(self):
        candidate = CandidateConfig.make("locality-aware", procs_per_group=4)
        assert candidate.as_kwargs() == {"procs_per_group": 4}

    def test_describe(self):
        assert CandidateConfig.make("node-aware").describe() == "node-aware"
        assert "procs_per_leader=8" in CandidateConfig.make("multileader", procs_per_leader=8).describe()


class TestDefaultCandidates:
    def test_includes_novel_algorithms(self):
        names = {c.algorithm for c in default_candidates(112)}
        assert {"system-mpi", "node-aware", "locality-aware", "multileader-node-aware"} <= names

    def test_skips_group_sizes_that_do_not_divide(self):
        candidates = default_candidates(6)
        group_sizes = {
            dict(c.options).get("procs_per_group") for c in candidates if c.algorithm == "locality-aware"
        }
        assert group_sizes == set() or group_sizes <= {1, 2, 3, 6}


class TestAlgorithmSelector:
    @pytest.fixture(scope="class")
    def selector(self):
        return AlgorithmSelector(dane(32), ppn=112)

    def test_predictions_positive(self, selector):
        candidate = CandidateConfig.make("node-aware")
        assert selector.predict(candidate, num_nodes=32, msg_bytes=1024) > 0.0

    def test_selects_small_message_algorithm(self, selector):
        best, predicted = selector.select(num_nodes=32, msg_bytes=4)
        assert predicted > 0.0
        # At 4 bytes the paper's winner is the multi-leader + node-aware algorithm.
        assert best.algorithm == "multileader-node-aware"

    def test_selects_aggregating_algorithm_for_large_messages(self, selector):
        best, _ = selector.select(num_nodes=32, msg_bytes=4096)
        assert best.algorithm in ("node-aware", "locality-aware")

    def test_never_selects_single_leader_hierarchical_at_scale(self, selector):
        for size in (4, 64, 1024, 4096):
            best, _ = selector.select(num_nodes=32, msg_bytes=size)
            assert best.algorithm != "hierarchical"

    def test_selection_map_covers_all_sizes(self, selector):
        mapping = selector.selection_map(num_nodes=32, msg_sizes=[4, 64, 1024])
        assert set(mapping) == {4, 64, 1024}
        assert all(isinstance(v, str) and v for v in mapping.values())

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            AlgorithmSelector(tiny_cluster(), ppn=8, candidates=[])


class TestSelectionTable:
    def test_records_best_only(self):
        table = SelectionTable()
        table.record(32, 64, "slow", 2.0)
        table.record(32, 64, "fast", 1.0)
        table.record(32, 64, "slower", 3.0)
        assert table.best(32, 64) == "fast"

    def test_nearest_size_lookup(self):
        table = SelectionTable()
        table.record(32, 16, "small-algo", 1.0)
        table.record(32, 4096, "large-algo", 1.0)
        assert table.best(32, 32) == "small-algo"
        assert table.best(32, 2048) == "large-algo"

    def test_missing_node_count_rejected(self):
        table = SelectionTable()
        table.record(8, 64, "algo", 1.0)
        with pytest.raises(ConfigurationError):
            table.best(16, 64)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectionTable().record(8, 64, "algo", -1.0)

    def test_as_rows_sorted(self):
        table = SelectionTable()
        table.record(8, 128, "b", 1.0)
        table.record(2, 4, "a", 1.0)
        rows = table.as_rows()
        assert rows[0][:2] == (2, 4)
        assert rows[1][:2] == (8, 128)

    def test_sizes_for(self):
        table = SelectionTable()
        table.record(4, 64, "x", 1.0)
        table.record(4, 8, "y", 1.0)
        table.record(2, 16, "z", 1.0)
        assert table.sizes_for(4) == [8, 64]


class TestSelectionTableTieBreaking:
    def test_exact_match_wins_over_neighbours(self):
        table = SelectionTable()
        table.record(32, 16, "small-algo", 1.0)
        table.record(32, 64, "exact-algo", 1.0)
        table.record(32, 256, "large-algo", 1.0)
        assert table.best(32, 64) == "exact-algo"

    def test_log_distance_tie_prefers_smaller_size(self):
        """32 is log-equidistant from 16 and 64; the smaller measured size wins."""
        table = SelectionTable()
        table.record(32, 16, "small-algo", 1.0)
        table.record(32, 64, "large-algo", 1.0)
        assert table.best(32, 32) == "small-algo"

    def test_lookup_below_smallest_measured_size(self):
        table = SelectionTable()
        table.record(8, 64, "only-algo", 1.0)
        table.record(8, 4096, "big-algo", 1.0)
        assert table.best(8, 1) == "only-algo"

    def test_lookup_above_largest_measured_size(self):
        table = SelectionTable()
        table.record(8, 16, "small-algo", 1.0)
        table.record(8, 64, "big-algo", 1.0)
        assert table.best(8, 10**6) == "big-algo"

    def test_nearest_is_logarithmic_not_linear(self):
        """48 is linearly closer to 64 but logarithmically closer to... still 64;
        96 is linearly closer to 64 (distance 32) than to 256 (160) and also
        log-closer to 64 — but 160 is log-closer to 256 despite the linear
        distance favouring neither clearly."""
        table = SelectionTable()
        table.record(4, 64, "sixty-four", 1.0)
        table.record(4, 256, "two-fifty-six", 1.0)
        assert table.best(4, 96) == "sixty-four"
        assert table.best(4, 160) == "two-fifty-six"

    def test_single_measurement_answers_everything(self):
        table = SelectionTable()
        table.record(2, 128, "solo", 1.0)
        for size in (1, 128, 10**9):
            assert table.best(2, size) == "solo"


class TestSelectorWithExecutor:
    def test_same_choice_with_and_without_executor(self):
        plain = AlgorithmSelector(dane(8), ppn=16)
        with SweepExecutor(jobs=1) as executor:
            routed = AlgorithmSelector(dane(8), ppn=16, executor=executor)
            for size in (4, 256, 4096):
                assert routed.select(8, size) == plain.select(8, size)

    def test_non_positive_node_count_rejected(self):
        selector = AlgorithmSelector(dane(8), ppn=16)
        with pytest.raises(ConfigurationError):
            selector.select(0, 64)
        with pytest.raises(ConfigurationError):
            selector.selection_map(-2, [4])

    def test_selection_map_served_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        with SweepExecutor(jobs=1, store=store) as executor:
            selector = AlgorithmSelector(dane(8), ppn=16, executor=executor)
            first = selector.selection_map(8, [4, 4096])
            executed = executor.executed_points
            assert executed > 0
            second = selector.selection_map(8, [4, 4096])
            assert executor.executed_points == executed  # all cache hits
        assert first == second


class TestBuildSelectionTable:
    def test_simulated_table_records_all_points(self):
        table = build_selection_table(
            tiny_cluster(2), 4, node_counts=[2], msg_sizes=[16, 64], engine="simulate"
        )
        assert table.sizes_for(2) == [16, 64]
        assert all(seconds > 0 for _, _, _, seconds in table.as_rows())
        assert table.best(2, 16)

    def test_parallel_build_matches_serial(self, tmp_path):
        kwargs = dict(node_counts=[2], msg_sizes=[16, 64], engine="simulate")
        serial = build_selection_table(tiny_cluster(2), 4, **kwargs)
        with SweepExecutor(jobs=2, store=ResultStore(tmp_path / "cache")) as executor:
            parallel = build_selection_table(tiny_cluster(2), 4, executor=executor, **kwargs)
        assert parallel.as_rows() == serial.as_rows()

    def test_model_engine_agrees_with_selector(self):
        candidates = default_candidates(8)
        table = build_selection_table(
            dane(4), 8, node_counts=[4], msg_sizes=[4, 4096],
            candidates=candidates, engine="model",
        )
        selector = AlgorithmSelector(dane(4), ppn=8, candidates=candidates)
        for size in (4, 4096):
            assert table.best(4, size) == selector.select(4, size)[0].describe()

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            build_selection_table(tiny_cluster(2), 4, node_counts=[2], msg_sizes=[16],
                                  candidates=[])
