"""Tests for the repro-bench command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--id", "fig99"])


class TestCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "dane" in out and "tuolomne" in out

    def test_single_figure_table(self, capsys):
        assert main(["figures", "--id", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "System MPI" in out and "Multileader + Locality" in out

    def test_single_figure_csv(self, capsys):
        assert main(["figures", "--id", "fig15", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("nodes,")

    def test_run_reports_outcome(self, capsys):
        code = main([
            "run", "--system", "dane", "--nodes", "2", "--ppn", "4",
            "--algorithm", "node-aware", "--msg-bytes", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "node-aware" in out and "inter-node messages" in out

    def test_run_with_group_size(self, capsys):
        code = main([
            "run", "--system", "dane", "--nodes", "2", "--ppn", "4",
            "--algorithm", "multileader-node-aware", "--group-size", "2", "--msg-bytes", "32",
        ])
        assert code == 0
        assert "procs_per_leader=2" in capsys.readouterr().out

    def test_run_group_size_invalid_for_flat_algorithm(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--system", "dane", "--nodes", "2", "--ppn", "4",
                "--algorithm", "pairwise", "--group-size", "2",
            ])

    def test_select_prints_table(self, capsys):
        assert main(["select", "--system", "dane", "--nodes", "8", "--ppn", "16",
                     "--sizes", "4", "4096"]) == 0
        out = capsys.readouterr().out
        assert "4 B" in out or "      4 B" in out
        assert "->" in out
