"""Tests for the repro-bench command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--id", "fig99"])


class TestCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "dane" in out and "tuolomne" in out

    def test_single_figure_table(self, capsys):
        assert main(["figures", "--id", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "System MPI" in out and "Multileader + Locality" in out

    def test_single_figure_csv(self, capsys):
        assert main(["figures", "--id", "fig15", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("nodes,")

    def test_run_reports_outcome(self, capsys):
        code = main([
            "run", "--system", "dane", "--nodes", "2", "--ppn", "4",
            "--algorithm", "node-aware", "--msg-bytes", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "node-aware" in out and "inter-node messages" in out

    def test_run_with_group_size(self, capsys):
        code = main([
            "run", "--system", "dane", "--nodes", "2", "--ppn", "4",
            "--algorithm", "multileader-node-aware", "--group-size", "2", "--msg-bytes", "32",
        ])
        assert code == 0
        assert "procs_per_leader=2" in capsys.readouterr().out

    def test_run_group_size_invalid_for_flat_algorithm(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--system", "dane", "--nodes", "2", "--ppn", "4",
                "--algorithm", "pairwise", "--group-size", "2",
            ])

    def test_select_prints_table(self, capsys):
        assert main(["select", "--system", "dane", "--nodes", "8", "--ppn", "16",
                     "--sizes", "4", "4096"]) == 0
        out = capsys.readouterr().out
        assert "4 B" in out or "      4 B" in out
        assert "->" in out


class TestSelectCommand:
    def test_covers_all_requested_sizes(self, capsys):
        assert main(["select", "--system", "dane", "--nodes", "4", "--ppn", "8",
                     "--sizes", "4", "64", "1024"]) == 0
        out = capsys.readouterr().out
        for size in ("4 B", "64 B", "1024 B"):
            assert size in out

    def test_default_ppn_uses_all_cores(self, capsys):
        assert main(["select", "--system", "tuolomne", "--nodes", "2", "--sizes", "64"]) == 0
        assert "x 96 ppn" in capsys.readouterr().out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["select", "--system", "frontier"])

    def test_header_names_system_and_shape(self, capsys):
        assert main(["select", "--system", "amber", "--nodes", "2", "--ppn", "4",
                     "--sizes", "16"]) == 0
        out = capsys.readouterr().out
        assert "amber" in out and "(2 nodes x 4 ppn)" in out


class TestFiguresSystemFlags:
    def test_simulate_honours_system_choice(self, capsys):
        assert main(["figures", "--id", "fig10", "--engine", "simulate",
                     "--system", "tuolomne", "--nodes", "2", "--ppn", "4"]) == 0
        out = capsys.readouterr().out
        assert "tuolomne" in out
        assert "2 nodes x 4 ppn" in out

    def test_simulate_defaults_to_dane(self, capsys):
        assert main(["figures", "--id", "fig16", "--engine", "simulate",
                     "--nodes", "2", "--ppn", "4"]) == 0
        out = capsys.readouterr().out
        assert "dane" in out and "4 ppn" in out

    def test_model_engine_system_override(self, capsys):
        assert main(["figures", "--id", "fig10", "--system", "amber", "--nodes", "4"]) == 0
        assert "amber" in capsys.readouterr().out

    def test_model_engine_defaults_preserved(self, capsys):
        """Without --system, figure 17 still runs on its own system (Amber)."""
        assert main(["figures", "--id", "fig17"]) == 0
        assert "amber" in capsys.readouterr().out


class TestWorkloadCommand:
    def test_skewed_moe_end_to_end(self, capsys):
        code = main(["workload", "--pattern", "skewed-moe", "--algorithm", "node-aware",
                     "--system", "dane", "--nodes", "2", "--ppn", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "skewed-moe" in out
        assert "validated against the reference transposition" in out
        assert "Model prediction" in out

    def test_sparse_pattern_options(self, capsys):
        code = main(["workload", "--pattern", "sparse", "--algorithm", "pairwise",
                     "--system", "dane", "--nodes", "2", "--ppn", "4",
                     "--out-degree", "2", "--seed", "3"])
        assert code == 0
        assert "sparse" in capsys.readouterr().out

    def test_group_size_for_node_aware(self, capsys):
        code = main(["workload", "--pattern", "uniform", "--algorithm", "node-aware",
                     "--system", "dane", "--nodes", "2", "--ppn", "4",
                     "--group-size", "2", "--inner", "nonblocking"])
        assert code == 0
        assert "procs_per_group=2" in capsys.readouterr().out

    def test_group_size_invalid_for_flat_algorithm(self):
        with pytest.raises(SystemExit):
            main(["workload", "--pattern", "uniform", "--algorithm", "pairwise",
                  "--system", "dane", "--nodes", "2", "--ppn", "4", "--group-size", "2"])

    def test_trace_replay(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        matrix = [[0 if s == d else 16 for d in range(8)] for s in range(8)]
        path.write_text(json.dumps({"nprocs": 8, "bytes": matrix}))
        code = main(["workload", "--pattern", "trace", "--trace", str(path),
                     "--system", "dane", "--nodes", "2", "--ppn", "4"])
        assert code == 0
        assert "trace" in capsys.readouterr().out

    def test_trace_requires_file(self):
        with pytest.raises(SystemExit):
            main(["workload", "--pattern", "trace", "--system", "dane",
                  "--nodes", "2", "--ppn", "4"])

    def test_trace_size_mismatch_rejected(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"bytes": [[0, 8], [8, 0]]}))
        with pytest.raises(SystemExit):
            main(["workload", "--pattern", "trace", "--trace", str(path),
                  "--system", "dane", "--nodes", "2", "--ppn", "4"])

    def test_no_model_flag(self, capsys):
        code = main(["workload", "--pattern", "uniform", "--algorithm", "nonblocking",
                     "--system", "dane", "--nodes", "2", "--ppn", "4", "--no-model"])
        assert code == 0
        assert "Model prediction" not in capsys.readouterr().out

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SystemExit):
            main(["workload", "--pattern", "fractal", "--system", "dane"])


class TestFiguresNodeClamping:
    def test_node_scaling_figure_on_small_cluster(self, capsys):
        """fig11 sweeps the paper's node counts; a 2-node override clamps the sweep."""
        assert main(["figures", "--id", "fig11", "--system", "dane", "--nodes", "2",
                     "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("nodes,")
        assert "\n2," in out and "\n4," not in out

    def test_nodes_without_system_rejected_for_model_engine(self):
        with pytest.raises(SystemExit):
            main(["figures", "--id", "fig10", "--nodes", "2"])


class TestRuntimeFlags:
    def test_figures_cache_second_run_simulates_nothing(self, tmp_path, capsys):
        argv = ["figures", "--id", "fig16", "--engine", "simulate", "--nodes", "2",
                "--ppn", "4", "--csv", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "0 served from cache" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "jobs=1: 0 point(s) simulated" in second.err
        assert second.out == first.out  # cached data is byte-identical

    def test_figures_no_cache_ignores_cache_dir(self, tmp_path, capsys):
        argv = ["figures", "--id", "fig16", "--engine", "simulate", "--nodes", "2",
                "--ppn", "4", "--csv", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--no-cache"]) == 0
        err = capsys.readouterr().err
        assert err == ""  # --no-cache with jobs=1 takes the plain inline path

    def test_figures_parallel_matches_serial(self, capsys):
        base = ["figures", "--id", "fig16", "--system", "tiny", "--nodes", "2",
                "--ppn", "4", "--csv"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_select_simulate_engine(self, tmp_path, capsys):
        argv = ["select", "--system", "tiny", "--nodes", "2", "--ppn", "4",
                "--sizes", "16", "64", "--engine", "simulate",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[measured, simulate engine]" in out
        assert "16 B ->" in out.replace("     ", " ") or "->" in out
        assert main(argv) == 0
        assert "jobs=1: 0 point(s) simulated" in capsys.readouterr().err

    def test_workload_cached_timing(self, tmp_path, capsys):
        argv = ["workload", "--pattern", "uniform", "--algorithm", "pairwise",
                "--system", "dane", "--nodes", "2", "--ppn", "4",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "timing via runtime executor" in first.out
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "jobs=1: 0 point(s) simulated" in second.err
        assert second.out == first.out

    def test_workload_jobs_without_cache_still_validates(self, capsys):
        code = main(["workload", "--pattern", "uniform", "--algorithm", "pairwise",
                     "--system", "dane", "--nodes", "2", "--ppn", "4", "--jobs", "4"])
        assert code == 0
        out = capsys.readouterr().out
        # A lone point gains nothing from a pool; the validated direct path
        # (and its exit-code contract) is kept unless a store is requested.
        assert "validated against the reference transposition" in out
        assert "timing via runtime executor" not in out

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "--id", "fig16", "--engine", "simulate", "--nodes", "2",
                  "--ppn", "4", "--jobs", "-2"])


class TestArgumentValidation:
    """Count-like flags must be rejected at parse time with a clean exit."""

    @pytest.mark.parametrize("argv", [
        ["run", "--engine-jobs", "0"],
        ["run", "--engine-jobs", "-1"],
        ["run", "--msg-bytes", "0"],
        ["figures", "--engine-jobs", "0"],
        ["figures", "--jobs", "-1"],
        ["figures", "--jobs", "x"],
        ["select", "--sizes", "4", "0"],
        ["workload", "--engine-jobs", "0"],
        ["workload", "--msg-bytes", "-8"],
        ["perf", "--repeats", "0"],
    ])
    def test_non_positive_counts_rejected_at_parse_time(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error, not a traceback

    def test_jobs_zero_means_all_cores_and_is_accepted(self, capsys):
        assert main(["figures", "--id", "fig16", "--engine", "simulate",
                     "--nodes", "2", "--ppn", "4", "--jobs", "0"]) == 0


class TestEngineJobsFlag:
    def test_run_output_identical_at_any_worker_count(self, capsys):
        argv = ["run", "--system", "dane", "--nodes", "4", "--ppn", "2",
                "--algorithm", "pairwise", "--msg-bytes", "256"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--engine-jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_figures_output_identical_at_any_worker_count(self, capsys):
        argv = ["figures", "--id", "fig10", "--engine", "simulate",
                "--nodes", "2", "--ppn", "4", "--csv"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--engine-jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestTraceCommand:
    def test_uniform_trace_end_to_end(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(["trace", "--algorithm", "node-aware", "--system", "dane",
                     "--nodes", "8", "--ppn", "2", "--msg-bytes", "128",
                     "--fabric", "dragonfly:hosts=2,routers=2,taper=4",
                     "--out", str(out_path), "--metrics-out", str(metrics_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sink event(s) recorded" in out
        assert "Metrics:" in out

        import json

        from repro.obs.schema import validate_chrome_trace

        summary = validate_chrome_trace(out_path)
        assert summary.tracks("ranks") >= 1
        assert summary.tracks("fabric links") >= 1
        metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert metrics["matching"]["matches"] > 0
        assert metrics["fabric"]["bytes"] > 0

    def test_positional_fabric_spec_accepted(self, tmp_path):
        code = main(["trace", "--algorithm", "pairwise", "--nodes", "4", "--ppn", "2",
                     "--fabric", "dragonfly:1,2,4",
                     "--out", str(tmp_path / "t.json")])
        assert code == 0

    def test_workload_pattern_trace(self, tmp_path, capsys):
        code = main(["trace", "--pattern", "skewed-moe", "--algorithm", "node-aware",
                     "--nodes", "4", "--ppn", "4", "--msg-bytes", "64",
                     "--out", str(tmp_path / "t.json")])
        assert code == 0
        assert "pattern=skewed-moe" not in capsys.readouterr().err

    def test_pattern_requires_v_algorithm(self, tmp_path):
        with pytest.raises(SystemExit, match="v-algorithm"):
            main(["trace", "--pattern", "skewed-moe", "--algorithm", "bruck",
                  "--out", str(tmp_path / "t.json")])

    def test_bad_fabric_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--fabric", "fat-tree:oversub", "--out", str(tmp_path / "t.json")])


class TestProgressFlag:
    def test_progress_streams_resolution_lines(self, capsys):
        code = main(["select", "--system", "dane", "--nodes", "2", "--ppn", "4",
                     "--engine", "simulate", "--sizes", "4", "16", "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "[runtime] 1/" in err
        assert "point(s) resolved" in err

    def test_without_progress_no_resolution_lines(self, capsys):
        code = main(["select", "--system", "dane", "--nodes", "2", "--ppn", "4",
                     "--engine", "simulate", "--sizes", "4", "16"])
        assert code == 0
        assert "resolved" not in capsys.readouterr().err
