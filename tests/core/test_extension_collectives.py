"""Tests of the locality-aware extension collectives (the paper's Section 5 future work)."""

import numpy as np
import pytest

from repro.core.extensions import (
    locality_aware_allgather,
    locality_aware_allreduce,
    locality_aware_bcast,
    locality_aware_reduce_scatter,
)
from repro.errors import BufferSizeError, CommunicatorError, ConfigurationError
from repro.machine import ProcessMap, tiny_cluster
from repro.machine.hierarchy import LocalityLevel
from repro.simmpi import run_spmd


@pytest.fixture(scope="module")
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=8)


GROUPS = [None, 1, 2, 4, 8]


class TestLocalityAwareAllgather:
    @pytest.mark.parametrize("group", GROUPS)
    def test_matches_flat_allgather(self, pmap, group):
        def program(ctx):
            block = 3
            mine = np.arange(block, dtype=np.int64) + 100 * ctx.rank
            recv = np.zeros(block * ctx.nprocs, dtype=np.int64)
            yield from locality_aware_allgather(ctx, mine, recv, procs_per_group=group)
            ctx.result = recv.copy()

        results = run_spmd(pmap, program).results
        expected = np.concatenate([np.arange(3, dtype=np.int64) + 100 * r for r in range(pmap.nprocs)])
        for buf in results:
            assert np.array_equal(buf, expected)

    def test_reduces_inter_node_messages(self, pmap):
        def program(ctx, group):
            mine = np.zeros(4, dtype=np.int64)
            recv = np.zeros(4 * ctx.nprocs, dtype=np.int64)
            yield from locality_aware_allgather(ctx, mine, recv, procs_per_group=group)

        flat = run_spmd(pmap, program, 1)       # groups of one rank: every rank talks remotely
        grouped = run_spmd(pmap, program, 8)    # whole-node groups
        flat_msgs = flat.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))[0]
        grouped_msgs = grouped.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))[0]
        assert grouped_msgs < flat_msgs

    def test_wrong_buffer_size_rejected(self, pmap):
        def program(ctx):
            yield from locality_aware_allgather(
                ctx, np.zeros(3, dtype=np.int64), np.zeros(5, dtype=np.int64)
            )

        with pytest.raises(BufferSizeError):
            run_spmd(pmap, program)


class TestLocalityAwareBcast:
    @pytest.mark.parametrize("group", [None, 2, 4])
    @pytest.mark.parametrize("root", [0, 5, 17])
    def test_all_ranks_receive(self, pmap, group, root):
        def program(ctx):
            buf = np.zeros(8, dtype=np.int64)
            if ctx.rank == root:
                buf[:] = np.arange(8) + 1000
            yield from locality_aware_bcast(ctx, buf, root=root, procs_per_group=group)
            ctx.result = buf.copy()

        results = run_spmd(pmap, program).results
        for buf in results:
            assert np.array_equal(buf, np.arange(8) + 1000)

    def test_invalid_group_rejected(self, pmap):
        def program(ctx):
            yield from locality_aware_bcast(ctx, np.zeros(2), root=0, procs_per_group=3)

        with pytest.raises(ConfigurationError):
            run_spmd(pmap, program)


class TestLocalityAwareAllreduce:
    @pytest.mark.parametrize("group", GROUPS)
    @pytest.mark.parametrize("op,reference", [("sum", np.sum), ("max", np.max), ("min", np.min)])
    def test_matches_numpy_reduction(self, pmap, group, op, reference):
        contributions = {r: np.array([r * 1.0, -r * 2.0, 1.0]) for r in range(pmap.nprocs)}

        def program(ctx):
            recv = np.zeros(3)
            yield from locality_aware_allreduce(
                ctx, contributions[ctx.rank], recv, op=op, procs_per_group=group
            )
            ctx.result = recv.copy()

        results = run_spmd(pmap, program).results
        stacked = np.stack([contributions[r] for r in range(pmap.nprocs)])
        expected = reference(stacked, axis=0)
        for buf in results:
            assert np.allclose(buf, expected)

    def test_unknown_op_rejected(self, pmap):
        def program(ctx):
            yield from locality_aware_allreduce(ctx, np.zeros(2), np.zeros(2), op="xor")

        with pytest.raises(CommunicatorError):
            run_spmd(pmap, program)

    def test_mismatched_buffers_rejected(self, pmap):
        def program(ctx):
            yield from locality_aware_allreduce(ctx, np.zeros(2), np.zeros(3))

        with pytest.raises(BufferSizeError):
            run_spmd(pmap, program)

    def test_fewer_inter_node_messages_than_flat_allreduce(self, pmap):
        def grouped(ctx):
            out = np.zeros(4)
            yield from locality_aware_allreduce(ctx, np.ones(4), out, procs_per_group=None)

        def flat(ctx):
            out = np.zeros(4)
            yield from ctx.world.allreduce(np.ones(4), out)

        grouped_msgs = run_spmd(pmap, grouped).traffic_by_level[LocalityLevel.NETWORK][0]
        flat_msgs = run_spmd(pmap, flat).traffic_by_level[LocalityLevel.NETWORK][0]
        assert grouped_msgs <= flat_msgs


class TestLocalityAwareReduceScatter:
    @pytest.mark.parametrize("group", GROUPS)
    def test_matches_numpy_reference(self, pmap, group):
        block = 2
        rng = np.random.default_rng(3)
        vectors = {r: rng.integers(-50, 50, size=block * pmap.nprocs).astype(np.int64)
                   for r in range(pmap.nprocs)}

        def program(ctx):
            recv = np.zeros(block, dtype=np.int64)
            yield from locality_aware_reduce_scatter(
                ctx, vectors[ctx.rank], recv, procs_per_group=group
            )
            ctx.result = recv.copy()

        results = run_spmd(pmap, program).results
        total = np.sum(np.stack([vectors[r] for r in range(pmap.nprocs)]), axis=0)
        for rank, buf in enumerate(results):
            assert np.array_equal(buf, total[rank * block : (rank + 1) * block]), rank

    def test_max_reduction(self, pmap):
        def program(ctx):
            send = np.full(pmap.nprocs, ctx.rank, dtype=np.int64)
            recv = np.zeros(1, dtype=np.int64)
            yield from locality_aware_reduce_scatter(ctx, send, recv, op="max")
            ctx.result = int(recv[0])

        results = run_spmd(pmap, program).results
        assert results == [pmap.nprocs - 1] * pmap.nprocs

    def test_indivisible_buffer_rejected(self, pmap):
        def program(ctx):
            yield from locality_aware_reduce_scatter(
                ctx, np.zeros(pmap.nprocs + 1, dtype=np.int64), np.zeros(1, dtype=np.int64)
            )

        with pytest.raises(BufferSizeError):
            run_spmd(pmap, program)

    def test_wrong_recv_size_rejected(self, pmap):
        def program(ctx):
            yield from locality_aware_reduce_scatter(
                ctx, np.zeros(2 * pmap.nprocs, dtype=np.int64), np.zeros(3, dtype=np.int64)
            )

        with pytest.raises(BufferSizeError):
            run_spmd(pmap, program)
