"""Direct NumPy-level tests of the repacking helpers used by Algorithms 3-5."""

import numpy as np
import pytest

from repro.core.alltoall import repack
from repro.machine.params import MachineParameters
from repro.simmpi.ops import Delay


def _tagged(shape_dims, base=0):
    """An int array whose value encodes its multi-index, for unambiguous reordering checks."""
    size = int(np.prod(shape_dims))
    return (np.arange(size, dtype=np.int64) + base).reshape(shape_dims)


class TestPackDelay:
    def test_returns_delay_with_copy_cost(self):
        params = MachineParameters(copy_latency=1e-6, copy_bandwidth=1e9)
        delay = repack.pack_delay(params, 1000)
        assert isinstance(delay, Delay)
        assert delay.seconds == pytest.approx(2e-6)

    def test_zero_bytes_is_free(self):
        assert repack.pack_delay(MachineParameters(), 0).seconds == 0.0


class TestHierarchicalRepack:
    def test_pack_for_leaders_orders_by_destination_group(self):
        ppl, ngroups, block = 2, 3, 1
        # gathered[src_member, dest_group, dest_member, item]
        gathered = _tagged((ppl, ngroups, ppl, block)).reshape(-1)
        packed = repack.hierarchical_pack_for_leaders(gathered, ppl, ngroups, block)
        cube = gathered.reshape(ppl, ngroups, ppl, block)
        expected = cube.transpose(1, 0, 2, 3).reshape(-1)
        assert np.array_equal(packed, expected)

    def test_unpack_to_scatter_orders_by_destination_member_then_source(self):
        ppl, ngroups, block = 2, 3, 2
        received = _tagged((ngroups, ppl, ppl, block)).reshape(-1)
        unpacked = repack.hierarchical_unpack_to_scatter(received, ppl, ngroups, block)
        cube = received.reshape(ngroups, ppl, ppl, block)
        expected = cube.transpose(2, 0, 1, 3).reshape(-1)
        assert np.array_equal(unpacked, expected)

    def test_pack_then_unpack_covers_all_elements(self):
        ppl, ngroups, block = 4, 2, 3
        original = _tagged((ppl, ngroups * ppl * block)).reshape(-1)
        packed = repack.hierarchical_pack_for_leaders(original, ppl, ngroups, block)
        assert sorted(packed.tolist()) == sorted(original.tolist())


class TestGroupTranspose:
    def test_forward_is_group_major_to_member_major(self):
        ngroups, group, block = 3, 2, 2
        received = _tagged((ngroups, group, block)).reshape(-1)
        forward = repack.group_transpose_forward(received, ngroups, group, block)
        expected = received.reshape(ngroups, group, block).transpose(1, 0, 2).reshape(-1)
        assert np.array_equal(forward, expected)

    def test_backward_inverts_forward(self):
        ngroups, group, block = 4, 3, 2
        original = _tagged((ngroups, group, block)).reshape(-1)
        forward = repack.group_transpose_forward(original, ngroups, group, block)
        # After the intra-group exchange the axes are (member, group); the
        # backward transpose restores (group, member) ordering.
        restored = repack.group_transpose_backward(forward, ngroups, group, block)
        assert np.array_equal(restored, original)


class TestMlnaRepack:
    def test_pack_for_internode_axes(self):
        ppl, nodes, ppn, block = 2, 3, 4, 1
        gathered = _tagged((ppl, nodes, ppn, block)).reshape(-1)
        packed = repack.mlna_pack_for_internode(gathered, ppl, nodes, ppn, block)
        expected = gathered.reshape(ppl, nodes, ppn, block).transpose(1, 0, 2, 3).reshape(-1)
        assert np.array_equal(packed, expected)

    def test_pack_for_intranode_axes(self):
        nodes, ppl, leaders, block = 2, 2, 3, 1
        received = _tagged((nodes, ppl, leaders, ppl, block)).reshape(-1)
        packed = repack.mlna_pack_for_intranode(received, nodes, ppl, leaders, block)
        expected = (
            received.reshape(nodes, ppl, leaders, ppl, block).transpose(2, 0, 1, 3, 4).reshape(-1)
        )
        assert np.array_equal(packed, expected)

    def test_unpack_to_scatter_axes(self):
        leaders, nodes, ppl, block = 2, 3, 2, 2
        received = _tagged((leaders, nodes, ppl, ppl, block)).reshape(-1)
        unpacked = repack.mlna_unpack_to_scatter(received, leaders, nodes, ppl, block)
        expected = (
            received.reshape(leaders, nodes, ppl, ppl, block).transpose(3, 1, 0, 2, 4).reshape(-1)
        )
        assert np.array_equal(unpacked, expected)

    def test_all_repacks_are_permutations(self):
        """No repack may ever duplicate or drop an element."""
        ppl, nodes, ppn, block = 2, 2, 4, 3
        leaders = ppn // ppl
        buf = np.arange(ppl * nodes * ppn * block, dtype=np.int64)
        for packed in (
            repack.mlna_pack_for_internode(buf, ppl, nodes, ppn, block),
            repack.mlna_pack_for_intranode(buf, nodes, ppl, leaders, block),
            repack.mlna_unpack_to_scatter(buf, leaders, nodes, ppl, block),
        ):
            assert sorted(packed.tolist()) == list(range(buf.size))
