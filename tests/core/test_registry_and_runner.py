"""Tests for the algorithm registry and the high-level runner."""

import numpy as np
import pytest

from repro.core import get_algorithm, list_algorithms, run_alltoall
from repro.core.alltoall import (
    ALGORITHM_NAMES,
    HierarchicalAlltoall,
    NodeAwareAlltoall,
    get_inner_exchange,
)
from repro.errors import ConfigurationError
from repro.machine import ProcessMap, tiny_cluster
from repro.machine.hierarchy import LocalityLevel


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = set(list_algorithms())
        assert {
            "pairwise", "nonblocking", "bruck", "batched", "system-mpi",
            "hierarchical", "multileader", "node-aware", "locality-aware",
            "multileader-node-aware",
        } <= names

    def test_names_match_classes(self):
        for name in ALGORITHM_NAMES:
            assert get_algorithm(name).name == name

    def test_options_forwarded(self):
        algo = get_algorithm("locality-aware", procs_per_group=8, inner="nonblocking")
        assert algo.options() == {"procs_per_group": 8, "inner": "nonblocking"}

    def test_case_insensitive(self):
        assert isinstance(get_algorithm("Node-Aware"), NodeAwareAlltoall)

    def test_instance_passthrough(self):
        algo = HierarchicalAlltoall(procs_per_leader=2)
        assert get_algorithm(algo) is algo

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown all-to-all algorithm"):
            get_algorithm("magic")

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            get_algorithm("pairwise", procs_per_leader=4)

    def test_unknown_inner_exchange_rejected(self):
        with pytest.raises(ConfigurationError):
            get_inner_exchange("quantum")

    def test_describe_includes_options(self):
        text = get_algorithm("multileader-node-aware", procs_per_leader=8).describe()
        assert "multileader-node-aware" in text and "8" in text


class TestRunner:
    @pytest.fixture(scope="class")
    def pmap(self):
        return ProcessMap(tiny_cluster(num_nodes=2), ppn=4)

    def test_outcome_fields(self, pmap):
        outcome = run_alltoall("pairwise", pmap, msg_bytes=16)
        assert outcome.correct
        assert outcome.elapsed > 0.0
        assert outcome.num_nodes == 2 and outcome.ppn == 4 and outcome.nprocs == 8
        assert outcome.msg_bytes == 16
        assert LocalityLevel.NETWORK in outcome.traffic_by_level
        assert "pairwise" in outcome.summary()

    def test_validation_can_be_disabled(self, pmap):
        outcome = run_alltoall("pairwise", pmap, msg_bytes=16, validate=False)
        assert outcome.correct  # reported as correct because it was not checked
        assert outcome.elapsed > 0.0

    def test_keep_job_false_drops_engine_state(self, pmap):
        outcome = run_alltoall("pairwise", pmap, msg_bytes=16, keep_job=False)
        assert outcome.job is None

    def test_trace_recording(self, pmap):
        outcome = run_alltoall("node-aware", pmap, msg_bytes=16, record_trace=True)
        assert outcome.job.trace is not None
        assert outcome.job.trace.message_count(inter_node=True) == outcome.inter_node_messages

    def test_dtype_item_size_respected(self, pmap):
        outcome = run_alltoall("pairwise", pmap, msg_bytes=32, dtype=np.int64)
        assert outcome.correct

    def test_msg_bytes_not_multiple_of_itemsize_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            run_alltoall("pairwise", pmap, msg_bytes=10, dtype=np.int64)

    def test_non_positive_msg_bytes_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            run_alltoall("pairwise", pmap, msg_bytes=0)

    def test_options_with_instance_rejected(self, pmap):
        algo = HierarchicalAlltoall()
        with pytest.raises(ConfigurationError):
            run_alltoall(algo, pmap, msg_bytes=16, inner="bruck")

    def test_algorithm_validate_called(self, pmap):
        # procs_per_leader=3 does not divide ppn=4 and must fail before simulation.
        with pytest.raises(ConfigurationError):
            run_alltoall("multileader-node-aware", pmap, msg_bytes=16, procs_per_leader=3)

    def test_elapsed_scales_with_message_size(self, pmap):
        small = run_alltoall("pairwise", pmap, msg_bytes=8)
        large = run_alltoall("pairwise", pmap, msg_bytes=4096)
        assert large.elapsed > small.elapsed
