"""Correctness tests of the flat exchanges (pairwise, non-blocking, Bruck, batched, system MPI)."""

import numpy as np
import pytest

from repro.core import run_alltoall
from repro.core.alltoall.system_mpi import SystemMPIAlltoall
from repro.errors import ConfigurationError
from repro.machine import ProcessMap, tiny_cluster


FLAT_ALGORITHMS = ["pairwise", "nonblocking", "bruck", "batched"]


@pytest.fixture(scope="module")
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=4)


class TestFlatCorrectness:
    @pytest.mark.parametrize("name", FLAT_ALGORITHMS)
    def test_small_messages(self, pmap, name):
        outcome = run_alltoall(name, pmap, msg_bytes=8)
        assert outcome.correct

    @pytest.mark.parametrize("name", FLAT_ALGORITHMS)
    def test_rendezvous_sized_messages(self, pmap, name):
        # Larger than the tiny cluster's 4 KiB eager limit.
        outcome = run_alltoall(name, pmap, msg_bytes=8192)
        assert outcome.correct

    @pytest.mark.parametrize("name", FLAT_ALGORITHMS)
    def test_int64_payload(self, pmap, name):
        outcome = run_alltoall(name, pmap, msg_bytes=64, dtype=np.int64)
        assert outcome.correct

    @pytest.mark.parametrize("name", FLAT_ALGORITHMS)
    def test_single_node(self, name):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=8)
        assert run_alltoall(name, pmap, msg_bytes=16).correct

    @pytest.mark.parametrize("name", FLAT_ALGORITHMS)
    def test_two_ranks(self, name):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=1)
        assert run_alltoall(name, pmap, msg_bytes=32).correct

    @pytest.mark.parametrize("nprocs", [3, 5, 6, 7])
    def test_bruck_non_power_of_two(self, nprocs):
        """The Bruck rotation/reversal logic is easiest to get wrong off powers of two."""
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=nprocs)
        assert run_alltoall("bruck", pmap, msg_bytes=12).correct

    @pytest.mark.parametrize("batch_size", [1, 2, 64])
    def test_batched_various_batch_sizes(self, pmap, batch_size):
        outcome = run_alltoall("batched", pmap, msg_bytes=16, batch_size=batch_size)
        assert outcome.correct

    def test_batched_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            run_alltoall("batched", ProcessMap(tiny_cluster(2), ppn=2), msg_bytes=8, batch_size=0)


class TestFlatTrafficCounts:
    def test_pairwise_message_count(self, pmap):
        """Every rank exchanges once with every inter-node peer."""
        outcome = run_alltoall("pairwise", pmap, msg_bytes=8)
        p, ppn, nodes = pmap.nprocs, pmap.ppn, pmap.num_nodes
        expected = p * ppn * (nodes - 1)
        assert outcome.inter_node_messages == expected

    def test_bruck_sends_fewer_inter_node_messages(self, pmap):
        bruck = run_alltoall("bruck", pmap, msg_bytes=8)
        pairwise = run_alltoall("pairwise", pmap, msg_bytes=8)
        assert bruck.inter_node_messages < pairwise.inter_node_messages

    def test_bruck_moves_more_bytes(self, pmap):
        """Bruck forwards data through intermediates, so it moves more volume."""
        bruck = run_alltoall("bruck", pmap, msg_bytes=64)
        pairwise = run_alltoall("pairwise", pmap, msg_bytes=64)
        assert bruck.inter_node_bytes > pairwise.inter_node_bytes


class TestSystemMPISelection:
    def test_threshold_selection(self):
        algo = SystemMPIAlltoall(small_threshold=256, medium_threshold=32768)
        assert algo.chosen_exchange(4) == "bruck"
        assert algo.chosen_exchange(256) == "bruck"
        assert algo.chosen_exchange(257) == "nonblocking"
        assert algo.chosen_exchange(32768) == "nonblocking"
        assert algo.chosen_exchange(32769) == "pairwise"

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemMPIAlltoall(small_threshold=100, medium_threshold=10)
        with pytest.raises(ConfigurationError):
            SystemMPIAlltoall(small_threshold=-1)

    @pytest.mark.parametrize("msg_bytes", [8, 1024])
    def test_correct_at_both_regimes(self, pmap, msg_bytes):
        outcome = run_alltoall("system-mpi", pmap, msg_bytes=msg_bytes, small_threshold=64)
        assert outcome.correct

    def test_small_message_path_matches_bruck_traffic(self, pmap):
        system = run_alltoall("system-mpi", pmap, msg_bytes=8)
        bruck = run_alltoall("bruck", pmap, msg_bytes=8)
        assert system.inter_node_messages == bruck.inter_node_messages
