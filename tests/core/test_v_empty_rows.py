"""Regression tests: alltoallv with empty send rows, for every v-algorithm.

Edge cases surfaced by the :mod:`repro.verify` scenario generator: matrices
where some (or all) source rows are entirely zero — ranks that participate
in the collective but contribute no bytes.  Every v-capable algorithm
configuration must deliver the exact reference transposition for these, and
the check must go through :mod:`repro.core.validation` (the
``validate=True`` path of ``run_workload`` plus the explicit oracle), not
just through the pairwise kernel's internal buffer checks.

The same sweep pinned down a related 0-byte landmine: the repack helpers
crashed on ``block == 0`` buffers (fixed in ``core/alltoall/repack.py``,
regression-tested in ``tests/properties/test_repack_partition_random.py``).
"""

import numpy as np
import pytest

from repro.core import run_workload
from repro.core.validation import expected_workload_result, validate_workload_results
from repro.machine import ProcessMap, tiny_cluster
from repro.utils.partition import divisors
from repro.workloads import TrafficMatrix, self_only, uniform


def _pmap(num_nodes=2, ppn=4) -> ProcessMap:
    return ProcessMap(tiny_cluster(num_nodes=num_nodes), ppn=ppn, num_nodes=num_nodes)


def _v_configurations(ppn: int):
    """Every v-capable algorithm configuration valid for ``ppn``."""
    configs = [("pairwise", {}), ("nonblocking", {}), ("node-aware", {})]
    for group in divisors(ppn):
        for inner in ("pairwise", "nonblocking"):
            configs.append(("node-aware", {"procs_per_group": group, "inner": inner}))
    return configs


def _empty_row_matrices(nprocs: int) -> list[TrafficMatrix]:
    rng = np.random.default_rng(2025)
    dense = rng.integers(0, 48, size=(nprocs, nprocs))
    return [
        uniform(nprocs, 16).with_zero_rows([0]),                  # one silent source
        uniform(nprocs, 16).with_zero_rows(range(nprocs // 2)),   # half the sources silent
        uniform(nprocs, 16).with_zero_rows(range(nprocs)),        # nothing moves at all
        TrafficMatrix(dense).with_zero_rows([1, nprocs - 1]),     # irregular + silent rows
    ]


class TestEmptySendRowsEveryAlgorithm:
    @pytest.mark.parametrize("algorithm,options", _v_configurations(4))
    def test_empty_rows_validate_for_every_v_algorithm(self, algorithm, options):
        pmap = _pmap()
        for matrix in _empty_row_matrices(pmap.nprocs):
            outcome = run_workload(algorithm, pmap, matrix, **options)
            assert outcome.correct, (
                f"{algorithm}({options}) failed core.validation on {matrix.describe()}"
            )
            # Belt and braces: re-run the core.validation oracle directly on
            # the job's buffers, independent of the runner's own call.
            counts = matrix.item_counts(np.uint8)
            assert validate_workload_results(outcome.job.results, counts)
            for rank, buf in enumerate(outcome.job.results):
                expected = expected_workload_result(rank, counts, dtype=np.uint8)
                assert np.array_equal(np.asarray(buf), expected)

    @pytest.mark.parametrize("algorithm,options", _v_configurations(2))
    def test_empty_rows_on_single_node_and_tiny_groups(self, algorithm, options):
        pmap = _pmap(num_nodes=1, ppn=2)
        matrix = uniform(pmap.nprocs, 8).with_zero_rows([1])
        outcome = run_workload(algorithm, pmap, matrix, **options)
        assert outcome.correct

    def test_self_only_traffic_with_empty_rows(self):
        pmap = _pmap()
        matrix = self_only(pmap.nprocs, 32).with_zero_rows([2, 5])
        for algorithm, options in _v_configurations(pmap.ppn):
            outcome = run_workload(algorithm, pmap, matrix, **options)
            assert outcome.correct, f"{algorithm}({options})"

    def test_empty_column_ranks_receive_empty_buffers(self):
        """A rank no one sends to must end with a 0-item buffer that still
        validates (size mismatches raise rather than masquerade)."""
        pmap = _pmap()
        bytes_matrix = uniform(pmap.nprocs, 16).bytes.copy()
        bytes_matrix[:, 3] = 0
        matrix = TrafficMatrix(bytes_matrix)
        for algorithm in ("pairwise", "nonblocking", "node-aware"):
            outcome = run_workload(algorithm, pmap, matrix)
            assert outcome.correct
            assert np.asarray(outcome.job.results[3]).size == 0


class TestWithZeroRowsHelper:
    def test_marks_pattern_and_zeroes_rows(self):
        matrix = uniform(8, 16).with_zero_rows([0, 7])
        assert matrix.pattern == "uniform+zero-rows"
        assert matrix.bytes[0].sum() == 0 and matrix.bytes[7].sum() == 0
        assert matrix.bytes[1].sum() == 16 * 8

    def test_out_of_range_row_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            uniform(4, 16).with_zero_rows([4])
