"""Tests of the reference collectives against NumPy oracles."""

import numpy as np
import pytest

from repro.errors import BufferSizeError, CommunicatorError
from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd


def _run(pmap, program, *args):
    return run_spmd(pmap, program, *args)


class TestBarrier:
    def test_all_ranks_pass(self, tiny_pmap):
        def program(ctx):
            yield from ctx.world.barrier()
            ctx.result = "done"

        result = _run(tiny_pmap, program)
        assert all(r == "done" for r in result.results)

    def test_barrier_synchronizes_clocks(self, two_node_pmap):
        """A rank that did extra work first still exits the barrier no earlier than the others enter it."""

        def program(ctx):
            from repro.simmpi.ops import Delay

            if ctx.rank == 0:
                yield Delay(1.0e-3)
            entry = ctx.now
            yield from ctx.world.barrier()
            ctx.result = (entry, ctx.now)

        result = _run(two_node_pmap, program)
        slowest_entry = max(entry for entry, _ in result.results)
        for _, exit_time in result.results:
            assert exit_time >= slowest_entry

    def test_single_rank_barrier(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=1)

        def program(ctx):
            yield from ctx.world.barrier()
            ctx.result = True

        assert _run(pmap, program).results == [True]


class TestBcast:
    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_all_ranks_receive_root_data(self, tiny_pmap, root):
        def program(ctx):
            comm = ctx.world
            buf = np.full(16, ctx.rank, dtype=np.int64)
            if comm.rank == root:
                buf[:] = np.arange(16)
            yield from comm.bcast(buf, root=root)
            ctx.result = buf.copy()

        result = _run(tiny_pmap, program)
        for buf in result.results:
            assert np.array_equal(buf, np.arange(16))

    def test_invalid_root_rejected(self, tiny_pmap):
        def program(ctx):
            yield from ctx.world.bcast(np.zeros(1), root=99)

        with pytest.raises(CommunicatorError):
            _run(tiny_pmap, program)


class TestGatherScatter:
    @pytest.mark.parametrize("root", [0, 5])
    def test_gather_collects_in_rank_order(self, tiny_pmap, root):
        def program(ctx):
            comm = ctx.world
            mine = np.array([ctx.rank * 2, ctx.rank * 2 + 1], dtype=np.int64)
            recv = np.zeros(2 * comm.size, dtype=np.int64) if comm.rank == root else None
            yield from comm.gather(mine, recv, root=root)
            ctx.result = None if recv is None else recv.copy()

        result = _run(tiny_pmap, program)
        gathered = result.results[root]
        assert np.array_equal(gathered, np.arange(2 * tiny_pmap.nprocs))
        assert all(r is None for i, r in enumerate(result.results) if i != root)

    def test_gather_missing_root_buffer_rejected(self, two_node_pmap):
        def program(ctx):
            yield from ctx.world.gather(np.zeros(2), None, root=0)

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)

    def test_gather_wrong_buffer_size_rejected(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            recv = np.zeros(3, dtype=np.int64) if comm.rank == 0 else None
            yield from comm.gather(np.zeros(2, dtype=np.int64), recv, root=0)

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)

    @pytest.mark.parametrize("root", [0, 2])
    def test_scatter_distributes_blocks(self, two_node_pmap, root):
        def program(ctx):
            comm = ctx.world
            send = None
            if comm.rank == root:
                send = np.arange(3 * comm.size, dtype=np.int64)
            recv = np.zeros(3, dtype=np.int64)
            yield from comm.scatter(send, recv, root=root)
            ctx.result = recv.copy()

        result = _run(two_node_pmap, program)
        for rank, buf in enumerate(result.results):
            assert np.array_equal(buf, np.arange(3 * rank, 3 * rank + 3))

    def test_scatter_missing_root_buffer_rejected(self, two_node_pmap):
        def program(ctx):
            yield from ctx.world.scatter(None, np.zeros(2), root=0)

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)

    def test_gather_then_scatter_roundtrip(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            mine = np.array([ctx.rank + 100], dtype=np.int64)
            gathered = np.zeros(comm.size, dtype=np.int64) if comm.rank == 0 else None
            yield from comm.gather(mine, gathered, root=0)
            back = np.zeros(1, dtype=np.int64)
            yield from comm.scatter(gathered, back, root=0)
            ctx.result = int(back[0])

        result = _run(two_node_pmap, program)
        assert result.results == [r + 100 for r in range(two_node_pmap.nprocs)]


class TestAllgather:
    def test_every_rank_gets_everything(self, tiny_pmap):
        def program(ctx):
            comm = ctx.world
            mine = np.array([ctx.rank, ctx.rank], dtype=np.int64)
            recv = np.zeros(2 * comm.size, dtype=np.int64)
            yield from comm.allgather(mine, recv)
            ctx.result = recv.copy()

        result = _run(tiny_pmap, program)
        expected = np.repeat(np.arange(tiny_pmap.nprocs), 2)
        for buf in result.results:
            assert np.array_equal(buf, expected)

    def test_single_rank(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=1)

        def program(ctx):
            recv = np.zeros(4, dtype=np.int64)
            yield from ctx.world.allgather(np.arange(4, dtype=np.int64), recv)
            ctx.result = recv.copy()

        assert np.array_equal(_run(pmap, program).results[0], np.arange(4))


class TestReductions:
    @pytest.mark.parametrize("op,expected", [
        ("sum", sum(range(32))),
        ("max", 31),
        ("min", 0),
    ])
    def test_reduce_ops(self, tiny_pmap, op, expected):
        def program(ctx):
            comm = ctx.world
            mine = np.array([float(ctx.rank)])
            out = np.zeros(1) if comm.rank == 0 else None
            yield from comm.reduce(mine, out, op=op, root=0)
            ctx.result = None if out is None else float(out[0])

        result = _run(tiny_pmap, program)
        assert result.results[0] == pytest.approx(expected)

    def test_reduce_prod_non_power_of_two(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=1), ppn=5)

        def program(ctx):
            comm = ctx.world
            mine = np.array([float(ctx.rank + 1)])
            out = np.zeros(1) if comm.rank == 0 else None
            yield from comm.reduce(mine, out, op="prod", root=0)
            ctx.result = None if out is None else float(out[0])

        assert _run(pmap, program).results[0] == pytest.approx(120.0)

    def test_reduce_unknown_op_rejected(self, two_node_pmap):
        def program(ctx):
            yield from ctx.world.reduce(np.zeros(1), np.zeros(1), op="xor", root=0)

        with pytest.raises(CommunicatorError):
            _run(two_node_pmap, program)

    def test_allreduce_everyone_gets_result(self, tiny_pmap):
        def program(ctx):
            comm = ctx.world
            mine = np.array([float(ctx.rank), 1.0])
            out = np.zeros(2)
            yield from comm.allreduce(mine, out, op="sum")
            ctx.result = out.copy()

        result = _run(tiny_pmap, program)
        total = sum(range(tiny_pmap.nprocs))
        for buf in result.results:
            assert buf[0] == pytest.approx(total)
            assert buf[1] == pytest.approx(tiny_pmap.nprocs)

    def test_allreduce_size_mismatch_rejected(self, two_node_pmap):
        def program(ctx):
            yield from ctx.world.allreduce(np.zeros(2), np.zeros(3))

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)


class TestBasicAlltoall:
    def test_matches_transpose(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            p = comm.size
            send = np.arange(p, dtype=np.int64) + 100 * ctx.rank
            recv = np.zeros(p, dtype=np.int64)
            yield from comm.alltoall(send, recv)
            ctx.result = recv.copy()

        result = _run(two_node_pmap, program)
        p = two_node_pmap.nprocs
        for dest, buf in enumerate(result.results):
            expected = np.array([100 * src + dest for src in range(p)])
            assert np.array_equal(buf, expected)

    def test_buffer_size_mismatch_rejected(self, two_node_pmap):
        def program(ctx):
            yield from ctx.world.alltoall(np.zeros(8, dtype=np.int64), np.zeros(9, dtype=np.int64))

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)

    def test_indivisible_buffer_rejected(self, two_node_pmap):
        def program(ctx):
            n = ctx.world.size * 2 + 1
            yield from ctx.world.alltoall(np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64))

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)


class TestAlltoallv:
    def test_matches_variable_transposition(self, two_node_pmap):
        """Ragged counts: rank s sends s+1 items to every destination."""
        p = two_node_pmap.nprocs
        counts = np.tile(np.arange(1, p + 1, dtype=np.int64)[:, None], (1, p))

        def program(ctx):
            mine = counts[ctx.rank]
            send = np.concatenate(
                [np.full(mine[d], 100 * ctx.rank + d, dtype=np.int64) for d in range(p)]
            )
            recv = np.zeros(int(counts[:, ctx.rank].sum()), dtype=np.int64)
            yield from ctx.world.alltoallv(send, mine, recv, counts[:, ctx.rank])
            ctx.result = recv.copy()

        result = _run(two_node_pmap, program)
        for dest, buf in enumerate(result.results):
            expected = np.concatenate(
                [np.full(src + 1, 100 * src + dest, dtype=np.int64) for src in range(p)]
            )
            assert np.array_equal(buf, expected)

    def test_zero_counts_skip_messages(self, two_node_pmap):
        """A diagonal-plus-one-pair matrix exchanges only that single message."""
        p = two_node_pmap.nprocs
        counts = np.zeros((p, p), dtype=np.int64)
        counts[0, p - 1] = 3

        def program(ctx):
            send = np.full(int(counts[ctx.rank].sum()), 42, dtype=np.int64)
            recv = np.zeros(int(counts[:, ctx.rank].sum()), dtype=np.int64)
            yield from ctx.world.alltoallv(send, counts[ctx.rank], recv, counts[:, ctx.rank])
            ctx.result = recv.copy()

        result = _run(two_node_pmap, program)
        assert np.array_equal(result.results[p - 1], np.full(3, 42))
        assert all(buf.size == 0 for buf in result.results[:-1])

    def test_explicit_displacements(self, two_node_pmap):
        """Non-packed layouts: blocks laid out in reverse peer order."""
        p = two_node_pmap.nprocs

        def program(ctx):
            counts = np.full(p, 2, dtype=np.int64)
            displs = np.array([(p - 1 - i) * 2 for i in range(p)], dtype=np.int64)
            send = np.zeros(2 * p, dtype=np.int64)
            for d in range(p):
                send[displs[d]: displs[d] + 2] = 100 * ctx.rank + d
            recv = np.zeros(2 * p, dtype=np.int64)
            yield from ctx.world.alltoallv(send, counts, recv, counts, displs, displs)
            ctx.result = recv.copy()

        result = _run(two_node_pmap, program)
        for dest, buf in enumerate(result.results):
            for src in range(p):
                start = (p - 1 - src) * 2
                assert np.array_equal(buf[start: start + 2], np.full(2, 100 * src + dest))

    def test_count_vector_length_checked(self, two_node_pmap):
        def program(ctx):
            p = ctx.world.size
            yield from ctx.world.alltoallv(
                np.zeros(p, dtype=np.int64), np.ones(p - 1, dtype=np.int64),
                np.zeros(p, dtype=np.int64), np.ones(p, dtype=np.int64),
            )

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)

    def test_self_count_mismatch_rejected(self, two_node_pmap):
        def program(ctx):
            p = ctx.world.size
            sendcounts = np.ones(p, dtype=np.int64)
            recvcounts = np.ones(p, dtype=np.int64)
            recvcounts[ctx.world.rank] = 2
            yield from ctx.world.alltoallv(
                np.ones(p, dtype=np.int64), sendcounts,
                np.zeros(p + 1, dtype=np.int64), recvcounts,
            )

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)

    def test_blocks_beyond_buffer_rejected(self, two_node_pmap):
        def program(ctx):
            p = ctx.world.size
            counts = np.full(p, 4, dtype=np.int64)
            yield from ctx.world.alltoallv(
                np.zeros(2, dtype=np.int64), counts,
                np.zeros(4 * p, dtype=np.int64), counts,
            )

        with pytest.raises(BufferSizeError):
            _run(two_node_pmap, program)
