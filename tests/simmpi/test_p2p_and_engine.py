"""Tests of the point-to-point layer and SPMD engine semantics."""

import numpy as np
import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine import ProcessMap, tiny_cluster
from repro.machine.hierarchy import LocalityLevel
from repro.simmpi import run_spmd
from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.simmpi.engine import SpmdEngine


class TestBasicMessaging:
    def test_blocking_send_recv(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                data = np.arange(10, dtype=np.int64)
                yield from comm.send(data, dest=1, tag=7)
            elif ctx.rank == 1:
                buf = np.zeros(10, dtype=np.int64)
                status = yield from comm.recv(buf, source=0, tag=7)
                ctx.result = (buf.copy(), status.source, status.tag, status.nbytes)

        result = run_spmd(two_node_pmap, program)
        buf, source, tag, nbytes = result.results[1]
        assert np.array_equal(buf, np.arange(10))
        assert (source, tag, nbytes) == (0, 7, 80)

    def test_nonblocking_roundtrip(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            partner = ctx.rank ^ 1
            if partner >= comm.size:
                return
            send = np.full(4, ctx.rank, dtype=np.int32)
            recv = np.zeros(4, dtype=np.int32)
            rreq = yield from comm.irecv(recv, source=partner, tag=1)
            sreq = yield from comm.isend(send, dest=partner, tag=1)
            yield from comm.waitall([rreq, sreq])
            ctx.result = int(recv[0])

        result = run_spmd(two_node_pmap, program)
        assert result.results[0] == 1
        assert result.results[1] == 0

    def test_wildcard_source_and_tag(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            if ctx.rank == 2:
                yield from comm.send(np.array([42], dtype=np.int64), dest=0, tag=9)
            elif ctx.rank == 0:
                buf = np.zeros(1, dtype=np.int64)
                status = yield from comm.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                ctx.result = (int(buf[0]), status.source, status.tag)

        result = run_spmd(two_node_pmap, program)
        assert result.results[0] == (42, 2, 9)

    def test_proc_null_completes_immediately(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            buf = np.zeros(4, dtype=np.int64)
            yield from comm.send(buf, dest=PROC_NULL)
            status = yield from comm.recv(buf, source=PROC_NULL)
            ctx.result = status.nbytes

        result = run_spmd(two_node_pmap, program)
        assert all(r == 0 for r in result.results)

    def test_self_message(self, single_node_pmap):
        def program(ctx):
            comm = ctx.world
            send = np.array([ctx.rank * 10], dtype=np.int64)
            recv = np.zeros(1, dtype=np.int64)
            rreq = yield from comm.irecv(recv, source=ctx.rank, tag=3)
            yield from comm.send(send, dest=ctx.rank, tag=3)
            yield from comm.wait(rreq)
            ctx.result = int(recv[0])

        result = run_spmd(single_node_pmap, program)
        assert result.results == [r * 10 for r in range(single_node_pmap.nprocs)]

    def test_message_ordering_same_pair(self, two_node_pmap):
        """Two same-tag messages between the same pair arrive in posting order."""

        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send(np.array([1], dtype=np.int64), dest=1, tag=5)
                yield from comm.send(np.array([2], dtype=np.int64), dest=1, tag=5)
            elif ctx.rank == 1:
                first = np.zeros(1, dtype=np.int64)
                second = np.zeros(1, dtype=np.int64)
                yield from comm.recv(first, source=0, tag=5)
                yield from comm.recv(second, source=0, tag=5)
                ctx.result = (int(first[0]), int(second[0]))

        result = run_spmd(two_node_pmap, program)
        assert result.results[1] == (1, 2)

    def test_tag_selectivity(self, two_node_pmap):
        """A receive with a specific tag skips earlier messages with other tags."""

        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send(np.array([10], dtype=np.int64), dest=1, tag=1)
                yield from comm.send(np.array([20], dtype=np.int64), dest=1, tag=2)
            elif ctx.rank == 1:
                want_two = np.zeros(1, dtype=np.int64)
                want_one = np.zeros(1, dtype=np.int64)
                yield from comm.recv(want_two, source=0, tag=2)
                yield from comm.recv(want_one, source=0, tag=1)
                ctx.result = (int(want_two[0]), int(want_one[0]))

        result = run_spmd(two_node_pmap, program)
        assert result.results[1] == (20, 10)

    def test_rendezvous_large_message(self, two_node_pmap):
        """Messages above the eager limit still deliver correctly."""
        eager = two_node_pmap.params.eager_limit

        def program(ctx):
            comm = ctx.world
            n = (eager // 8) * 4  # four times the eager limit in bytes
            if ctx.rank == 0:
                yield from comm.send(np.arange(n, dtype=np.int64), dest=1)
            elif ctx.rank == 1:
                buf = np.zeros(n, dtype=np.int64)
                yield from comm.recv(buf, source=0)
                ctx.result = bool(np.array_equal(buf, np.arange(n)))

        result = run_spmd(two_node_pmap, program)
        assert result.results[1] is True


class TestTiming:
    def test_inter_node_slower_than_intra_node(self):
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=4)

        def program(ctx, partner):
            comm = ctx.world
            buf = np.zeros(128, dtype=np.uint8)
            if ctx.rank == 0:
                yield from comm.send(buf, dest=partner)
            elif ctx.rank == partner:
                yield from comm.recv(buf, source=0)

        intra = run_spmd(pmap, program, 1).elapsed
        inter = run_spmd(pmap, program, 4).elapsed
        assert inter > intra

    def test_larger_messages_take_longer(self, two_node_pmap):
        def program(ctx, nbytes):
            comm = ctx.world
            buf = np.zeros(nbytes, dtype=np.uint8)
            if ctx.rank == 0:
                yield from comm.send(buf, dest=4)
            elif ctx.rank == 4:
                yield from comm.recv(buf, source=0)

        small = run_spmd(two_node_pmap, program, 64).elapsed
        large = run_spmd(two_node_pmap, program, 65536).elapsed
        assert large > small

    def test_nic_serializes_concurrent_senders(self):
        """Many ranks of one node sending off-node at once are injection-limited."""
        pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=8)

        def program(ctx, senders):
            comm = ctx.world
            nbytes = 32768
            buf = np.zeros(nbytes, dtype=np.uint8)
            if ctx.node == 0 and ctx.local_rank < senders:
                yield from comm.send(buf, dest=8 + ctx.local_rank)
            elif ctx.node == 1 and ctx.local_rank < senders:
                yield from comm.recv(buf, source=ctx.local_rank)

        one = run_spmd(pmap, program, 1).elapsed
        eight = run_spmd(pmap, program, 8).elapsed
        # Eight concurrent senders share the NIC, so the job takes noticeably
        # longer than a single sender (but less than 8x because latencies and
        # fixed per-message costs overlap across senders).
        assert eight > 2.0 * one
        assert eight < 8.0 * one

    def test_elapsed_is_max_of_finish_times(self, two_node_pmap):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.world.send(np.zeros(8, dtype=np.uint8), dest=1)
            elif ctx.rank == 1:
                buf = np.zeros(8, dtype=np.uint8)
                yield from ctx.world.recv(buf, source=0)

        result = run_spmd(two_node_pmap, program)
        assert result.elapsed == pytest.approx(max(result.finish_times))

    def test_traffic_accounting(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            buf = np.zeros(100, dtype=np.uint8)
            if ctx.rank == 0:
                yield from comm.send(buf, dest=4)   # other node
                yield from comm.send(buf, dest=1)   # same NUMA
            elif ctx.rank == 4:
                yield from comm.recv(buf, source=0)
            elif ctx.rank == 1:
                yield from comm.recv(buf, source=0)

        result = run_spmd(two_node_pmap, program)
        assert result.traffic_by_level[LocalityLevel.NETWORK] == (1, 100)
        assert result.traffic_by_level[LocalityLevel.NUMA] == (1, 100)

    def test_trace_records_messages(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            buf = np.zeros(16, dtype=np.uint8)
            if ctx.rank == 0:
                yield from comm.send(buf, dest=7)
            elif ctx.rank == 7:
                yield from comm.recv(buf, source=0)

        result = run_spmd(two_node_pmap, program, record_trace=True)
        assert result.trace is not None
        assert result.trace.message_count() == 1
        record = result.trace.records[0]
        assert record.source == 0 and record.dest == 7 and record.nbytes == 16
        assert record.completion_time >= record.arrival_time >= record.post_time


class TestEngineErrors:
    def test_deadlock_detection(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                buf = np.zeros(4, dtype=np.uint8)
                yield from comm.recv(buf, source=1, tag=99)  # nobody ever sends this

        with pytest.raises(DeadlockError, match="never finished"):
            run_spmd(two_node_pmap, program)

    def test_non_generator_program_rejected(self, two_node_pmap):
        def program(ctx):
            return 42

        with pytest.raises(SimulationError, match="generator"):
            run_spmd(two_node_pmap, program)

    def test_unknown_yield_rejected(self, two_node_pmap):
        def program(ctx):
            yield "not an operation"

        with pytest.raises(SimulationError, match="unknown operation"):
            run_spmd(two_node_pmap, program)

    def test_engine_is_single_use(self, two_node_pmap):
        def program(ctx):
            return
            yield  # pragma: no cover - makes this a generator function

        engine = SpmdEngine(two_node_pmap)
        engine.run(program)
        with pytest.raises(SimulationError, match="single job"):
            engine.run(program)

    def test_phase_timings_collected(self, two_node_pmap):
        def program(ctx):
            start = ctx.now
            yield from ctx.world.barrier()
            ctx.add_timing("barrier", ctx.now - start)

        result = run_spmd(two_node_pmap, program)
        assert result.phases() == ["barrier"]
        assert result.phase_time("barrier") > 0.0
        assert result.phase_time("barrier", reduce=min) <= result.phase_time("barrier")
