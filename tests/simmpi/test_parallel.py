"""Tests of the conservative-lookahead parallel engine (bit-identity and guards).

The parallel engine's contract is exact equivalence with the serial engine:
same event order, same floats, same delivered bytes, at any worker count.
These tests pin that contract against the frozen golden fixture and against
fresh serial runs, and exercise the engine-level failure modes (deadlock
propagation, livelock cap, single-use guard, invalid worker counts).
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.runner import run_alltoall, run_workload
from repro.errors import DeadlockError, SimulationError
from repro.machine import ProcessMap, tiny_cluster
from repro.machine.systems import get_system
from repro.netsim.fabric import parse_fabric
from repro.obs import RecordingSink
from repro.simmpi import run_spmd
from repro.simmpi.parallel import ParallelSpmdEngine
from repro.workloads import make_pattern

FIXTURE_PATH = Path(__file__).resolve().parents[1] / "golden" / "simulated_timings.json"

#: Golden-fixture entries re-run through the parallel engine: eager and
#: rendezvous uniform exchanges, a contended fabric, and a skewed workload.
_GOLDEN_KEYS = [
    "pairwise/4n4p/256B",
    "pairwise/4n4p/16384B",
    "node-aware/4n4p/256B/dragonfly",
    "workload-node-aware/4n4p/skewed-moe",
]


def _digest(results) -> str:
    hasher = hashlib.sha256()
    for buf in results:
        arr = np.asarray(buf)
        hasher.update(str(arr.size).encode())
        hasher.update(arr.tobytes())
    return hasher.hexdigest()


def _outcome_signature(outcome):
    job = outcome.job
    return (
        outcome.elapsed,
        tuple(sorted(outcome.phase_times.items())),
        tuple(job.finish_times),
        job.events_processed,
        _digest(job.results),
    )


def _run_fixture_job(key: str, engine_jobs: int):
    from tests.integration.test_timing_fixture import _PATTERN_SEED, JOBS

    kind, algorithm, nodes, ppn, msg_bytes, pattern, options, *rest = next(
        job[1:] for job in JOBS if job[0] == key
    )
    fabric = parse_fabric(rest[0]) if rest else None
    cluster = get_system("dane", nodes, fabric=fabric)
    pmap = ProcessMap(cluster, ppn=ppn, num_nodes=nodes)
    if kind == "workload":
        matrix = make_pattern(pattern, pmap.nprocs, msg_bytes, seed=_PATTERN_SEED)
        return run_workload(algorithm, pmap, matrix, validate=False,
                            engine_jobs=engine_jobs, **options)
    return run_alltoall(algorithm, pmap, msg_bytes, validate=False,
                        engine_jobs=engine_jobs, **options)


class TestGoldenFixtureParallel:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    @pytest.mark.parametrize("key", _GOLDEN_KEYS)
    def test_parallel_matches_frozen_timings(self, key, workers):
        frozen = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))["jobs"][key]
        outcome = _run_fixture_job(key, workers)
        assert outcome.job.events_processed == frozen["events"]
        assert outcome.elapsed == frozen["elapsed"]
        assert sum(outcome.job.finish_times) == frozen["finish_time_sum"]


class TestSerialEquivalence:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    @pytest.mark.parametrize("algorithm", ["pairwise", "bruck", "node-aware"])
    def test_uniform_exchange_bit_identical(self, algorithm, workers):
        cluster = get_system("dane", 4)
        pmap = ProcessMap(cluster, ppn=3, num_nodes=4)
        serial = run_alltoall(algorithm, pmap, 256, validate=False)
        parallel = run_alltoall(algorithm, pmap, 256, validate=False,
                                engine_jobs=workers)
        assert _outcome_signature(parallel) == _outcome_signature(serial)

    @pytest.mark.parametrize("workers", [2, 8])
    def test_rendezvous_sizes_bit_identical(self, workers):
        cluster = get_system("dane", 4)
        pmap = ProcessMap(cluster, ppn=2, num_nodes=4)
        serial = run_alltoall("pairwise", pmap, 65536, validate=False)
        parallel = run_alltoall("pairwise", pmap, 65536, validate=False,
                                engine_jobs=workers)
        assert _outcome_signature(parallel) == _outcome_signature(serial)

    def test_fabric_workload_bit_identical(self):
        fabric = parse_fabric("dragonfly:hosts=2,routers=2,taper=4")
        cluster = get_system("dane", 4, fabric=fabric)
        pmap = ProcessMap(cluster, ppn=4, num_nodes=4)
        matrix = make_pattern("skewed-moe", pmap.nprocs, 64, seed=7)
        serial = run_workload("node-aware", pmap, matrix, validate=False)
        parallel = run_workload("node-aware", pmap, matrix, validate=False,
                                engine_jobs=4)
        assert _outcome_signature(parallel) == _outcome_signature(serial)

    def test_folded_run_degenerates_to_single_partition(self):
        cluster = get_system("dane", 64)
        pmap = ProcessMap(cluster, ppn=4, num_nodes=64)
        serial = run_alltoall("pairwise", pmap, 256, fold="on", validate=False)
        parallel = run_alltoall("pairwise", pmap, 256, fold="on", validate=False,
                                engine_jobs=8)
        assert parallel.elapsed == serial.elapsed
        assert parallel.job.events_processed == serial.job.events_processed

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sink_event_stream_identical(self, workers):
        cluster = get_system("dane", 4)
        pmap = ProcessMap(cluster, ppn=2, num_nodes=4)
        serial_sink = RecordingSink()
        run_alltoall("node-aware", pmap, 256, validate=False, sink=serial_sink)
        parallel_sink = RecordingSink()
        run_alltoall("node-aware", pmap, 256, validate=False, sink=parallel_sink,
                     engine_jobs=workers)
        assert parallel_sink.events == serial_sink.events


class TestEngineMechanics:
    def test_partition_mapping_is_contiguous_and_balanced(self, two_node_pmap):
        engine = ParallelSpmdEngine(two_node_pmap, workers=2)
        assert engine.partitions == 2
        assert engine._node_partition == [0, 1]
        big = ProcessMap(tiny_cluster(num_nodes=6), ppn=2, num_nodes=6)
        engine = ParallelSpmdEngine(big, workers=4)
        assert engine.partitions == 4
        mapping = engine._node_partition
        assert mapping == sorted(mapping)  # contiguous
        assert max(mapping) == 3 and min(mapping) == 0
        # workers beyond the node count are clamped
        assert ParallelSpmdEngine(big, workers=100).partitions == 6

    def test_merged_view_and_partition_counters(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            partner = ctx.rank ^ 1
            send = np.full(4, ctx.rank, dtype=np.int32)
            recv = np.zeros(4, dtype=np.int32)
            rreq = yield from comm.irecv(recv, source=partner, tag=1)
            sreq = yield from comm.isend(send, dest=partner, tag=1)
            yield from comm.waitall([rreq, sreq])

        engine = ParallelSpmdEngine(two_node_pmap, workers=2)
        result = engine.run(program)
        assert result.events_processed == engine.simulator.events_processed
        assert sum(engine.partition_events) == engine.simulator.events_processed
        assert len(engine.partition_clocks) == engine.partitions == 2
        assert engine.simulator.now == max(engine.partition_clocks)
        assert engine.lookahead > 0.0

    def test_deadlock_propagates_from_worker_threads(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                buf = np.zeros(4, dtype=np.uint8)
                yield from comm.recv(buf, source=1, tag=99)  # nobody sends

        with pytest.raises(DeadlockError, match="never finished"):
            run_spmd(two_node_pmap, program, engine_jobs=2)

    def test_engine_is_single_use(self, two_node_pmap):
        def program(ctx):
            return
            yield

        engine = ParallelSpmdEngine(two_node_pmap, workers=2)
        engine.run(program)
        with pytest.raises(SimulationError):
            engine.run(program)

    def test_livelock_cap_enforced_across_partitions(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            partner = ctx.rank ^ 1
            for tag in range(64):
                send = np.zeros(8, dtype=np.uint8)
                recv = np.zeros(8, dtype=np.uint8)
                rreq = yield from comm.irecv(recv, source=partner, tag=tag)
                sreq = yield from comm.isend(send, dest=partner, tag=tag)
                yield from comm.waitall([rreq, sreq])

        engine = ParallelSpmdEngine(two_node_pmap, workers=2, max_events=50)
        with pytest.raises(SimulationError, match="exceeded"):
            engine.run(program)

    def test_invalid_worker_counts_rejected(self, two_node_pmap):
        def program(ctx):
            return
            yield

        with pytest.raises(SimulationError, match=">= 1"):
            ParallelSpmdEngine(two_node_pmap, workers=0)
        with pytest.raises(SimulationError, match=">= 1"):
            run_spmd(two_node_pmap, program, engine_jobs=0)

    def test_cross_partition_wakeups_are_counted_and_guarded(self):
        cluster = get_system("dane", 4)
        pmap = ProcessMap(cluster, ppn=2, num_nodes=4)
        outcome = run_alltoall("pairwise", pmap, 65536, validate=False,
                               engine_jobs=4)
        metrics = outcome.job.metrics["engine"]
        assert metrics["partitions"] == 4
        assert metrics["cross_partition_wakeups"] > 0
