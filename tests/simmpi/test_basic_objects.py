"""Tests for the small simulated-MPI value objects (datatypes, status, request, group)."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, SimulationError
from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG, PROC_NULL, itemsize_of, nbytes_of
from repro.simmpi.group import Group
from repro.simmpi.request import Request
from repro.simmpi.status import Status


class TestDatatypes:
    def test_constants_are_distinct(self):
        assert len({ANY_SOURCE, ANY_TAG, PROC_NULL}) >= 2
        assert PROC_NULL < 0 and ANY_SOURCE < 0

    def test_nbytes_of(self):
        assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80
        assert nbytes_of(np.zeros(3, dtype=np.uint8)) == 3

    def test_itemsize_of(self):
        assert itemsize_of(np.zeros(1, dtype=np.int32)) == 4

    def test_non_array_rejected(self):
        with pytest.raises(TypeError):
            nbytes_of([1, 2, 3])
        with pytest.raises(TypeError):
            itemsize_of("abc")


class TestStatus:
    def test_count(self):
        status = Status(source=1, tag=2, nbytes=32)
        assert status.count(8) == 4

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Status(nbytes=10).count(8)

    def test_count_invalid_itemsize(self):
        with pytest.raises(ValueError):
            Status(nbytes=8).count(0)


class TestRequest:
    def test_completion(self):
        req = Request("send", owner=0)
        assert not req.completed
        req.complete(1.5)
        assert req.completed and req.completion_time == 1.5

    def test_double_completion_rejected(self):
        req = Request("send", owner=0)
        req.complete(1.0)
        with pytest.raises(SimulationError):
            req.complete(2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            Request("recv", owner=0).complete(-1.0)

    def test_callback_after_completion_fires_immediately(self):
        req = Request("recv", owner=0)
        req.complete(1.0, Status(source=3, tag=1, nbytes=4))
        seen = []
        req.on_complete(lambda r: seen.append(r.status.source))
        assert seen == [3]

    def test_callback_before_completion_deferred(self):
        req = Request("recv", owner=0)
        seen = []
        req.on_complete(lambda r: seen.append(r.completion_time))
        assert seen == []
        req.complete(2.0)
        assert seen == [2.0]

    def test_unique_ids(self):
        assert Request("send", 0).id != Request("send", 0).id


class TestGroup:
    def test_size_and_membership(self):
        group = Group((4, 7, 9))
        assert group.size == 3
        assert 7 in group and 5 not in group
        assert list(group) == [4, 7, 9]

    def test_rank_translation(self):
        group = Group((4, 7, 9))
        assert group.rank_of(7) == 1
        assert group.world_rank(2) == 9
        assert group.translate([0, 2]) == [4, 9]

    def test_rank_of_non_member_rejected(self):
        with pytest.raises(CommunicatorError):
            Group((1, 2)).rank_of(5)

    def test_world_rank_out_of_range_rejected(self):
        with pytest.raises(CommunicatorError):
            Group((1, 2)).world_rank(2)

    def test_duplicates_rejected(self):
        with pytest.raises(CommunicatorError):
            Group((1, 1, 2))

    def test_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            Group(())

    def test_negative_rank_rejected(self):
        with pytest.raises(CommunicatorError):
            Group((0, -1))

    def test_set_operations(self):
        a = Group((0, 1, 2, 3))
        b = Group((2, 3, 4))
        assert a.intersection(b).world_ranks == (2, 3)
        assert a.union(b).world_ranks == (0, 1, 2, 3, 4)
        assert a.difference(b).world_ranks == (0, 1)
