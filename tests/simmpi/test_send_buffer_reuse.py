"""Buffered-send semantics under single-copy delivery.

``post_send`` no longer snapshots the payload unconditionally: when the
match happens in the same event cascade the payload is copied once,
straight into the receive buffer, and only a message parked in the
unexpected queue is snapshotted.  The user-visible contract is unchanged —
the sender may overwrite its buffer as soon as the send operation returns —
and these regression tests pin that contract on every delivery path:
matched-at-send (receive pre-posted), unexpected (receive posted later),
for both the eager and the rendezvous protocol.
"""

import numpy as np
import pytest

from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd

_TAG = 11


@pytest.fixture()
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=2), ppn=4)


def _payload(n_items, dtype=np.int64):
    return np.arange(1, n_items + 1, dtype=dtype)


def _reuse_program(ctx, n_items, prepost):
    """Rank 0 sends and immediately trashes its buffer; rank 1 receives."""
    comm = ctx.world
    if ctx.rank == 0:
        if not prepost:
            # Give rank 1 time to go idle so the message is guaranteed to
            # land in the unexpected queue (receive not yet posted).
            pass
        buf = _payload(n_items)
        request = yield from comm.isend(buf, dest=1, tag=_TAG)
        # The send operation has returned: buffered-send semantics say the
        # buffer is ours again, whether or not the receive exists yet.
        buf[:] = -1
        yield from comm.wait(request)
        buf[:] = -2  # and after completion, obviously, too
    elif ctx.rank == 1:
        recv = np.zeros(n_items, dtype=np.int64)
        if prepost:
            request = yield from comm.irecv(recv, source=0, tag=_TAG)
            yield from comm.wait(request)
        else:
            from repro.simmpi.ops import Delay

            # Post the receive well after the message has arrived.
            yield Delay(seconds=1e-3)
            status = yield from comm.recv(recv, source=0, tag=_TAG)
            assert status.source == 0
        ctx.result = recv


def _eager_items(pmap):
    return min(64, pmap.params.eager_limit // 8)


def _rendezvous_items(pmap):
    return (pmap.params.eager_limit // 8) * 2


@pytest.mark.parametrize("prepost", [True, False], ids=["matched-at-send", "unexpected"])
def test_eager_send_buffer_reuse(pmap, prepost):
    n = _eager_items(pmap)
    result = run_spmd(pmap, _reuse_program, n, prepost)
    assert np.array_equal(result.results[1], _payload(n)), (
        "receiver must observe the payload as it was when the send was posted, "
        "not the sender's later overwrites"
    )


@pytest.mark.parametrize("prepost", [True, False], ids=["matched-at-send", "unexpected"])
def test_rendezvous_send_buffer_reuse(pmap, prepost):
    n = _rendezvous_items(pmap)
    result = run_spmd(pmap, _reuse_program, n, prepost)
    assert np.array_equal(result.results[1], _payload(n))


def test_forwarded_block_reuse_chain(pmap):
    """Ring-style forwarding: each rank sends a block it overwrites right after.

    This is the allgather access pattern (send a block of the receive
    buffer, then receive the next block into an adjacent slot) that makes
    deferred snapshots dangerous if the copy were taken any later than the
    send's own event cascade.
    """

    def program(ctx):
        comm = ctx.world
        size, rank = comm.size, comm.rank
        token = np.array([rank * 100], dtype=np.int64)
        incoming = np.zeros(1, dtype=np.int64)
        right = (rank + 1) % size
        left = (rank - 1) % size
        for _ in range(size - 1):
            yield from comm.sendrecv(token, right, incoming, left,
                                     sendtag=_TAG, recvtag=_TAG)
            token[0] = incoming[0]  # forward what was just received
        ctx.result = int(token[0])

    result = run_spmd(pmap, program)
    size = pmap.nprocs
    # After size-1 forwarding steps every rank holds its successor's token.
    assert result.results == [((r + 1) % size) * 100 for r in range(size)]
