"""Tests for communicator construction, splitting and the topology layouts."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, ConfigurationError
from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd
from repro.simmpi.split import (
    build_comm_layout,
    cross_group_comm,
    cross_node_comm,
    local_group_comm,
    node_comm,
    node_leaders_comm,
)


class TestCommunicatorBasics:
    def test_world_properties(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            ctx.result = (comm.rank, comm.size, comm.world_rank, comm.context_id)
            return
            yield  # pragma: no cover

        result = run_spmd(two_node_pmap, program)
        for world_rank, (rank, size, wr, ctx_id) in enumerate(result.results):
            assert rank == world_rank == wr
            assert size == two_node_pmap.nprocs
            assert ctx_id == 0

    def test_rank_translation(self, two_node_pmap):
        def program(ctx):
            comm = ctx.world
            ctx.result = (comm.world_rank_of(3), comm.local_rank_of(3))
            return
            yield  # pragma: no cover

        result = run_spmd(two_node_pmap, program)
        assert result.results[0] == (3, 3)

    def test_create_subcomm_requires_membership(self, two_node_pmap):
        def program(ctx):
            if ctx.rank == 0:
                try:
                    ctx.world.create_subcomm([1, 2, 3])
                except CommunicatorError:
                    ctx.result = "rejected"
            return
            yield  # pragma: no cover

        result = run_spmd(two_node_pmap, program)
        assert result.results[0] == "rejected"

    def test_dup_gets_new_context(self, two_node_pmap):
        def program(ctx):
            dup = ctx.world.dup()
            ctx.result = (dup.context_id, dup.size, dup.rank)
            return
            yield  # pragma: no cover

        result = run_spmd(two_node_pmap, program)
        context_ids = {r[0] for r in result.results}
        assert len(context_ids) == 1  # every rank derives the same id
        assert result.results[0][0] != 0
        assert result.results[3] == (result.results[0][0], two_node_pmap.nprocs, 3)

    def test_non_array_buffer_rejected(self, two_node_pmap):
        def program(ctx):
            yield from ctx.world.send([1, 2, 3], dest=0)

        with pytest.raises(CommunicatorError):
            run_spmd(two_node_pmap, program)


class TestSplit:
    def test_split_by_node(self, tiny_pmap):
        def program(ctx):
            comm = yield from ctx.world.split(color=ctx.node)
            ctx.result = (comm.size, comm.rank, tuple(comm.group.world_ranks))

        result = run_spmd(tiny_pmap, program)
        for rank, (size, local, members) in enumerate(result.results):
            node = tiny_pmap.node_of(rank)
            assert size == tiny_pmap.ppn
            assert local == tiny_pmap.local_rank(rank)
            assert members == tuple(tiny_pmap.ranks_on_node(node))

    def test_split_with_custom_key_reorders(self, two_node_pmap):
        def program(ctx):
            # Reverse ordering within a single color.
            comm = yield from ctx.world.split(color=0, key=-ctx.rank)
            ctx.result = comm.rank

        result = run_spmd(two_node_pmap, program)
        p = two_node_pmap.nprocs
        assert result.results == [p - 1 - r for r in range(p)]

    def test_split_undefined_color_returns_none(self, two_node_pmap):
        def program(ctx):
            comm = yield from ctx.world.split(color=None if ctx.rank % 2 else 0)
            ctx.result = None if comm is None else comm.size

        result = run_spmd(two_node_pmap, program)
        expected_size = two_node_pmap.nprocs // 2
        for rank, value in enumerate(result.results):
            assert value == (None if rank % 2 else expected_size)

    def test_split_negative_color_rejected(self, two_node_pmap):
        def program(ctx):
            yield from ctx.world.split(color=-2)

        with pytest.raises(CommunicatorError):
            run_spmd(two_node_pmap, program)

    def test_split_subcomm_is_usable(self, tiny_pmap):
        def program(ctx):
            comm = yield from ctx.world.split(color=ctx.node)
            total = np.zeros(1)
            yield from comm.allreduce(np.array([float(ctx.rank)]), total)
            ctx.result = float(total[0])

        result = run_spmd(tiny_pmap, program)
        for rank, value in enumerate(result.results):
            node = tiny_pmap.node_of(rank)
            assert value == pytest.approx(sum(tiny_pmap.ranks_on_node(node)))


class TestTopologyLayouts:
    def test_node_comm(self, tiny_pmap):
        def program(ctx):
            comm = node_comm(ctx)
            ctx.result = (comm.size, comm.rank, tuple(comm.group.world_ranks))
            return
            yield  # pragma: no cover

        result = run_spmd(tiny_pmap, program)
        for rank, (size, local, members) in enumerate(result.results):
            assert size == tiny_pmap.ppn
            assert local == tiny_pmap.local_rank(rank)
            assert members == tuple(tiny_pmap.ranks_on_node(tiny_pmap.node_of(rank)))

    def test_local_group_comm(self, tiny_pmap):
        def program(ctx):
            comm = local_group_comm(ctx, 4)
            ctx.result = tuple(comm.group.world_ranks)
            return
            yield  # pragma: no cover

        result = run_spmd(tiny_pmap, program)
        assert result.results[0] == (0, 1, 2, 3)
        assert result.results[5] == (4, 5, 6, 7)
        assert result.results[13] == (12, 13, 14, 15)

    def test_cross_group_comm_members(self, tiny_pmap):
        def program(ctx):
            comm = cross_group_comm(ctx, 4)
            ctx.result = (comm.size, tuple(comm.group.world_ranks))
            return
            yield  # pragma: no cover

        result = run_spmd(tiny_pmap, program)
        size, members = result.results[0]
        # 32 ranks / groups of 4 = 8 groups; rank 0 sits at position 0 of its group.
        assert size == 8
        assert members == (0, 4, 8, 12, 16, 20, 24, 28)
        # rank 5 is at position 1 of its group.
        _, members5 = result.results[5]
        assert members5 == (1, 5, 9, 13, 17, 21, 25, 29)

    def test_cross_node_comm(self, tiny_pmap):
        def program(ctx):
            comm = cross_node_comm(ctx)
            ctx.result = tuple(comm.group.world_ranks)
            return
            yield  # pragma: no cover

        result = run_spmd(tiny_pmap, program)
        assert result.results[3] == (3, 11, 19, 27)

    def test_node_leaders_comm(self, tiny_pmap):
        def program(ctx):
            if ctx.local_rank % 4 == 0:
                comm = node_leaders_comm(ctx, 4)
                ctx.result = tuple(comm.group.world_ranks)
            return
            yield  # pragma: no cover

        result = run_spmd(tiny_pmap, program)
        assert result.results[0] == (0, 4)
        assert result.results[12] == (8, 12)
        assert result.results[1] is None

    def test_build_comm_layout_defaults_to_node(self, tiny_pmap):
        def program(ctx):
            layout = build_comm_layout(ctx)
            ctx.result = (
                layout.procs_per_group,
                layout.groups_per_node,
                layout.local.size,
                layout.cross_group.size,
                layout.cross_node.size,
            )
            return
            yield  # pragma: no cover

        result = run_spmd(tiny_pmap, program)
        assert result.results[0] == (8, 1, 8, 4, 4)

    def test_build_comm_layout_with_groups(self, tiny_pmap):
        def program(ctx):
            layout = build_comm_layout(ctx, procs_per_group=2)
            ctx.result = (layout.local.size, layout.cross_group.size, layout.groups_per_node)
            return
            yield  # pragma: no cover

        result = run_spmd(tiny_pmap, program)
        assert result.results[0] == (2, 16, 4)

    def test_layout_group_too_large_rejected(self, tiny_pmap):
        def program(ctx):
            build_comm_layout(ctx, procs_per_group=16)
            return
            yield  # pragma: no cover

        with pytest.raises(ConfigurationError):
            run_spmd(tiny_pmap, program)

    def test_invalid_group_size_rejected(self, tiny_pmap):
        def program(ctx):
            local_group_comm(ctx, 3)
            return
            yield  # pragma: no cover

        with pytest.raises(ConfigurationError):
            run_spmd(tiny_pmap, program)
