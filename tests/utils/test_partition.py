"""Tests for repro.utils.partition."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.partition import (
    chunk_evenly,
    contiguous_partition,
    divisors,
    round_robin_partition,
    validate_group_size,
)


class TestChunkEvenly:
    def test_even_division(self):
        assert chunk_evenly(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_to_first_chunks(self):
        assert chunk_evenly(10, 4) == [3, 3, 2, 2]

    def test_more_chunks_than_items(self):
        assert chunk_evenly(2, 4) == [1, 1, 0, 0]

    def test_zero_items(self):
        assert chunk_evenly(0, 3) == [0, 0, 0]

    def test_sum_preserved(self):
        assert sum(chunk_evenly(113, 7)) == 113

    def test_invalid_chunks(self):
        with pytest.raises(ConfigurationError):
            chunk_evenly(10, 0)

    def test_negative_items(self):
        with pytest.raises(ConfigurationError):
            chunk_evenly(-1, 3)


class TestContiguousPartition:
    def test_basic(self):
        assert contiguous_partition(range(8), 4) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_group_size_one(self):
        assert contiguous_partition([5, 6, 7], 1) == [[5], [6], [7]]

    def test_whole_list_one_group(self):
        assert contiguous_partition([1, 2, 3], 3) == [[1, 2, 3]]

    def test_uneven_rejected(self):
        with pytest.raises(ConfigurationError):
            contiguous_partition(range(10), 4)


class TestRoundRobinPartition:
    def test_basic(self):
        assert round_robin_partition(range(8), 2) == [[0, 2, 4, 6], [1, 3, 5, 7]]

    def test_single_group(self):
        assert round_robin_partition([3, 4], 1) == [[3, 4]]

    def test_uneven_rejected(self):
        with pytest.raises(ConfigurationError):
            round_robin_partition(range(7), 2)

    def test_zero_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            round_robin_partition(range(4), 0)


class TestDivisors:
    def test_small_numbers(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_prime(self):
        assert divisors(13) == [1, 13]

    def test_one(self):
        assert divisors(1) == [1]

    def test_perfect_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_paper_node_size(self):
        # 112 cores per node: the group sizes the paper sweeps must all divide it.
        divs = divisors(112)
        assert {4, 8, 16, 28, 56, 112} <= set(divs)

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            divisors(0)


class TestValidateGroupSize:
    def test_returns_group_count(self):
        assert validate_group_size(112, 4) == 28

    def test_whole_set(self):
        assert validate_group_size(8, 8) == 1

    def test_non_divisible_rejected(self):
        with pytest.raises(ConfigurationError, match="does not evenly divide"):
            validate_group_size(112, 5)

    def test_zero_group_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_group_size(8, 0)

    def test_zero_items_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_group_size(0, 2)
