"""Tests for repro.utils.statistics."""

import math

import pytest

from repro.utils.statistics import (
    RunningStatistics,
    geometric_mean,
    min_of_runs,
    speedup,
    summarize,
)


class TestMinOfRuns:
    def test_returns_minimum(self):
        assert min_of_runs([3.0, 1.5, 2.0]) == 1.5

    def test_single_sample(self):
        assert min_of_runs([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            min_of_runs([])


class TestSpeedup:
    def test_faster_candidate(self):
        assert speedup(2.0, 0.5) == 4.0

    def test_slower_candidate(self):
        assert speedup(1.0, 2.0) == 0.5

    def test_zero_candidate_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_negative_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup(-1.0, 1.0)


class TestGeometricMean:
    def test_identical_values(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestSummarize:
    def test_fields_present(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["n"] == 3
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["median"] == pytest.approx(2.0)

    def test_even_count_median(self):
        assert summarize([1.0, 2.0, 3.0, 4.0])["median"] == pytest.approx(2.5)

    def test_std_of_constant_is_zero(self):
        assert summarize([5.0, 5.0, 5.0])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestVarianceConvention:
    """Both reporting paths must agree on the sample-variance (n-1) convention."""

    @pytest.mark.parametrize(
        "samples",
        [
            [1.0, 2.0, 4.0, 8.0],
            [0.5, 0.5, 0.5],
            [3.0, 7.0],
            [1e-6, 2e-6, 5e-6, 9e-6, 1.3e-5],
        ],
    )
    def test_summarize_and_running_statistics_agree(self, samples):
        acc = RunningStatistics()
        acc.update(samples)
        batch = summarize(samples)
        mean = sum(samples) / len(samples)
        expected_var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        assert batch["std"] == pytest.approx(math.sqrt(expected_var))
        assert batch["std"] == pytest.approx(acc.std)
        assert batch["mean"] == pytest.approx(acc.mean)

    def test_single_sample_std_is_zero_in_both(self):
        acc = RunningStatistics()
        acc.add(4.2)
        assert summarize([4.2])["std"] == 0.0
        assert acc.std == 0.0


class TestRunningStatistics:
    def test_matches_batch_summary(self):
        samples = [0.5, 1.5, 2.5, 10.0, 0.25]
        acc = RunningStatistics()
        acc.update(samples)
        assert acc.count == 5
        assert acc.minimum == 0.25
        assert acc.maximum == 10.0
        assert acc.mean == pytest.approx(sum(samples) / 5)

    def test_variance_matches_two_pass(self):
        samples = [1.0, 2.0, 4.0, 8.0]
        acc = RunningStatistics()
        acc.update(samples)
        mean = sum(samples) / len(samples)
        expected = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        assert acc.variance == pytest.approx(expected)
        assert acc.std == pytest.approx(math.sqrt(expected))

    def test_single_sample_variance_zero(self):
        acc = RunningStatistics()
        acc.add(3.0)
        assert acc.variance == 0.0

    def test_as_dict_requires_samples(self):
        with pytest.raises(ValueError):
            RunningStatistics().as_dict()

    def test_as_dict_contents(self):
        acc = RunningStatistics()
        acc.update([2.0, 4.0])
        d = acc.as_dict()
        assert d["n"] == 2 and d["min"] == 2.0 and d["max"] == 4.0
