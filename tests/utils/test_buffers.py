"""Tests for repro.utils.buffers."""

import numpy as np
import pytest

from repro.errors import BufferSizeError
from repro.utils.buffers import (
    as_block_view,
    block_slice,
    check_buffer,
    concat_blocks,
    make_alltoall_sendbuf,
    split_blocks,
)


class TestCheckBuffer:
    def test_accepts_matching_buffer(self):
        buf = np.zeros(12, dtype=np.int32)
        assert check_buffer(buf, 3, 4) is buf

    def test_rejects_wrong_size(self):
        with pytest.raises(BufferSizeError, match="12"):
            check_buffer(np.zeros(10), 3, 4)

    def test_rejects_non_array(self):
        with pytest.raises(TypeError):
            check_buffer([0.0] * 12, 3, 4)

    def test_rejects_multidimensional(self):
        with pytest.raises(BufferSizeError, match="one-dimensional"):
            check_buffer(np.zeros((3, 4)), 3, 4)

    def test_rejects_non_contiguous(self):
        buf = np.zeros(24)[::2]
        with pytest.raises(BufferSizeError, match="contiguous"):
            check_buffer(buf, 3, 4)


class TestBlockSlice:
    def test_first_block(self):
        assert block_slice(0, 5) == slice(0, 5)

    def test_later_block(self):
        assert block_slice(3, 4) == slice(12, 16)

    def test_zero_items(self):
        assert block_slice(2, 0) == slice(0, 0)

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            block_slice(-1, 4)

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            block_slice(1, -4)


class TestAsBlockView:
    def test_view_shares_memory(self):
        buf = np.arange(12)
        view = as_block_view(buf, 3, 4)
        assert view.shape == (3, 4)
        view[1, 0] = 99
        assert buf[4] == 99

    def test_wrong_size_rejected(self):
        with pytest.raises(BufferSizeError):
            as_block_view(np.arange(10), 3, 4)


class TestSplitConcat:
    def test_split_blocks_roundtrip(self):
        buf = np.arange(20)
        blocks = split_blocks(buf, 5)
        assert len(blocks) == 5
        assert all(b.size == 4 for b in blocks)
        assert np.array_equal(concat_blocks(blocks), buf)

    def test_split_views_share_memory(self):
        buf = np.zeros(8)
        blocks = split_blocks(buf, 2)
        blocks[1][:] = 7
        assert np.array_equal(buf, [0, 0, 0, 0, 7, 7, 7, 7])

    def test_split_uneven_rejected(self):
        with pytest.raises(BufferSizeError):
            split_blocks(np.arange(10), 3)

    def test_split_zero_blocks_rejected(self):
        with pytest.raises(ValueError):
            split_blocks(np.arange(10), 0)

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat_blocks([])


class TestMakeAlltoallSendbuf:
    def test_shape_and_dtype(self):
        buf = make_alltoall_sendbuf(2, 4, 3)
        assert buf.shape == (12,)
        assert buf.dtype == np.int64

    def test_blocks_unique_per_destination(self):
        buf = make_alltoall_sendbuf(1, 4, 2).reshape(4, 2)
        firsts = {int(buf[d, 0]) for d in range(4)}
        assert len(firsts) == 4

    def test_blocks_unique_per_source(self):
        a = make_alltoall_sendbuf(0, 4, 2)
        b = make_alltoall_sendbuf(1, 4, 2)
        assert not np.array_equal(a, b)

    def test_uint8_wraps_without_error(self):
        buf = make_alltoall_sendbuf(100, 64, 8, dtype=np.uint8)
        assert buf.dtype == np.uint8
        assert buf.size == 64 * 8

    def test_zero_block_items(self):
        buf = make_alltoall_sendbuf(0, 4, 0)
        assert buf.size == 0

    def test_negative_block_items_rejected(self):
        with pytest.raises(ValueError):
            make_alltoall_sendbuf(0, 4, -1)
