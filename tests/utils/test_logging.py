"""Tests for repro.utils.logging."""

import logging

from repro.utils.logging import enable_console_logging, get_logger


class TestGetLogger:
    def test_default_is_package_logger(self):
        assert get_logger().name == "repro"

    def test_namespacing(self):
        assert get_logger("simmpi.engine").name == "repro.simmpi.engine"

    def test_already_qualified_name_unchanged(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_package_logger_has_null_handler(self):
        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)


class TestEnableConsoleLogging:
    def test_adds_and_removable(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        handler = enable_console_logging(logging.DEBUG)
        try:
            assert handler in logger.handlers
            assert handler.level == logging.DEBUG
        finally:
            logger.removeHandler(handler)
        assert logger.handlers == before
