"""Property-based tests of the all-to-all algorithm family.

Every algorithm, at every valid configuration drawn by Hypothesis, must
produce exactly the transposition that defines ``MPI_Alltoall``.  The
machine shapes are kept small so the discrete-event simulation stays fast,
but the strategies deliberately cover non-power-of-two rank counts, group
sizes that equal 1 or the whole node, and message sizes straddling the
eager/rendezvous threshold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_alltoall
from repro.core.validation import alltoall_reference
from repro.machine import ProcessMap, tiny_cluster
from repro.utils.partition import divisors


def _pmap(num_nodes: int, ppn: int) -> ProcessMap:
    return ProcessMap(tiny_cluster(num_nodes=num_nodes), ppn=ppn)


flat_algorithms = st.sampled_from(["pairwise", "nonblocking", "bruck", "batched"])
small_shapes = st.tuples(st.integers(1, 3), st.integers(1, 6))  # (nodes, ppn)
msg_sizes = st.sampled_from([1, 3, 8, 17, 64])


@settings(max_examples=25, deadline=None)
@given(name=flat_algorithms, shape=small_shapes, msg_bytes=msg_sizes)
def test_flat_algorithms_always_transpose(name, shape, msg_bytes):
    nodes, ppn = shape
    if nodes * ppn < 2:
        return
    outcome = run_alltoall(name, _pmap(nodes, ppn), msg_bytes=msg_bytes, keep_job=False)
    assert outcome.correct


@settings(max_examples=20, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 3), st.sampled_from([2, 4, 6, 8])),
    msg_bytes=msg_sizes,
    data=st.data(),
)
def test_grouped_algorithms_always_transpose(shape, msg_bytes, data):
    nodes, ppn = shape
    group = data.draw(st.sampled_from(divisors(ppn)), label="group size")
    algorithm = data.draw(
        st.sampled_from(["hierarchical", "locality-aware", "multileader-node-aware"]),
        label="algorithm",
    )
    inner = data.draw(st.sampled_from(["pairwise", "nonblocking"]), label="inner")
    option = {
        "hierarchical": "procs_per_leader",
        "locality-aware": "procs_per_group",
        "multileader-node-aware": "procs_per_leader",
    }[algorithm]
    outcome = run_alltoall(
        algorithm, _pmap(nodes, ppn), msg_bytes=msg_bytes, keep_job=False,
        inner=inner, **{option: group},
    )
    assert outcome.correct


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(2, 9),
    block=st.integers(1, 7),
    seed=st.integers(0, 2**16),
)
def test_simulated_pairwise_matches_numpy_reference_on_random_data(nprocs, block, seed):
    """The simulated exchange agrees with an independent NumPy oracle on arbitrary payloads."""
    from repro.simmpi import run_spmd
    from repro.core.alltoall.pairwise import exchange_pairwise

    pmap = ProcessMap(tiny_cluster(num_nodes=1, cores_per_numa=9), ppn=nprocs)
    rng = np.random.default_rng(seed)
    sendbufs = [rng.integers(-1000, 1000, size=nprocs * block, dtype=np.int64) for _ in range(nprocs)]

    def program(ctx):
        recv = np.zeros(nprocs * block, dtype=np.int64)
        yield from exchange_pairwise(ctx.world, sendbufs[ctx.rank], recv)
        ctx.result = recv

    results = run_spmd(pmap, program).results
    expected = alltoall_reference(sendbufs)
    for got, want in zip(results, expected):
        assert np.array_equal(got, want)


@settings(max_examples=10, deadline=None)
@given(msg_bytes=st.integers(1, 256))
def test_traffic_volume_invariant(msg_bytes):
    """Node-aware aggregation never changes the total inter-node volume, only the message count."""
    pmap = _pmap(2, 4)
    flat = run_alltoall("pairwise", pmap, msg_bytes=msg_bytes, keep_job=False, validate=False)
    aggregated = run_alltoall("node-aware", pmap, msg_bytes=msg_bytes, keep_job=False, validate=False)
    assert aggregated.inter_node_bytes == flat.inter_node_bytes
    assert aggregated.inter_node_messages <= flat.inter_node_messages


@settings(max_examples=20, deadline=None)
@given(msg_bytes=st.integers(1, 2048), nodes=st.integers(2, 4))
def test_model_predictions_positive_and_monotone_in_nodes(msg_bytes, nodes):
    from repro.model.predict import predict_time

    cluster = tiny_cluster(num_nodes=4)
    smaller = ProcessMap(cluster, ppn=8, num_nodes=nodes - 1) if nodes > 2 else None
    current = ProcessMap(cluster, ppn=8, num_nodes=nodes)
    value = predict_time("node-aware", current, msg_bytes)
    assert value > 0.0
    if smaller is not None:
        assert value >= predict_time("node-aware", smaller, msg_bytes)
