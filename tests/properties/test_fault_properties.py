"""Property-based tests of fault-injection determinism.

The contract that makes faulted sweeps cacheable and reproducible: every
fault draw is a pure function of ``(FaultSpec, seed, rank/link)``.  Nothing
may depend on wall clock, process identity, dict ordering, or how many
worker threads/processes happen to execute the simulation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import run_alltoall
from repro.faults import (
    DegradedLink,
    FaultSpec,
    FlappingLink,
    OsNoise,
    StragglerNode,
    faults_from_payload,
)
from repro.faults.apply import OsNoiseState, nic_scale_vector
from repro.faults.spec import noise_stream_seed
from repro.machine.process_map import ProcessMap
from repro.machine.systems import tiny_cluster

amplitudes = st.floats(min_value=1e-9, max_value=1e-5, allow_nan=False)
seeds = st.integers(min_value=-(2**31), max_value=2**31)
ranks = st.integers(min_value=0, max_value=63)


@settings(max_examples=50, deadline=None)
@given(seed=seeds, rank=ranks)
def test_noise_stream_seed_is_pure(seed, rank):
    assert noise_stream_seed(seed, rank) == noise_stream_seed(seed, rank)


@settings(max_examples=25, deadline=None)
@given(amplitude=amplitudes, seed=seeds, rank=ranks, draws=st.integers(1, 20))
def test_noise_draws_are_pure_functions_of_spec_seed_rank(amplitude, seed, rank, draws):
    """The i-th draw of a rank is identical across independent states."""
    first = OsNoiseState(amplitude, seed)
    second = OsNoiseState(amplitude, seed)
    assert [first.draw(rank) for _ in range(draws)] == \
        [second.draw(rank) for _ in range(draws)]


@settings(max_examples=25, deadline=None)
@given(amplitude=amplitudes, seed=seeds, draws=st.integers(1, 10))
def test_noise_streams_are_independent_of_interleaving(amplitude, seed, draws):
    """Interleaving ranks A and B cannot change either rank's stream.

    This is exactly the property that makes the draws independent of
    ``engine_jobs``: threads interleave rank programs arbitrarily, but each
    rank consumes only its own stream.
    """
    interleaved = OsNoiseState(amplitude, seed)
    sequential = OsNoiseState(amplitude, seed)
    got_a, got_b = [], []
    for _ in range(draws):
        got_a.append(interleaved.draw(0))
        got_b.append(interleaved.draw(1))
    want_a = [sequential.draw(0) for _ in range(draws)]
    want_b = [sequential.draw(1) for _ in range(draws)]
    assert got_a == want_a and got_b == want_b


@settings(max_examples=50, deadline=None)
@given(
    nodes=st.integers(1, 8),
    stragglers=st.lists(
        st.tuples(st.integers(0, 9), st.floats(1.0, 8.0, allow_nan=False)),
        max_size=4,
    ),
    seed=seeds,
)
def test_nic_scale_vector_is_pure_and_one_sided(nodes, stragglers, seed):
    spec = FaultSpec(
        seed=seed,
        faults=tuple(StragglerNode(node=n, factor=f) for n, f in stragglers),
    )
    vector = nic_scale_vector(spec, nodes)
    assert vector == nic_scale_vector(spec, nodes)
    if vector is not None:
        assert len(vector) == nodes
        assert all(scale >= 1.0 for scale in vector)


link_faults = st.one_of(
    st.builds(DegradedLink,
              link=st.sampled_from(["*", "df-*", "none-*"]),
              factor=st.floats(0.05, 1.0, allow_nan=False)),
    st.builds(FlappingLink,
              link=st.sampled_from(["*", "df-*"]),
              period=st.floats(1e-7, 1e-5, allow_nan=False),
              duty=st.floats(0.1, 1.0, allow_nan=False)),
)
any_fault = st.one_of(
    link_faults,
    st.builds(StragglerNode, node=st.integers(0, 3),
              factor=st.floats(1.0, 4.0, allow_nan=False)),
    st.builds(OsNoise, amplitude=st.floats(0.0, 2e-6, allow_nan=False)),
)
fault_specs = st.builds(FaultSpec,
                        faults=st.lists(any_fault, max_size=3).map(tuple),
                        seed=st.integers(0, 2**16))


@settings(max_examples=50, deadline=None)
@given(spec=fault_specs)
def test_payload_roundtrip_is_lossless(spec):
    assert faults_from_payload(spec.payload()) == spec


@settings(max_examples=8, deadline=None)
@given(spec=fault_specs, msg_bytes=st.sampled_from([16, 64]))
def test_faulted_simulation_is_deterministic_across_engine_jobs(spec, msg_bytes):
    """Any fault load: serial and parallel engines agree bit for bit."""
    pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=4)
    faults = spec if spec else None
    serial = run_alltoall("pairwise", pmap, msg_bytes, keep_job=False,
                          faults=faults).elapsed
    rerun = run_alltoall("pairwise", pmap, msg_bytes, keep_job=False,
                         faults=faults).elapsed
    parallel = run_alltoall("pairwise", pmap, msg_bytes, keep_job=False,
                            faults=faults, engine_jobs=2).elapsed
    assert serial == rerun == parallel
