"""Property-based tests for the traffic-matrix symmetry analyzer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    block_diagonal,
    incast,
    neighbor_shift,
    uniform,
)
from repro.workloads.symmetry import analyze_symmetry


def _shapes():
    return st.tuples(
        st.integers(min_value=1, max_value=6),   # ppn
        st.integers(min_value=2, max_value=8),   # num_nodes
    )


@settings(max_examples=60, deadline=None)
@given(shape=_shapes(), msg=st.integers(min_value=1, max_value=4096))
def test_uniform_traffic_is_always_foldable(shape, msg):
    ppn, nodes = shape
    nprocs = ppn * nodes
    report = analyze_symmetry(uniform(nprocs, msg), ppn)
    assert report.foldable
    assert report.kind == "uniform"
    assert report.num_classes == ppn
    assert report.multiplicity == nodes


@settings(max_examples=60, deadline=None)
@given(shape=_shapes(), msg=st.integers(min_value=1, max_value=1024))
def test_foldable_partition_is_exactly_node_rotation(shape, msg):
    """Every class holds the ranks sharing a local index, one per node."""
    ppn, nodes = shape
    nprocs = ppn * nodes
    report = analyze_symmetry(uniform(nprocs, msg), ppn)
    seen = set()
    for cls in report.classes:
        assert cls.representative == cls.members[0]
        assert cls.representative < ppn
        local = cls.representative % ppn
        assert cls.members == tuple(local + j * ppn for j in range(nodes))
        seen.update(cls.members)
    assert seen == set(range(nprocs))


@settings(max_examples=40, deadline=None)
@given(
    shape=_shapes(),
    msg=st.integers(min_value=1, max_value=1024),
    data=st.data(),
)
def test_single_cell_perturbation_breaks_foldability(shape, msg, data):
    """Any one asymmetric edit must refine the partition to singletons."""
    ppn, nodes = shape
    nprocs = ppn * nodes
    if nprocs < 2:
        return
    matrix = uniform(nprocs, msg)
    arr = matrix.bytes.copy()
    src = data.draw(st.integers(min_value=0, max_value=nprocs - 1))
    dst = data.draw(st.integers(min_value=0, max_value=nprocs - 1))
    if src == dst:
        dst = (dst + 1) % nprocs
    arr[src, dst] += 1
    report = analyze_symmetry(arr, ppn)
    # One asymmetric cell cannot survive the roll-invariance check unless the
    # machine has a single node (rotation by ppn is then the identity).
    if nodes > 1:
        assert not report.foldable
        assert report.num_classes == nprocs
        assert all(len(cls.members) == 1 for cls in report.classes)


@settings(max_examples=40, deadline=None)
@given(
    shape=_shapes(),
    msg=st.integers(min_value=1, max_value=1024),
)
def test_symmetric_generators_fold_with_expected_kind(shape, msg):
    ppn, nodes = shape
    nprocs = ppn * nodes
    cases = [(block_diagonal(nprocs, msg, group_size=ppn), "block-diagonal")]
    if nprocs > 2:
        cases.append((neighbor_shift(nprocs, msg, shift=1, degree=1), None))
    for matrix, kind in cases:
        report = analyze_symmetry(matrix, ppn)
        assert report.foldable, matrix.pattern
        if kind is not None:
            assert report.kind == kind
        assert report.num_classes == ppn


@settings(max_examples=40, deadline=None)
@given(shape=_shapes(), msg=st.integers(min_value=1, max_value=1024))
def test_incast_traffic_is_asymmetric(shape, msg):
    """A hotspot breaks node-rotation symmetry whenever there are >= 2 nodes."""
    ppn, nodes = shape
    nprocs = ppn * nodes
    if nprocs < 3 or nodes < 2:
        return
    report = analyze_symmetry(incast(nprocs, msg, hotspots=1), ppn)
    assert not report.foldable
    assert all(len(cls.members) == 1 for cls in report.classes)


@settings(max_examples=30, deadline=None)
@given(shape=_shapes(), msg=st.integers(min_value=1, max_value=512))
def test_certificate_survives_roundtrip_to_folded_pmap(shape, msg):
    """A foldable report yields a certificate the machine layer accepts."""
    from repro.machine import ProcessMap, tiny_cluster

    ppn, nodes = shape
    nprocs = ppn * nodes
    report = analyze_symmetry(uniform(nprocs, msg), ppn)
    cert = report.fold_certificate()
    pmap = ProcessMap(tiny_cluster(num_nodes=nodes), ppn=ppn).folded(cert)
    assert pmap.is_folded
    assert pmap.multiplicity == nodes
    assert pmap.sim_nprocs == ppn
    assert pmap.certificate == cert


@settings(max_examples=40, deadline=None)
@given(
    nprocs=st.integers(min_value=2, max_value=48),
    ppn=st.integers(min_value=1, max_value=48),
    msg=st.integers(min_value=1, max_value=64),
)
def test_indivisible_shapes_degrade_to_singletons(nprocs, ppn, msg):
    """nprocs % ppn != 0 can never fold, but must not error either."""
    if ppn == 0 or nprocs % ppn == 0:
        return
    report = analyze_symmetry(np.full((nprocs, nprocs), msg), ppn)
    assert not report.foldable
    assert report.num_classes == nprocs
