"""Property-based tests of the trace-ingestion chain (:mod:`repro.ingest`).

Three invariants anchor what ingestion promises:

* *round-trip idempotence* — normalising a parsed trace, saving the
  resulting workload and loading it back is the identity (same canonical
  JSON, same digest), and re-ingesting the saved form changes nothing;
* *byte conservation* — for every phase, the input records' byte totals
  equal the phase matrix total exactly, and the workload's
  ``combined_matrix`` carries the whole trace's volume (repeats included);
* *content-pure store keys* — the :class:`~repro.ingest.store.TraceStore`
  key is a pure function of the ingested content: shuffling record order,
  splitting records into duplicates or renaming files never moves the key.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import TraceStore, normalize_trace, parse_trace
from repro.workloads import load_phased, save_phased

# A raw phase-log trace as decoded objects: phase names pick from a small
# pool so merging and phase-splitting both get exercised.
_record = st.fixed_dictionaries(
    {
        "phase": st.sampled_from(["fwd", "bwd", "exchange"]),
        "src": st.integers(0, 5),
        "dst": st.integers(0, 5),
        "bytes": st.integers(0, 4096),
    }
)
_records = st.lists(_record, min_size=1, max_size=24)


def _ingest(objects):
    return normalize_trace(parse_trace(list(objects)))


@settings(max_examples=60, deadline=None)
@given(records=_records)
def test_round_trip_is_idempotent(records, tmp_path_factory):
    workload = _ingest(records)
    path = tmp_path_factory.mktemp("ingest") / "trace.json"
    save_phased(workload, path)
    loaded = load_phased(path)
    assert loaded == workload
    assert loaded.digest() == workload.digest()
    # Loading what we saved and saving again is byte-identical.
    again = tmp_path_factory.mktemp("ingest") / "again.json"
    save_phased(loaded, again)
    assert again.read_text(encoding="utf-8") == path.read_text(encoding="utf-8")


@settings(max_examples=60, deadline=None)
@given(records=_records)
def test_byte_totals_are_conserved(records):
    workload = _ingest(records)
    # Per phase: input record bytes == matrix total * repeats (normalisation
    # may collapse adjacent identical phases into repeats, so compare at the
    # phase-name granularity against the workload's own accounting).
    per_phase_input: dict[str, int] = {}
    for record in records:
        per_phase_input[record["phase"]] = (
            per_phase_input.get(record["phase"], 0) + record["bytes"]
        )
    per_phase_output: dict[str, int] = {}
    for phase in workload.phases:
        per_phase_output[phase.name] = (
            per_phase_output.get(phase.name, 0) + phase.total_bytes
        )
    assert per_phase_output == per_phase_input
    # And in aggregate, the combined matrix carries the full trace volume.
    assert workload.combined_matrix().total_bytes == sum(
        record["bytes"] for record in records
    )
    assert workload.total_bytes == sum(record["bytes"] for record in records)


@settings(max_examples=40, deadline=None)
@given(records=_records, seed=st.integers(0, 2**31 - 1))
def test_store_keys_are_content_pure(records, seed, tmp_path_factory):
    import random

    shuffled = list(records)
    random.Random(seed).shuffle(shuffled)
    # Record order changes neither the workload nor its content key, because
    # duplicate (phase, src, dst) records merge and phase order follows
    # first appearance in the *original* stream — shuffling may reorder
    # phases, so compare per-phase matrices by name instead of digests.
    original = _ingest(records)
    reordered = _ingest(shuffled)
    assert {p.name: p.matrix for p in original.phases} == {
        p.name: p.matrix for p in reordered.phases
    }

    store = TraceStore(tmp_path_factory.mktemp("store"))
    key = store.put(original)
    assert key == original.digest()
    # Re-putting identical content is a no-op on the key.
    assert store.put(original) == key
    assert store.get(key) == original
    assert key in store


@settings(max_examples=40, deadline=None)
@given(records=_records)
def test_jsonl_and_decoded_objects_agree(records):
    text = "\n".join(json.dumps(record) for record in records)
    assert _ingest(records).digest() == normalize_trace(parse_trace(text)).digest()
