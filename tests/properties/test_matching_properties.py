"""Matching-semantics properties of the indexed message router.

The router replaced linear mailbox scans with ``(context, source, tag)``
indexed queues plus a FIFO wildcard path; these tests pin the MPI matching
semantics that must have survived:

* non-overtaking order between messages of the same (source, tag, context);
* FIFO fairness of ``ANY_SOURCE``/``ANY_TAG`` receives;
* mixed wildcard/specific interleavings;
* and — differentially, over seeded random operation sequences — that the
  indexed router produces the *exact* match pairing and per-match
  ``scanned`` counts of the reference linear scan it replaced (the counts
  feed ``match_overhead_per_entry``, so they are timing-visible).
"""

import random

import numpy as np
import pytest

from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd
from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.simmpi.p2p import MessageRouter, TimingModel


# ---------------------------------------------------------------------------
# Engine-level semantics
# ---------------------------------------------------------------------------


@pytest.fixture()
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=2), ppn=4)


class TestNonOvertaking:
    def test_same_pair_same_tag_arrive_in_post_order(self, pmap):
        k = 12

        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                for i in range(k):
                    yield from comm.send(np.array([i], dtype=np.int64), dest=1, tag=5)
            elif ctx.rank == 1:
                seen = []
                buf = np.zeros(1, dtype=np.int64)
                for _ in range(k):
                    yield from comm.recv(buf, source=0, tag=5)
                    seen.append(int(buf[0]))
                ctx.result = seen

        result = run_spmd(pmap, program)
        assert result.results[1] == list(range(k))

    def test_interleaved_tags_do_not_reorder_within_a_tag(self, pmap):
        per_tag = 5

        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                for i in range(per_tag):
                    yield from comm.send(np.array([10 + i], dtype=np.int64), dest=1, tag=1)
                    yield from comm.send(np.array([20 + i], dtype=np.int64), dest=1, tag=2)
            elif ctx.rank == 1:
                buf = np.zeros(1, dtype=np.int64)
                tag2 = []
                for _ in range(per_tag):
                    yield from comm.recv(buf, source=0, tag=2)
                    tag2.append(int(buf[0]))
                tag1 = []
                for _ in range(per_tag):
                    yield from comm.recv(buf, source=0, tag=1)
                    tag1.append(int(buf[0]))
                ctx.result = (tag1, tag2)

        tag1, tag2 = run_spmd(pmap, program).results[1]
        assert tag1 == [10 + i for i in range(per_tag)]
        assert tag2 == [20 + i for i in range(per_tag)]


class TestWildcardFairness:
    def test_any_source_receives_in_arrival_order(self, pmap):
        senders = list(range(1, 6))

        def program(ctx):
            comm = ctx.world
            if ctx.rank in senders:
                yield from comm.send(np.array([ctx.rank], dtype=np.int64), dest=0, tag=3)
            elif ctx.rank == 0:
                order = []
                buf = np.zeros(1, dtype=np.int64)
                for _ in senders:
                    status = yield from comm.recv(buf, source=ANY_SOURCE, tag=3)
                    order.append((status.source, int(buf[0])))
                ctx.result = order

        order = run_spmd(pmap, program).results[0]
        # All ranks dispatch their first operation in rank order at t=0, so
        # arrival (dispatch) order is rank order — wildcard receives must
        # drain the queue FIFO, and the status source must match the bytes.
        assert order == [(r, r) for r in senders]

    def test_any_tag_receives_in_arrival_order(self, pmap):
        tags = [9, 4, 7, 2]

        def program(ctx):
            comm = ctx.world
            if ctx.rank == 1:
                for tag in tags:
                    yield from comm.send(np.array([tag], dtype=np.int64), dest=0, tag=tag)
            elif ctx.rank == 0:
                yield from comm.barrier()
                got = []
                buf = np.zeros(1, dtype=np.int64)
                for _ in tags:
                    status = yield from comm.recv(buf, source=1, tag=ANY_TAG)
                    got.append(status.tag)
                ctx.result = got
            if ctx.rank != 0:
                yield from comm.barrier()

        got = run_spmd(pmap, program).results[0]
        assert got == tags, "ANY_TAG must drain same-source messages in post order"


class TestMixedWildcardSpecific:
    def test_specific_recv_skips_earlier_nonmatching_then_wildcard_gets_them(self, pmap):
        def program(ctx):
            comm = ctx.world
            if ctx.rank == 1:
                yield from comm.send(np.array([111], dtype=np.int64), dest=0, tag=1)
            elif ctx.rank == 2:
                yield from comm.send(np.array([222], dtype=np.int64), dest=0, tag=2)
            elif ctx.rank == 0:
                yield from comm.barrier()
                buf = np.zeros(1, dtype=np.int64)
                # Specific receive for the *later-arriving* message first.
                status = yield from comm.recv(buf, source=2, tag=2)
                first = (status.source, int(buf[0]))
                status = yield from comm.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                second = (status.source, int(buf[0]))
                ctx.result = (first, second)
            if ctx.rank != 0:
                yield from comm.barrier()

        first, second = run_spmd(pmap, program).results[0]
        assert first == (2, 222), "the specific receive must skip rank 1's message"
        assert second == (1, 111), "the wildcard must then pick up the skipped message"

    def test_wildcard_posted_before_specific_message_arrives(self, pmap):
        def program(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                buf_any = np.zeros(1, dtype=np.int64)
                buf_spec = np.zeros(1, dtype=np.int64)
                req_any = yield from comm.irecv(buf_any, source=ANY_SOURCE, tag=ANY_TAG)
                req_spec = yield from comm.irecv(buf_spec, source=3, tag=8)
                yield from comm.waitall([req_any, req_spec])
                ctx.result = (int(buf_any[0]), int(buf_spec[0]))
            elif ctx.rank == 3:
                # Two messages; the wildcard was posted first so it must take
                # the first one even though the specific receive also matches.
                yield from comm.send(np.array([31], dtype=np.int64), dest=0, tag=8)
                yield from comm.send(np.array([32], dtype=np.int64), dest=0, tag=8)

        got_any, got_spec = run_spmd(pmap, program).results[0]
        assert (got_any, got_spec) == (31, 32)


# ---------------------------------------------------------------------------
# Differential oracle: indexed router vs reference linear scan
# ---------------------------------------------------------------------------


class _LinearOracle:
    """The removed linear-scan matcher, reimplemented as the reference.

    Mirrors the original ``MessageRouter`` queues: a receive scans the
    unexpected list front-to-back (counting every entry up to and including
    the first match), a send scans the posted-receive list the same way.
    """

    def __init__(self):
        self.posted = []      # (recv_id, source_spec, tag_spec)
        self.unexpected = []  # (send_id, src, tag)
        self.pairs = {}       # recv_id -> send_id
        self.scanned_log = []

    def send(self, send_id, src, tag):
        for i, (recv_id, source_spec, tag_spec) in enumerate(self.posted):
            if (source_spec in (ANY_SOURCE, src)) and (tag_spec in (ANY_TAG, tag)):
                self.posted.pop(i)
                self.pairs[recv_id] = send_id
                self.scanned_log.append(i + 1)
                return
        self.unexpected.append((send_id, src, tag))

    def recv(self, recv_id, source_spec, tag_spec):
        for i, (send_id, src, tag) in enumerate(self.unexpected):
            if (source_spec in (ANY_SOURCE, src)) and (tag_spec in (ANY_TAG, tag)):
                self.unexpected.pop(i)
                self.pairs[recv_id] = send_id
                self.scanned_log.append(i + 1)
                return
        self.posted.append((recv_id, source_spec, tag_spec))


def _run_differential(seed: int):
    rng = random.Random(seed)
    nsrc = rng.choice([2, 3, 5])
    ntags = rng.choice([1, 2, 4])
    wildcard_prob = rng.choice([0.0, 0.25, 0.6])
    n_ops = rng.randrange(20, 120)

    pmap = ProcessMap(tiny_cluster(num_nodes=2), ppn=4)
    router = MessageRouter(TimingModel(pmap))
    oracle = _LinearOracle()

    recv_buffers = {}
    recv_requests = {}
    scanned_log = []
    last_scanned = 0
    clock = 0.0
    send_serial = 0
    recv_serial = 0

    for _ in range(n_ops):
        clock += 1e-7
        if rng.random() < 0.5:
            send_id = send_serial
            send_serial += 1
            src = rng.randrange(nsrc)
            tag = rng.randrange(ntags)
            payload = np.array([send_id], dtype=np.int64)
            router.post_send(src, 0, payload, tag, 0, clock)
            oracle.send(send_id, src, tag)
        else:
            recv_id = recv_serial
            recv_serial += 1
            source_spec = ANY_SOURCE if rng.random() < wildcard_prob else rng.randrange(nsrc)
            tag_spec = ANY_TAG if rng.random() < wildcard_prob else rng.randrange(ntags)
            buffer = np.full(1, -1, dtype=np.int64)
            recv_buffers[recv_id] = buffer
            recv_requests[recv_id] = router.post_recv(
                0, source_spec, buffer, tag_spec, 0, clock
            )
            oracle.recv(recv_id, source_spec, tag_spec)
        if router.entries_scanned != last_scanned:
            scanned_log.append(router.entries_scanned - last_scanned)
            last_scanned = router.entries_scanned

    # Same matches, in the same order, each charging the same scanned count.
    assert scanned_log == oracle.scanned_log, (
        f"seed {seed}: indexed scanned counts diverge from the linear scan"
    )
    assert router.matches == len(oracle.pairs)
    # Same pairing: each matched receive delivered the oracle's send id.
    router_pairs = {
        recv_id: int(recv_buffers[recv_id][0])
        for recv_id, request in recv_requests.items()
        if request.completed
    }
    assert router_pairs == oracle.pairs, f"seed {seed}: match pairing diverges"


@pytest.mark.parametrize("seed", range(40))
def test_indexed_router_matches_linear_scan(seed):
    _run_differential(seed)
