"""Property-based tests for the partitioning utilities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.partition import chunk_evenly, contiguous_partition, divisors, round_robin_partition


@settings(max_examples=200, deadline=None)
@given(n=st.integers(min_value=0, max_value=10_000), nchunks=st.integers(min_value=1, max_value=200))
def test_chunk_evenly_preserves_total_and_balance(n, nchunks):
    chunks = chunk_evenly(n, nchunks)
    assert len(chunks) == nchunks
    assert sum(chunks) == n
    assert max(chunks) - min(chunks) <= 1
    assert chunks == sorted(chunks, reverse=True)


@settings(max_examples=100, deadline=None)
@given(
    group_size=st.integers(min_value=1, max_value=32),
    ngroups=st.integers(min_value=1, max_value=32),
)
def test_contiguous_partition_covers_everything_once(group_size, ngroups):
    items = list(range(group_size * ngroups))
    groups = contiguous_partition(items, group_size)
    assert len(groups) == ngroups
    flattened = [item for group in groups for item in group]
    assert flattened == items
    assert all(len(group) == group_size for group in groups)
    # Contiguity: each group is a consecutive run.
    for group in groups:
        assert group == list(range(group[0], group[0] + group_size))


@settings(max_examples=100, deadline=None)
@given(
    per_group=st.integers(min_value=1, max_value=32),
    ngroups=st.integers(min_value=1, max_value=32),
)
def test_round_robin_partition_is_a_partition(per_group, ngroups):
    items = list(range(per_group * ngroups))
    groups = round_robin_partition(items, ngroups)
    assert len(groups) == ngroups
    assert sorted(item for group in groups for item in group) == items
    assert all(len(group) == per_group for group in groups)


@settings(max_examples=200, deadline=None)
@given(n=st.integers(min_value=1, max_value=100_000))
def test_divisors_divide_and_include_bounds(n):
    divs = divisors(n)
    assert divs[0] == 1 and divs[-1] == n
    assert divs == sorted(set(divs))
    assert all(n % d == 0 for d in divs)
    # Divisors pair up with their complements.
    assert all(n // d in divs for d in divs)
