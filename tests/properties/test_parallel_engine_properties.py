"""Property test: the parallel engine is bit-identical to serial, always.

Across seeded :class:`~repro.verify.scenario.ScenarioGenerator` scenarios —
uniform and workload families, with and without a contended fabric, folded
and full-width — the conservative-lookahead engine at 2/4/8 workers must
reproduce the serial engine exactly: same emitted event stream (order
included), same elapsed time and phase breakdown, same per-rank finish
times, same event count, and byte-identical delivered buffers.
"""

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import run_alltoall, run_workload
from repro.netsim.fabric import parse_fabric
from repro.obs import RecordingSink
from repro.verify.scenario import ScenarioGenerator

_DRAGONFLY = "dragonfly:hosts=2,routers=2,taper=4"


def _digest(results) -> str:
    hasher = hashlib.sha256()
    for buf in results:
        arr = np.asarray(buf)
        hasher.update(str(arr.size).encode())
        hasher.update(arr.tobytes())
    return hasher.hexdigest()


def _run(scenario, engine_jobs: int, fold: str = "off"):
    sink = RecordingSink()
    pmap = scenario.process_map()
    if scenario.family == "uniform":
        outcome = run_alltoall("pairwise", pmap, scenario.msg_bytes, validate=False,
                               fold=fold, sink=sink, engine_jobs=engine_jobs)
    else:
        outcome = run_workload("pairwise", pmap, scenario.matrix, validate=False,
                               fold=fold, sink=sink, engine_jobs=engine_jobs)
    return outcome, sink


def _signature(outcome, sink):
    job = outcome.job
    return (
        outcome.elapsed,
        tuple(sorted(outcome.phase_times.items())),
        tuple(job.finish_times),
        job.events_processed,
        _digest(job.results),
        sink.events,
    )


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    workers=st.sampled_from([2, 4, 8]),
    with_fabric=st.booleans(),
)
def test_parallel_engine_is_bit_identical_to_serial(seed, workers, with_fabric):
    fabric = parse_fabric(_DRAGONFLY) if with_fabric else None
    scenario = ScenarioGenerator(max_ranks=16, fabric=fabric).scenario(seed)
    serial_outcome, serial_sink = _run(scenario, 1)
    parallel_outcome, parallel_sink = _run(scenario, workers)
    assert _signature(parallel_outcome, parallel_sink) == \
        _signature(serial_outcome, serial_sink)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100_000), workers=st.sampled_from([2, 4, 8]))
def test_parallel_engine_matches_serial_on_folded_runs(seed, workers):
    """Folded jobs degenerate to one partition but must stay exact too."""
    generator = ScenarioGenerator(max_ranks=16)
    scenario = generator.scenario(seed)
    while scenario.family != "uniform" or scenario.num_nodes < 2:
        seed += 1
        scenario = generator.scenario(seed)
    serial_outcome, serial_sink = _run(scenario, 1, fold="on")
    parallel_outcome, parallel_sink = _run(scenario, workers, fold="on")
    assert _signature(parallel_outcome, parallel_sink) == \
        _signature(serial_outcome, serial_sink)
