"""Seeded randomized invariants for partitioning and repacking (stdlib random).

The hypothesis-based files in this directory explore the same modules with
shrinking strategies; these tests deliberately use only ``random.Random``
with fixed seeds so the exact cases are frozen (re-runnable byte-for-byte,
no external dependency) — the same reproducibility contract as
``repro.verify``.  Two invariant families:

* *round-trip* — every repack is a pure permutation, and the
  forward/backward pairs invert each other exactly;
* *conservation of bytes* — partitions and displacement layouts never drop
  or duplicate an item, for arbitrary random counts including zeros.
"""

import random

import numpy as np
import pytest

from repro.core.alltoall import repack
from repro.utils.buffers import check_v_counts, displacements_from_counts
from repro.utils.partition import (
    chunk_evenly,
    contiguous_partition,
    divisors,
    round_robin_partition,
)

SEEDS = [0, 1, 2025]


@pytest.mark.parametrize("seed", SEEDS)
class TestPartitionConservation:
    def test_chunk_evenly_conserves_items(self, seed):
        rng = random.Random(f"partition:{seed}")
        for _ in range(100):
            n = rng.randrange(0, 5000)
            nchunks = rng.randrange(1, 100)
            chunks = chunk_evenly(n, nchunks)
            assert sum(chunks) == n
            assert max(chunks) - min(chunks) <= 1

    def test_partitions_cover_every_item_exactly_once(self, seed):
        rng = random.Random(f"cover:{seed}")
        for _ in range(50):
            ngroups = rng.randrange(1, 16)
            group_size = rng.randrange(1, 16)
            items = list(range(ngroups * group_size))
            rng.shuffle(items)
            contiguous = contiguous_partition(items, group_size)
            assert [x for g in contiguous for x in g] == items
            dealt = round_robin_partition(items, ngroups)
            assert sorted(x for g in dealt for x in g) == sorted(items)
            # Round-trip: round-robin dealing is invertible by position.
            restored = [None] * len(items)
            for g, group in enumerate(dealt):
                for pos, item in enumerate(group):
                    restored[pos * ngroups + g] = item
            assert restored == items

    def test_divisors_match_brute_force(self, seed):
        rng = random.Random(f"divisors:{seed}")
        for _ in range(50):
            n = rng.randrange(1, 2000)
            assert divisors(n) == [d for d in range(1, n + 1) if n % d == 0]


@pytest.mark.parametrize("seed", SEEDS)
class TestDisplacementConservation:
    def test_displacements_tile_the_buffer(self, seed):
        """Random counts (zeros included): block i occupies exactly
        [displs[i], displs[i] + counts[i]), blocks abut, and the total
        equals the byte sum — no gap, no overlap, no loss."""
        rng = random.Random(f"displs:{seed}")
        for _ in range(100):
            nblocks = rng.randrange(1, 40)
            counts = [rng.choice([0, 0, 1, rng.randrange(0, 64)]) for _ in range(nblocks)]
            arr = check_v_counts(counts, nblocks)
            displs = displacements_from_counts(arr)
            assert displs[0] == 0
            for i in range(nblocks - 1):
                assert displs[i + 1] == displs[i] + arr[i]
            assert displs[-1] + arr[-1] == arr.sum()
            # Slicing a ramp by the layout and re-concatenating round-trips.
            buf = np.arange(int(arr.sum()), dtype=np.int64)
            pieces = [buf[displs[i]: displs[i] + arr[i]] for i in range(nblocks)]
            assert np.array_equal(np.concatenate(pieces) if pieces else buf, buf)


def _random_dims(rng, k, hi=5):
    return tuple(rng.randrange(1, hi + 1) for _ in range(k))


@pytest.mark.parametrize("seed", SEEDS)
class TestRepackRoundTrips:
    def test_group_transpose_backward_inverts_forward(self, seed):
        rng = random.Random(f"transpose:{seed}")
        for _ in range(50):
            ngroups, group, block = _random_dims(rng, 3)
            buf = np.arange(ngroups * group * block, dtype=np.int64)
            forward = repack.group_transpose_forward(buf, ngroups, group, block)
            restored = repack.group_transpose_backward(forward, ngroups, group, block)
            assert np.array_equal(restored, buf)
            # And forward of backward as well: the pair is a true inverse.
            assert np.array_equal(
                repack.group_transpose_forward(
                    repack.group_transpose_backward(buf, ngroups, group, block),
                    ngroups, group, block,
                ),
                buf,
            )

    def test_every_repack_is_a_permutation(self, seed):
        """Conservation of bytes: random shapes, zero-block included, no
        repack may drop or duplicate an element."""
        rng = random.Random(f"perm:{seed}")
        for _ in range(30):
            ppl, ngroups, block = _random_dims(rng, 3)
            block = rng.choice([0, block])
            n = ppl * ngroups * ppl * block
            buf = np.arange(n, dtype=np.int64)
            for packed in (
                repack.hierarchical_pack_for_leaders(buf, ppl, ngroups, block),
                repack.hierarchical_unpack_to_scatter(buf, ppl, ngroups, block),
            ):
                assert sorted(packed.tolist()) == list(range(n))
            nodes, ppn_factor = _random_dims(rng, 2)
            ppn = ppl * ppn_factor
            buf2 = np.arange(ppl * nodes * ppn * block, dtype=np.int64)
            packed2 = repack.mlna_pack_for_internode(buf2, ppl, nodes, ppn, block)
            assert sorted(packed2.tolist()) == list(range(buf2.size))
            leaders = ppn // ppl
            buf3 = np.arange(nodes * ppl * leaders * ppl * block, dtype=np.int64)
            for packed3 in (
                repack.mlna_pack_for_intranode(buf3, nodes, ppl, leaders, block),
                repack.mlna_unpack_to_scatter(buf3, leaders, nodes, ppl, block),
            ):
                assert sorted(packed3.tolist()) == list(range(buf3.size))

    def test_repacks_round_trip_through_their_inverse_permutation(self, seed):
        """Every repack is a fixed permutation of the buffer (it maps the
        tagging ramp to the permutation itself), so applying the argsort of
        that permutation restores any payload exactly — the round-trip
        invariant behind all 'Repack Data' steps of Algorithms 3-5."""
        rng = random.Random(f"hier:{seed}")
        for _ in range(30):
            ppl, ngroups, block = _random_dims(rng, 3)
            n = ppl * ngroups * ppl * block
            perm = repack.hierarchical_pack_for_leaders(
                np.arange(n, dtype=np.int64), ppl, ngroups, block
            )
            payload = np.array([rng.randrange(1 << 30) for _ in range(n)], dtype=np.int64)
            packed = repack.hierarchical_pack_for_leaders(payload, ppl, ngroups, block)
            assert np.array_equal(packed, payload[perm])
            assert np.array_equal(packed[np.argsort(perm)], payload)

    def test_zero_block_repacks_are_empty_not_errors(self, seed):
        """0-byte payloads (empty send rows in the v-generalisation) must
        repack to empty buffers; the reshape path used to require a
        non-empty buffer and crashed on size 0."""
        rng = random.Random(f"zero:{seed}")
        for _ in range(20):
            ppl, ngroups, group = _random_dims(rng, 3)
            empty = np.empty(0, dtype=np.int64)
            assert repack.hierarchical_pack_for_leaders(empty, ppl, ngroups, 0).size == 0
            assert repack.hierarchical_unpack_to_scatter(empty, ppl, ngroups, 0).size == 0
            assert repack.group_transpose_forward(empty, ngroups, group, 0).size == 0
            assert repack.group_transpose_backward(empty, ngroups, group, 0).size == 0
            nodes, leaders = _random_dims(rng, 2)
            ppn = ppl * leaders
            assert repack.mlna_pack_for_internode(empty, ppl, nodes, ppn, 0).size == 0
            assert repack.mlna_pack_for_intranode(empty, nodes, ppl, leaders, 0).size == 0
            assert repack.mlna_unpack_to_scatter(empty, leaders, nodes, ppl, 0).size == 0
