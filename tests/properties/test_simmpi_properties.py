"""Property-based tests of the simulated-MPI collectives and buffer helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd
from repro.utils.buffers import make_alltoall_sendbuf, split_blocks, concat_blocks


@settings(max_examples=30, deadline=None)
@given(
    nprocs=st.integers(2, 8),
    block=st.integers(1, 16),
    root=st.data(),
)
def test_gather_scatter_roundtrip_preserves_data(nprocs, block, root):
    """Scatter(gather(x)) == x for every rank, any root, any block size."""
    root_rank = root.draw(st.integers(0, nprocs - 1), label="root")
    pmap = ProcessMap(tiny_cluster(num_nodes=1, cores_per_numa=8), ppn=nprocs)

    def program(ctx):
        comm = ctx.world
        mine = make_alltoall_sendbuf(ctx.rank, 1, block)
        gathered = np.zeros(block * nprocs, dtype=mine.dtype) if comm.rank == root_rank else None
        yield from comm.gather(mine, gathered, root=root_rank)
        back = np.zeros(block, dtype=mine.dtype)
        yield from comm.scatter(gathered, back, root=root_rank)
        ctx.result = bool(np.array_equal(back, mine))

    assert all(run_spmd(pmap, program).results)


@settings(max_examples=30, deadline=None)
@given(nprocs=st.integers(1, 8), values=st.data())
def test_allreduce_sum_matches_python_sum(nprocs, values):
    contributions = values.draw(
        st.lists(st.integers(-1000, 1000), min_size=nprocs, max_size=nprocs), label="values"
    )
    pmap = ProcessMap(tiny_cluster(num_nodes=1, cores_per_numa=8), ppn=nprocs)

    def program(ctx):
        out = np.zeros(1, dtype=np.int64)
        yield from ctx.world.allreduce(np.array([contributions[ctx.rank]], dtype=np.int64), out)
        ctx.result = int(out[0])

    results = run_spmd(pmap, program).results
    assert results == [sum(contributions)] * nprocs


@settings(max_examples=30, deadline=None)
@given(nprocs=st.integers(1, 8), block=st.integers(1, 8))
def test_allgather_orders_by_rank(nprocs, block):
    pmap = ProcessMap(tiny_cluster(num_nodes=1, cores_per_numa=8), ppn=nprocs)

    def program(ctx):
        mine = np.full(block, ctx.rank, dtype=np.int64)
        everyone = np.zeros(block * nprocs, dtype=np.int64)
        yield from ctx.world.allgather(mine, everyone)
        ctx.result = everyone.copy()

    results = run_spmd(pmap, program).results
    expected = np.repeat(np.arange(nprocs), block)
    for buf in results:
        assert np.array_equal(buf, expected)


@settings(max_examples=100, deadline=None)
@given(nblocks=st.integers(1, 20), block=st.integers(0, 20))
def test_split_concat_blocks_roundtrip(nblocks, block):
    buf = np.arange(nblocks * block)
    if buf.size == 0:
        return
    blocks = split_blocks(buf, nblocks)
    assert np.array_equal(concat_blocks(blocks), buf)
