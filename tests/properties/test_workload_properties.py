"""Property-based tests of the non-uniform workload subsystem.

Two invariants anchor everything the workloads package promises:

* *byte conservation* — for any generated :class:`TrafficMatrix`, the bytes
  sent (row sums) and received (column sums) agree in aggregate, and a
  simulated exchange delivers every rank exactly its column's worth of data;
* *exact transposition* — ``alltoallv`` (and every v-algorithm built on it)
  delivers, for arbitrary random count matrices and payloads, exactly the
  same receive buffers as the independent NumPy oracle
  :func:`repro.core.validation.alltoallv_reference`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_workload
from repro.core.validation import alltoallv_reference
from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd
from repro.utils.partition import divisors
from repro.workloads import TrafficMatrix, make_pattern

pattern_names = st.sampled_from(["uniform", "skewed-moe", "block-diagonal", "zipf", "sparse"])
small_shapes = st.tuples(st.integers(1, 3), st.sampled_from([2, 4, 6]))  # (nodes, ppn)


def _pmap(num_nodes: int, ppn: int) -> ProcessMap:
    return ProcessMap(tiny_cluster(num_nodes=num_nodes), ppn=ppn)


def _pattern_options(name: str, nprocs: int, seed: int, data) -> dict:
    if name == "block-diagonal":
        group = data.draw(st.sampled_from(divisors(nprocs)), label="pattern group")
        return {"group_size": group}
    if name == "sparse":
        return {"out_degree": data.draw(st.integers(1, max(1, nprocs - 1))), "seed": seed}
    if name in ("skewed-moe", "zipf"):
        return {"seed": seed}
    return {}


@settings(max_examples=30, deadline=None)
@given(
    name=pattern_names,
    shape=small_shapes,
    msg_bytes=st.sampled_from([1, 7, 64, 300]),
    seed=st.integers(0, 2**16),
    data=st.data(),
)
def test_generated_matrices_conserve_bytes(name, shape, msg_bytes, seed, data):
    """Row sums sent == column sums received, in aggregate, for every generator."""
    nprocs = shape[0] * shape[1]
    matrix = make_pattern(name, nprocs, msg_bytes, **_pattern_options(name, nprocs, seed, data))
    assert matrix.send_totals.sum() == matrix.recv_totals.sum() == matrix.total_bytes
    assert (matrix.bytes >= 0).all()
    node_matrix = matrix.node_bytes(shape[1])
    assert node_matrix.sum() == matrix.total_bytes


@settings(max_examples=20, deadline=None)
@given(
    name=pattern_names,
    shape=small_shapes,
    msg_bytes=st.sampled_from([1, 16, 120]),
    seed=st.integers(0, 2**16),
    data=st.data(),
)
def test_simulated_exchange_delivers_column_sums(name, shape, msg_bytes, seed, data):
    """Every rank receives exactly the bytes the matrix's column promises it."""
    nodes, ppn = shape
    nprocs = nodes * ppn
    if nprocs < 2:
        return
    matrix = make_pattern(name, nprocs, msg_bytes, **_pattern_options(name, nprocs, seed, data))
    algorithm = data.draw(st.sampled_from(["pairwise", "nonblocking", "node-aware"]),
                          label="algorithm")
    outcome = run_workload(algorithm, _pmap(nodes, ppn), matrix)
    assert outcome.correct
    for rank, buf in enumerate(outcome.job.results):
        assert buf.nbytes == matrix.recv_bytes(rank)


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(2, 8),
    seed=st.integers(0, 2**16),
    max_items=st.sampled_from([1, 3, 9]),
)
def test_alltoallv_delivers_exact_transposition(nprocs, seed, max_items):
    """The simmpi alltoallv collective matches the NumPy oracle on random matrices."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, max_items + 1, size=(nprocs, nprocs))
    sendbufs = [
        rng.integers(-1000, 1000, size=int(counts[r].sum()), dtype=np.int64)
        for r in range(nprocs)
    ]
    pmap = ProcessMap(tiny_cluster(num_nodes=1, cores_per_numa=8), ppn=nprocs)

    def program(ctx):
        recv = np.zeros(int(counts[:, ctx.rank].sum()), dtype=np.int64)
        yield from ctx.world.alltoallv(
            sendbufs[ctx.rank], counts[ctx.rank], recv, counts[:, ctx.rank]
        )
        ctx.result = recv

    results = run_spmd(pmap, program).results
    expected = alltoallv_reference(sendbufs, counts)
    for got, want in zip(results, expected):
        assert np.array_equal(got, want)


@settings(max_examples=20, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 3), st.sampled_from([2, 4, 6])),
    seed=st.integers(0, 2**16),
    data=st.data(),
)
def test_v_algorithms_match_oracle_on_random_matrices(shape, seed, data):
    """Every v-algorithm, at every valid group size, is an exact alltoallv."""
    nodes, ppn = shape
    nprocs = nodes * ppn
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 5, size=(nprocs, nprocs))
    matrix = TrafficMatrix(counts)
    algorithm = data.draw(st.sampled_from(["pairwise", "nonblocking", "node-aware"]),
                          label="algorithm")
    options = {}
    if algorithm == "node-aware":
        options = {
            "procs_per_group": data.draw(st.sampled_from(divisors(ppn)), label="group"),
            "inner": data.draw(st.sampled_from(["pairwise", "nonblocking"]), label="inner"),
        }
    outcome = run_workload(algorithm, _pmap(nodes, ppn), matrix, dtype=np.uint8, **options)
    assert outcome.correct
