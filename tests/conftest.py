"""Shared fixtures for the test suite.

The fixtures centralise the small simulated machines used across tests so
individual test modules stay focused on behaviour rather than set-up.
"""

from __future__ import annotations

import pytest

from repro.machine import ProcessMap, tiny_cluster
from repro.machine.systems import dane


@pytest.fixture
def tiny_pmap() -> ProcessMap:
    """4 nodes x 8 ranks on the tiny test cluster (2 sockets x 2 NUMA x 2 cores)."""
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=8)


@pytest.fixture
def two_node_pmap() -> ProcessMap:
    """2 nodes x 4 ranks — the smallest configuration with real inter-node traffic."""
    return ProcessMap(tiny_cluster(num_nodes=2), ppn=4)


@pytest.fixture
def single_node_pmap() -> ProcessMap:
    """1 node x 8 ranks — no network traffic at all."""
    return ProcessMap(tiny_cluster(num_nodes=1), ppn=8)


@pytest.fixture
def dane_pmap() -> ProcessMap:
    """Full-scale Dane placement used by analytic-model tests (never simulated)."""
    return ProcessMap(dane(32), ppn=112)
