"""Tests for repro.netsim.events."""

import pytest

from repro.errors import SimulationError
from repro.netsim.events import Event, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while queue:
            queue.pop().fire()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.push(1.0, lambda label=label: fired.append(label))
        while queue:
            queue.pop().fire()
        assert fired == ["a", "b", "c"]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, lambda: None)
        assert queue and len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_event_ordering_dataclass(self):
        early = Event(time=1.0, seq=0, callback=lambda: None)
        late = Event(time=2.0, seq=0, callback=lambda: None)
        assert early < late
