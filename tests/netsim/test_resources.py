"""Tests for repro.netsim.resources."""

import pytest

from repro.errors import SimulationError
from repro.netsim.resources import SerialResource, ThroughputTracker


class TestSerialResource:
    def test_first_reservation_starts_at_request(self):
        nic = SerialResource()
        start, end = nic.reserve(earliest_start=2.0, duration=1.0)
        assert (start, end) == (2.0, 3.0)

    def test_back_to_back_reservations_serialize(self):
        nic = SerialResource()
        nic.reserve(0.0, 1.0)
        start, end = nic.reserve(0.0, 2.0)
        assert (start, end) == (1.0, 3.0)

    def test_idle_gap_respected(self):
        nic = SerialResource()
        nic.reserve(0.0, 1.0)
        start, end = nic.reserve(10.0, 1.0)
        assert (start, end) == (10.0, 11.0)

    def test_busy_time_accumulates(self):
        nic = SerialResource()
        nic.reserve(0.0, 1.0)
        nic.reserve(0.0, 2.0)
        assert nic.busy_time == pytest.approx(3.0)
        assert nic.reservations == 2

    def test_utilization(self):
        nic = SerialResource()
        nic.reserve(0.0, 2.0)
        assert nic.utilization(4.0) == pytest.approx(0.5)
        assert nic.utilization(0.0) == 0.0
        assert nic.utilization(1.0) == 1.0  # clamped

    def test_reset(self):
        nic = SerialResource()
        nic.reserve(0.0, 5.0)
        nic.reset()
        assert nic.available_at == 0.0
        assert nic.busy_time == 0.0
        assert nic.reservations == 0

    def test_invalid_reservation_rejected(self):
        nic = SerialResource()
        with pytest.raises(SimulationError):
            nic.reserve(0.0, -1.0)
        with pytest.raises(SimulationError):
            nic.reserve(-1.0, 1.0)


class TestThroughputTracker:
    def test_record_accumulates(self):
        tracker = ThroughputTracker()
        tracker.record(100)
        tracker.record(50)
        assert tracker.messages == 2
        assert tracker.total_bytes == 150

    def test_per_key_accounting(self):
        tracker = ThroughputTracker()
        tracker.record(10, key="a")
        tracker.record(20, key="a")
        tracker.record(5, key="b")
        assert tuple(tracker.per_key["a"]) == (2, 30)
        assert tuple(tracker.per_key["b"]) == (1, 5)

    def test_merge(self):
        a = ThroughputTracker()
        b = ThroughputTracker()
        a.record(10, key="x")
        b.record(20, key="x")
        b.record(1, key="y")
        a.merge(b)
        assert a.messages == 3
        assert tuple(a.per_key["x"]) == (2, 30)
        assert tuple(a.per_key["y"]) == (1, 1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            ThroughputTracker().record(-1)

    def test_as_dict(self):
        tracker = ThroughputTracker(name="traffic")
        tracker.record(8, key="k")
        d = tracker.as_dict()
        assert d["name"] == "traffic" and d["messages"] == 1 and d["bytes"] == 8
