"""Unit tests for the multiplicity-weighted folded fabric view."""

import pytest

from repro.machine.params import MachineParameters
from repro.machine.systems import tiny_cluster
from repro.netsim.fabric import FatTreeFabric, FoldedFabricView


@pytest.fixture
def state():
    params = tiny_cluster().params
    fabric = FatTreeFabric(hosts_per_switch=2, oversubscription=2.0)
    built = fabric.build(8, params)
    assert built is not None
    return built


def test_aggregate_weights(state):
    """w_L = routes through the link / routes from simulated nodes."""
    view = FoldedFabricView(state, 1)
    by_name = {link.name: link for link in state.links}
    # up0: 2 sources on switch 0 x 6 cross-switch dsts = 12 routes; node 0
    # contributes 6 of them.
    assert view.fold_weight(by_name["ft-up0"]) == pytest.approx(2.0)
    # down1: 6 sources x 2 dsts = 12 routes; node 0 contributes 2.
    assert view.fold_weight(by_name["ft-down1"]) == pytest.approx(6.0)
    # Links node 0 never reaches carry no weight (never traversed).
    assert view.fold_weight(by_name["ft-up1"]) == 1.0


def test_aligned_concurrency(state):
    """a_L = max sources aligned on one destination offset."""
    view = FoldedFabricView(state, 1)
    by_name = {link.name: link for link in state.links}
    # At any offset, at most both switch-0 hosts cross up0 and at most one
    # switch's worth of sources converges on down1.
    assert view.aligned_concurrency(by_name["ft-up0"]) == pytest.approx(2.0)
    assert view.aligned_concurrency(by_name["ft-down1"]) == pytest.approx(2.0)


def test_traverse_scales_accounting_but_reserves_concurrency(state):
    view = FoldedFabricView(state, 1)
    by_name = {link.name: link for link in state.links}
    up0, down1 = by_name["ft-up0"], by_name["ft-down1"]
    exit_time = view.traverse(0, 2, 1000, 0.0)
    own = up0.hop_overhead + 1000 * up0.byte_time
    # Timeline: each hop reserved a_L=2 occupancies, traversed in sequence.
    assert exit_time == pytest.approx(2 * own + 2 * own)
    assert up0.resource.available_at == pytest.approx(2 * own)
    # Accounting: busy scaled by the aggregate weight, not the concurrency.
    assert up0.resource.busy_time == pytest.approx(2 * own)
    assert down1.resource.busy_time == pytest.approx(6 * own)
    assert up0.bytes_moved == 2000
    assert down1.bytes_moved == 6000


def test_view_delegates_surface(state):
    view = FoldedFabricView(state, 1)
    assert view.name.endswith("[folded]")
    assert view.routes is state.routes
    assert view.route(0, 2) == state.route(0, 2)
    assert view.statistics() == state.statistics()
    sentinel = object()
    view.sink = sentinel
    assert state.sink is sentinel
    view.sink = None


def test_full_sim_width_collapses_to_plain_weights(state):
    """sim_nodes = all nodes -> every weight is 1 (no folding in effect)."""
    view = FoldedFabricView(state, 8)
    for link in state.links:
        assert view.fold_weight(link) == 1.0


def test_parameters_object_available():
    assert isinstance(tiny_cluster().params, MachineParameters)
