"""Tests for repro.netsim.simulator."""

import pytest

from repro.errors import SimulationError
from repro.netsim.simulator import Simulator


class TestScheduling:
    def test_runs_events_in_order(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(2))
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.run()
        assert seen == [1, 2]
        assert sim.now == 2.0

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.schedule_after(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_after(1.0, lambda: seen.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_run_until_stops_early(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_event_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def rescheduler():
            sim.schedule_after(1.0, rescheduler)

        sim.schedule_at(0.0, rescheduler)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run()

    def test_reset(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_processed == 0

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(0.0, nested)
        sim.run()
        assert len(errors) == 1
