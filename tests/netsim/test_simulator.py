"""Tests for repro.netsim.simulator."""

import pytest

from repro.errors import SimulationError
from repro.netsim.simulator import Simulator


class TestScheduling:
    def test_runs_events_in_order(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(2))
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.run()
        assert seen == [1, 2]
        assert sim.now == 2.0

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.schedule_after(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0]

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_after(1.0, lambda: seen.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_run_until_stops_early(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_ulp_rounding_error_tolerated_at_large_times(self):
        """A single-ulp-in-the-past time must not raise once the clock is large.

        The guard's tolerance is relative to ``now``: with the old absolute
        1e-18 tolerance, one ulp of rounding (~8.7e-19 at 4 ms, growing with
        the clock) in a callback's computed time raised a spurious error.
        """
        import math

        sim = Simulator()
        sim.schedule_at(0.0084, lambda: None)  # past the ~4 ms ulp crossover
        sim.run()
        seen = []
        sim.schedule_at(math.nextafter(sim.now, 0.0), lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.0084], "the clamped event must still fire at now"

    def test_relative_tolerance_tracks_clock_magnitude(self):
        import math

        sim = Simulator()
        sim.schedule_at(1000.0, lambda: None)
        sim.run()
        sim.schedule_at(math.nextafter(1000.0, 0.0), lambda: None)  # 1 ulp: tolerated
        with pytest.raises(SimulationError):
            sim.schedule_at(1000.0 * (1.0 - 1e-12), lambda: None)  # thousands of ulps: past

    def test_near_zero_clock_keeps_absolute_floor(self):
        sim = Simulator()
        sim.schedule_at(0.0, lambda: None)  # exactly now is fine at t=0
        with pytest.raises(SimulationError):
            sim.schedule_at(-1e-9, lambda: None)

    def test_event_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def rescheduler():
            sim.schedule_after(1.0, rescheduler)

        sim.schedule_at(0.0, rescheduler)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run()

    def test_reset(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_processed == 0

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(0.0, nested)
        sim.run()
        assert len(errors) == 1
