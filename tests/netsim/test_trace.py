"""Tests for repro.netsim.trace."""

from repro.machine.hierarchy import LocalityLevel
from repro.netsim.trace import MessageRecord, TraceRecorder


def _record(source=0, dest=1, nbytes=100, level=LocalityLevel.NETWORK, post=0.0, arrival=1.0, done=2.0):
    return MessageRecord(
        source=source, dest=dest, nbytes=nbytes, level=level, tag=0, context_id=0,
        post_time=post, arrival_time=arrival, completion_time=done,
    )


class TestMessageRecord:
    def test_latency(self):
        assert _record(post=1.0, done=3.5).latency == 2.5

    def test_inter_node_flag(self):
        assert _record(level=LocalityLevel.NETWORK).is_inter_node
        assert not _record(level=LocalityLevel.NUMA).is_inter_node


class TestTraceRecorder:
    def test_disabled_recorder_ignores_records(self):
        trace = TraceRecorder(enabled=False)
        trace.record(_record())
        assert trace.message_count() == 0

    def test_counts_and_bytes(self):
        trace = TraceRecorder()
        trace.record(_record(nbytes=10, level=LocalityLevel.NETWORK))
        trace.record(_record(nbytes=20, level=LocalityLevel.NUMA))
        trace.record(_record(nbytes=30, level=LocalityLevel.NODE))
        assert trace.message_count() == 3
        assert trace.byte_count() == 60
        assert trace.message_count(inter_node=True) == 1
        assert trace.byte_count(inter_node=False) == 50

    def test_by_level_aggregation(self):
        trace = TraceRecorder()
        trace.record(_record(nbytes=10, level=LocalityLevel.NUMA))
        trace.record(_record(nbytes=15, level=LocalityLevel.NUMA))
        trace.record(_record(nbytes=5, level=LocalityLevel.NETWORK))
        assert trace.bytes_by_level()[LocalityLevel.NUMA] == 25
        assert trace.messages_by_level()[LocalityLevel.NETWORK] == 1

    def test_max_completion_time(self):
        trace = TraceRecorder()
        assert trace.max_completion_time() == 0.0
        trace.record(_record(done=4.0))
        trace.record(_record(done=2.0))
        assert trace.max_completion_time() == 4.0

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(_record())
        trace.clear()
        assert trace.message_count() == 0
