"""Unit tests for the inter-node fabric layer (specs, parsing, routing)."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.machine.systems import get_system, tiny_cluster
from repro.netsim.fabric import (
    DragonflyFabric,
    FatTreeFabric,
    FullBisectionFabric,
    fabric_from_payload,
    list_fabrics,
    parse_fabric,
)


class TestParsing:
    def test_default_kinds(self):
        assert parse_fabric("full-bisection") == FullBisectionFabric()
        assert parse_fabric("fat-tree") == FatTreeFabric()
        assert parse_fabric("dragonfly") == DragonflyFabric()

    def test_fat_tree_options_and_aliases(self):
        spec = parse_fabric("fat-tree:hosts=8,oversub=4")
        assert spec == FatTreeFabric(hosts_per_switch=8, oversubscription=4.0)
        # Radix alias: k=8 means 4 hosts per edge switch.
        assert parse_fabric("fat-tree:k=8").hosts_per_switch == 4

    def test_dragonfly_options(self):
        spec = parse_fabric("dragonfly:hosts=4,routers=8,taper=2")
        assert spec == DragonflyFabric(
            hosts_per_router=4, routers_per_group=8, global_taper=2.0
        )

    def test_unknown_kind_and_malformed_options(self):
        with pytest.raises(ConfigurationError):
            parse_fabric("torus")
        with pytest.raises(ConfigurationError):
            parse_fabric("fat-tree:oversub")
        with pytest.raises(ConfigurationError):
            parse_fabric("fat-tree:oversub=fast")
        with pytest.raises(ConfigurationError):
            parse_fabric("fat-tree:bogus=1")
        with pytest.raises(ConfigurationError):
            parse_fabric("dragonfly:k=8")
        with pytest.raises(ConfigurationError):
            parse_fabric("fat-tree:k=abc")
        with pytest.raises(ConfigurationError):
            parse_fabric("fat-tree:k=1")

    def test_list_fabrics(self):
        assert list_fabrics() == ["dragonfly", "fat-tree", "full-bisection"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FatTreeFabric(hosts_per_switch=0)
        with pytest.raises(ConfigurationError):
            FatTreeFabric(oversubscription=0.5)
        with pytest.raises(ConfigurationError):
            DragonflyFabric(global_taper=0.0)


class TestPayloadRoundtrip:
    @pytest.mark.parametrize("text", [
        "full-bisection",
        "fat-tree:hosts=2,oversub=4",
        "dragonfly:hosts=2,routers=2,taper=4",
    ])
    def test_roundtrip(self, text):
        spec = parse_fabric(text)
        assert fabric_from_payload(spec.payload()) == spec

    def test_none_payload_is_default(self):
        assert fabric_from_payload(None) == FullBisectionFabric()

    def test_unknown_payload_kind(self):
        with pytest.raises(ConfigurationError):
            fabric_from_payload({"kind": "torus"})

    def test_specs_pickle(self):
        for text in ("full-bisection", "fat-tree:oversub=2", "dragonfly"):
            spec = parse_fabric(text)
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestBuildAndRouting:
    def _params(self):
        return tiny_cluster().params

    def test_full_bisection_builds_nothing(self):
        assert FullBisectionFabric().build(8, self._params()) is None

    def test_oversub_one_builds_nothing(self):
        assert FatTreeFabric(oversubscription=1.0).build(8, self._params()) is None

    def test_single_switch_builds_nothing(self):
        # Every node under one edge switch: no oversubscribed core traffic.
        assert FatTreeFabric(hosts_per_switch=8, oversubscription=4).build(
            4, self._params()
        ) is None

    def test_single_node_cluster_builds_nothing(self):
        assert FatTreeFabric(hosts_per_switch=1, oversubscription=4).build(
            1, self._params()
        ) is None
        assert DragonflyFabric(hosts_per_router=1).build(1, self._params()) is None

    def test_fat_tree_routes(self):
        state = FatTreeFabric(hosts_per_switch=2, oversubscription=4).build(
            6, self._params()
        )
        # Same switch: no shared links; cross switch: uplink then downlink.
        assert state.route(0, 1) == ()
        names = [link.name for link in state.route(0, 3)]
        assert names == ["ft-up0", "ft-down1"]
        assert (0, 0) not in state.routes

    def test_dragonfly_routes(self):
        state = DragonflyFabric(
            hosts_per_router=2, routers_per_group=2, global_taper=4
        ).build(8, self._params())
        assert state.route(0, 1) == ()  # same router
        assert [l.name for l in state.route(0, 2)] == ["df-r0", "df-r1"]  # same group
        assert [l.name for l in state.route(0, 6)] == ["df-r0", "df-g0-1", "df-r3"]

    def test_traverse_serializes_on_shared_link(self):
        state = FatTreeFabric(hosts_per_switch=1, oversubscription=2).build(
            2, self._params()
        )
        first = state.traverse(0, 1, 1000, 0.0)
        second = state.traverse(0, 1, 1000, 0.0)
        # The second message queues behind the first on the shared uplink.
        assert second > first > 0.0
        stats = {entry["link"]: entry for entry in state.statistics()}
        assert stats["ft-up0"]["messages"] == 2

    def test_uniform_phase_bound_matches_general_bound(self):
        state = FatTreeFabric(hosts_per_switch=2, oversubscription=4).build(
            6, self._params()
        )
        n = 6
        msgs, byts = 3.0, 4096.0
        pair_msgs = [[0.0 if a == b else msgs for b in range(n)] for a in range(n)]
        pair_bytes = [[0.0 if a == b else byts for b in range(n)] for a in range(n)]
        assert state.uniform_phase_bound(msgs, byts) == pytest.approx(
            state.phase_bound(pair_msgs, pair_bytes)
        )

    def test_phase_bound_matches_busiest_link(self):
        state = FatTreeFabric(hosts_per_switch=1, oversubscription=2).build(
            2, self._params()
        )
        pair_msgs = [[0, 3], [0, 0]]
        pair_bytes = [[0, 3000], [0, 0]]
        link = state.route(0, 1)[0]
        expected = 3 * link.hop_overhead + 3000 * link.byte_time
        assert state.phase_bound(pair_msgs, pair_bytes) == pytest.approx(expected)
        assert state.phase_bound([[0, 0], [0, 0]], [[0, 0], [0, 0]]) == 0.0


class TestClusterIntegration:
    def test_get_system_fabric_override(self):
        spec = parse_fabric("fat-tree:oversub=2")
        cluster = get_system("dane", 4, fabric=spec)
        assert cluster.fabric == spec
        assert "fat-tree" in cluster.describe()

    def test_default_fabric_is_full_bisection(self):
        assert get_system("tiny").fabric == FullBisectionFabric()
