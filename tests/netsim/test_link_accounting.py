"""Per-link occupancy accounting vs the traffic matrix (conservation law).

Whatever the algorithm interleaves, FIFO-queues or delays, every byte a
rank sends to a rank on another node crosses each link of that node pair's
route exactly once.  So the per-link byte totals the fabric accounts (and
the recording sink observes) must equal the totals derived from the
traffic matrix plus the static routing table — under the oversubscribed
fat-tree and the tapered dragonfly alike.  On full bisection there is no
contended link at all and the same conservation shows up in the
network-level traffic counters instead.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import run_alltoall, run_workload
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system
from repro.netsim.fabric import parse_fabric
from repro.obs import RecordingSink
from repro.workloads import make_pattern

FABRIC_SPECS = [
    "fat-tree:hosts=2,oversub=4",
    "fat-tree:hosts=4,oversub=2",
    "dragonfly:hosts=1,routers=2,taper=4",
    "dragonfly:hosts=2,routers=2,taper=8",
]


def _cluster_and_pmap(fabric_spec, nodes, ppn):
    spec = None if fabric_spec is None else parse_fabric(fabric_spec)
    cluster = get_system("dane", nodes, fabric=spec)
    return spec, ProcessMap(cluster, ppn=ppn, num_nodes=nodes)


def _expected_link_bytes(spec, pmap, pair_bytes):
    """Walk the routing table: each cross-node byte crosses its route's links once."""
    state = spec.build(pmap.num_nodes, pmap.params)
    if state is None:  # topology degenerates to a single switch: no shared links
        return {}
    expected: dict[str, int] = defaultdict(int)
    for (src, dst), nbytes in pair_bytes.items():
        if nbytes == 0:
            continue
        node_a, node_b = pmap.node_of(src), pmap.node_of(dst)
        if node_a == node_b:
            continue
        for link in state.routes[(node_a, node_b)]:
            expected[link.name] += nbytes
    return dict(expected)


def _observed_link_bytes(sink):
    observed: dict[str, int] = defaultdict(int)
    for _, name, _requested, _begin, _end, nbytes, _src, _dst in sink.of_kind("link"):
        observed[name] += nbytes
    return dict(observed)


def _uniform_pair_bytes(nprocs, msg_bytes):
    return {(i, j): msg_bytes for i in range(nprocs) for j in range(nprocs) if i != j}


class TestUniformExchanges:
    @pytest.mark.parametrize("fabric_spec", FABRIC_SPECS)
    @pytest.mark.parametrize("msg_bytes", [256, 16384])  # eager and rendezvous
    def test_pairwise_byte_totals_equal_traffic_matrix(self, fabric_spec, msg_bytes):
        spec, pmap = _cluster_and_pmap(fabric_spec, nodes=4, ppn=2)
        sink = RecordingSink()
        outcome = run_alltoall("pairwise", pmap, msg_bytes, validate=False, sink=sink)
        observed = _observed_link_bytes(sink)
        expected = _expected_link_bytes(
            spec, pmap, _uniform_pair_bytes(pmap.nprocs, msg_bytes))
        assert observed == expected
        # The job's fabric metrics reconcile to the same totals.
        if expected:
            assert outcome.job.metrics["fabric"]["bytes"] == sum(expected.values())
        else:
            assert "fabric" not in outcome.job.metrics

    @pytest.mark.parametrize("fabric_spec", FABRIC_SPECS[:1] + FABRIC_SPECS[2:3])
    def test_node_aware_aggregates_before_the_fabric(self, fabric_spec):
        """Aggregation sends ppn*msg_bytes per rank-pair slot but only once per node pair."""
        spec, pmap = _cluster_and_pmap(fabric_spec, nodes=4, ppn=2)
        msg_bytes = 64
        sink = RecordingSink()
        run_alltoall("node-aware", pmap, msg_bytes, validate=False, sink=sink)
        observed = _observed_link_bytes(sink)
        # One aggregated message of ppn*ppn*msg_bytes per ordered node pair.
        pair_bytes = {}
        for node_a in range(pmap.num_nodes):
            for node_b in range(pmap.num_nodes):
                if node_a == node_b:
                    continue
                src = pmap.ranks_on_node(node_a)[0]
                dst = pmap.ranks_on_node(node_b)[0]
                pair_bytes[(src, dst)] = pmap.ppn * pmap.ppn * msg_bytes
        assert observed == _expected_link_bytes(spec, pmap, pair_bytes)


class TestWorkloadExchanges:
    @pytest.mark.parametrize("fabric_spec", FABRIC_SPECS)
    def test_skewed_matrix_byte_totals(self, fabric_spec):
        spec, pmap = _cluster_and_pmap(fabric_spec, nodes=4, ppn=2)
        matrix = make_pattern("skewed-moe", pmap.nprocs, 64, seed=5)
        sink = RecordingSink()
        run_workload("pairwise", pmap, matrix, validate=False, sink=sink)
        pair_bytes = {
            (i, j): int(matrix.bytes[i, j])
            for i in range(pmap.nprocs) for j in range(pmap.nprocs) if i != j
        }
        assert _observed_link_bytes(sink) == _expected_link_bytes(spec, pmap, pair_bytes)

    @settings(max_examples=12, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=5),
        ppn=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=50),
        fabric_index=st.integers(min_value=0, max_value=len(FABRIC_SPECS) - 1),
    )
    def test_conservation_is_a_property_of_any_shape(self, nodes, ppn, seed, fabric_index):
        spec, pmap = _cluster_and_pmap(FABRIC_SPECS[fabric_index], nodes, ppn)
        matrix = make_pattern("sparse", pmap.nprocs, 96, seed=seed)
        sink = RecordingSink()
        run_workload("nonblocking", pmap, matrix, validate=False, sink=sink)
        pair_bytes = {
            (i, j): int(matrix.bytes[i, j])
            for i in range(pmap.nprocs) for j in range(pmap.nprocs) if i != j
        }
        assert _observed_link_bytes(sink) == _expected_link_bytes(spec, pmap, pair_bytes)


class TestSaturationAccounting:
    def test_queued_time_and_max_delay_surface_contention(self):
        """An incast through a tapered dragonfly must show queueing on some link."""
        spec, pmap = _cluster_and_pmap("dragonfly:hosts=1,routers=2,taper=8",
                                       nodes=4, ppn=4)
        matrix = make_pattern("incast", pmap.nprocs, 4096, seed=2)
        sink = RecordingSink()
        outcome = run_workload("nonblocking", pmap, matrix, validate=False, sink=sink)
        fabric = outcome.job.metrics["fabric"]
        assert fabric["queued_time"] > 0.0
        assert fabric["max_queue_delay"] > 0.0
        # The sink's per-message view reconciles with the aggregate:
        # summed (begin - requested) delays equal the queued_time counter.
        total_delay = sum(begin - requested for _, _, requested, begin, *_rest
                          in sink.of_kind("link"))
        assert total_delay == pytest.approx(fabric["queued_time"], rel=1e-12)
        worst = max(begin - requested for _, _, requested, begin, *_rest
                    in sink.of_kind("link"))
        assert worst == pytest.approx(fabric["max_queue_delay"], rel=1e-12)


class TestFullBisection:
    def test_no_link_events_and_network_counters_carry_the_bytes(self):
        _, pmap = _cluster_and_pmap(None, nodes=4, ppn=2)
        msg_bytes = 256
        sink = RecordingSink()
        outcome = run_alltoall("pairwise", pmap, msg_bytes, validate=False, sink=sink)
        assert sink.of_kind("link") == []
        metrics = outcome.job.metrics
        assert "fabric" not in metrics
        inter_node = sum(
            nbytes for (i, j), nbytes in
            _uniform_pair_bytes(pmap.nprocs, msg_bytes).items()
            if pmap.node_of(i) != pmap.node_of(j)
        )
        assert metrics["traffic"]["by_level"]["network"]["bytes"] == inter_node
