"""Behavioural contract of the fault models against the simulated machine.

Three invariants matter:

* **off = bit-identical** — an absent or empty FaultSpec must leave every
  simulated timing exactly as it was (the golden timing fixture pins the
  same thing end to end);
* **determinism** — a given (FaultSpec, seed) produces exactly the same
  timings on every run and at every ``engine_jobs`` value;
* **direction** — degraded links and flapping links can only slow the
  traffic that crosses them; inert patterns change nothing.
"""

import pytest

from repro.core.runner import run_alltoall, run_workload
from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultSpec, parse_faults
from repro.machine.process_map import ProcessMap
from repro.machine.systems import dane, tiny_cluster
from repro.netsim.fabric import parse_fabric
from repro.simmpi.engine import SpmdEngine
from repro.workloads import skewed_moe

DRAGONFLY = "dragonfly:hosts=1,routers=2,taper=2"


def _dragonfly_pmap(nodes=4, ppn=4) -> ProcessMap:
    cluster = dane(nodes).with_fabric(parse_fabric(DRAGONFLY))
    return ProcessMap(cluster, ppn=ppn, num_nodes=nodes)


def _tiny_pmap(nodes=2, ppn=4) -> ProcessMap:
    return ProcessMap(tiny_cluster(num_nodes=nodes), ppn=ppn)


def _elapsed(pmap, faults=None, *, engine_jobs=1, algorithm="pairwise", msg_bytes=64):
    return run_alltoall(algorithm, pmap, msg_bytes, keep_job=False,
                        faults=faults, engine_jobs=engine_jobs).elapsed


class TestOffIsBitIdentical:
    def test_empty_spec_equals_absent(self):
        pmap = _dragonfly_pmap()
        assert _elapsed(pmap, FaultSpec()) == _elapsed(pmap, None)

    def test_empty_spec_equals_absent_on_fabricless_machine(self):
        pmap = _tiny_pmap()
        assert _elapsed(pmap, FaultSpec()) == _elapsed(pmap, None)

    def test_inert_link_pattern_changes_nothing(self):
        pmap = _dragonfly_pmap()
        inert = parse_faults("degraded-link:no-such-link-*,0.1")
        assert _elapsed(pmap, inert) == _elapsed(pmap, None)

    def test_out_of_range_straggler_changes_nothing(self):
        pmap = _tiny_pmap(nodes=2)
        inert = parse_faults("straggler:99,8")
        assert _elapsed(pmap, inert) == _elapsed(pmap, None)

    def test_duty_one_flap_changes_nothing(self):
        pmap = _dragonfly_pmap()
        always_up = parse_faults("flapping-link:*,1e-6,1.0")
        assert _elapsed(pmap, always_up) == _elapsed(pmap, None)


class TestFaultDirection:
    def test_degraded_link_slows_crossing_traffic(self):
        pmap = _dragonfly_pmap()
        degraded = parse_faults("degraded-link:df-g0-1,0.125")
        assert _elapsed(pmap, degraded, msg_bytes=1024) > _elapsed(pmap, None,
                                                                   msg_bytes=1024)

    def test_degradation_stacks_multiplicatively(self):
        pmap = _dragonfly_pmap()
        once = parse_faults("degraded-link:df-g0-1,0.25")
        stacked = parse_faults("degraded-link:df-g0-1,0.5;degraded-link:df-g0-1,0.5")
        assert _elapsed(pmap, once, msg_bytes=1024) == \
            _elapsed(pmap, stacked, msg_bytes=1024)

    def test_flapping_link_never_speeds_up(self):
        pmap = _dragonfly_pmap()
        flap = parse_faults("flapping-link:df-g*,4e-6,0.5")
        assert _elapsed(pmap, flap, msg_bytes=1024) >= _elapsed(pmap, None,
                                                                msg_bytes=1024)

    def test_straggler_changes_timing(self):
        pmap = _tiny_pmap()
        slow = parse_faults("straggler:0,4")
        assert _elapsed(pmap, slow) != _elapsed(pmap, None)

    def test_os_noise_changes_timing(self):
        pmap = _tiny_pmap()
        noisy = parse_faults("os-noise:1e-6")
        assert _elapsed(pmap, noisy) != _elapsed(pmap, None)


ALL_KINDS = [
    "degraded-link:df-g0-1,0.25",
    "flapping-link:df-g*,4e-6,0.5",
    "straggler:0,2",
    "os-noise:1e-6",
    "degraded-link:df-*,0.5;straggler:1,1.5;os-noise:5e-7;seed:11",
]


class TestDeterminism:
    @pytest.mark.parametrize("text", ALL_KINDS)
    def test_repeat_runs_are_bit_identical(self, text):
        pmap = _dragonfly_pmap()
        faults = parse_faults(text)
        assert _elapsed(pmap, faults) == _elapsed(pmap, faults)

    @pytest.mark.parametrize("text", ALL_KINDS)
    def test_engine_jobs_invariance(self, text):
        pmap = _dragonfly_pmap()
        faults = parse_faults(text)
        serial = _elapsed(pmap, faults, algorithm="node-aware")
        for jobs in (2, 3):
            assert _elapsed(pmap, faults, engine_jobs=jobs,
                            algorithm="node-aware") == serial

    def test_noise_seed_changes_timings(self):
        pmap = _tiny_pmap()
        assert _elapsed(pmap, parse_faults("os-noise:1e-6;seed:1")) != \
            _elapsed(pmap, parse_faults("os-noise:1e-6;seed:2"))

    def test_faulted_workload_still_validates(self):
        pmap = _dragonfly_pmap()
        matrix = skewed_moe(pmap.nprocs, 64, seed=0)
        outcome = run_workload("node-aware", pmap, matrix, keep_job=False,
                               faults=parse_faults("degraded-link:df-g0-1,0.25"))
        assert outcome.correct


class TestRejections:
    def test_faults_with_fold_rejected_by_runner(self):
        pmap = _tiny_pmap(nodes=2)
        with pytest.raises(ConfigurationError, match="fold"):
            run_alltoall("pairwise", pmap, 16, fold="on",
                         faults=parse_faults("os-noise:1e-6"))

    def test_faults_with_folded_pmap_rejected_by_engine(self):
        pmap = _tiny_pmap(nodes=2).folded()
        with pytest.raises(SimulationError):
            SpmdEngine(pmap, faults=parse_faults("os-noise:1e-6"))
