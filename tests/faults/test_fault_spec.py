"""Tests for the fault-injection spec layer (repro.faults.spec).

The spec is pure data: frozen, picklable, payload-roundtrippable values
plus the ``parse_faults`` CLI grammar.  Nothing here touches the
simulator — the behavioural contract of each fault model lives in
``test_fault_models.py``.
"""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    DegradedLink,
    FaultSpec,
    FlappingLink,
    OsNoise,
    StragglerNode,
    faults_from_payload,
    parse_faults,
)


class TestFaultValidation:
    def test_degraded_factor_must_be_in_unit_interval(self):
        DegradedLink(link="*", factor=1.0)  # boundary is a healthy no-op
        with pytest.raises(ConfigurationError):
            DegradedLink(link="*", factor=0.0)
        with pytest.raises(ConfigurationError):
            DegradedLink(link="*", factor=1.5)

    def test_flapping_parameters_validated(self):
        FlappingLink(link="*", period=1e-3, duty=1.0)  # duty 1 = always up
        with pytest.raises(ConfigurationError):
            FlappingLink(link="*", period=0.0)
        with pytest.raises(ConfigurationError):
            FlappingLink(link="*", period=1e-3, duty=0.0)
        with pytest.raises(ConfigurationError):
            FlappingLink(link="*", period=1e-3, duty=1.5)

    def test_straggler_factor_must_slow_not_speed(self):
        StragglerNode(node=0, factor=1.0)
        with pytest.raises(ConfigurationError):
            StragglerNode(node=0, factor=0.5)
        with pytest.raises(ConfigurationError):
            StragglerNode(node=-1, factor=2.0)

    def test_noise_amplitude_non_negative(self):
        OsNoise(amplitude=0.0)
        with pytest.raises(ConfigurationError):
            OsNoise(amplitude=-1e-9)


class TestFaultSpec:
    def test_empty_spec_is_falsy(self):
        assert not FaultSpec()
        assert FaultSpec(faults=(DegradedLink(),))

    def test_views(self):
        spec = FaultSpec(faults=(DegradedLink(link="a"), StragglerNode(node=1),
                                 OsNoise(amplitude=2e-6), OsNoise(amplitude=3e-6)))
        assert [f.link for f in spec.link_faults()] == ["a"]
        assert [f.node for f in spec.stragglers()] == [1]
        assert spec.noise_amplitude() == pytest.approx(5e-6)

    def test_payload_roundtrip(self):
        spec = FaultSpec(seed=7, faults=(
            DegradedLink(link="df-g*", factor=0.25),
            FlappingLink(link="*", period=2e-6, duty=0.5, phase=1e-7),
            StragglerNode(node=3, factor=1.5),
            OsNoise(amplitude=1e-6),
        ))
        assert faults_from_payload(spec.payload()) == spec

    def test_absent_payload_reads_as_no_faults(self):
        assert faults_from_payload(None) is None

    def test_pickle_roundtrip(self):
        spec = parse_faults("degraded-link:df-g*,0.25;os-noise:1e-6;seed:9")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_describe_mentions_every_fault(self):
        spec = parse_faults("degraded-link:x,0.5;straggler:2,3;os-noise:1e-6")
        text = spec.describe()
        assert "link x" in text
        assert "node 2" in text
        assert "OS noise" in text
        assert "seed 0" in text


class TestParseGrammar:
    def test_empty_text_is_empty_spec(self):
        assert parse_faults("") == FaultSpec()
        assert parse_faults("  ") == FaultSpec()

    def test_positional_and_named_options_agree(self):
        positional = parse_faults("degraded-link:df-g0-1,0.25")
        named = parse_faults("degraded-link:link=df-g0-1,factor=0.25")
        assert positional == named

    def test_seed_clause(self):
        assert parse_faults("os-noise:1e-6;seed:42").seed == 42
        assert parse_faults("os-noise:1e-6").seed == 0

    def test_aliases(self):
        assert parse_faults("degrade:a,0.5") == parse_faults("degraded-link:a,0.5")
        assert parse_faults("flap:a,1e-6,0.5") == parse_faults("flapping-link:a,1e-6,0.5")
        assert parse_faults("noise:1e-7") == parse_faults("os-noise:1e-7")

    def test_multiple_clauses_compose(self):
        spec = parse_faults("degraded-link:a,0.5;degraded-link:b,0.25;straggler:0,2")
        assert len(spec.faults) == 3

    def test_unknown_clause_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_faults("meteor-strike:everything")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_faults("degraded-link:link=a,speed=2")

    def test_malformed_value_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_faults("degraded-link:a,fast")
        with pytest.raises(ConfigurationError):
            parse_faults("straggler:zero,2")

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_faults("degraded-link:a,2.0")
