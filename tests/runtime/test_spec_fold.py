"""Cache-key compatibility and identity of the PointSpec fold field."""

import pytest

from repro.bench.harness import BenchmarkHarness
from repro.errors import ConfigurationError
from repro.machine import tiny_cluster
from repro.runtime.spec import PointSpec
from repro.workloads.generators import uniform


@pytest.fixture
def cluster():
    return tiny_cluster(num_nodes=4)


def test_fold_off_payload_is_bit_identical_to_pre_fold_layout(cluster):
    """fold="off" must not appear in the payload: old cache keys stay valid."""
    spec = PointSpec.for_alltoall(cluster, 4, 4, "pairwise", 256, engine="simulate")
    assert spec.fold == "off"
    assert "fold" not in spec.payload()
    assert '"fold"' not in spec.canonical()


def test_folded_spec_changes_the_cache_key(cluster):
    base = PointSpec.for_alltoall(cluster, 4, 4, "pairwise", 256, engine="simulate")
    folded = PointSpec.for_alltoall(cluster, 4, 4, "pairwise", 256,
                                    engine="simulate", fold="on")
    assert folded.payload()["fold"] == "on"
    assert base.key() != folded.key()
    assert base != folded


def test_fold_modes_validated(cluster):
    with pytest.raises(ConfigurationError):
        PointSpec.for_alltoall(cluster, 4, 4, "pairwise", 256, fold="maybe")


def test_workload_spec_carries_fold(cluster):
    matrix = uniform(16, 64)
    spec = PointSpec.for_workload(cluster, 4, 4, "pairwise", matrix,
                                  engine="simulate", fold="auto")
    assert spec.fold == "auto"
    assert spec.payload()["fold"] == "auto"
    assert "fold=auto" in spec.describe()


def test_harness_threads_fold_through_run_spec(cluster):
    """A folded simulate spec executes folded and matches the unfolded time."""
    harness = BenchmarkHarness(cluster, 4, engine="simulate")
    plain = harness.run_spec(harness.point_spec("pairwise", 256, 4))
    folded = harness.run_spec(harness.point_spec("pairwise", 256, 4, fold="on"))
    assert folded.seconds == plain.seconds  # exact-equivalence class


def test_harness_fold_auto_workload(cluster):
    harness = BenchmarkHarness(cluster, 4, engine="simulate")
    matrix = uniform(16, 64)
    plain = harness.run_spec(harness.workload_spec("pairwise", matrix, 4))
    folded = harness.run_spec(harness.workload_spec("pairwise", matrix, 4, fold="auto"))
    assert folded.seconds == plain.seconds
