"""Cache-identity tests for phased :class:`~repro.runtime.PointSpec`s.

The central invariant: ``phases`` joins the canonical payload **only when
present**, so every cache key minted before phased specs existed is
bit-identical afterwards.  A phased spec's key, in turn, is a pure
function of its whole run plan (jobs, workload content, per-phase
assignments) and — like every spec — independent of ``engine_jobs``.
"""

import pytest

from repro.core import PhasedJob
from repro.errors import ConfigurationError
from repro.machine import tiny_cluster
from repro.runtime import PointSpec
from repro.workloads import Phase, PhasedWorkload, skewed_moe, uniform


def _workload(nprocs: int = 4, seed: int = 0) -> PhasedWorkload:
    return PhasedWorkload(
        (
            Phase("dispatch", skewed_moe(nprocs, 128, seed=seed), repeats=2),
            Phase("combine", uniform(nprocs, 8)),
        )
    )


def _phased_spec(**overrides) -> PointSpec:
    cluster = tiny_cluster(num_nodes=2)
    jobs = [PhasedJob.make(_workload(4), "nonblocking", 2)]
    return PointSpec.for_phased(cluster, 2, jobs, **overrides)


class TestPrePhasedKeysUnchanged:
    def test_uniform_spec_payload_has_no_phases_key(self):
        spec = PointSpec.for_alltoall(tiny_cluster(2), 4, 2, "pairwise", 64)
        assert "phases" not in spec.payload()

    def test_workload_spec_payload_has_no_phases_key(self):
        spec = PointSpec.for_workload(tiny_cluster(2), 4, 2, "pairwise", uniform(8, 16))
        assert "phases" not in spec.payload()

    def test_pinned_uniform_key(self):
        # A frozen literal: if this moves, every pre-phased cache entry and
        # golden timing silently invalidates.  Update only deliberately.
        spec = PointSpec.for_alltoall(
            tiny_cluster(2), 2, 2, "pairwise", 64, engine="simulate"
        )
        assert spec.key() == "c85dafe1b1d3a9819ba21a29d5f569453c3564d3f73a03d45cdd11ea077ea41a"


class TestPhasedSpecIdentity:
    def test_phased_payload_carries_phases(self):
        spec = _phased_spec()
        payload = spec.payload()
        assert "phases" in payload
        assert payload["algorithm"] == "phased"
        assert payload["engine"] == "simulate"

    def test_key_is_pure_function_of_plan(self):
        assert _phased_spec().key() == _phased_spec().key()

    def test_key_independent_of_engine_jobs(self):
        assert _phased_spec(engine_jobs=4).key() == _phased_spec().key()

    def test_key_moves_with_workload_content(self):
        cluster = tiny_cluster(num_nodes=2)
        a = PointSpec.for_phased(
            cluster, 2, [PhasedJob.make(_workload(4, seed=0), "nonblocking", 2)]
        )
        b = PointSpec.for_phased(
            cluster, 2, [PhasedJob.make(_workload(4, seed=1), "nonblocking", 2)]
        )
        assert a.key() != b.key()

    def test_key_moves_with_assignment(self):
        cluster = tiny_cluster(num_nodes=2)
        a = PointSpec.for_phased(
            cluster, 2, [PhasedJob.make(_workload(4), "nonblocking", 2)]
        )
        b = PointSpec.for_phased(
            cluster, 2, [PhasedJob.make(_workload(4), ["nonblocking", "pairwise"], 2)]
        )
        assert a.key() != b.key()

    def test_phased_jobs_round_trip(self):
        jobs = [
            PhasedJob.make(_workload(4, seed=0), "nonblocking", 1),
            PhasedJob.make(_workload(4, seed=1), ["pairwise", "node-aware"], 1),
        ]
        spec = PointSpec.for_phased(tiny_cluster(num_nodes=2), 4, jobs)
        rebuilt = spec.phased_jobs()
        assert [job.workload for job in rebuilt] == [job.workload for job in jobs]
        assert [job.algorithms for job in rebuilt] == [job.algorithms for job in jobs]
        assert [job.num_nodes for job in rebuilt] == [job.num_nodes for job in jobs]
        # And rebuilding a spec from the round-tripped jobs lands on the key.
        assert PointSpec.for_phased(tiny_cluster(num_nodes=2), 4, rebuilt).key() == spec.key()

    def test_describe_counts_jobs_and_phases(self):
        assert "1 job(s), 2 phase(s)" in _phased_spec().describe()


class TestPhasedSpecValidation:
    def test_needs_at_least_one_job(self):
        with pytest.raises(ConfigurationError):
            PointSpec.for_phased(tiny_cluster(num_nodes=2), 2, [])

    def test_rejects_model_engine(self):
        spec = _phased_spec()
        with pytest.raises(ConfigurationError):
            PointSpec(
                cluster=spec.cluster, ppn=spec.ppn, num_nodes=spec.num_nodes,
                engine="model", algorithm="phased", phases=spec.phases,
            )

    def test_rejects_fold(self):
        spec = _phased_spec()
        with pytest.raises(ConfigurationError):
            PointSpec(
                cluster=spec.cluster, ppn=spec.ppn, num_nodes=spec.num_nodes,
                engine="simulate", algorithm="phased", phases=spec.phases,
                fold="auto",
            )

    def test_rejects_phases_plus_msg_bytes(self):
        spec = _phased_spec()
        with pytest.raises(ConfigurationError):
            PointSpec(
                cluster=spec.cluster, ppn=spec.ppn, num_nodes=spec.num_nodes,
                engine="simulate", algorithm="phased", phases=spec.phases,
                msg_bytes=64,
            )

    def test_non_phased_still_needs_exactly_one_payload(self):
        with pytest.raises(ConfigurationError):
            PointSpec(
                cluster=tiny_cluster(2), ppn=2, num_nodes=2,
                engine="simulate", algorithm="pairwise",
            )
