"""Chaos tests for the self-healing sweep runtime.

These tests inject the real failure modes the executor exists to survive:
a worker SIGKILLed mid-task, a pool whose dispatch path is dead, a pool
that cannot be rebuilt at all, a task that hangs past its deadline, and a
poisoned point that fails deterministically on every attempt.  In every
case the sweep must complete, the healthy results must land (and persist
to the store as they land), and only the genuinely doomed points may be
quarantined.

The pool uses the ``fork`` start method so the module-level task helpers
stay picklable regardless of how pytest imported this module (the same
trick as ``test_store_concurrency``).
"""

import os
import signal
import time

import pytest

from repro.errors import ConfigurationError
from repro.machine.systems import tiny_cluster
from repro.runtime import (
    FailedPoint,
    PointSpec,
    ResultStore,
    RetryPolicy,
    SweepExecutor,
    SweepFailure,
)


def _spec(**overrides) -> PointSpec:
    base = dict(cluster=tiny_cluster(num_nodes=2), ppn=4, num_nodes=2,
                engine="simulate", algorithm="pairwise", msg_bytes=16)
    base.update(overrides)
    return PointSpec(**base)


# -- module-level task helpers (picklable under the fork start method) -------

def _double(task):
    value, _flag = task
    return value * 2


def _kill_self_once(task):
    """SIGKILL the hosting worker on the first attempt, succeed after."""
    value, flag = task
    if flag is not None and not os.path.exists(flag):
        open(flag, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _always_raises(task):
    raise ValueError(f"poisoned task {task!r}")


def _sleep_forever(task):
    time.sleep(5.0)
    return task


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0)
        assert policy.delay_before(2) == pytest.approx(0.1)
        assert policy.delay_before(3) == pytest.approx(0.2)
        assert policy.delay_before(4) == pytest.approx(0.4)


class TestWorkerKill:
    def test_sigkilled_worker_mid_sweep_is_retried_to_completion(self, tmp_path):
        """The acceptance chaos test: SIGKILL a pool worker mid-sweep.

        ``multiprocessing.Pool`` respawns the killed process, but the
        in-flight task's AsyncResult never completes — only the per-task
        deadline detects it.  The retry must then succeed and the sweep
        must finish with zero quarantined points.
        """
        flag = str(tmp_path / "killed-once")
        tasks = [(1, None), (2, flag), (3, None), (4, None), (5, None)]
        executor = SweepExecutor(
            2, mp_context="fork",
            retry=RetryPolicy(max_attempts=3, timeout=1.0, backoff=0.05),
        )
        try:
            results, failures = executor.run_tasks(_kill_self_once, tasks)
        finally:
            executor.close(force=True)
        assert failures == []
        assert results == [2, 4, 6, 8, 10]
        assert os.path.exists(flag)  # the kill really happened


class TestDeadPool:
    def test_dead_dispatch_path_respawns_the_pool(self):
        executor = SweepExecutor(2, mp_context="fork",
                                 retry=RetryPolicy(backoff=0.01))
        try:
            # Close the pool behind the executor's back: the next
            # apply_async raises, which is exactly what a dead result
            # handler / closed pipe looks like from the dispatch loop.
            executor._ensure_pool().close()
            tasks = [(i, None) for i in range(4)]
            results, failures = executor.run_tasks(_double, tasks)
        finally:
            executor.close(force=True)
        assert failures == []
        assert results == [0, 2, 4, 6]
        assert executor.pool_respawns == 1
        assert "pool respawn" in executor.stats_line()

    def test_unbuildable_pool_degrades_to_serial(self, monkeypatch):
        executor = SweepExecutor(2, mp_context="fork")

        def refuse():
            raise OSError("no processes for you")

        monkeypatch.setattr(executor, "_ensure_pool", refuse)
        results, failures = executor.run_tasks(_double, [(i, None) for i in range(3)])
        assert failures == []
        assert results == [0, 2, 4]
        assert executor._pool_broken


class TestTimeouts:
    def test_hung_task_is_quarantined_after_deadline(self):
        executor = SweepExecutor(
            2, mp_context="fork",
            retry=RetryPolicy(max_attempts=2, timeout=0.2, backoff=0.01),
        )
        try:
            results, failures = executor.run_tasks(_sleep_forever, ["a", "b"])
        finally:
            executor.close(force=True)  # workers are still sleeping: terminate
        assert results == [None, None]
        assert len(failures) == 2
        assert all("timed out" in f.error for f in failures)
        assert all(f.attempts == 2 for f in failures)


class TestQuarantine:
    def test_serial_path_gives_exactly_one_attempt(self):
        executor = SweepExecutor(1)
        results, failures = executor.run_tasks(_always_raises, ["x", "y"])
        assert results == [None, None]
        assert [f.attempts for f in failures] == [1, 1]
        assert all("poisoned task" in f.error for f in failures)

    def test_map_raises_sweep_failure_after_survivors_complete(self):
        executor = SweepExecutor(1)
        with pytest.raises(SweepFailure) as err:
            executor.map(_always_raises, ["x"])
        assert err.value.total == 1
        assert isinstance(err.value.failures[0], FailedPoint)

    def test_poisoned_point_quarantined_healthy_points_cached(self, tmp_path):
        """The acceptance cache test: a poisoned sweep still caches survivors.

        One spec names an algorithm that does not exist, so every attempt
        fails deterministically.  The sweep must finish, persist the two
        healthy points to the store, and only then raise; a rerun of the
        healthy points is served entirely from cache.
        """
        store = ResultStore(str(tmp_path / "cache"))
        healthy = [_spec(msg_bytes=16), _spec(msg_bytes=32)]
        poison = _spec(algorithm="no-such-algorithm")
        executor = SweepExecutor(
            2, store=store, mp_context="fork",
            retry=RetryPolicy(max_attempts=2, timeout=30.0, backoff=0.01),
        )
        try:
            with pytest.raises(SweepFailure) as err:
                executor.run([healthy[0], poison, healthy[1]])
        finally:
            executor.close(force=True)
        assert len(err.value.failures) == 1
        failure = err.value.failures[0]
        assert failure.task == poison
        assert failure.attempts == 2
        assert executor.failed_points == 1
        assert "1 quarantined" in executor.stats_line()
        # Survivors persisted as they landed, despite the raised failure.
        assert store.get(healthy[0]) is not None
        assert store.get(healthy[1]) is not None

        rerun = SweepExecutor(1, store=store)
        points = rerun.run(healthy)
        assert [p.seconds for p in points] == \
            [store.get(s).seconds for s in healthy]
        assert rerun.cached_points == 2
        assert rerun.executed_points == 0

    def test_incremental_persistence_on_failure_path(self, tmp_path):
        """Healthy results are in the store even though the batch raised."""
        store = ResultStore(str(tmp_path / "cache"))
        executor = SweepExecutor(1, store=store)
        good = _spec()
        with pytest.raises(SweepFailure):
            executor.run([good, _spec(algorithm="no-such-algorithm")])
        assert store.get(good) is not None


class TestShutdown:
    def test_graceful_close_is_idempotent(self):
        executor = SweepExecutor(2, mp_context="fork")
        results, failures = executor.run_tasks(_double, [(i, None) for i in range(3)])
        assert failures == []
        executor.close()
        assert executor._pool is None
        executor.close()  # second close is a no-op

    def test_context_manager_closes_on_success_and_error(self):
        with SweepExecutor(2, mp_context="fork") as executor:
            executor.run_tasks(_double, [(1, None), (2, None)])
        assert executor._pool is None
        with pytest.raises(RuntimeError):
            with SweepExecutor(2, mp_context="fork") as executor:
                executor.run_tasks(_double, [(1, None), (2, None)])
                raise RuntimeError("boom")
        assert executor._pool is None  # force path also tore the pool down
