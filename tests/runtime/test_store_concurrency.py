"""Concurrency and corruption-recovery tests for the on-disk ResultStore.

The store's contract under concurrent writers is *atomic visibility*: a
reader may see the previous entry or the new one, never a torn mix — writes
go through a temp file plus ``os.replace`` on the same filesystem.  These
tests hammer one key from multiple processes while a reader polls, and
exercise the corrupt-entry -> recompute -> rewrite path directly.
"""

import multiprocessing

import pytest

from repro.bench.datasets import TimedPoint
from repro.machine.systems import tiny_cluster
from repro.runtime import PointSpec, ResultStore, SweepExecutor, run_point


def _spec() -> PointSpec:
    return PointSpec(
        cluster=tiny_cluster(num_nodes=2), ppn=4, num_nodes=2,
        engine="simulate", algorithm="pairwise", msg_bytes=16,
    )


def _hammer_store(cache_dir: str, worker: int, rounds: int) -> None:
    """Write ``rounds`` distinct valid entries for the same key."""
    store = ResultStore(cache_dir)
    spec = _spec()
    for i in range(rounds):
        store.put(spec, TimedPoint(seconds=float(worker * rounds + i + 1),
                                   phases={"inter-node alltoall": float(i)}))


class TestConcurrentWriters:
    def test_two_processes_writing_same_key_never_corrupt_the_store(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = _spec()
        store = ResultStore(cache_dir)
        rounds = 200
        # fork keeps the helper picklable regardless of how pytest imported
        # this module; the store contract itself is start-method agnostic.
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=_hammer_store, args=(cache_dir, worker, rounds))
            for worker in (0, 1)
        ]
        for proc in writers:
            proc.start()
        # Poll while both writers race on the same key: every observed value
        # must be a fully-formed entry one of them wrote (never a torn read,
        # which would surface as None once the file first exists).  Whether
        # the reader overlaps the writers is scheduler-dependent, so only
        # the validity of what it sees is asserted, never an overlap count.
        valid = {float(w * rounds + i + 1) for w in (0, 1) for i in range(rounds)}
        while any(proc.is_alive() for proc in writers):
            point = store.get(spec)
            if point is not None:
                assert point.seconds in valid
        for proc in writers:
            proc.join()
            assert proc.exitcode == 0
        final = store.get(spec)
        assert final is not None and final.seconds in valid
        assert len(store) == 1

    def test_parallel_executors_sharing_a_store_agree(self, tmp_path):
        """Two executor pools writing the same cache directory converge on
        identical results (the workers compute deterministic points)."""
        store_a = ResultStore(tmp_path / "cache")
        store_b = ResultStore(tmp_path / "cache")
        specs = [_spec()]
        with SweepExecutor(jobs=2, store=store_a) as first:
            points_a = first.run(specs)
        with SweepExecutor(jobs=2, store=store_b) as second:
            points_b = second.run(specs)
            assert second.cached_points == 1 and second.executed_points == 0
        assert points_a == points_b


class TestCorruptedEntryRecovery:
    def test_corrupt_entry_reads_as_miss_then_rewrites_clean(self, tmp_path):
        """The direct store-level recompute path: corrupt -> miss ->
        recompute -> put -> clean hit (no executor involved)."""
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        first = run_point(spec)
        store.put(spec, first)
        path = store.path_for(spec)

        for corruption in ("", "{", '{"result": {"seconds": []}}', "\x00" * 32):
            path.write_text(corruption)
            assert store.get(spec) is None, f"corruption {corruption!r} must read as a miss"
            recomputed = run_point(spec)
            store.put(spec, recomputed)
            assert store.get(spec) == first == recomputed

    def test_truncated_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        store.put(spec, TimedPoint(seconds=2.5))
        path = store.path_for(spec)
        whole = path.read_text()
        path.write_text(whole[: len(whole) // 2])
        assert store.get(spec) is None

    def test_unwritable_tmp_cleanup_does_not_leave_partial_entry(self, tmp_path, monkeypatch):
        """If the atomic rename step fails, no entry (partial or otherwise)
        may become visible under the key."""
        import os as os_module

        import repro.runtime.store as store_module

        store = ResultStore(tmp_path / "cache")
        spec = _spec()

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(store_module.os, "replace", failing_replace)
        with pytest.raises(OSError):
            store.put(spec, TimedPoint(seconds=1.0))
        monkeypatch.setattr(store_module.os, "replace", os_module.replace)
        assert store.get(spec) is None
        assert list((tmp_path / "cache").rglob("*.tmp")) == []
