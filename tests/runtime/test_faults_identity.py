"""Cache-identity contract of faulted PointSpecs.

The load-bearing invariant: an absent or empty FaultSpec must produce the
*same* spec key and payload as before fault injection existed, so every
pre-faults ResultStore entry and golden digest stays valid.  A non-empty
spec must change the key (a degraded machine's timings may not collide
with healthy ones in the cache).
"""

import pickle

import pytest

from repro.bench.harness import BenchmarkHarness
from repro.errors import ConfigurationError
from repro.faults import FaultSpec, parse_faults
from repro.machine.systems import tiny_cluster
from repro.runtime import PointSpec, run_point

FAULTS = parse_faults("straggler:0,2;os-noise:1e-6;seed:5")


def _spec(**overrides) -> PointSpec:
    base = dict(cluster=tiny_cluster(num_nodes=2), ppn=4, num_nodes=2,
                engine="simulate", algorithm="pairwise", msg_bytes=16)
    base.update(overrides)
    return PointSpec(**base)


class TestCacheIdentity:
    def test_empty_spec_normalises_to_none(self):
        assert _spec(faults=FaultSpec()).faults is None

    def test_empty_spec_key_is_the_healthy_key(self):
        assert _spec(faults=FaultSpec()).key() == _spec().key()

    def test_payload_omits_faults_when_absent(self):
        assert "faults" not in _spec().payload()
        assert "faults" not in _spec(faults=FaultSpec()).payload()

    def test_non_empty_faults_change_the_key(self):
        assert _spec(faults=FAULTS).key() != _spec().key()

    def test_different_fault_specs_have_different_keys(self):
        other = parse_faults("straggler:0,2;os-noise:1e-6;seed:6")
        assert _spec(faults=FAULTS).key() != _spec(faults=other).key()

    def test_faulted_payload_roundtrips_through_pickle(self):
        spec = _spec(faults=FAULTS)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone.key() == spec.key()

    def test_describe_marks_faulted_specs(self):
        assert "faulted" in _spec(faults=FAULTS).describe()
        assert "faulted" not in _spec().describe()


class TestValidation:
    def test_faults_must_be_a_fault_spec(self):
        with pytest.raises(ConfigurationError):
            _spec(faults="degraded-link:*,0.5")

    def test_faults_require_simulate_engine(self):
        with pytest.raises(ConfigurationError):
            _spec(engine="model", faults=FAULTS)

    def test_faults_incompatible_with_fold(self):
        with pytest.raises(ConfigurationError):
            _spec(fold="on", faults=FAULTS)

    def test_harness_rejects_faults_on_model_engine(self):
        with pytest.raises(ConfigurationError):
            BenchmarkHarness(tiny_cluster(2), 4, engine="model", faults=FAULTS)


class TestExecution:
    def test_run_point_honours_faults(self):
        healthy = run_point(_spec()).seconds
        faulted = run_point(_spec(faults=FAULTS)).seconds
        assert faulted != healthy
        # Deterministic: the faulted point reproduces exactly.
        assert run_point(_spec(faults=FAULTS)).seconds == faulted

    def test_harness_specs_carry_the_harness_faults(self):
        harness = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate",
                                   faults=FAULTS)
        spec = harness.point_spec("pairwise", 16, 2)
        assert spec.faults == FAULTS
        assert spec.key() != _spec().key()
