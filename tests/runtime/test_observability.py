"""Harness self-observability: store counters, span timing, progress, logs."""

import json
import logging

from repro.machine.systems import tiny_cluster
from repro.runtime import PointSpec, ResultStore, SweepExecutor


def _spec(**overrides) -> PointSpec:
    base = dict(cluster=tiny_cluster(num_nodes=2), ppn=4, num_nodes=2,
                engine="simulate", algorithm="pairwise", msg_bytes=16)
    base.update(overrides)
    return PointSpec(**base)


class TestResultStoreCounters:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        assert store.get(spec) is None
        assert store.stats() == {"hits": 0, "misses": 1, "corrupt": 0}
        with SweepExecutor(1, store=store) as executor:
            executor.run([spec])   # miss (probed again) + write
            executor.run([spec])   # hit
        assert store.hits == 1
        assert store.misses == 2
        assert store.corrupt == 0

    def test_corrupt_entry_counts_and_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        with SweepExecutor(1, store=store) as executor:
            executor.run([spec])
            path = store.path_for(spec)
            path.write_text("{ truncated", encoding="utf-8")
            results = executor.run([spec])  # corrupt -> recompute -> rewrite
            assert executor.executed_points == 2
        assert store.stats()["corrupt"] == 1
        assert store.get(spec).seconds == results[0].seconds
        assert store.hits == 1

    def test_semantically_broken_entry_is_corrupt_not_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        path = store.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"result": {"seconds": "NaN-ish", "phases": 3}}),
                        encoding="utf-8")
        assert store.get(spec) is None
        assert store.stats() == {"hits": 0, "misses": 0, "corrupt": 1}


class TestExecutorSpans:
    def test_wall_seconds_and_sweeps_accumulate(self):
        with SweepExecutor(1) as executor:
            assert executor.sweeps == 0 and executor.wall_seconds == 0.0
            executor.run([_spec()])
            executor.run([_spec(msg_bytes=32)])
            assert executor.sweeps == 2
            assert executor.wall_seconds > 0.0

    def test_stats_line_keeps_grepped_prefix_and_appends_spans(self, tmp_path):
        store = ResultStore(tmp_path)
        with SweepExecutor(1, store=store) as executor:
            executor.run([_spec()])
            line = executor.stats_line()
        assert line.startswith("[runtime] jobs=1: 1 point(s) simulated, 0 served from cache")
        assert "1 sweep(s)" in line and "s wall)" in line
        assert "corrupt" not in line

    def test_stats_line_reports_corrupt_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        with SweepExecutor(1, store=store) as executor:
            executor.run([spec])
            store.path_for(spec).write_text("broken", encoding="utf-8")
            executor.run([spec])
            line = executor.stats_line()
        assert "[1 corrupt entr(ies) recomputed]" in line


class TestSweepSummaryLine:
    def test_deterministic_per_sweep_log_line(self, caplog, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        with caplog.at_level(logging.INFO, logger="repro.runtime.executor"):
            with SweepExecutor(1, store=store) as executor:
                executor.run([spec, spec])       # 2 points, 1 unique, 1 simulated
                executor.run([spec])             # 1 point, served from cache
        lines = [r.getMessage() for r in caplog.records
                 if r.name == "repro.runtime.executor"]
        assert lines == [
            "sweep of 2 point(s): 1 unique, 1 simulated, 0 from cache",
            "sweep of 1 point(s): 1 unique, 0 simulated, 1 from cache",
        ]


class TestProgressCallback:
    def test_serial_progress_reports_each_point(self):
        seen = []
        with SweepExecutor(1) as executor:
            executor.progress = lambda done, total: seen.append((done, total))
            executor.run([_spec(), _spec(msg_bytes=32), _spec(msg_bytes=64)])
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_cached_points_report_before_computation(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        with SweepExecutor(1, store=store) as executor:
            executor.run([spec])
            seen = []
            executor.progress = lambda done, total: seen.append((done, total))
            executor.run([spec, _spec(msg_bytes=32)])
        assert seen == [(1, 2), (2, 2)]

    def test_no_callback_means_no_overhead_path(self):
        with SweepExecutor(1) as executor:
            results = executor.run([_spec()])
        assert len(results) == 1
