"""Tests for the parallel sweep runtime (repro.runtime)."""

import json
import pickle

import pytest

from repro.bench.datasets import TimedPoint
from repro.bench.harness import BenchmarkHarness
from repro.errors import ConfigurationError
from repro.machine.systems import dane, tiny_cluster
from repro.runtime import (
    PointSpec,
    ResultStore,
    SweepExecutor,
    cluster_from_payload,
    cluster_payload,
    execute,
    run_point,
)
from repro.workloads import uniform


def _spec(**overrides) -> PointSpec:
    base = dict(cluster=tiny_cluster(num_nodes=2), ppn=4, num_nodes=2,
                engine="simulate", algorithm="pairwise", msg_bytes=16)
    base.update(overrides)
    return PointSpec(**base)


class TestPointSpec:
    def test_key_is_stable(self):
        assert _spec().key() == _spec().key()

    def test_equality_and_hash(self):
        assert _spec() == _spec()
        assert hash(_spec()) == hash(_spec())
        assert _spec() != _spec(msg_bytes=64)

    def test_key_changes_with_options(self):
        plain = PointSpec.for_alltoall(tiny_cluster(2), 4, 2, "node-aware", 16,
                                       engine="simulate")
        grouped = PointSpec.for_alltoall(tiny_cluster(2), 4, 2, "node-aware", 16,
                                         engine="simulate", procs_per_group=2)
        assert plain.key() != grouped.key()

    def test_key_changes_with_machine_params(self):
        cluster = tiny_cluster(2)
        slower = cluster.with_params(
            cluster.params.with_overrides(injection_bandwidth=cluster.params.injection_bandwidth / 2)
        )
        assert _spec().key() != _spec(cluster=slower).key()

    def test_key_changes_with_engine(self):
        assert _spec().key() != _spec(engine="model").key()

    def test_needs_exactly_one_payload(self):
        with pytest.raises(ConfigurationError):
            _spec(msg_bytes=None)
        with pytest.raises(ConfigurationError):
            _spec(trace='{"bytes": [[0]]}')  # both msg_bytes and trace

    def test_more_nodes_than_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(num_nodes=4)

    def test_pickle_roundtrip(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and clone.key() == spec.key()

    def test_non_serializable_option_rejected(self):
        spec = _spec(options=(("callback", object()),))
        with pytest.raises(ConfigurationError):
            spec.key()

    def test_cluster_payload_roundtrip(self):
        for cluster in (tiny_cluster(3), dane(8)):
            assert cluster_from_payload(cluster_payload(cluster)) == cluster

    def test_workload_spec_matrix_roundtrip(self):
        matrix = uniform(8, 16)
        spec = PointSpec.for_workload(tiny_cluster(2), 4, 2, "pairwise", matrix,
                                      engine="simulate")
        assert spec.matrix() == matrix
        assert spec.matrix().pattern == "uniform"

    def test_describe_mentions_shape(self):
        text = _spec().describe()
        assert "pairwise" in text and "16 B" in text and "tiny" in text


class TestRunPoint:
    def test_matches_harness_time_point(self):
        harness = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate")
        spec = harness.point_spec("node-aware", 64, 2)
        assert run_point(spec) == harness.time_point("node-aware", 64, 2)

    def test_workload_point_matches(self):
        matrix = uniform(8, 16)
        harness = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate")
        spec = harness.workload_spec("pairwise", matrix, 2)
        assert run_point(spec) == harness.workload_point("pairwise", matrix, 2)

    def test_model_engine(self):
        point = run_point(_spec(engine="model", algorithm="node-aware"))
        assert point.seconds > 0.0 and point.phases

    def test_inline_path_honors_foreign_spec(self):
        """run_spec must follow the spec, not the harness it happens to run on."""
        foreign = BenchmarkHarness(dane(8), 16, engine="model")
        spec = _spec()  # tiny cluster, simulate engine
        assert foreign.run_specs([spec])[0] == run_point(spec)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        assert store.get(spec) is None
        point = TimedPoint(seconds=1.25, phases={"inter-node alltoall": 1.0})
        store.put(spec, point)
        assert store.get(spec) == point
        assert spec in store and len(store) == 1

    def test_corrupted_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        store.put(spec, TimedPoint(seconds=1.0))
        store.path_for(spec).write_text("{not json at all")
        assert store.get(spec) is None

    def test_corrupted_entry_unlinked_at_detection(self, tmp_path):
        # The corrupt file must leave the disk at detection time, not at the
        # recompute's put(): a sweep that crashes between the two would
        # otherwise leave the poison entry for every later store user.
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        store.put(spec, TimedPoint(seconds=1.0))
        store.path_for(spec).write_text("{not json at all")
        assert store.get(spec) is None
        assert not store.path_for(spec).exists()
        # A fresh store over the same directory sees a clean miss, an empty
        # store, and no residual membership.
        fresh = ResultStore(tmp_path / "cache")
        assert len(fresh) == 0
        assert spec not in fresh
        assert fresh.stats() == {"hits": 0, "misses": 1, "corrupt": 0}

    def test_wrong_shape_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        store.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(spec).write_text(json.dumps({"result": {"seconds": "NaN?", "phases": 3}}))
        assert store.get(spec) is None

    def test_entries_are_self_describing(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        store.put(spec, TimedPoint(seconds=2.0))
        entry = json.loads(store.path_for(spec).read_text())
        assert entry["key"] == spec.key()
        assert entry["spec"]["algorithm"] == "pairwise"
        assert entry["spec"]["cluster"]["name"] == "tiny"


class TestSweepExecutorSerial:
    def test_preserves_order(self):
        harness = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate")
        specs = [harness.point_spec("pairwise", size, 2) for size in (64, 16, 32)]
        with SweepExecutor(jobs=1) as executor:
            points = executor.run(specs)
        assert points == [run_point(spec) for spec in specs]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=0)

    def test_cache_hit_skips_execution(self, tmp_path, monkeypatch):
        import repro.runtime.executor as executor_module

        calls = {"n": 0}
        real_run_point = run_point

        def counting_run_point(spec):
            calls["n"] += 1
            return real_run_point(spec)

        monkeypatch.setattr(executor_module, "run_point", counting_run_point)
        spec = _spec()
        with SweepExecutor(jobs=1, store=ResultStore(tmp_path / "cache")) as executor:
            first = executor.run([spec])
            assert calls["n"] == 1 and executor.executed_points == 1
            second = executor.run([spec])
            assert calls["n"] == 1, "cache hit must not re-execute the point"
            assert executor.cached_points == 1
        assert first == second

    def test_corrupted_cache_entry_recomputed(self, tmp_path, monkeypatch):
        import repro.runtime.executor as executor_module

        calls = {"n": 0}
        real_run_point = run_point

        def counting_run_point(spec):
            calls["n"] += 1
            return real_run_point(spec)

        monkeypatch.setattr(executor_module, "run_point", counting_run_point)
        store = ResultStore(tmp_path / "cache")
        spec = _spec()
        with SweepExecutor(jobs=1, store=store) as executor:
            good = executor.run([spec])[0]
            store.path_for(spec).write_text("corrupted!!")
            recomputed = executor.run([spec])[0]
        assert calls["n"] == 2
        assert recomputed == good
        assert store.get(spec) == good, "the recomputed result must be written back"

    def test_duplicate_specs_in_one_batch_computed_once(self, monkeypatch):
        import repro.runtime.executor as executor_module

        calls = {"n": 0}
        real_run_point = run_point

        def counting_run_point(spec):
            calls["n"] += 1
            return real_run_point(spec)

        monkeypatch.setattr(executor_module, "run_point", counting_run_point)
        with SweepExecutor(jobs=1) as executor:
            points = executor.run([_spec(), _spec(), _spec(msg_bytes=32)])
        assert calls["n"] == 2
        assert points[0] == points[1]

    def test_execute_helper_inline(self):
        specs = [_spec(msg_bytes=16), _spec(msg_bytes=32)]
        assert execute(specs) == [run_point(s) for s in specs]


class TestSweepExecutorParallel:
    def test_parallel_sweep_bit_identical_to_serial(self):
        serial = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate")
        baseline = serial.size_sweep("node-aware", msg_sizes=(16, 32, 64, 128), num_nodes=2)
        with SweepExecutor(jobs=4) as executor:
            harness = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate",
                                       executor=executor)
            parallel = harness.size_sweep("node-aware", msg_sizes=(16, 32, 64, 128),
                                          num_nodes=2)
        assert parallel.points == baseline.points

    def test_parallel_fills_store_serial_reads_it(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        sizes = (16, 64)
        with SweepExecutor(jobs=2, store=store) as executor:
            harness = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate",
                                       executor=executor)
            first = harness.size_sweep("pairwise", msg_sizes=sizes, num_nodes=2)
            assert executor.executed_points == len(sizes)
        with SweepExecutor(jobs=1, store=store) as executor:
            harness = BenchmarkHarness(tiny_cluster(2), 4, engine="simulate",
                                       executor=executor)
            second = harness.size_sweep("pairwise", msg_sizes=sizes, num_nodes=2)
            assert executor.executed_points == 0
            assert executor.cached_points == len(sizes)
        assert first.points == second.points
