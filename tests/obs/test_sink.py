"""The event-sink protocol: no-op base contract and the recording sink."""

from repro.obs import NULL_SINK, EventSink, RecordingSink


class TestEventSinkBase:
    def test_every_callback_is_a_noop(self):
        sink = EventSink()
        assert sink.phase(0, "gather", 0.0, 1.0) is None
        assert sink.wait(0, 0.0, 1.0, 2) is None
        assert sink.send_posted(0, 1, 64, 7, 0.0) is None
        assert sink.recv_posted(1, 0, 7, 0.0) is None
        assert sink.matched(0, 1, 64, 7, True, 1.0, 2.0) is None
        assert sink.parked(0, 1, 64, 7, 1.0, 3) is None
        assert sink.nic(0, 0.0, 0.0, 1.0, 64) is None
        assert sink.link("link", 0.0, 0.0, 1.0, 64, 0, 1) is None

    def test_null_sink_is_a_shared_event_sink(self):
        assert isinstance(NULL_SINK, EventSink)
        assert type(NULL_SINK) is EventSink


class TestRecordingSink:
    def _filled(self) -> RecordingSink:
        sink = RecordingSink()
        sink.phase(0, "gather", 0.0, 1.0)
        sink.send_posted(0, 1, 64, 7, 0.5)
        sink.send_posted(1, 0, 64, 7, 0.5)
        sink.matched(0, 1, 64, 7, True, 0.6, 0.7)
        sink.link("l0", 0.0, 0.1, 0.2, 64, 0, 1)
        return sink

    def test_records_typed_tuples_in_order(self):
        sink = self._filled()
        assert sink.events[0] == ("phase", 0, "gather", 0.0, 1.0)
        assert sink.events[1] == ("send", 0, 1, 64, 7, 0.5)
        assert sink.events[3] == ("match", 0, 1, 64, 7, True, 0.6, 0.7)
        assert sink.events[4] == ("link", "l0", 0.0, 0.1, 0.2, 64, 0, 1)

    def test_of_kind_filters_in_emission_order(self):
        sink = self._filled()
        sends = sink.of_kind("send")
        assert [event[1] for event in sends] == [0, 1]
        assert sink.of_kind("nic") == []

    def test_kinds_counts_per_kind(self):
        assert self._filled().kinds() == {"phase": 1, "send": 2, "match": 1, "link": 1}

    def test_len_and_clear(self):
        sink = self._filled()
        assert len(sink) == 5
        sink.clear()
        assert len(sink) == 0
        assert sink.kinds() == {}
