"""Fault events on the observability surface: sink, Chrome export, metrics.

Active faults must be visible in every trace: a t=0 manifest instant per
injected fault (on the dedicated ``faults`` track), ``flap-stall`` spans
when a flapping link actually holds a message, and a ``faults.active``
counter in the job metrics — so no one mistakes a degraded machine's
timings for healthy ones.
"""

from repro.core.runner import run_alltoall
from repro.faults import parse_faults
from repro.machine.process_map import ProcessMap
from repro.machine.systems import dane
from repro.netsim.fabric import parse_fabric
from repro.obs import RecordingSink, validate_chrome_trace, write_chrome_trace
from repro.obs.chrome import PID_FAULTS, chrome_trace_events

FAULTS = parse_faults(
    "degraded-link:df-g0-1,0.25;flapping-link:df-*,2e-6,0.5;straggler:0,2;os-noise:1e-7"
)


def _pmap(nodes=4, ppn=2) -> ProcessMap:
    cluster = dane(nodes).with_fabric(parse_fabric("dragonfly:hosts=1,routers=2,taper=2"))
    return ProcessMap(cluster, ppn=ppn, num_nodes=nodes)


def _faulted_sink() -> RecordingSink:
    sink = RecordingSink()
    run_alltoall("pairwise", _pmap(), 1024, sink=sink, keep_job=False, faults=FAULTS)
    return sink


class TestSinkEvents:
    def test_manifest_announces_every_fault_at_time_zero(self):
        events = list(_faulted_sink().of_kind("fault"))
        manifests = [e for e in events if e[3] == 0.0 and e[4] == 0.0]
        # One t=0 instant per injected fault model.
        assert len(manifests) == len(FAULTS.faults)
        kinds = {e[1] for e in manifests}
        assert kinds == {"degraded-link", "flapping-link", "straggler", "os-noise"}

    def test_flap_stalls_recorded_as_spans(self):
        events = list(_faulted_sink().of_kind("fault"))
        stalls = [e for e in events if e[1] == "flap-stall"]
        assert stalls, "a 50%-duty flap on every global link must stall something"
        for _, _, target, start, stop, _detail in stalls:
            assert stop > start >= 0.0
            assert target.startswith("df-")

    def test_healthy_run_has_no_fault_events(self):
        sink = RecordingSink()
        run_alltoall("pairwise", _pmap(), 1024, sink=sink, keep_job=False)
        assert list(sink.of_kind("fault")) == []


class TestChromeExport:
    def test_fault_track_present_and_valid(self, tmp_path):
        sink = _faulted_sink()
        events = chrome_trace_events(sink)
        fault_events = [e for e in events if e.get("cat") == "fault"]
        assert fault_events
        assert {e["pid"] for e in fault_events} == {PID_FAULTS}
        names = {e["name"] for e in events
                 if e.get("ph") == "M" and e["name"] == "process_name"
                 and e["pid"] == PID_FAULTS}
        assert names == {"process_name"}

        path = tmp_path / "faulted.json"
        write_chrome_trace(path, sink, configuration="faulted run")
        summary = validate_chrome_trace(path)
        assert summary.events > 0


class TestMetrics:
    def test_job_metrics_record_active_faults(self):
        outcome = run_alltoall("pairwise", _pmap(), 1024, faults=FAULTS)
        metrics = outcome.job.metrics
        assert metrics["faults"]["active"] == len(FAULTS.faults)
        assert metrics["faults"]["seed"]["value"] == FAULTS.seed

    def test_healthy_job_metrics_have_no_faults_section(self):
        outcome = run_alltoall("pairwise", _pmap(), 1024)
        assert "faults" not in outcome.job.metrics
