"""Chrome trace-event export: track layout, scaling, clamping, file output."""

import json

from repro.core.runner import run_alltoall
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system
from repro.netsim.fabric import parse_fabric
from repro.obs import RecordingSink, chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.chrome import _MIN_DUR, PID_LINKS, PID_NICS, PID_RANKS
from repro.obs.schema import validate_chrome_trace


def _sample_sink() -> RecordingSink:
    sink = RecordingSink()
    sink.phase(0, "gather", 0.0, 2e-6)
    sink.phase(1, "gather", 0.0, 0.0)          # zero-length: must clamp
    sink.wait(0, 2e-6, 3e-6, 4)
    sink.send_posted(0, 1, 64, 7, 1e-6)
    sink.recv_posted(1, 0, 7, 1e-6)
    sink.matched(0, 1, 64, 7, False, 1.5e-6, 2.5e-6)
    sink.parked(0, 1, 64, 7, 1.5e-6, 2)
    sink.nic(0, 1e-6, 1.2e-6, 1.4e-6, 64)
    sink.link("fat-tree:up0", 1.4e-6, 1.5e-6, 1.8e-6, 64, 0, 1)
    return sink


class TestChromeTraceEvents:
    def test_metadata_names_all_three_processes(self):
        events = chrome_trace_events(_sample_sink())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert names == {PID_RANKS: "ranks", PID_LINKS: "fabric links", PID_NICS: "nics"}
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in threads if e["pid"] == PID_RANKS} == \
            {"rank 0", "rank 1"}
        assert {e["args"]["name"] for e in threads if e["pid"] == PID_LINKS} == \
            {"fat-tree:up0"}

    def test_simulated_seconds_scale_to_trace_microseconds(self):
        events = chrome_trace_events(_sample_sink())
        phase = next(e for e in events if e["ph"] == "X" and e["name"] == "gather")
        assert phase["ts"] == 0.0
        assert phase["dur"] == 2.0  # 2e-6 s -> 2 us

    def test_zero_length_slices_clamped_to_min_duration(self):
        events = chrome_trace_events(_sample_sink())
        clamped = [e for e in events
                   if e["ph"] == "X" and e["name"] == "gather" and e["tid"] == 1]
        assert clamped and clamped[0]["dur"] == _MIN_DUR

    def test_link_slice_carries_bytes_and_queueing_delay(self):
        events = chrome_trace_events(_sample_sink())
        link = next(e for e in events if e.get("cat") == "link")
        assert link["pid"] == PID_LINKS
        assert link["name"] == "n0->n1"
        assert link["args"]["bytes"] == 64
        assert link["args"]["queued_us"] == (1.5e-6 - 1.4e-6) * 1e6

    def test_instants_mark_p2p_lifecycle(self):
        events = chrome_trace_events(_sample_sink())
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert instants == {"send", "recv", "match", "unexpected"}

    def test_empty_sink_exports_rank_metadata_only(self):
        events = chrome_trace_events(RecordingSink())
        assert all(e["ph"] == "M" for e in events)
        assert all(e["pid"] == PID_RANKS for e in events)


class TestChromeTraceDocument:
    def test_document_shape_and_configuration(self):
        document = chrome_trace(_sample_sink(), configuration="pairwise, 2 nodes")
        assert document["otherData"]["configuration"] == "pairwise, 2 nodes"
        assert document["otherData"]["producer"] == "repro.obs"
        summary = validate_chrome_trace(document)
        assert summary.tracks("ranks") == 2
        assert summary.tracks("fabric links") == 1
        assert summary.tracks("nics") == 1

    def test_write_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "trace.json"
        written = write_chrome_trace(target, _sample_sink(), configuration="cfg")
        assert written == target and target.is_file()
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["otherData"]["configuration"] == "cfg"
        validate_chrome_trace(document)


class TestEndToEndDragonflyTrace:
    def test_real_run_has_rank_and_link_tracks(self, tmp_path):
        """The acceptance shape: a traced run exports >=1 rank and link track."""
        spec = parse_fabric("dragonfly:hosts=2,routers=2,taper=4")
        cluster = get_system("dane", 8, fabric=spec)
        pmap = ProcessMap(cluster, ppn=2, num_nodes=8)
        sink = RecordingSink()
        run_alltoall("node-aware", pmap, 128, validate=False, sink=sink)
        path = write_chrome_trace(tmp_path / "trace.json", sink,
                                  configuration="node-aware dragonfly")
        summary = validate_chrome_trace(path)
        assert summary.tracks("ranks") >= 1
        assert summary.tracks("fabric links") >= 1
        assert summary.events == len(sink)


class TestPhasedTraceSpans:
    def test_phased_run_exports_phase_boundary_spans(self, tmp_path):
        """Phase boundaries of a phased run land on the rank tracks."""
        import json

        from repro.core import run_phased_workload
        from repro.workloads import Phase, PhasedWorkload, uniform

        cluster = get_system("dane", 2)
        pmap = ProcessMap(cluster, ppn=2, num_nodes=2)
        workload = PhasedWorkload((
            Phase("dispatch", uniform(4, 64), repeats=2),
            Phase("combine", uniform(4, 8)),
        ))
        sink = RecordingSink()
        run_phased_workload("nonblocking", pmap, workload, sink=sink)
        path = write_chrome_trace(tmp_path / "trace.json", sink,
                                  configuration="phased nonblocking")
        validate_chrome_trace(path)
        names = {
            event.get("name")
            for event in json.loads(path.read_text())["traceEvents"]
        }
        assert "phase0:dispatch" in names
        assert "phase1:combine" in names
