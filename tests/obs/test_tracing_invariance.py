"""Attaching a recording sink must not move a single simulated float.

The golden timing fixture (``tests/golden/simulated_timings.json``) pins
exact simulated results for a diverse job matrix with tracing *off*; this
suite reruns every pinned job with a :class:`RecordingSink` attached and
asserts bit-identical elapsed times, per-rank finish-time sums and event
counts.  Sinks observe already-computed times — any drift here means an
emission site leaked into the simulated arithmetic.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.core.runner import run_alltoall, run_workload
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system
from repro.netsim.fabric import parse_fabric
from repro.obs import RecordingSink
from repro.workloads import make_pattern


def _load_fixture_module():
    path = Path(__file__).resolve().parents[1] / "integration" / "test_timing_fixture.py"
    spec = importlib.util.spec_from_file_location("_timing_fixture_defs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_fixture = _load_fixture_module()
JOBS = _fixture.JOBS
FIXTURE_PATH = _fixture.FIXTURE_PATH
_PATTERN_SEED = _fixture._PATTERN_SEED


def _run_traced(kind, algorithm, nodes, ppn, msg_bytes, pattern, options, fabric=None):
    sink = RecordingSink()
    spec = None if fabric is None else parse_fabric(fabric)
    cluster = get_system("dane", nodes, fabric=spec)
    pmap = ProcessMap(cluster, ppn=ppn, num_nodes=nodes)
    if kind == "workload":
        matrix = make_pattern(pattern, pmap.nprocs, msg_bytes, seed=_PATTERN_SEED)
        outcome = run_workload(algorithm, pmap, matrix, validate=False, sink=sink,
                               **options)
    else:
        outcome = run_alltoall(algorithm, pmap, msg_bytes, validate=False, sink=sink,
                               **options)
    job = outcome.job
    return sink, {
        "elapsed": outcome.elapsed,
        "finish_time_sum": sum(job.finish_times),
        "events": job.events_processed,
    }


@pytest.mark.parametrize("key", [job[0] for job in JOBS])
def test_recording_sink_preserves_golden_timings(key):
    frozen = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))["jobs"]
    spec = next(job[1:] for job in JOBS if job[0] == key)
    sink, live = _run_traced(*spec)
    expected = frozen[key]
    # Exact equality on purpose, mirroring the tracing-off fixture test.
    assert live["events"] == expected["events"], f"{key}: event count drifted with sink on"
    assert live["elapsed"] == expected["elapsed"], (
        f"{key}: simulated elapsed drifted with sink on "
        f"({expected['elapsed']!r} -> {live['elapsed']!r})"
    )
    assert live["finish_time_sum"] == expected["finish_time_sum"], (
        f"{key}: per-rank finish times drifted with sink on"
    )
    # And the sink actually observed the run (the guard is not dead code).
    assert len(sink) > 0
    assert sink.of_kind("match"), f"{key}: no matches recorded"
