"""Metrics primitives and the per-job snapshot every engine run carries."""

import json

import pytest

from repro.core.runner import run_alltoall, run_workload
from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system, tiny_cluster
from repro.netsim.fabric import parse_fabric
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.workloads import make_pattern


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.snapshot() == 42

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)


class TestGauge:
    def test_tracks_value_and_peak(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.snapshot() == {"value": 2, "peak": 5}


class TestHistogram:
    def test_buckets_are_inclusive_upper_edges(self):
        hist = Histogram("h", bounds=(1, 4))
        for value in (0, 1, 2, 4, 5):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"le_1": 2, "le_4": 2, "overflow": 1}
        assert snap["count"] == 5
        assert snap["sum"] == 12
        assert snap["max"] == 5
        assert snap["mean"] == pytest.approx(2.4)

    def test_empty_histogram_has_zero_mean(self):
        assert Histogram("h").snapshot()["mean"] == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", bounds=(4, 1))


class TestMetricsRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ConfigurationError):
            registry.counter("a.b")

    def test_snapshot_nests_dotted_names(self):
        registry = MetricsRegistry()
        registry.counter("matching.fast_path", 3)
        registry.counter("matching.queued", 1)
        registry.counter("engine.ranks", 8)
        assert registry.snapshot() == {
            "matching": {"fast_path": 3, "queued": 1},
            "engine": {"ranks": 8},
        }

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        registry.gauge("depth")
        assert "depth" in registry and "other" not in registry
        assert len(registry) == 1


def _uniform_metrics(algorithm="pairwise", fabric=None, nodes=4, ppn=4, msg_bytes=256):
    spec = None if fabric is None else parse_fabric(fabric)
    cluster = get_system("dane", nodes, fabric=spec)
    pmap = ProcessMap(cluster, ppn=ppn, num_nodes=nodes)
    outcome = run_alltoall(algorithm, pmap, msg_bytes, validate=False)
    return outcome, outcome.job.metrics


class TestJobMetrics:
    def test_every_engine_run_is_populated(self):
        _, metrics = _uniform_metrics()
        for section in ("matching", "traffic", "nic", "engine"):
            assert section in metrics, f"missing {section!r} section"
        assert json.dumps(metrics)  # JSON-serialisable by construction

    def test_match_classification_reconciles(self):
        _, metrics = _uniform_metrics()
        matching = metrics["matching"]
        assert matching["matches"] == matching["fast_path"] + matching["queued"]
        # Every queued match was first parked in the unexpected queue.
        assert matching["queued"] == matching["parked"]
        assert matching["unexpected_depth"]["peak"] >= matching["unexpected_depth"]["value"]

    def test_traffic_levels_reconcile_to_totals(self):
        _, metrics = _uniform_metrics()
        levels = metrics["traffic"]["by_level"]
        assert sum(v["messages"] for v in levels.values()) == metrics["traffic"]["messages"]
        assert sum(v["bytes"] for v in levels.values()) == metrics["traffic"]["bytes"]

    def test_fabric_section_only_on_contended_topologies(self):
        _, flat = _uniform_metrics()
        assert "fabric" not in flat
        _, contended = _uniform_metrics(fabric="dragonfly:hosts=1,routers=2,taper=4")
        fabric = contended["fabric"]
        assert fabric["links"] > 0
        assert fabric["bytes"] > 0
        assert fabric["link_busy_time"]["count"] == fabric["links"]
        assert fabric["link_occupancy"]["peak"] == fabric["link_busy_time"]["max"]
        assert fabric["queued_time"] >= 0.0

    def test_wildcard_counters_zero_on_wildcard_free_algorithms(self):
        _, metrics = _uniform_metrics()
        assert metrics["matching"]["wildcard_receives"] == 0
        assert metrics["matching"]["wildcard_scan"]["count"] == 0

    def test_workload_runs_are_populated_too(self):
        cluster = tiny_cluster(num_nodes=2)
        pmap = ProcessMap(cluster, ppn=4, num_nodes=2)
        matrix = make_pattern("skewed-moe", pmap.nprocs, 64, seed=1)
        outcome = run_workload("node-aware", pmap, matrix, validate=False)
        metrics = outcome.job.metrics
        assert metrics["engine"]["ranks"] == pmap.nprocs
        assert metrics["engine"]["events_processed"] == outcome.job.events_processed
