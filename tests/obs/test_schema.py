"""Structural validation of trace documents and the schema CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import RecordingSink, chrome_trace
from repro.obs.schema import main, validate_chrome_trace


def _valid_document() -> dict:
    sink = RecordingSink()
    sink.phase(0, "gather", 0.0, 1e-6)
    sink.link("l0", 0.0, 0.0, 1e-6, 64, 0, 1)
    return chrome_trace(sink)


class TestValidateChromeTrace:
    def test_accepts_dict_json_string_and_path(self, tmp_path):
        document = _valid_document()
        assert validate_chrome_trace(document).events == 2
        assert validate_chrome_trace(json.dumps(document)).events == 2
        path = tmp_path / "t.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert validate_chrome_trace(path).events == 2
        assert validate_chrome_trace(str(path)).events == 2

    def test_rejects_non_object_documents(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            validate_chrome_trace("[]")

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ConfigurationError, match="traceEvents"):
            validate_chrome_trace({"otherData": {}})

    def test_rejects_unknown_phase(self):
        document = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 0, "ts": 0}]}
        with pytest.raises(ConfigurationError, match="unsupported event phase"):
            validate_chrome_trace(document)

    def test_rejects_complete_event_without_duration(self):
        document = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0}]}
        with pytest.raises(ConfigurationError, match="missing required key 'dur'"):
            validate_chrome_trace(document)

    def test_rejects_negative_duration(self):
        document = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": -1}
        ]}
        with pytest.raises(ConfigurationError, match="non-negative"):
            validate_chrome_trace(document)

    def test_rejects_non_integer_pid(self):
        document = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": "one", "tid": 0, "ts": 0, "dur": 1}
        ]}
        with pytest.raises(ConfigurationError, match="'pid' must be an integer"):
            validate_chrome_trace(document)

    def test_error_names_the_offending_event_index(self):
        good = _valid_document()["traceEvents"]
        document = {"traceEvents": good + [{"ph": "i", "pid": 1, "tid": 0, "ts": 0}]}
        with pytest.raises(ConfigurationError, match=rf"event #{len(good)}"):
            validate_chrome_trace(document)

    def test_summary_counts_tracks_per_process(self):
        summary = validate_chrome_trace(_valid_document())
        assert summary.tracks("ranks") == 1
        assert summary.tracks("fabric links") == 1
        assert summary.tracks("no-such-process") == 0
        assert "event(s)" in summary.describe()


class TestSchemaCli:
    def _write(self, tmp_path, document) -> str:
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_ok_on_valid_trace(self, tmp_path, capsys):
        path = self._write(tmp_path, _valid_document())
        assert main([path, "--require-rank-track", "--require-link-track"]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_invalid_on_structural_violation(self, tmp_path, capsys):
        path = self._write(tmp_path, {"traceEvents": [{"ph": "?"}]})
        assert main([path]) == 1
        assert capsys.readouterr().out.startswith("INVALID:")

    def test_require_link_track_fails_without_fabric_events(self, tmp_path, capsys):
        sink = RecordingSink()
        sink.phase(0, "gather", 0.0, 1e-6)
        path = self._write(tmp_path, chrome_trace(sink))
        assert main([path, "--require-link-track"]) == 1
        assert "no fabric-link track" in capsys.readouterr().out

    def test_missing_file_is_invalid_not_a_crash(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 1
        assert capsys.readouterr().out.startswith("INVALID:")
