"""Tests of the prediction dispatch layer and model-vs-simulation consistency."""

import pytest

from repro.core.runner import run_alltoall
from repro.errors import ConfigurationError
from repro.machine import ProcessMap
from repro.machine.systems import dane, tiny_cluster
from repro.model.calibrate import CalibrationPoint, compare_model_to_simulation, ordering_agreement
from repro.model.predict import MODELED_ALGORITHMS, predict_breakdown, predict_time


@pytest.fixture(scope="module")
def dane_pmap():
    return ProcessMap(dane(32), ppn=112)


@pytest.fixture(scope="module")
def small_pmap():
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=8)


class TestPredictDispatch:
    @pytest.mark.parametrize("name", MODELED_ALGORITHMS)
    def test_every_algorithm_predictable(self, dane_pmap, name):
        assert predict_time(name, dane_pmap, 64) > 0.0

    def test_breakdown_total_matches_time(self, dane_pmap):
        breakdown = predict_breakdown("node-aware", dane_pmap, 256)
        assert breakdown.total == pytest.approx(predict_time("node-aware", dane_pmap, 256))

    def test_options_forwarded(self, dane_pmap):
        few = predict_time("locality-aware", dane_pmap, 4096, procs_per_group=4)
        default = predict_time("locality-aware", dane_pmap, 4096)
        assert few == pytest.approx(default)  # default group size is 4
        different = predict_time("locality-aware", dane_pmap, 4096, procs_per_group=16)
        assert different != pytest.approx(few)

    def test_unknown_algorithm_rejected(self, dane_pmap):
        with pytest.raises(ConfigurationError):
            predict_time("warp-drive", dane_pmap, 64)

    def test_unknown_option_rejected(self, dane_pmap):
        with pytest.raises(ConfigurationError):
            predict_time("pairwise", dane_pmap, 64, procs_per_group=4)


class TestModelSimulationConsistency:
    """The analytic model must agree with the event simulator where both run."""

    CONFIGS = [
        ("pairwise", {}),
        ("node-aware", {}),
        ("hierarchical", {}),
        ("multileader-node-aware", {"procs_per_leader": 4}),
    ]

    @pytest.fixture(scope="class")
    def points(self, small_pmap):
        return compare_model_to_simulation(small_pmap, self.CONFIGS, msg_sizes=[16, 1024])

    def test_all_points_positive(self, points):
        for point in points:
            assert point.simulated > 0.0 and point.modelled > 0.0

    def test_model_within_order_of_magnitude(self, points):
        for point in points:
            assert 0.1 < point.ratio < 10.0, (
                f"{point.algorithm} @ {point.msg_bytes}B: model {point.modelled:.2e}s "
                f"vs simulation {point.simulated:.2e}s"
            )

    def test_ordering_agreement_reported(self, points):
        agreement = ordering_agreement(points)
        assert 0.0 <= agreement <= 1.0

    def test_ordering_agreement_empty(self):
        assert ordering_agreement([]) == 1.0

    def test_calibration_point_ratio(self):
        point = CalibrationPoint("x", 4, simulated=2.0, modelled=1.0)
        assert point.ratio == 0.5
        degenerate = CalibrationPoint("x", 4, simulated=0.0, modelled=1.0)
        assert degenerate.ratio == float("inf")

    def test_relative_size_scaling_matches_simulation(self, small_pmap):
        """Model and simulation agree that 4096-byte exchanges are much slower than 16-byte ones."""
        for name, opts in self.CONFIGS:
            sim_ratio = (
                run_alltoall(name, small_pmap, 4096, validate=False, keep_job=False, **opts).elapsed
                / run_alltoall(name, small_pmap, 16, validate=False, keep_job=False, **opts).elapsed
            )
            model_ratio = predict_time(name, small_pmap, 4096, **opts) / predict_time(
                name, small_pmap, 16, **opts
            )
            assert sim_ratio > 1.5 and model_ratio > 1.5
