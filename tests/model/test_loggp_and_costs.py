"""Tests of the analytic cost model building blocks and per-algorithm formulas."""

import pytest

from repro.errors import ConfigurationError
from repro.machine import ProcessMap
from repro.machine.systems import dane, tiny_cluster
from repro.model.costs import (
    bruck_flat_cost,
    hierarchical_cost,
    multileader_node_aware_cost,
    node_aware_cost,
    nonblocking_flat_cost,
    pairwise_flat_cost,
    system_mpi_cost,
)
from repro.model.loggp import (
    cross_numa_bytes,
    exchange_estimate,
    fabric_phase_bound,
    linear_rooted_cost,
    nic_phase_bound,
)
from repro.core.instrumentation import PHASE_GATHER, PHASE_INTER, PHASE_INTRA, PHASE_SCATTER


@pytest.fixture(scope="module")
def pmap():
    return ProcessMap(tiny_cluster(num_nodes=4), ppn=8)


@pytest.fixture(scope="module")
def dane_pmap():
    return ProcessMap(dane(32), ppn=112)


class TestExchangeEstimate:
    def test_empty_peer_list(self, pmap):
        est = exchange_estimate(pmap, 0, [], 64, "pairwise")
        assert est.rank_time == 0.0 and est.inter_messages == 0

    def test_pairwise_counts_inter_node_peers(self, pmap):
        peers = [1, 8, 16]  # one intra-node, two inter-node
        est = exchange_estimate(pmap, 0, peers, 100, "pairwise")
        assert est.inter_messages == 2
        assert est.inter_bytes == 200

    def test_pairwise_time_grows_with_peers(self, pmap):
        few = exchange_estimate(pmap, 0, [8], 64, "pairwise").rank_time
        many = exchange_estimate(pmap, 0, [8, 9, 10, 11], 64, "pairwise").rank_time
        assert many > few

    def test_nonblocking_cheaper_than_pairwise_for_small_messages(self, pmap):
        peers = list(range(1, 32))
        nb = exchange_estimate(pmap, 0, peers, 8, "nonblocking").rank_time
        pw = exchange_estimate(pmap, 0, peers, 8, "pairwise").rank_time
        assert nb < pw

    def test_nonblocking_matching_cost_quadratic(self, pmap):
        """Doubling the peer count more than doubles the non-blocking estimate for tiny messages."""
        half = exchange_estimate(pmap, 0, list(range(1, 16)), 1, "nonblocking").rank_time
        full = exchange_estimate(pmap, 0, list(range(1, 31)), 1, "nonblocking").rank_time
        assert full > 2.0 * half

    def test_bruck_logarithmic_steps(self, pmap):
        est = exchange_estimate(pmap, 0, list(range(1, 32)), 4, "bruck")
        # 32 ranks -> 5 steps, all counted as inter-node on a multi-node peer set.
        assert est.inter_messages == 5

    def test_rendezvous_adds_overhead(self, pmap):
        params = pmap.params
        small = exchange_estimate(pmap, 0, [8], params.eager_limit, "pairwise").rank_time
        large = exchange_estimate(pmap, 0, [8], params.eager_limit + 8, "pairwise").rank_time
        assert large > small + params.rendezvous_overhead * 0.5

    def test_unknown_kind_rejected(self, pmap):
        with pytest.raises(ConfigurationError):
            exchange_estimate(pmap, 0, [1], 8, "telepathy")


class TestBounds:
    def test_nic_phase_bound(self, pmap):
        params = pmap.params
        bound = nic_phase_bound(params, messages_per_node=10, bytes_per_node=1e6)
        assert bound == pytest.approx(10 * params.nic_message_overhead + 1e6 / params.injection_bandwidth)

    def test_nic_bound_rejects_negative(self, pmap):
        with pytest.raises(ConfigurationError):
            nic_phase_bound(pmap.params, messages_per_node=-1, bytes_per_node=0)

    def test_fabric_bound(self, pmap):
        params = pmap.params
        assert fabric_phase_bound(params, cross_numa_bytes_per_node=params.cross_numa_bandwidth) == pytest.approx(1.0)

    def test_cross_numa_bytes_excludes_network_and_numa(self, pmap):
        # peer 1 is NUMA-local, peer 2 crosses NUMA, peer 4 crosses the socket,
        # peer 8 is on another node.
        assert cross_numa_bytes(pmap, 0, [1], 100) == 0
        assert cross_numa_bytes(pmap, 0, [2], 100) == 100
        assert cross_numa_bytes(pmap, 0, [4], 100) == 100
        assert cross_numa_bytes(pmap, 0, [8], 100) == 0

    def test_linear_rooted_cost_scales_with_members(self, pmap):
        small = linear_rooted_cost(pmap, 0, [0, 1], 1024)
        large = linear_rooted_cost(pmap, 0, list(range(8)), 1024)
        assert large > small

    def test_linear_rooted_cost_single_member(self, pmap):
        assert linear_rooted_cost(pmap, 0, [0], 1024) > 0.0


class TestCostBreakdowns:
    def test_all_models_positive(self, dane_pmap):
        for fn in (
            pairwise_flat_cost, nonblocking_flat_cost, bruck_flat_cost,
        ):
            assert fn(dane_pmap, 64).total > 0.0
        assert system_mpi_cost(dane_pmap, 64).total > 0.0
        assert hierarchical_cost(dane_pmap, 64).total > 0.0
        assert node_aware_cost(dane_pmap, 64).total > 0.0
        assert multileader_node_aware_cost(dane_pmap, 64, procs_per_leader=4).total > 0.0

    def test_monotonic_in_message_size(self, dane_pmap):
        for fn, kwargs in [
            (pairwise_flat_cost, {}),
            (node_aware_cost, {}),
            (hierarchical_cost, {}),
            (multileader_node_aware_cost, {"procs_per_leader": 4}),
        ]:
            times = [fn(dane_pmap, s, **kwargs).total for s in (4, 64, 1024, 4096)]
            assert times == sorted(times), fn.__name__

    def test_monotonic_in_node_count(self):
        cluster = dane(32)
        times = []
        for nodes in (2, 8, 32):
            pmap = ProcessMap(cluster, ppn=112, num_nodes=nodes)
            times.append(node_aware_cost(pmap, 1024).total)
        assert times == sorted(times)

    def test_bruck_beats_pairwise_small_loses_large(self, dane_pmap):
        assert bruck_flat_cost(dane_pmap, 4).total < pairwise_flat_cost(dane_pmap, 4).total
        assert bruck_flat_cost(dane_pmap, 4096).total > pairwise_flat_cost(dane_pmap, 4096).total

    def test_system_mpi_switches_algorithm(self, dane_pmap):
        small = system_mpi_cost(dane_pmap, 4)
        large = system_mpi_cost(dane_pmap, 65536)
        assert small.total == pytest.approx(bruck_flat_cost(dane_pmap, 4).total)
        assert large.total == pytest.approx(pairwise_flat_cost(dane_pmap, 65536).total)

    def test_hierarchical_has_expected_phases(self, dane_pmap):
        breakdown = hierarchical_cost(dane_pmap, 256)
        for phase in (PHASE_GATHER, PHASE_INTER, PHASE_SCATTER):
            assert breakdown.phase(phase) > 0.0

    def test_node_aware_has_expected_phases(self, dane_pmap):
        breakdown = node_aware_cost(dane_pmap, 256)
        assert breakdown.phase(PHASE_INTER) > 0.0
        assert breakdown.phase(PHASE_INTRA) > 0.0

    def test_mlna_reduces_to_extremes(self, dane_pmap):
        """procs_per_leader=1 behaves like node-aware; =ppn like hierarchical (Section 3.3)."""
        as_node_aware = multileader_node_aware_cost(dane_pmap, 1024, procs_per_leader=1).total
        node_aware = node_aware_cost(dane_pmap, 1024).total
        assert as_node_aware == pytest.approx(node_aware, rel=0.5)

        as_hierarchical = multileader_node_aware_cost(dane_pmap, 1024, procs_per_leader=112).total
        hierarchical = hierarchical_cost(dane_pmap, 1024).total
        assert as_hierarchical == pytest.approx(hierarchical, rel=0.5)

    def test_invalid_inputs_rejected(self, dane_pmap):
        with pytest.raises(ConfigurationError):
            pairwise_flat_cost(dane_pmap, 0)
        with pytest.raises(ConfigurationError):
            node_aware_cost(dane_pmap, 64, procs_per_group=5)
