"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

All project metadata lives in ``pyproject.toml``; this file only exists so
the package can be installed in environments whose setuptools/pip stack
lacks the ``wheel`` package required by PEP 517 editable builds.
"""

from setuptools import setup

setup()
