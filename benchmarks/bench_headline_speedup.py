"""Section 1 headline: "up to 3x speedup over system MPI at 32 nodes"."""

from repro.bench.figures import headline_speedup
from repro.bench.reporting import format_speedup_summary


def test_headline_speedup_over_system_mpi(regenerate):
    summary = regenerate(headline_speedup, formatter=format_speedup_summary)
    assert summary["best_speedup"] >= 3.0
    # The advantage exists at every tested size (the magnitude varies with size).
    assert all(value > 1.0 for value in summary["per_size"].values())
