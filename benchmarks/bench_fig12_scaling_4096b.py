"""Figure 12: node scaling (2-32 nodes) at 4096 bytes per process pair."""

from repro.bench.figures import figure12


def test_figure12_node_scaling_4096_bytes(regenerate):
    fig = regenerate(figure12)
    # At 4 KiB the aggregating algorithms beat system MPI once several nodes
    # are involved, and everything grows with the node count.
    assert fig.get("Node-Aware").at(32).seconds < fig.get("System MPI").at(32).seconds
    for label in fig.labels():
        ys = fig.get(label).ys()
        assert ys == sorted(ys)
