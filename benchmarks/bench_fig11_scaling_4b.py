"""Figure 11: node scaling (2-32 nodes) at 4 bytes per process pair."""

from repro.bench.figures import figure11


def test_figure11_node_scaling_4_bytes(regenerate):
    fig = regenerate(figure11)
    # The combined multi-leader + node-aware algorithm stays below system MPI
    # across the node-count sweep at 4 bytes.
    for nodes in fig.xs():
        assert (
            fig.get("Multileader + Locality").at(nodes).seconds
            < fig.get("System MPI").at(nodes).seconds
        )
