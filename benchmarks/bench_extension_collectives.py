"""Extension benchmark: locality-aware variants of other collectives (paper Section 5).

Compares the flat reference collectives with their locality-aware
counterparts on a reduced-scale simulated Dane machine, reporting time and
inter-node message counts.  The aggregated variants must cut the number of
inter-node messages — the mechanism the paper expects to carry over from
the all-to-all results.
"""

import numpy as np

from repro.core.extensions import locality_aware_allgather, locality_aware_allreduce
from repro.machine import ProcessMap
from repro.machine.hierarchy import LocalityLevel
from repro.machine.systems import dane
from repro.simmpi import run_spmd


def _flat_allgather(ctx, block):
    mine = np.full(block, ctx.rank, dtype=np.int64)
    recv = np.zeros(block * ctx.nprocs, dtype=np.int64)
    yield from ctx.world.allgather(mine, recv)


def _grouped_allgather(ctx, block):
    mine = np.full(block, ctx.rank, dtype=np.int64)
    recv = np.zeros(block * ctx.nprocs, dtype=np.int64)
    yield from locality_aware_allgather(ctx, mine, recv)


def _flat_allreduce(ctx, block):
    out = np.zeros(block)
    yield from ctx.world.allreduce(np.full(block, float(ctx.rank)), out)


def _grouped_allreduce(ctx, block):
    out = np.zeros(block)
    yield from locality_aware_allreduce(ctx, np.full(block, float(ctx.rank)), out)


def test_locality_aware_collective_extensions(benchmark, capsys):
    pmap = ProcessMap(dane(8), ppn=8, num_nodes=8)
    block = 64

    def run_all():
        rows = []
        for label, program in [
            ("allgather (flat ring)", _flat_allgather),
            ("allgather (locality-aware)", _grouped_allgather),
            ("allreduce (flat)", _flat_allreduce),
            ("allreduce (locality-aware)", _grouped_allreduce),
        ]:
            job = run_spmd(pmap, program, block)
            inter = job.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))[0]
            rows.append((label, job.elapsed, inter))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nLocality-aware collective extensions (8 nodes x 8 ranks, Dane parameters)")
        for label, seconds, inter in rows:
            print(f"  {label:<32s} {seconds * 1e6:10.1f} us   {inter:6d} inter-node msgs")

    results = {label: (seconds, inter) for label, seconds, inter in rows}
    assert results["allgather (locality-aware)"][1] < results["allgather (flat ring)"][1]
    assert results["allreduce (locality-aware)"][1] <= results["allreduce (flat)"][1]
