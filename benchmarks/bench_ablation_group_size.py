"""Ablation: aggregation-group size sweep for locality-aware aggregation (Section 4.3)."""

from repro.bench.sweep import group_size_sweep
from repro.machine.systems import dane


def _format_series(series):
    lines = [f"group-size sweep: {series.label}"]
    for point in series.points:
        lines.append(f"  {int(point.x):>4d} processes/group: {point.seconds:10.3e} s")
    return "\n".join(lines)


def test_group_size_ablation(regenerate):
    series = regenerate(
        group_size_sweep, dane(32), 112,
        algorithm="locality-aware", msg_bytes=4096, group_sizes=(1, 4, 8, 16, 28, 56, 112),
        formatter=_format_series,
    )
    times = dict(zip(series.xs(), series.ys()))
    # The optimum is at an intermediate group size: both extremes (1 process
    # per group and the whole node) are slower than the best grouped setting —
    # the non-single-modal behaviour Section 4.3 discusses.
    best_grouped = min(times[g] for g in (4, 8, 16, 28))
    assert best_grouped < times[1]
    assert best_grouped < times[112]
