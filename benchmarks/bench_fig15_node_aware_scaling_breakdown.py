"""Figure 15: node-aware breakdown across node counts at 4096 bytes (1024 integers)."""

from repro.bench.figures import figure15


def test_figure15_node_aware_scaling_breakdown(regenerate):
    fig = regenerate(figure15)
    # Inter-node communication dominates regardless of node count.
    for nodes in fig.xs():
        assert (
            fig.get("Inter-Node Alltoall").at(nodes).seconds
            > fig.get("Intra-Node Alltoall").at(nodes).seconds
        )
