"""Figure 8: node-aware vs locality-aware aggregation, 32 nodes of Dane."""

from repro.bench.figures import figure08


def test_figure08_node_aware_vs_locality_aware(regenerate):
    fig = regenerate(figure08)
    # Node-aware wins at small/medium sizes; locality-aware aggregation takes
    # over at the largest tested size (the paper's first novel result).
    assert fig.get("Node-Aware").at(64).seconds <= fig.get("4 Processes Per Group").at(64).seconds
    best_locality = min(
        fig.get(label).at(4096).seconds for label in fig.labels() if "Per Group" in label
    )
    assert best_locality < fig.get("Node-Aware").at(4096).seconds
