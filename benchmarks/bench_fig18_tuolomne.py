"""Figure 18: best algorithms vs system MPI on 32 nodes of Tuolomne (MI300A + Slingshot)."""

from repro.bench.figures import figure18


def test_figure18_tuolomne(regenerate):
    fig = regenerate(figure18)
    # On Tuolomne the Cray MPICH baseline is far more competitive than on the
    # Omni-Path systems: at the largest size it sits within a factor of two of
    # the best novel algorithm (on Dane the gap is several-fold).
    best_large = fig.best_at(4096)[1]
    assert fig.get("System MPI").at(4096).seconds < 2.0 * best_large
    # The node-aware algorithm remains ahead of the other novel variants at
    # small message sizes.
    assert fig.get("Node-Aware").at(4).seconds < fig.get("Locality-Aware").at(4).seconds
