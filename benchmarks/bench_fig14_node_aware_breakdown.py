"""Figure 14: node-aware all-to-all breakdown (intra- vs inter-node, pairwise vs non-blocking)."""

from repro.bench.figures import figure14


def test_figure14_node_aware_breakdown(regenerate):
    fig = regenerate(figure14)
    # Inter-node communication dominates the node-aware algorithm at every
    # message size, while the intra-node part scales along with it.
    for size in fig.xs():
        assert (
            fig.get("Inter-Node (Pairwise)").at(size).seconds
            > fig.get("Intra-Node (Pairwise)").at(size).seconds
        )
    intra = fig.get("Intra-Node (Pairwise)")
    assert intra.at(max(fig.xs())).seconds > intra.at(min(fig.xs())).seconds
