"""Table 1: the three evaluation systems (architecture, network, system MPI)."""

from repro.bench.figures import table1
from repro.bench.reporting import format_table1


def test_table1_system_architectures(regenerate):
    rows = regenerate(table1, formatter=format_table1)
    assert [row["name"] for row in rows] == ["dane", "amber", "tuolomne"]
    assert rows[0]["cores_per_node"] == "112"
    assert rows[2]["cores_per_node"] == "96"
