"""Figure 13: hierarchical all-to-all timing breakdown (gather / scatter / leader alltoall)."""

from repro.bench.figures import figure13


def test_figure13_hierarchical_breakdown(regenerate):
    fig = regenerate(figure13)
    # The gather/scatter (intra-node) components dominate the hierarchical
    # algorithm for large messages — the reason the paper moves to
    # multi-leader and node-aware designs.
    assert fig.get("MPI Gather").at(4096).seconds > fig.get("Alltoall (Pairwise)").at(4096).seconds
    # The non-blocking leader exchange is never slower than pairwise at small sizes.
    assert (
        fig.get("Alltoall (Nonblocking)").at(4).seconds
        <= fig.get("Alltoall (Pairwise)").at(4).seconds
    )
