"""Figure 16: locality-aware breakdown versus aggregation-group size (1024 integers, 32 nodes)."""

from repro.bench.figures import figure16


def test_figure16_group_size_breakdown(regenerate):
    fig = regenerate(figure16)
    inter = fig.get("Inter-Node Alltoall")
    intra = fig.get("Intra-Node Alltoall")
    # Inter-node communication dominates for every group configuration, and
    # shrinking the aggregation group reduces the intra-node redistribution
    # cost (the mechanism behind locality-aware aggregation).
    for group in inter.xs():
        assert inter.at(group).seconds > intra.at(group).seconds
    whole_node = max(intra.xs())
    smallest_group = min(intra.xs())
    assert intra.at(smallest_group).seconds < intra.at(whole_node).seconds
