"""Ablation: the exchange kind used inside the node-aware algorithm (solid vs dashed lines)."""

from repro.bench.reporting import format_figure
from repro.bench.sweep import inner_exchange_sweep
from repro.machine.systems import dane


def test_inner_exchange_ablation(regenerate):
    fig = regenerate(
        inner_exchange_sweep, dane(32), 112,
        algorithm="node-aware", msg_sizes=(4, 256, 4096),
        formatter=format_figure,
    )
    labels = set(fig.labels())
    assert {"pairwise", "nonblocking", "bruck"} == labels
    # A Bruck inner exchange helps at the smallest size (fewest messages) but
    # is clearly the wrong choice at 4 KiB, where its forwarded volume makes
    # it the slowest variant — the size-dependent trade-off behind the
    # paper's solid (pairwise) vs dashed (non-blocking) comparison.
    assert fig.get("bruck").at(4).seconds <= fig.get("pairwise").at(4).seconds
    assert fig.get("bruck").at(4096).seconds > fig.get("pairwise").at(4096).seconds
    assert fig.get("bruck").at(4096).seconds > fig.get("nonblocking").at(4096).seconds
