"""Ablation: sensitivity of the node-aware algorithm to NIC injection bandwidth."""

from repro.bench.sweep import injection_bandwidth_sweep
from repro.machine.systems import dane


def _format_series(series):
    lines = [f"injection-bandwidth sweep: {series.label}"]
    for point in series.points:
        lines.append(f"  {point.x:>4.1f}x injection bandwidth: {point.seconds:10.3e} s")
    return "\n".join(lines)


def test_injection_bandwidth_ablation(regenerate):
    series = regenerate(
        injection_bandwidth_sweep, dane(32), 112,
        algorithm="node-aware", msg_bytes=4096, factors=(0.5, 1.0, 2.0, 4.0),
        formatter=_format_series,
    )
    ys = series.ys()
    # Large exchanges are injection-bound: halving the NIC bandwidth hurts a
    # lot, and each doubling keeps helping (monotone non-increasing).
    assert ys[0] > 1.5 * ys[1]
    assert all(earlier >= later for earlier, later in zip(ys, ys[1:]))
