"""Reduced-scale rerun of Figure 10 through the discrete-event simulator.

The figure benchmarks default to the analytic model at the paper's full
scale; this module re-executes the same experiment definition through the
event-driven simulation (Dane cost parameters, 8 nodes x 8 ranks) so the
reproduction does not rest on the closed forms alone.
"""

from repro.bench.figures import figure10
from repro.machine.systems import dane


def test_figure10_simulated_reduced_scale(regenerate):
    fig = regenerate(
        figure10, dane(8), ppn=8, engine="simulate", msg_sizes=(16, 256, 2048), num_nodes=8
    )
    # Locality-exploiting algorithms beat the flat system-MPI baseline at the
    # largest simulated size even at this reduced scale.
    baseline = fig.get("System MPI").at(2048).seconds
    best = fig.best_at(2048)[1]
    assert best <= baseline
