"""Figure 10: every algorithm across message sizes on 32 nodes of Dane."""

from repro.bench.figures import figure10


def test_figure10_all_algorithms(regenerate):
    fig = regenerate(figure10)
    # Paper findings: the multi-leader node-aware approach is best for small
    # sizes, node-aware / locality-aware for large sizes, and the novel
    # algorithms beat system MPI throughout.
    assert fig.best_at(4)[0] == "Multileader + Locality"
    assert fig.best_at(4096)[0] in ("Node-Aware", "Locality-Aware")
    for size in fig.xs():
        assert fig.speedup_over("System MPI", size) > 1.0
