"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark module regenerates one table or figure of the paper.  The
``regenerate`` helper runs the figure function under pytest-benchmark with a
single round (the underlying engines are deterministic, so repeated rounds
only waste time) and prints the regenerated series so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction
report.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_figure


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a figure-producing callable under the benchmark fixture and print its table."""

    def _run(figure_fn, *args, formatter=format_figure, **kwargs):
        result = benchmark.pedantic(lambda: figure_fn(*args, **kwargs), rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(formatter(result))
        return result

    return _run
