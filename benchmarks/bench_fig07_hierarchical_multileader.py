"""Figure 7: hierarchical vs multi-leader all-to-all, 32 nodes of Dane, 4 B - 4 KiB."""

from repro.bench.figures import figure07


def test_figure07_hierarchical_vs_multileader(regenerate):
    fig = regenerate(figure07)
    # Multi-leader variants must beat the single-leader hierarchical algorithm
    # at the largest size, and more leaders (fewer processes per leader) must
    # help there — the paper's Figure 7 findings.
    assert fig.get("4 Processes Per Leader").at(4096).seconds < fig.get("Hierarchical").at(4096).seconds
    assert (
        fig.get("4 Processes Per Leader").at(4096).seconds
        < fig.get("16 Processes Per Leader").at(4096).seconds
    )
