"""Figure 9: multi-leader + node-aware all-to-all across leader-group sizes."""

from repro.bench.figures import figure09


def test_figure09_multileader_node_aware_leader_sweep(regenerate):
    fig = regenerate(figure09)
    # At small sizes the combined algorithm beats both of its limiting cases
    # (single-leader hierarchical and all-ranks node-aware).
    best_mlna = min(
        fig.get(label).at(4).seconds for label in fig.labels() if "Processes Per Leader" in label
    )
    assert best_mlna < fig.get("Hierarchical").at(4).seconds
    assert best_mlna < fig.get("Node-Aware").at(4).seconds
