"""Ablation: sensitivity of the flat non-blocking exchange to matching (queue-search) cost."""

from repro.bench.sweep import matching_cost_sweep
from repro.machine.systems import dane


def _format_series(series):
    lines = [f"matching-cost sweep: {series.label}"]
    for point in series.points:
        lines.append(f"  {point.x:>5.1f}x matching cost: {point.seconds:10.3e} s")
    return "\n".join(lines)


def test_matching_cost_ablation(regenerate):
    series = regenerate(
        matching_cost_sweep, dane(32), 112,
        algorithm="nonblocking", msg_bytes=1024, factors=(0.0, 1.0, 4.0, 16.0),
        formatter=_format_series,
    )
    ys = series.ys()
    # With thousands of posted receives per rank, the flat non-blocking
    # exchange is highly sensitive to the per-entry queue-search cost — the
    # overhead that motivates aggregation on many-core nodes.
    assert ys[-1] > 2.0 * ys[0]
    assert all(earlier <= later for earlier, later in zip(ys, ys[1:]))
