"""Figure 17: best algorithms vs system MPI on 32 nodes of Amber."""

from repro.bench.figures import figure17


def test_figure17_amber(regenerate):
    fig = regenerate(figure17)
    # Amber behaves like Dane: multi-leader + node-aware best at small sizes,
    # node-aware aggregation best at large sizes.
    assert fig.best_at(4)[0] == "Multileader + Locality"
    assert fig.best_at(4096)[0] in ("Node-Aware", "Locality-Aware")
    assert fig.get("Node-Aware").at(1024).seconds < fig.get("System MPI").at(1024).seconds
