#!/usr/bin/env python3
"""Distributed 2-D FFT built on the all-to-all transpose.

Parallel FFTs are the paper's first motivating workload: a 2-D FFT over a
row-distributed matrix applies a 1-D FFT to the local rows, transposes the
matrix with ``MPI_Alltoall`` so columns become local, and applies a second
1-D FFT.  This example runs that pipeline on the simulated cluster with a
selectable all-to-all algorithm, verifies the result against
``numpy.fft.fft2`` and reports how much of the end-to-end time the
transpose consumes for each algorithm.

Run with::

    python examples/fft_transpose.py
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall import get_algorithm
from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd

#: Global matrix is N x N, row-distributed over the ranks.
MATRIX_SIZE = 64

ALGORITHMS = [
    ("pairwise", {}),
    ("node-aware", {}),
    ("multileader-node-aware", {"procs_per_leader": 4}),
]


def distributed_fft_program(ctx, matrix: np.ndarray, algorithm_name: str, options: dict):
    """Rank program: 1-D FFT on local rows, all-to-all transpose, 1-D FFT again."""
    comm = ctx.world
    p = comm.size
    rows_per_rank = matrix.shape[0] // p
    my_rows = matrix[ctx.rank * rows_per_rank : (ctx.rank + 1) * rows_per_rank].astype(np.complex128)

    # Step 1: FFT along the locally contiguous dimension (rows).
    stage_one = np.fft.fft(my_rows, axis=1)

    # Step 2: transpose across ranks.  Block d of the send buffer holds the
    # columns destined for rank d, i.e. a rows_per_rank x cols_per_rank tile.
    cols_per_rank = matrix.shape[1] // p
    send_tiles = stage_one.reshape(rows_per_rank, p, cols_per_rank).transpose(1, 0, 2)
    sendbuf = np.ascontiguousarray(send_tiles).reshape(-1).view(np.float64)
    recvbuf = np.zeros_like(sendbuf)

    algorithm = get_algorithm(algorithm_name, **options)
    transpose_start = ctx.now
    yield from algorithm.run(ctx, sendbuf, recvbuf)
    ctx.add_timing("transpose", ctx.now - transpose_start)

    # Step 3: rebuild the local columns (now rows of the transposed matrix)
    # and FFT along the other dimension.
    tiles = recvbuf.view(np.complex128).reshape(p, rows_per_rank, cols_per_rank)
    my_columns = np.ascontiguousarray(tiles.transpose(2, 0, 1).reshape(cols_per_rank, matrix.shape[0]))
    stage_two = np.fft.fft(my_columns, axis=1)

    ctx.result = stage_two


def run_one(algorithm_name: str, options: dict, matrix: np.ndarray, pmap: ProcessMap) -> None:
    job = run_spmd(pmap, distributed_fft_program, matrix, algorithm_name, options)
    # Reassemble: rank r holds columns [r*cols : (r+1)*cols] of the FFT'd
    # matrix, transposed.
    p = pmap.nprocs
    cols_per_rank = matrix.shape[1] // p
    assembled = np.zeros((matrix.shape[1], matrix.shape[0]), dtype=np.complex128)
    for rank, block in enumerate(job.results):
        assembled[rank * cols_per_rank : (rank + 1) * cols_per_rank] = block
    reconstructed = assembled.T
    expected = np.fft.fft2(matrix)
    max_error = np.max(np.abs(reconstructed - expected))
    transpose_time = job.phase_time("transpose")
    print(
        f"  {algorithm_name:<28s} transpose {transpose_time * 1e6:9.1f} us  "
        f"total {job.elapsed * 1e6:9.1f} us  max |error| {max_error:.2e}"
    )
    assert max_error < 1e-9, "distributed FFT diverged from numpy.fft.fft2"


def main() -> None:
    cluster = tiny_cluster(num_nodes=4)
    pmap = ProcessMap(cluster, ppn=8)
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((MATRIX_SIZE, MATRIX_SIZE))
    print(f"Distributed {MATRIX_SIZE}x{MATRIX_SIZE} FFT on {pmap.describe()}")
    for name, options in ALGORITHMS:
        run_one(name, options, matrix, pmap)
    print("all algorithms matched numpy.fft.fft2")


if __name__ == "__main__":
    main()
