#!/usr/bin/env python3
"""Expert-parallel token shuffle — the paper's machine-learning motivation.

Mixture-of-experts training shuffles token activations between data-parallel
ranks and expert-parallel ranks with an all-to-all in every layer, twice per
forward/backward pass.  This example routes a batch of tokens to the experts
that own them (equal tokens per expert, as in capacity-limited MoE layers),
runs the exchange with several algorithms, verifies the routing and then
uses the analytic model to show how the best algorithm changes with the
hidden dimension (i.e. the per-pair message size) at the paper's full scale.

Run with::

    python examples/moe_shuffle.py
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall import get_algorithm
from repro.core.selection import AlgorithmSelector
from repro.machine import ProcessMap, dane, tiny_cluster
from repro.simmpi import run_spmd

#: Tokens each rank routes to each expert (capacity per expert pair).
TOKENS_PER_PAIR = 4
#: Hidden dimension of each token activation in the simulated exchange.
HIDDEN_DIM = 16

ALGORITHMS = [
    ("pairwise", {}),
    ("node-aware", {}),
    ("multileader-node-aware", {"procs_per_leader": 4}),
]


def shuffle_program(ctx, algorithm_name: str, options: dict):
    """Route TOKENS_PER_PAIR activations from every rank to every expert rank."""
    comm = ctx.world
    p = comm.size
    # Token (r, e, t) is the t-th token rank r routes to expert e; its
    # activation is a ramp tagged with the (source, expert) pair so the
    # routing can be verified exactly.
    activations = np.zeros((p, TOKENS_PER_PAIR, HIDDEN_DIM), dtype=np.float64)
    for expert in range(p):
        for token in range(TOKENS_PER_PAIR):
            activations[expert, token, :] = ctx.rank * 1000 + expert * 10 + token

    sendbuf = activations.reshape(-1)
    recvbuf = np.zeros_like(sendbuf)
    algorithm = get_algorithm(algorithm_name, **options)
    yield from algorithm.run(ctx, sendbuf, recvbuf)

    received = recvbuf.reshape(p, TOKENS_PER_PAIR, HIDDEN_DIM)
    expected_tags = np.array(
        [[src * 1000 + ctx.rank * 10 + t for t in range(TOKENS_PER_PAIR)] for src in range(p)]
    )
    ok = np.allclose(received[:, :, 0], expected_tags)
    ctx.result = ok


def simulate() -> None:
    pmap = ProcessMap(tiny_cluster(num_nodes=4), ppn=8)
    msg_bytes = TOKENS_PER_PAIR * HIDDEN_DIM * 8
    print(f"Expert-parallel shuffle on {pmap.describe()} ({msg_bytes} bytes per expert pair)")
    for name, options in ALGORITHMS:
        job = run_spmd(pmap, shuffle_program, name, options)
        assert all(job.results), f"{name}: tokens were routed to the wrong expert"
        print(f"  {name:<28s} {job.elapsed * 1e6:9.1f} us  (routing verified)")


def model_hidden_dim_sweep() -> None:
    """Which algorithm should an MoE layer use as the hidden dimension grows?"""
    selector = AlgorithmSelector(dane(32), ppn=112)
    print("\nBest algorithm per hidden dimension (modelled, 32 nodes x 112 ranks of Dane):")
    for hidden in (1, 16, 128, 512):
        msg_bytes = TOKENS_PER_PAIR * hidden * 2  # bf16 activations
        best, seconds = selector.select(num_nodes=32, msg_bytes=msg_bytes)
        print(f"  hidden={hidden:<5d} ({msg_bytes:>6d} B per pair): {best.describe():<45s} {seconds * 1e3:8.3f} ms")


def main() -> None:
    simulate()
    model_hidden_dim_sweep()


if __name__ == "__main__":
    main()
