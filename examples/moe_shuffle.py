#!/usr/bin/env python3
"""Expert-parallel token shuffle — the paper's machine-learning motivation.

Mixture-of-experts training shuffles token activations between data-parallel
ranks and expert-parallel ranks with an all-to-all in every layer, twice per
forward/backward pass.  Real routing is *skewed*: popular experts receive
many more tokens than the capacity-limited average, which is exactly the
non-uniform traffic the :mod:`repro.workloads` subsystem describes.

This example builds the shuffle as a ``skewed-moe`` traffic matrix, runs it
through the variable-count (alltoallv) algorithm family — verifying that
every token lands at its expert via the reference transposition — and then
uses the analytic workload model to show how the best algorithm changes with
the hidden dimension (the per-token payload) at a larger modelled scale.

Run with::

    python examples/moe_shuffle.py
"""

from __future__ import annotations

from repro.core import run_workload
from repro.machine import ProcessMap, dane, tiny_cluster
from repro.model.predict import WORKLOAD_MODELED_ALGORITHMS, predict_workload_time
from repro.workloads import skewed_moe

#: Tokens each rank routes to an average expert (capacity per expert pair).
TOKENS_PER_PAIR = 4
#: Hidden dimension of each token activation in the simulated exchange.
HIDDEN_DIM = 16
#: Hot experts receive this many times the average token traffic.
CONCENTRATION = 4.0

ALGORITHMS = [
    ("pairwise", {}),
    ("nonblocking", {}),
    ("node-aware", {}),
    ("node-aware", {"procs_per_group": 4, "inner": "nonblocking"}),
]


def simulate() -> None:
    """Route skewed token traffic on the event simulator and verify every landing."""
    pmap = ProcessMap(tiny_cluster(num_nodes=4), ppn=8)
    base_bytes = TOKENS_PER_PAIR * HIDDEN_DIM * 2  # bf16 activations
    matrix = skewed_moe(
        pmap.nprocs, base_bytes, concentration=CONCENTRATION, seed=7
    )
    print(f"Expert-parallel shuffle on {pmap.describe()}")
    print(f"  traffic: {matrix.describe()}")
    for name, options in ALGORITHMS:
        outcome = run_workload(name, pmap, matrix, **options)
        assert outcome.correct, f"{name}: tokens were routed to the wrong expert"
        print(f"  {outcome.algorithm:<50s} {outcome.elapsed * 1e6:9.1f} us  (routing verified)")


def model_hidden_dim_sweep() -> None:
    """Which algorithm should an MoE layer use as the hidden dimension grows?"""
    pmap = ProcessMap(dane(16), ppn=16)
    print(f"\nBest algorithm per hidden dimension (modelled, {pmap.describe()}):")
    for hidden in (1, 16, 128, 512):
        base_bytes = TOKENS_PER_PAIR * hidden * 2  # bf16 activations
        matrix = skewed_moe(
            pmap.nprocs, base_bytes, concentration=CONCENTRATION, seed=7
        )
        timings = {
            name: predict_workload_time(name, pmap, matrix)
            for name in WORKLOAD_MODELED_ALGORITHMS
        }
        best = min(timings, key=timings.get)
        print(
            f"  hidden={hidden:<5d} ({base_bytes:>6d} B per pair): "
            f"{best:<14s} {timings[best] * 1e3:8.3f} ms"
        )


def main() -> None:
    simulate()
    model_hidden_dim_sweep()


if __name__ == "__main__":
    main()
