#!/usr/bin/env python3
"""Dynamic algorithm selection — the paper's Section 5 future-work item.

The paper proposes selecting the best all-to-all algorithm automatically
"for a given computer, system MPI, process count, and data size".  This
example builds that selection in both of the ways the library supports:

1. *model-driven*: :class:`repro.core.selection.AlgorithmSelector` evaluates
   the analytic cost model for every candidate configuration and picks the
   cheapest per (node count, message size) point — printed as a tuning
   table for Dane and Tuolomne;
2. *measurement-driven*: a :class:`repro.core.selection.SelectionTable`
   built from actual (simulated) timings on a small machine, the way an MPI
   library's tuning file would be generated.

Run with::

    python examples/algorithm_selection.py
"""

from __future__ import annotations

from repro.core import run_alltoall
from repro.core.selection import AlgorithmSelector, SelectionTable, default_candidates
from repro.machine import ProcessMap, dane, tiny_cluster, tuolomne

MESSAGE_SIZES = (4, 64, 1024, 4096)


def model_driven() -> None:
    for cluster in (dane(32), tuolomne(32)):
        ppn = cluster.cores_per_node
        selector = AlgorithmSelector(cluster, ppn=ppn)
        print(f"\nModel-driven tuning table for {cluster.name} ({ppn} ranks/node, 32 nodes):")
        for nodes in (8, 32):
            mapping = selector.selection_map(num_nodes=nodes, msg_sizes=MESSAGE_SIZES)
            for size in MESSAGE_SIZES:
                print(f"  {nodes:>3d} nodes, {size:>5d} B -> {mapping[size]}")


def measurement_driven() -> None:
    cluster = tiny_cluster(num_nodes=4)
    pmap = ProcessMap(cluster, ppn=8)
    table = SelectionTable()
    print(f"\nMeasurement-driven table from simulated runs on {pmap.describe()}:")
    for candidate in default_candidates(pmap.ppn):
        for size in (16, 256, 2048):
            outcome = run_alltoall(
                candidate.algorithm, pmap, msg_bytes=size, validate=False, keep_job=False,
                **candidate.as_kwargs(),
            )
            table.record(pmap.num_nodes, size, candidate.describe(), outcome.elapsed)
    for nodes, size, description, seconds in table.as_rows():
        print(f"  {nodes:>3d} nodes, {size:>5d} B -> {description:<45s} ({seconds * 1e6:8.1f} us)")
    # Look up a size that was never measured: the nearest measured size is used.
    print(f"  interpolated best at 1024 B: {table.best(pmap.num_nodes, 1024)}")


def main() -> None:
    model_driven()
    measurement_driven()


if __name__ == "__main__":
    main()
