#!/usr/bin/env python3
"""Distributed dense-matrix transpose — the paper's second motivating workload.

A square matrix is distributed by block rows; transposing it requires every
rank to exchange a tile with every other rank, i.e. exactly one all-to-all.
The example transposes the same matrix with several all-to-all algorithms,
verifies the distributed result against ``matrix.T`` and compares how the
exchange time scales with the tile size.

Run with::

    python examples/matrix_transpose.py
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall import get_algorithm
from repro.machine import ProcessMap, tiny_cluster
from repro.simmpi import run_spmd

ALGORITHMS = [
    ("pairwise", {}),
    ("bruck", {}),
    ("node-aware", {}),
    ("locality-aware", {"procs_per_group": 4}),
    ("multileader-node-aware", {"procs_per_leader": 4}),
]


def transpose_program(ctx, matrix: np.ndarray, algorithm_name: str, options: dict):
    """Rank program: exchange tiles so that rank r ends up with block column r, transposed."""
    comm = ctx.world
    p = comm.size
    n = matrix.shape[0]
    rows = n // p
    my_rows = matrix[ctx.rank * rows : (ctx.rank + 1) * rows]

    # Tile destined for rank d: my rows of its block column, transposed locally.
    tiles = np.stack([my_rows[:, d * rows : (d + 1) * rows].T for d in range(p)])
    sendbuf = np.ascontiguousarray(tiles).reshape(-1)
    recvbuf = np.zeros_like(sendbuf)

    algorithm = get_algorithm(algorithm_name, **options)
    yield from algorithm.run(ctx, sendbuf, recvbuf)

    # Received tile s holds rows of the transposed matrix coming from rank s.
    received = recvbuf.reshape(p, rows, rows)
    my_transposed_rows = np.concatenate([received[s] for s in range(p)], axis=1)
    ctx.result = my_transposed_rows


def run_one(algorithm_name: str, options: dict, matrix: np.ndarray, pmap: ProcessMap) -> float:
    job = run_spmd(pmap, transpose_program, matrix, algorithm_name, options)
    p = pmap.nprocs
    rows = matrix.shape[0] // p
    assembled = np.vstack([job.results[r] for r in range(p)])
    assert np.array_equal(assembled, matrix.T), f"{algorithm_name}: transpose mismatch"
    return job.elapsed


def main() -> None:
    pmap = ProcessMap(tiny_cluster(num_nodes=4), ppn=8)
    p = pmap.nprocs
    print(f"Distributed matrix transpose on {pmap.describe()}")
    for n in (p * 2, p * 8):  # two matrix sizes -> two per-pair tile sizes
        rng = np.random.default_rng(n)
        matrix = rng.integers(0, 1000, size=(n, n)).astype(np.int64)
        tile_bytes = (n // p) * (n // p) * matrix.itemsize
        print(f"\n  {n}x{n} matrix ({tile_bytes} bytes per tile):")
        for name, options in ALGORITHMS:
            elapsed = run_one(name, options, matrix, pmap)
            print(f"    {name:<28s} {elapsed * 1e6:9.1f} us")
    print("\nall algorithms produced matrix.T exactly")


if __name__ == "__main__":
    main()
