#!/usr/bin/env python3
"""Quickstart: compare all-to-all algorithms on a simulated many-core cluster.

This example builds a small simulated machine (4 nodes x 8 cores), runs the
paper's main algorithms through the discrete-event engine at a couple of
message sizes, checks that every exchange produced the correct transposition
and prints a timing comparison.  It then evaluates the analytic cost model
at the paper's full scale (32 nodes x 112 ranks of the Dane preset) to show
how the same experiment extrapolates.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import run_alltoall
from repro.machine import ProcessMap, dane, tiny_cluster
from repro.model import predict_time

#: The algorithm configurations compared throughout the example.
CONFIGS = [
    ("system-mpi", {}),
    ("hierarchical", {}),
    ("node-aware", {}),
    ("locality-aware", {"procs_per_group": 4}),
    ("multileader-node-aware", {"procs_per_leader": 4}),
]

MESSAGE_SIZES = (16, 1024)


def simulate_small_cluster() -> None:
    """Run the algorithms through the event simulator on a 4 x 8 machine."""
    cluster = tiny_cluster(num_nodes=4)
    pmap = ProcessMap(cluster, ppn=8)
    print(f"Simulated machine: {pmap.describe()}")
    for msg_bytes in MESSAGE_SIZES:
        print(f"\n  per-destination message size: {msg_bytes} bytes")
        for name, options in CONFIGS:
            outcome = run_alltoall(name, pmap, msg_bytes=msg_bytes, **options)
            status = "ok" if outcome.correct else "WRONG RESULT"
            print(
                f"    {outcome.algorithm:<55s} {outcome.elapsed * 1e6:10.1f} us "
                f"[{status}, {outcome.inter_node_messages} inter-node msgs]"
            )


def model_paper_scale() -> None:
    """Evaluate the analytic model at the paper's full 32 x 112 scale."""
    pmap = ProcessMap(dane(32), ppn=112)
    print(f"\nModelled machine: {pmap.describe()}")
    for msg_bytes in MESSAGE_SIZES:
        print(f"\n  per-destination message size: {msg_bytes} bytes")
        baseline = predict_time("system-mpi", pmap, msg_bytes)
        for name, options in CONFIGS:
            predicted = predict_time(name, pmap, msg_bytes, **options)
            print(
                f"    {name:<28s} {predicted * 1e3:10.3f} ms  "
                f"({baseline / predicted:4.2f}x vs system MPI)"
            )


def main() -> None:
    simulate_small_cluster()
    model_paper_scale()


if __name__ == "__main__":
    main()
