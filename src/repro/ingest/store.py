"""Content-addressed on-disk index of ingested phased workloads.

A :class:`TraceStore` is a directory of canonical-JSON workload files
named by their SHA-256 content hash, plus a human-readable ``index.json``
mapping optional names and summary statistics onto those hashes::

    .traces/
      index.json
      objects/
        3f9c…e2.json     # PhasedWorkload.canonical(), digest-named

The key of an entry is :meth:`repro.workloads.PhasedWorkload.digest` — a
pure function of the workload content.  Ingesting the same trace twice,
with its records shuffled, or from parallel workers, always lands on the
same key and the same bytes on disk (writes are atomic rename-into-place,
so concurrent ingestion of the same content is idempotent).  That purity
is pinned by the hypothesis suite in
``tests/properties/test_ingest_properties.py``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.workloads.phased import PhasedWorkload

__all__ = ["TraceStore", "StoreEntry"]

_INDEX_VERSION = 1


@dataclass(frozen=True)
class StoreEntry:
    """One indexed workload: its key plus the summary the index carries."""

    key: str
    name: str | None
    nprocs: int
    num_phases: int
    total_bytes: int

    def describe(self) -> str:
        label = self.name if self.name else self.key[:12]
        return (
            f"{label}: {self.nprocs} ranks, {self.num_phases} phase(s), "
            f"{self.total_bytes} B [{self.key[:12]}]"
        )


def _atomic_write(path: Path, text: str) -> None:
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent, prefix=f".{path.name}.", delete=False
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


class TraceStore:
    """Directory-backed, content-keyed store of phased workloads."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)

    # -- index ----------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index(self) -> dict:
        if not self.index_path.exists():
            return {"version": _INDEX_VERSION, "entries": {}}
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                index = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"trace store index {self.index_path} is unreadable: {exc}"
            ) from exc
        if index.get("version") != _INDEX_VERSION:
            raise ConfigurationError(
                f"trace store index {self.index_path} has unsupported version "
                f"{index.get('version')!r}"
            )
        return index

    def _write_index(self, index: dict) -> None:
        _atomic_write(
            self.index_path,
            json.dumps(index, sort_keys=True, indent=2) + "\n",
        )

    # -- public API ------------------------------------------------------------
    def put(self, workload: PhasedWorkload, *, name: str | None = None) -> str:
        """Index ``workload``; returns its content-hash key.

        Re-putting identical content is a no-op beyond (re)binding
        ``name``; a name can only move to a *different* key explicitly —
        rebinding to different content raises so a store can never
        silently alias two traces under one label.
        """
        key = workload.digest()
        object_path = self.objects / f"{key}.json"
        if not object_path.exists():
            _atomic_write(object_path, workload.canonical() + "\n")
        index = self._load_index()
        entries = index.setdefault("entries", {})
        entry = {
            "name": name,
            "nprocs": workload.nprocs,
            "num_phases": workload.num_phases,
            "total_bytes": workload.total_bytes,
        }
        if name is not None:
            for other_key, other in entries.items():
                if other.get("name") == name and other_key != key:
                    raise ConfigurationError(
                        f"trace store already binds name {name!r} to "
                        f"{other_key[:12]}; refusing to alias it to {key[:12]}"
                    )
        previous = entries.get(key)
        if previous is not None and name is None:
            entry["name"] = previous.get("name")
        entries[key] = entry
        self._write_index(index)
        return key

    def get(self, key: str) -> PhasedWorkload:
        """Load the workload stored under the content-hash ``key``."""
        object_path = self.objects / f"{key}.json"
        if not object_path.exists():
            raise ConfigurationError(f"trace store has no entry {key!r}")
        with open(object_path, "r", encoding="utf-8") as handle:
            workload = PhasedWorkload.from_payload(handle.read())
        if workload.digest() != key:
            raise ConfigurationError(
                f"trace store entry {key[:12]} is corrupt: content hashes to "
                f"{workload.digest()[:12]}"
            )
        return workload

    def resolve(self, name_or_key: str) -> str:
        """Turn a name or (abbreviated) key into a full content-hash key."""
        entries = self._load_index().get("entries", {})
        for key, entry in sorted(entries.items()):
            if entry.get("name") == name_or_key:
                return key
        matches = [k for k in sorted(entries) if k.startswith(name_or_key)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ConfigurationError(
                f"trace store key prefix {name_or_key!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        raise ConfigurationError(
            f"trace store has no entry named or keyed {name_or_key!r}"
        )

    def load(self, name_or_key: str) -> PhasedWorkload:
        """``get(resolve(...))`` in one step."""
        return self.get(self.resolve(name_or_key))

    def entries(self) -> list[StoreEntry]:
        """All indexed workloads, sorted by key (deterministic listing)."""
        entries = self._load_index().get("entries", {})
        return [
            StoreEntry(
                key=key,
                name=entry.get("name"),
                nprocs=entry.get("nprocs", 0),
                num_phases=entry.get("num_phases", 0),
                total_bytes=entry.get("total_bytes", 0),
            )
            for key, entry in sorted(entries.items())
        ]

    def __contains__(self, key: str) -> bool:
        return (self.objects / f"{key}.json").exists()

    def __len__(self) -> int:
        return len(self._load_index().get("entries", {}))
