"""Normaliser: flat trace records -> a canonical :class:`PhasedWorkload`.

The parser hands over a raw record stream; this module applies the three
semantic transformations that make it a well-formed workload:

1. **Rank rebasing** — profilers log global job ranks (often a sparse
   subset: rank 0 may be a parameter server, a sub-communicator may start
   at 512).  The observed rank set is remapped onto the contiguous
   ``0..P-1`` range in sorted order.  When the trace declares ``nprocs``
   the identity mapping is kept (all declared ranks participate, silent
   ones simply send nothing) and out-of-range ranks are rejected.
2. **Record merging** — duplicate ``(phase, src, dst)`` observations (one
   per microbatch, per message, ...) are summed into a single matrix
   entry, making the result independent of record order.
3. **Phase splitting** — records are grouped into ordered phases (the
   order phases first appear in the trace); adjacent phases that carry an
   identical matrix and name are collapsed into a repeat count, and the
   meta line's declared ``repeats`` multiply on top.

Byte totals are conserved exactly: for every phase, the sum of the input
record bytes equals the phase matrix total (and the workload-level
:meth:`~repro.workloads.PhasedWorkload.combined_matrix` total equals the
whole trace's byte volume, repeats included) — pinned by the hypothesis
property suite in ``tests/properties/test_ingest_properties.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ingest.parser import ParsedTrace, TraceRecord
from repro.workloads.matrix import TrafficMatrix
from repro.workloads.phased import Phase, PhasedWorkload

__all__ = ["normalize_trace", "rank_map"]


def rank_map(records: list[TraceRecord], nprocs: int | None) -> dict[int, int]:
    """The observed-rank -> contiguous-rank mapping normalisation applies.

    With a declared ``nprocs`` this is the identity on ``0..nprocs-1`` and
    every observed rank must fall in that range; without one, the observed
    ranks are rebased onto ``0..P-1`` in sorted order.
    """
    observed = sorted({r.src for r in records} | {r.dst for r in records})
    if not observed:
        raise ConfigurationError("a trace must mention at least one rank")
    if observed[0] < 0:
        raise ConfigurationError(
            f"trace record ranks must be non-negative, got {observed[0]}"
        )
    if nprocs is not None:
        if observed[-1] >= nprocs:
            raise ConfigurationError(
                f"trace mentions rank {observed[-1]} but declares only "
                f"{nprocs} ranks"
            )
        return {rank: rank for rank in range(nprocs)}
    return {rank: index for index, rank in enumerate(observed)}


def normalize_trace(parsed: ParsedTrace) -> PhasedWorkload:
    """Rebase, merge and split ``parsed`` into a :class:`PhasedWorkload`."""
    records = parsed.records
    if not records:
        raise ConfigurationError("a trace must contain at least one record")
    mapping = rank_map(records, parsed.nprocs)
    size = len(mapping)

    # Group by phase, preserving first-appearance order (the `order` field
    # is assigned by the parser and survives any on-disk interleaving).
    grouped: dict[str, tuple[int, np.ndarray]] = {}
    for record in records:
        entry = grouped.get(record.phase)
        if entry is None:
            entry = (record.order, np.zeros((size, size), dtype=np.int64))
            grouped[record.phase] = entry
        # Merge: duplicate (phase, src, dst) observations sum.
        entry[1][mapping[record.src], mapping[record.dst]] += record.bytes

    phases: list[Phase] = []
    for name in sorted(grouped, key=lambda n: grouped[n][0]):
        matrix = TrafficMatrix(grouped[name][1], pattern="trace")
        repeats = parsed.repeats.get(name, 1)
        if phases and phases[-1].name == name and phases[-1].matrix == matrix:
            # Collapse an adjacent identical phase into its repeat count.
            previous = phases.pop()
            repeats += previous.repeats
        phases.append(Phase(name=name, matrix=matrix, repeats=repeats))
    unknown = set(parsed.repeats) - set(grouped)
    if unknown:
        raise ConfigurationError(
            f"trace meta declares repeats for unknown phase(s): {sorted(unknown)}"
        )
    return PhasedWorkload(phases)
