"""Trace ingestion: from application logs to :class:`~repro.workloads.PhasedWorkload`.

Real workloads do not arrive as clean traffic matrices — they arrive as
logs: an MoE router dumping per-layer token counts, or a communication
profiler logging ``(phase, src, dst, bytes)`` tuples.  This package is the
pipeline that turns those logs into the phased workloads the simulator,
model and adaptive selector consume, mirroring the classic
parser → normaliser → indexer chain:

* :mod:`repro.ingest.parser` — reads the two supported JSON(L) formats
  (``phase-log`` and ``moe-routing``) into a flat stream of
  :class:`~repro.ingest.parser.TraceRecord` objects plus trace metadata;
* :mod:`repro.ingest.normalize` — rebases ranks to a contiguous
  ``0..P-1`` range, merges duplicate ``(phase, src, dst)`` records, splits
  the stream at phase boundaries and collapses repeated identical phases
  into repeat counts, yielding a :class:`~repro.workloads.PhasedWorkload`
  that conserves the input's per-phase byte totals exactly;
* :mod:`repro.ingest.store` — a content-addressed on-disk
  :class:`~repro.ingest.store.TraceStore`: every entry is keyed by the
  SHA-256 of the workload's canonical JSON, so the key is a pure function
  of the ingested content (independent of record order, ingestion
  parallelism or wall-clock time).

:func:`ingest_trace` chains all three::

    from repro.ingest import ingest_trace

    workload = ingest_trace("moe-router-dump.jsonl")
    # or, persisting into a store:
    workload = ingest_trace("dump.jsonl", store=TraceStore(".traces"), name="moe")
"""

from __future__ import annotations

from repro.ingest.normalize import normalize_trace
from repro.ingest.parser import ParsedTrace, TraceRecord, parse_trace
from repro.ingest.store import StoreEntry, TraceStore

__all__ = [
    "TraceRecord",
    "ParsedTrace",
    "parse_trace",
    "normalize_trace",
    "TraceStore",
    "StoreEntry",
    "ingest_trace",
]


def ingest_trace(source, *, store: TraceStore | None = None, name: str | None = None):
    """Parse, normalise and (optionally) index one trace.

    ``source`` is anything :func:`repro.ingest.parser.parse_trace` accepts —
    a path to a JSON(L) file, the raw text, or already-decoded objects.
    When ``store`` is given the resulting workload is persisted under its
    content hash (and under ``name``, if provided).  Returns the
    :class:`~repro.workloads.PhasedWorkload`.
    """
    workload = normalize_trace(parse_trace(source))
    if store is not None:
        store.put(workload, name=name)
    return workload
