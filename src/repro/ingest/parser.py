"""Parsers for the two supported trace formats.

Both formats are JSON Lines (one object per line; a single JSON array of
the same objects is also accepted).  An optional first ``meta`` line
declares the format explicitly and carries trace-level attributes; without
it the format is detected from the record keys.

``phase-log`` — a communication profiler's dump, one record per observed
transfer::

    {"meta": {"format": "phase-log", "nprocs": 8, "repeats": {"dispatch": 4}}}
    {"phase": "dispatch", "src": 0, "dst": 3, "bytes": 4096}
    {"phase": "combine",  "src": 3, "dst": 0, "bytes": 4096}

``moe-routing`` — an MoE router's per-layer token-routing table.  Each
record says how many tokens rank ``src`` routed to the expert hosted on
rank ``dst`` in layer ``layer``; bytes are ``tokens * bytes_per_token``.
Every layer expands into a ``dispatch`` phase (token shuffle to the
experts) and a ``combine`` phase (the transposed return traffic)::

    {"meta": {"format": "moe-routing", "bytes_per_token": 64, "nprocs": 8}}
    {"layer": 0, "src": 0, "dst": 3, "tokens": 17}

The parser is deliberately dumb: it validates shape and types, converts to
a flat :class:`TraceRecord` stream and leaves every semantic decision
(rank rebasing, merging, phase ordering) to :mod:`repro.ingest.normalize`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ConfigurationError

__all__ = ["TraceRecord", "ParsedTrace", "parse_trace"]

_FORMATS = ("phase-log", "moe-routing")

#: Default payload size of one routed MoE token (bytes): a 32-wide hidden
#: dimension of fp16 activations.  Overridable via the meta line.
DEFAULT_BYTES_PER_TOKEN = 64


@dataclass(frozen=True)
class TraceRecord:
    """One flat trace event: ``bytes`` sent ``src`` -> ``dst`` in ``phase``.

    ``order`` is the phase's appearance index in the raw trace — the
    normaliser uses it to keep phase execution order stable regardless of
    how records are interleaved on disk.
    """

    phase: str
    src: int
    dst: int
    bytes: int
    order: int = 0


@dataclass
class ParsedTrace:
    """Parser output: the flat record stream plus trace-level metadata."""

    format: str
    records: list[TraceRecord]
    nprocs: int | None = None
    #: Per-phase repeat counts declared by the meta line.
    repeats: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        declared = f", {self.nprocs} ranks declared" if self.nprocs else ""
        return f"{self.format}: {len(self.records)} record(s){declared}"


def _read_objects(source) -> list[Any]:
    """Decode ``source`` (path / text / decoded objects) into a list of dicts."""
    if isinstance(source, (str, os.PathLike)):
        text = str(source)
        is_path = isinstance(source, os.PathLike) or os.path.exists(text)
        if is_path or not text.lstrip().startswith(("{", "[")):
            try:
                with open(source, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                raise ConfigurationError(f"cannot read trace file {source!r}: {exc}") from exc
        source = text
        stripped = source.lstrip()
        if stripped.startswith("["):
            try:
                decoded = json.loads(source)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"trace is not valid JSON: {exc}") from exc
            return list(decoded)
        objects = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                objects.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"trace line {lineno} is not valid JSON: {exc}"
                ) from exc
        return objects
    if isinstance(source, dict):
        return [source]
    if isinstance(source, Iterable):
        return list(source)
    raise ConfigurationError(
        f"cannot parse a trace from {type(source).__name__}; "
        "expected a path, JSON(L) text or decoded objects"
    )


def _int_field(obj: dict, key: str, *, lineno: int) -> int:
    try:
        value = obj[key]
    except KeyError:
        raise ConfigurationError(
            f"trace record {lineno} is missing the {key!r} field: {obj!r}"
        ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"trace record {lineno} field {key!r} must be an integer, got {value!r}"
        )
    return value


def _split_meta(objects: list[Any]) -> tuple[dict, list[Any]]:
    if objects and isinstance(objects[0], dict) and "meta" in objects[0]:
        meta = objects[0]["meta"]
        if not isinstance(meta, dict):
            raise ConfigurationError(f"trace 'meta' must be an object, got {meta!r}")
        return meta, objects[1:]
    return {}, objects


def _detect_format(meta: dict, records: list[Any]) -> str:
    declared = meta.get("format")
    if declared is not None:
        if declared not in _FORMATS:
            raise ConfigurationError(
                f"unknown trace format {declared!r}; expected one of {_FORMATS}"
            )
        return declared
    for obj in records:
        if isinstance(obj, dict):
            if "phase" in obj:
                return "phase-log"
            if "layer" in obj or "tokens" in obj:
                return "moe-routing"
    raise ConfigurationError(
        "cannot detect the trace format: no meta line and no record carries "
        "a 'phase' (phase-log) or 'layer'/'tokens' (moe-routing) key"
    )


def _meta_nprocs(meta: dict) -> int | None:
    nprocs = meta.get("nprocs")
    if nprocs is None:
        return None
    if isinstance(nprocs, bool) or not isinstance(nprocs, int) or nprocs <= 0:
        raise ConfigurationError(
            f"trace meta 'nprocs' must be a positive integer, got {nprocs!r}"
        )
    return nprocs


def _meta_repeats(meta: dict) -> dict[str, int]:
    repeats = meta.get("repeats", {})
    if not isinstance(repeats, dict):
        raise ConfigurationError(
            f"trace meta 'repeats' must map phase names to counts, got {repeats!r}"
        )
    for name, count in repeats.items():
        if isinstance(count, bool) or not isinstance(count, int) or count <= 0:
            raise ConfigurationError(
                f"trace meta repeat for phase {name!r} must be a positive "
                f"integer, got {count!r}"
            )
    return dict(repeats)


def _parse_phase_log(raw: list[Any]) -> tuple[list[TraceRecord], list[str]]:
    records: list[TraceRecord] = []
    order: dict[str, int] = {}
    for lineno, obj in enumerate(raw, start=1):
        if not isinstance(obj, dict):
            raise ConfigurationError(
                f"trace record {lineno} must be an object, got {type(obj).__name__}"
            )
        phase = obj.get("phase")
        if not isinstance(phase, str) or not phase:
            raise ConfigurationError(
                f"trace record {lineno} 'phase' must be a non-empty string, "
                f"got {phase!r}"
            )
        nbytes = _int_field(obj, "bytes", lineno=lineno)
        if nbytes < 0:
            raise ConfigurationError(
                f"trace record {lineno} carries negative bytes: {nbytes}"
            )
        if phase not in order:
            order[phase] = len(order)
        records.append(
            TraceRecord(
                phase=phase,
                src=_int_field(obj, "src", lineno=lineno),
                dst=_int_field(obj, "dst", lineno=lineno),
                bytes=nbytes,
                order=order[phase],
            )
        )
    return records, list(order)


def _parse_moe_routing(raw: list[Any], meta: dict) -> tuple[list[TraceRecord], list[str]]:
    bytes_per_token = meta.get("bytes_per_token", DEFAULT_BYTES_PER_TOKEN)
    if (
        isinstance(bytes_per_token, bool)
        or not isinstance(bytes_per_token, int)
        or bytes_per_token <= 0
    ):
        raise ConfigurationError(
            f"trace meta 'bytes_per_token' must be a positive integer, "
            f"got {bytes_per_token!r}"
        )
    records: list[TraceRecord] = []
    layers: dict[int, int] = {}
    for lineno, obj in enumerate(raw, start=1):
        if not isinstance(obj, dict):
            raise ConfigurationError(
                f"trace record {lineno} must be an object, got {type(obj).__name__}"
            )
        layer = obj.get("layer", 0)
        if isinstance(layer, bool) or not isinstance(layer, int) or layer < 0:
            raise ConfigurationError(
                f"trace record {lineno} 'layer' must be a non-negative integer, "
                f"got {layer!r}"
            )
        tokens = _int_field(obj, "tokens", lineno=lineno)
        if tokens < 0:
            raise ConfigurationError(
                f"trace record {lineno} carries a negative token count: {tokens}"
            )
        src = _int_field(obj, "src", lineno=lineno)
        dst = _int_field(obj, "dst", lineno=lineno)
        if layer not in layers:
            layers[layer] = len(layers)
        nbytes = tokens * bytes_per_token
        base = 2 * layers[layer]
        # Each layer is a dispatch (tokens to the experts) followed by a
        # combine (the processed activations coming back): same volume,
        # transposed direction.
        records.append(
            TraceRecord(
                phase=f"layer{layer}/dispatch", src=src, dst=dst,
                bytes=nbytes, order=base,
            )
        )
        records.append(
            TraceRecord(
                phase=f"layer{layer}/combine", src=dst, dst=src,
                bytes=nbytes, order=base + 1,
            )
        )
    names: list[str] = []
    for layer in sorted(layers, key=layers.get):
        names.append(f"layer{layer}/dispatch")
        names.append(f"layer{layer}/combine")
    return records, names


def parse_trace(source) -> ParsedTrace:
    """Parse a trace (path, JSON(L) text or decoded objects) into records.

    The format is taken from the meta line when present, otherwise detected
    from the record keys.  Raises
    :class:`~repro.errors.ConfigurationError` on any malformed input —
    never a raw ``KeyError``/``TypeError``/``ValueError``.
    """
    objects = _read_objects(source)
    meta, raw = _split_meta(objects)
    if not raw:
        raise ConfigurationError("a trace must contain at least one record")
    fmt = _detect_format(meta, raw)
    if fmt == "phase-log":
        records, _names = _parse_phase_log(raw)
    else:
        records, _names = _parse_moe_routing(raw, meta)
    return ParsedTrace(
        format=fmt,
        records=records,
        nprocs=_meta_nprocs(meta),
        repeats=_meta_repeats(meta),
    )
