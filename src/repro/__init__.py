"""repro: reproduction of "Scaling All-to-all Operations Across Emerging Many-Core Supercomputers".

The package is organised as:

* :mod:`repro.machine` — many-core node / cluster / network models
  (Dane, Amber, Tuolomne presets from Table 1 of the paper);
* :mod:`repro.netsim` — deterministic discrete-event simulation core;
* :mod:`repro.simmpi` — an mpi4py-like simulated MPI (communicators,
  point-to-point, collectives) running on the machine model;
* :mod:`repro.core` — the all-to-all algorithm family: Bruck, pairwise,
  non-blocking, batched, hierarchical, multi-leader, node-aware,
  locality-aware and multi-leader+node-aware (the paper's contributions),
  plus validation, instrumentation and algorithm selection;
* :mod:`repro.workloads` — non-uniform traffic matrices and pattern
  generators (skewed MoE, block-diagonal, Zipf, sparse, trace replay)
  exchanged with ``alltoallv`` semantics across the whole stack;
* :mod:`repro.model` — closed-form cost models used for full-scale
  (112 processes per node, 32 nodes) figure regeneration;
* :mod:`repro.bench` — the experiment harness regenerating every figure
  and table of the paper's evaluation;
* :mod:`repro.runtime` — parallel sweep execution: picklable point specs,
  a process-pool :class:`~repro.runtime.SweepExecutor` and an on-disk
  :class:`~repro.runtime.ResultStore` keyed by stable spec hashes;
* :mod:`repro.verify` — differential conformance fuzzing: seeded random
  scenarios run through every registered algorithm, byte-compared against
  the reference, with shrinking failure reports and a golden corpus.

Quickstart::

    from repro.machine import tiny_cluster, ProcessMap
    from repro.core import run_alltoall

    cluster = tiny_cluster(num_nodes=4)
    pmap = ProcessMap(cluster, ppn=8)
    outcome = run_alltoall("multileader-node-aware", pmap, msg_bytes=64,
                           procs_per_group=4)
    print(outcome.elapsed)
"""

from repro._version import __version__

__all__ = ["__version__"]
