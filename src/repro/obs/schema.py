"""Structural validation of exported Chrome trace-event JSON.

The Chrome trace-event format has no official JSON Schema; this module
checks the structural subset :mod:`repro.obs.chrome` emits and Perfetto
relies on: a top-level ``traceEvents`` list whose entries carry ``ph``,
``pid``, ``tid``, ``ts`` (and ``dur`` for complete events), with ``M``
metadata events naming processes and threads.  The CI trace-schema smoke
test runs it over a real ``repro-bench trace`` output::

    python -m repro.obs.schema trace.json --require-rank-track --require-link-track
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["validate_chrome_trace", "TraceSummary"]

_REQUIRED_BY_PHASE = {
    "X": ("name", "ph", "pid", "tid", "ts", "dur"),
    "i": ("name", "ph", "pid", "tid", "ts"),
    "M": ("name", "ph", "pid", "args"),
    "B": ("name", "ph", "pid", "tid", "ts"),
    "E": ("ph", "pid", "tid", "ts"),
    "C": ("name", "ph", "pid", "tid", "ts", "args"),
}


class TraceSummary:
    """What :func:`validate_chrome_trace` found, for assertions and the CLI."""

    def __init__(self) -> None:
        self.events = 0
        self.process_names: dict[int, str] = {}
        self.threads_per_process: dict[int, set[int]] = {}

    def tracks(self, process_name: str) -> int:
        """Number of distinct threads under the process named ``process_name``."""
        for pid, name in self.process_names.items():
            if name == process_name:
                return len(self.threads_per_process.get(pid, ()))
        return 0

    def describe(self) -> str:
        parts = [f"{self.events} event(s)"]
        for pid in sorted(self.process_names):
            name = self.process_names[pid]
            parts.append(f"{name}: {len(self.threads_per_process.get(pid, ()))} track(s)")
        return ", ".join(parts)


def _fail(index: int, message: str) -> None:
    raise ConfigurationError(f"trace event #{index}: {message}")


def validate_chrome_trace(document) -> TraceSummary:
    """Validate a trace document (a dict, JSON text, or a file path).

    Raises :class:`~repro.errors.ConfigurationError` on the first
    structural violation; returns a :class:`TraceSummary` on success.
    """
    if isinstance(document, Path):
        document = json.loads(document.read_text(encoding="utf-8"))
    elif isinstance(document, str):
        if document.lstrip().startswith(("{", "[")):
            document = json.loads(document)
        else:
            document = json.loads(Path(document).read_text(encoding="utf-8"))
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"trace document must be a JSON object, got {type(document).__name__}"
        )
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigurationError("trace document has no 'traceEvents' list")

    summary = TraceSummary()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(index, f"must be an object, got {type(event).__name__}")
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            _fail(index, "missing or non-string 'ph'")
        required = _REQUIRED_BY_PHASE.get(phase)
        if required is None:
            _fail(index, f"unsupported event phase {phase!r}")
        for key in required:
            if key not in event:
                _fail(index, f"{phase!r} event missing required key {key!r}")
        if "ts" in event and not isinstance(event["ts"], (int, float)):
            _fail(index, "'ts' must be a number")
        if phase == "X":
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(index, "'dur' must be a non-negative number")
        if "pid" in event and not isinstance(event["pid"], int):
            _fail(index, "'pid' must be an integer")
        if phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                _fail(index, "metadata event needs args.name")
            pid = event["pid"]
            if event["name"] == "process_name":
                summary.process_names[pid] = args["name"]
            elif event["name"] == "thread_name":
                summary.threads_per_process.setdefault(pid, set()).add(event["tid"])
        else:
            summary.events += 1
            tid = event.get("tid")
            if tid is not None:
                summary.threads_per_process.setdefault(event["pid"], set()).add(tid)
    return summary


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: validate a trace file, optionally requiring tracks."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate a Chrome trace-event JSON file emitted by repro-bench trace.",
    )
    parser.add_argument("path", help="trace JSON file to validate")
    parser.add_argument("--require-rank-track", action="store_true",
                        help="fail unless the trace contains at least one rank track")
    parser.add_argument("--require-link-track", action="store_true",
                        help="fail unless the trace contains at least one fabric-link track")
    options = parser.parse_args(argv)
    try:
        summary = validate_chrome_trace(Path(options.path))
    except (ConfigurationError, OSError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}")
        return 1
    problems = []
    if options.require_rank_track and summary.tracks("ranks") < 1:
        problems.append("no rank track")
    if options.require_link_track and summary.tracks("fabric links") < 1:
        problems.append("no fabric-link track")
    if problems:
        print(f"INVALID: {', '.join(problems)} ({summary.describe()})")
        return 1
    print(f"OK: {summary.describe()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
