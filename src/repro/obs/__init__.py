"""Observability: simulated-time tracing, metrics, Perfetto timeline export.

The subsystem has three coordinated pieces, all zero-overhead when off:

* :mod:`repro.obs.sink` — the event-sink protocol the engine, router,
  timing model and fabric emit into (``None`` by default, one pointer test
  per emission point);
* :mod:`repro.obs.metrics` — counter/gauge/histogram primitives and the
  per-job snapshot stored on ``JobResult.metrics``;
* :mod:`repro.obs.chrome` / :mod:`repro.obs.schema` — Chrome trace-event
  JSON export (loads in Perfetto) and its structural validator.

See ``docs/OBSERVABILITY.md`` for the full protocol, trace schema and
metrics glossary.
"""

from repro.obs.chrome import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_job_metrics,
)
from repro.obs.schema import validate_chrome_trace
from repro.obs.sink import NULL_SINK, EventSink, RecordingSink

__all__ = [
    "EventSink",
    "NULL_SINK",
    "RecordingSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "build_job_metrics",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]
