"""Metrics primitives and the per-job metrics snapshot.

Two layers live here:

* **Primitives** — :class:`Counter`, :class:`Gauge` and :class:`Histogram`,
  collected in a :class:`MetricsRegistry`.  They are deliberately plain
  (no labels, no time series): a simulated job is a single bounded run, so
  a flat named snapshot is the right shape.
* **The job snapshot** — :func:`build_job_metrics` turns the counters the
  engine, router, timing model and fabric already maintain on (or next to)
  the hot path into the nested plain-``dict`` stored on
  :attr:`repro.simmpi.engine.JobResult.metrics`.  It runs once per job,
  after the event loop has drained, so it costs nothing on the hot path.

The snapshot is JSON-serialisable by construction — the ``trace`` CLI
writes it as the metrics sidecar, and :func:`repro.bench.reporting.format_metrics`
renders it for humans.  The metrics glossary lives in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "build_job_metrics",
]


@dataclass
class Counter:
    """A monotonically increasing count (messages matched, bytes moved, ...)."""

    name: str
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self):
        return self.value


@dataclass
class Gauge:
    """A point-in-time level that tracks its peak (queue depth, occupancy)."""

    name: str
    value: float = 0
    peak: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def snapshot(self) -> dict:
        return {"value": self.value, "peak": self.peak}


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count/max (scan lengths, durations).

    ``bounds`` are the inclusive upper edges of each bucket; observations
    above the last bound land in the implicit overflow bucket.
    """

    name: str
    bounds: tuple = (1, 2, 4, 8, 16, 32, 64, 128)
    counts: list = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    max: float = 0.0

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError(f"histogram {self.name!r} bounds must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                **{f"le_{bound}": self.counts[i] for i, bound in enumerate(self.bounds)},
                "overflow": self.counts[-1],
            },
        }


class MetricsRegistry:
    """A named collection of metrics with one-call snapshotting.

    Names are dotted paths (``"matching.fast_path"``); :meth:`snapshot`
    nests them into plain dictionaries, so the registry's output drops
    straight into JSON.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _register(self, metric):
        if metric.name in self._metrics:
            raise ConfigurationError(f"metric {metric.name!r} is already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, value: float = 0) -> Counter:
        return self._register(Counter(name, value))

    def gauge(self, name: str) -> Gauge:
        return self._register(Gauge(name))

    def histogram(self, name: str, bounds: tuple = Histogram.bounds) -> Histogram:
        return self._register(Histogram(name, bounds))

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Nested plain-dict snapshot of every registered metric."""
        out: dict = {}
        for name, metric in sorted(self._metrics.items()):
            node = out
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = metric.snapshot()
        return out


# ---------------------------------------------------------------------------
# The per-job snapshot
# ---------------------------------------------------------------------------


def build_job_metrics(engine) -> dict:
    """Aggregate one finished job's counters into a plain-dict snapshot.

    Runs once per :meth:`~repro.simmpi.engine.SpmdEngine.run`, after the
    simulation has drained; reads the counters the router/timing/fabric
    layers maintained during the run and never touches hot-path state.
    """
    router = engine.router
    timing = engine.timing
    registry = MetricsRegistry()

    # -- matching ----------------------------------------------------------
    registry.counter("matching.matches", router.matches)
    registry.counter("matching.fast_path", router.fast_path_matches)
    registry.counter("matching.queued", router.queued_matches)
    registry.counter("matching.parked", router.unexpected_parked)
    registry.counter("matching.entries_scanned", router.entries_scanned)
    registry.counter("matching.wildcard_receives", router.wildcard_receives)
    wildcard_scan = registry.histogram("matching.wildcard_scan")
    for scanned in router.wildcard_scan_lengths:
        wildcard_scan.observe(scanned)
    depth = registry.gauge("matching.unexpected_depth")
    depth.set(router.max_unexpected_depth)
    depth.set(sum(len(m.unexpected) for m in router._mailboxes))  # final level

    # -- traffic -----------------------------------------------------------
    traffic = router.traffic
    registry.counter("traffic.messages", traffic.messages)
    registry.counter("traffic.bytes", traffic.total_bytes)
    for level, counts in traffic.per_key.items():
        key = level.name.lower() if hasattr(level, "name") else str(level)
        registry.counter(f"traffic.by_level.{key}.messages", counts[0])
        registry.counter(f"traffic.by_level.{key}.bytes", counts[1])

    # -- NIC injection -----------------------------------------------------
    nic_busy = registry.histogram("nic.busy_time", bounds=())
    registry.counter(
        "nic.messages", sum(nic.reservations for nic in timing.nics)
    )
    for nic in timing.nics:
        nic_busy.observe(nic.busy_time)

    # -- fabric links ------------------------------------------------------
    fabric = timing.fabric
    if fabric is not None:
        stats = fabric.statistics()
        registry.counter("fabric.links", len(stats))
        registry.counter("fabric.messages", sum(s["messages"] for s in stats))
        registry.counter("fabric.bytes", sum(s["bytes"] for s in stats))
        registry.counter("fabric.queued_time", sum(s["queued_time"] for s in stats))
        busy = registry.histogram("fabric.link_busy_time", bounds=())
        occupancy = registry.gauge("fabric.link_occupancy")
        for entry in stats:
            busy.observe(entry["busy_time"])
            occupancy.set(entry["busy_time"])
        registry.counter(
            "fabric.max_queue_delay", max(s["max_queue_delay"] for s in stats)
        )

    # -- engine ------------------------------------------------------------
    registry.counter("engine.events_processed", engine.simulator.events_processed)
    registry.counter("engine.ranks", engine.pmap.nprocs)

    # Parallel-engine surface (absent on serial runs): per-partition clocks
    # and event counts, plus the cross-partition wakeups the lookahead
    # invariant guarded.
    partition_clocks = getattr(engine, "partition_clocks", None)
    if partition_clocks is not None:
        registry.counter("engine.partitions", engine.partitions)
        clock = registry.gauge("engine.partition_clock")
        for value in partition_clocks:
            clock.set(value)
        events = registry.histogram("engine.partition_events", bounds=())
        for count in engine.partition_events:
            events.observe(count)
        registry.counter("engine.cross_partition_wakeups", engine.cross_notifications)

    # Fault-injection surface (absent on healthy runs): how many fault
    # models were active, so a metrics sidecar always records whether its
    # timings describe the healthy or a degraded machine.
    faults = getattr(engine, "faults", None)
    if faults is not None:
        registry.counter("faults.active", len(faults.faults))
        registry.gauge("faults.seed").set(faults.seed)

    return registry.snapshot()
