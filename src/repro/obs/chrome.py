"""Chrome trace-event export: turn a recorded sink into a Perfetto timeline.

The emitted JSON follows the Chrome trace-event format (the ``traceEvents``
array form), which loads directly in `Perfetto <https://ui.perfetto.dev>`_
and in ``chrome://tracing``:

* **one track per rank** (process ``"ranks"``, thread ``rank N``) carrying
  the algorithm-phase slices, ``wait`` slices and send/receive/match/park
  instants;
* **one track per fabric link** (process ``"fabric links"``) carrying one
  slice per message traversal, with the queueing delay behind earlier
  traffic in the slice arguments;
* **one track per NIC** (process ``"nics"``) carrying injection slices;
* **one track per fault target** (process ``"faults"``, only present when
  fault injection is active) carrying the t=0 fault manifest instants and
  ``flap-stall`` spans.

Timestamps are simulated seconds converted to trace microseconds, so a
10 µs simulated collective renders as a 10 µs timeline.  Durations of
zero-length events are clamped to a tiny positive value so Perfetto shows
them as visible slivers instead of dropping them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.sink import RecordingSink

__all__ = ["chrome_trace_events", "chrome_trace", "write_chrome_trace"]

#: Synthetic process ids of the four track families.
PID_RANKS = 1
PID_LINKS = 2
PID_NICS = 3
PID_FAULTS = 4

_SECONDS_TO_US = 1e6
#: Minimum slice duration in trace µs (one simulated picosecond) so that
#: zero-cost spans remain visible in the viewer.
_MIN_DUR = 1e-6


def _slice(name: str, cat: str, pid: int, tid: int, start: float, stop: float,
           args: dict | None = None) -> dict:
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": start * _SECONDS_TO_US,
        "dur": max((stop - start) * _SECONDS_TO_US, _MIN_DUR),
    }
    if args:
        event["args"] = args
    return event


def _instant(name: str, cat: str, pid: int, tid: int, time: float,
             args: dict | None = None) -> dict:
    event = {
        "name": name,
        "cat": cat,
        "ph": "i",
        "s": "t",
        "pid": pid,
        "tid": tid,
        "ts": time * _SECONDS_TO_US,
    }
    if args:
        event["args"] = args
    return event


def _metadata(name: str, pid: int, tid: int, value: str) -> dict:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": value},
    }


def chrome_trace_events(sink: RecordingSink) -> list[dict]:
    """Convert a :class:`RecordingSink`'s stream into trace-event dicts."""
    events: list[dict] = []
    ranks_seen: set[int] = set()
    link_tids: dict[str, int] = {}
    nics_seen: set[int] = set()
    fault_tids: dict[str, int] = {}

    def fault_tid(target: str) -> int:
        tid = fault_tids.get(target)
        if tid is None:
            tid = len(fault_tids)
            fault_tids[target] = tid
        return tid

    def rank_tid(rank: int) -> int:
        ranks_seen.add(rank)
        return rank

    def link_tid(name: str) -> int:
        tid = link_tids.get(name)
        if tid is None:
            tid = len(link_tids)
            link_tids[name] = tid
        return tid

    for event in sink.events:
        kind = event[0]
        if kind == "phase":
            _, rank, name, start, stop = event
            events.append(_slice(name, "phase", PID_RANKS, rank_tid(rank), start, stop))
        elif kind == "wait":
            _, rank, start, stop, requests = event
            events.append(_slice("wait", "wait", PID_RANKS, rank_tid(rank), start, stop,
                                 {"requests": requests}))
        elif kind == "send":
            _, rank, dest, nbytes, tag, time = event
            events.append(_instant("send", "p2p", PID_RANKS, rank_tid(rank), time,
                                   {"dest": dest, "bytes": nbytes, "tag": tag}))
        elif kind == "recv":
            _, rank, source, tag, time = event
            events.append(_instant("recv", "p2p", PID_RANKS, rank_tid(rank), time,
                                   {"source": source, "tag": tag}))
        elif kind == "match":
            _, src, dst, nbytes, tag, fast_path, arrival, completion = event
            events.append(_instant("match", "p2p", PID_RANKS, rank_tid(dst), completion,
                                   {"source": src, "bytes": nbytes, "tag": tag,
                                    "fast_path": fast_path,
                                    "arrival_us": arrival * _SECONDS_TO_US}))
        elif kind == "park":
            _, src, dst, nbytes, tag, time, depth = event
            events.append(_instant("unexpected", "p2p", PID_RANKS, rank_tid(dst), time,
                                   {"source": src, "bytes": nbytes, "tag": tag,
                                    "queue_depth": depth}))
        elif kind == "nic":
            _, node, requested, begin, end, nbytes = event
            nics_seen.add(node)
            events.append(_slice("inject", "nic", PID_NICS, node, begin, end,
                                 {"bytes": nbytes,
                                  "queued_us": (begin - requested) * _SECONDS_TO_US}))
        elif kind == "link":
            _, name, requested, begin, end, nbytes, src_node, dst_node = event
            events.append(_slice(f"n{src_node}->n{dst_node}", "link",
                                 PID_LINKS, link_tid(name), begin, end,
                                 {"bytes": nbytes,
                                  "queued_us": (begin - requested) * _SECONDS_TO_US}))
        elif kind == "fault":
            _, fault_kind, target, start, stop, detail = event
            if stop > start:
                events.append(_slice(fault_kind, "fault", PID_FAULTS,
                                     fault_tid(target), start, stop,
                                     {"detail": detail}))
            else:
                events.append(_instant(fault_kind, "fault", PID_FAULTS,
                                       fault_tid(target), start,
                                       {"detail": detail}))

    metadata: list[dict] = [
        _metadata("process_name", PID_RANKS, 0, "ranks"),
        _metadata("process_sort_index", PID_RANKS, 0, "0"),
    ]
    for rank in sorted(ranks_seen):
        metadata.append(_metadata("thread_name", PID_RANKS, rank, f"rank {rank}"))
    if link_tids:
        metadata.append(_metadata("process_name", PID_LINKS, 0, "fabric links"))
        for name, tid in sorted(link_tids.items(), key=lambda item: item[1]):
            metadata.append(_metadata("thread_name", PID_LINKS, tid, name))
    if nics_seen:
        metadata.append(_metadata("process_name", PID_NICS, 0, "nics"))
        for node in sorted(nics_seen):
            metadata.append(_metadata("thread_name", PID_NICS, node, f"nic node{node}"))
    if fault_tids:
        metadata.append(_metadata("process_name", PID_FAULTS, 0, "faults"))
        for target, tid in sorted(fault_tids.items(), key=lambda item: item[1]):
            metadata.append(_metadata("thread_name", PID_FAULTS, tid, target))
    return metadata + events


def chrome_trace(sink: RecordingSink, *, configuration: str = "") -> dict:
    """The full trace document (``traceEvents`` plus display hints)."""
    return {
        "traceEvents": chrome_trace_events(sink),
        "displayTimeUnit": "ns",
        "otherData": {
            "producer": "repro.obs",
            "configuration": configuration,
            "time_unit_note": "ts/dur are simulated microseconds",
        },
    }


def write_chrome_trace(path, sink: RecordingSink, *, configuration: str = "") -> Path:
    """Write the trace JSON for ``sink`` to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(sink, configuration=configuration)) + "\n",
                    encoding="utf-8")
    return path
