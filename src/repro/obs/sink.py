"""The simulated-time event-sink protocol.

An *event sink* receives the observable lifecycle of a simulated job as it
happens: rank phases opening and closing, ranks blocking on ``Wait``,
sends/receives being posted, messages matching (fast path or after sitting
in the unexpected queue), NIC injections and fabric-link occupancy.  All
timestamps are **simulated** seconds — the sink sees the machine the
simulator models, not the wall clock of the simulation itself.

Zero-overhead-when-off contract
-------------------------------
Every instrumented hot path (``repro.simmpi.engine``, ``repro.simmpi.p2p``,
``repro.netsim.fabric``) holds a sink reference that defaults to ``None``
and guards each emission with a single ``if sink is not None`` test.  With
no sink attached the only cost is that pointer test, so the PR 4 hot-path
budget is untouched; the perf-smoke CI gate pins this (<25% wall-clock
drift with :mod:`repro.obs` imported but disabled).  Attaching a sink never
changes the simulated arithmetic either: sinks observe times that were
already computed, so simulated timings are bit-identical with tracing on
(pinned by ``tests/obs/test_tracing_invariance.py`` against the golden
timing fixture).

:class:`EventSink` is the no-op base (also usable as a structural protocol
reference); :class:`RecordingSink` accumulates typed event tuples in memory
for :mod:`repro.obs.chrome` (Perfetto export), :mod:`repro.obs.metrics`
and the tests.
"""

from __future__ import annotations

__all__ = ["EventSink", "NULL_SINK", "RecordingSink"]


class EventSink:
    """No-op base sink: every callback is a ``pass``.

    Subclass and override the events you care about.  The engine never
    calls these through an attached ``None`` sink (the hot paths test
    ``if sink is not None`` instead of calling into a null object), so the
    base class exists for subclassing and for explicitly opting into "sink
    attached but discarding" setups.
    """

    # -- rank lifecycle ----------------------------------------------------
    def phase(self, rank: int, name: str, start: float, stop: float) -> None:
        """A named algorithm phase ran on ``rank`` over ``[start, stop]``."""

    def wait(self, rank: int, start: float, stop: float, requests: int) -> None:
        """``rank`` blocked in ``Wait`` on ``requests`` requests over ``[start, stop]``."""

    def send_posted(self, rank: int, dest: int, nbytes: int, tag: int, time: float) -> None:
        """``rank`` posted a send of ``nbytes`` to ``dest`` at ``time``."""

    def recv_posted(self, rank: int, source: int, tag: int, time: float) -> None:
        """``rank`` posted a receive (``source``/``tag`` may be wildcards) at ``time``."""

    # -- matching lifecycle ------------------------------------------------
    def matched(self, src: int, dst: int, nbytes: int, tag: int,
                fast_path: bool, arrival: float, completion: float) -> None:
        """A message matched at ``dst``; ``fast_path`` means it never queued."""

    def parked(self, src: int, dst: int, nbytes: int, tag: int,
               time: float, depth: int) -> None:
        """A message was parked in ``dst``'s unexpected queue (now ``depth`` deep)."""

    # -- shared resources --------------------------------------------------
    def nic(self, node: int, requested: float, begin: float, end: float,
            nbytes: int) -> None:
        """Node ``node``'s NIC injected ``nbytes`` over ``[begin, end]``.

        ``requested`` is when the message wanted the NIC; ``begin -
        requested`` is therefore the injection queueing delay.
        """

    def link(self, name: str, requested: float, begin: float, end: float,
             nbytes: int, src_node: int, dst_node: int) -> None:
        """Fabric link ``name`` carried ``nbytes`` over ``[begin, end]``.

        ``begin - requested`` is the queueing delay behind earlier traffic
        on the shared link — the contention the fabric model exists for.
        """

    # -- fault injection ---------------------------------------------------
    def fault(self, kind: str, target: str, start: float, stop: float,
              detail: str) -> None:
        """A fault-injection event on ``target`` (a link name, ``nodeN``, or
        ``all-ranks``).

        At job start each active fault model announces itself with
        ``start == stop == 0.0``; during the run a flapping link emits a
        ``flap-stall`` span covering the time a message was held for the
        next on-window.
        """


#: Shared no-op instance for "explicitly discard" call sites.
NULL_SINK = EventSink()


class RecordingSink(EventSink):
    """Accumulates every event as a typed tuple, in emission order.

    The first element of each tuple is the event kind (``"phase"``,
    ``"wait"``, ``"send"``, ``"recv"``, ``"match"``, ``"park"``, ``"nic"``,
    ``"link"``, ``"fault"``); the remaining elements are the callback
    arguments in declaration order.  Tuples keep recording cheap and make
    the stream
    trivially filterable (``sink.of_kind("link")``).
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple] = []

    # -- rank lifecycle ----------------------------------------------------
    def phase(self, rank, name, start, stop):
        self.events.append(("phase", rank, name, start, stop))

    def wait(self, rank, start, stop, requests):
        self.events.append(("wait", rank, start, stop, requests))

    def send_posted(self, rank, dest, nbytes, tag, time):
        self.events.append(("send", rank, dest, nbytes, tag, time))

    def recv_posted(self, rank, source, tag, time):
        self.events.append(("recv", rank, source, tag, time))

    # -- matching lifecycle ------------------------------------------------
    def matched(self, src, dst, nbytes, tag, fast_path, arrival, completion):
        self.events.append(("match", src, dst, nbytes, tag, fast_path, arrival, completion))

    def parked(self, src, dst, nbytes, tag, time, depth):
        self.events.append(("park", src, dst, nbytes, tag, time, depth))

    # -- shared resources --------------------------------------------------
    def nic(self, node, requested, begin, end, nbytes):
        self.events.append(("nic", node, requested, begin, end, nbytes))

    def link(self, name, requested, begin, end, nbytes, src_node, dst_node):
        self.events.append(("link", name, requested, begin, end, nbytes, src_node, dst_node))

    # -- fault injection ---------------------------------------------------
    def fault(self, kind, target, start, stop, detail):
        self.events.append(("fault", kind, target, start, stop, detail))

    # -- queries -----------------------------------------------------------
    def of_kind(self, kind: str) -> list[tuple]:
        """Every recorded event of one kind, in emission order."""
        return [event for event in self.events if event[0] == kind]

    def kinds(self) -> dict[str, int]:
        """Event count per kind (diagnostics and tests)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event[0]] = out.get(event[0], 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
