"""Machine and topology models for emerging many-core clusters.

This package provides the hardware substrate the paper's evaluation runs on:
hierarchical node architectures (cores grouped into NUMA domains, sockets and
nodes), cluster-level network parameters (latency/bandwidth per locality
level, NIC injection limits, matching costs) and the mapping of MPI-style
ranks onto that hardware.  The presets in :mod:`repro.machine.systems`
reproduce Table 1 of the paper (Dane, Amber, Tuolomne).
"""

from repro.machine.hierarchy import LocalityLevel, coarsest_level, finest_level
from repro.machine.topology import NodeArchitecture
from repro.machine.params import LevelCosts, MachineParameters
from repro.machine.cluster import Cluster
from repro.machine.folding import FoldCertificate, FoldedProcessMap, fold_process_map
from repro.machine.process_map import ProcessMap
from repro.machine.systems import (
    SYSTEM_PRESETS,
    TABLE1_NODE_COUNTS,
    amber,
    dane,
    get_system,
    list_systems,
    mi300a_node,
    paper_scale,
    sapphire_rapids_node,
    tiny_cluster,
    tuolomne,
)

__all__ = [
    "LocalityLevel",
    "coarsest_level",
    "finest_level",
    "NodeArchitecture",
    "LevelCosts",
    "MachineParameters",
    "Cluster",
    "FoldCertificate",
    "FoldedProcessMap",
    "fold_process_map",
    "ProcessMap",
    "SYSTEM_PRESETS",
    "TABLE1_NODE_COUNTS",
    "amber",
    "dane",
    "get_system",
    "list_systems",
    "mi300a_node",
    "paper_scale",
    "sapphire_rapids_node",
    "tiny_cluster",
    "tuolomne",
]
