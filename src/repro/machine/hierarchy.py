"""Locality levels of the communication hierarchy.

The paper distinguishes intra-NUMA, inter-NUMA (same socket), inter-socket
(same node) and inter-node communication.  :class:`LocalityLevel` encodes
these levels as an ordered enum: a *smaller* value means the two endpoints
are *closer* together, so levels can be compared directly
(``level <= LocalityLevel.NODE`` means "on the same node").
"""

from __future__ import annotations

import enum

__all__ = ["LocalityLevel", "finest_level", "coarsest_level", "INTRA_NODE_LEVELS"]


class LocalityLevel(enum.IntEnum):
    """Distance class between two processes, from closest to farthest."""

    #: The same process (used for self-messages, which cost only a local copy).
    SELF = 0
    #: Different processes within the same NUMA domain.
    NUMA = 1
    #: Same socket, different NUMA domains.
    SOCKET = 2
    #: Same node, different sockets.
    NODE = 3
    #: Different nodes, traversing the interconnect (and both NICs).
    NETWORK = 4

    @property
    def is_intra_node(self) -> bool:
        """True when communication at this level stays inside one node."""
        return self <= LocalityLevel.NODE

    @property
    def is_inter_node(self) -> bool:
        """True when communication at this level crosses the network."""
        return self == LocalityLevel.NETWORK

    def describe(self) -> str:
        """Human-readable description used in traces and reports."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    LocalityLevel.SELF: "same process",
    LocalityLevel.NUMA: "same NUMA domain",
    LocalityLevel.SOCKET: "same socket, different NUMA domain",
    LocalityLevel.NODE: "same node, different socket",
    LocalityLevel.NETWORK: "different nodes",
}

#: Levels whose traffic never touches the NIC.
INTRA_NODE_LEVELS = (
    LocalityLevel.SELF,
    LocalityLevel.NUMA,
    LocalityLevel.SOCKET,
    LocalityLevel.NODE,
)


def finest_level() -> LocalityLevel:
    """The closest possible distance between two distinct processes."""
    return LocalityLevel.NUMA


def coarsest_level() -> LocalityLevel:
    """The farthest possible distance between two processes."""
    return LocalityLevel.NETWORK
