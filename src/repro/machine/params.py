"""Communication cost parameters for the machine model.

The discrete-event simulator (:mod:`repro.netsim` / :mod:`repro.simmpi`) and
the analytic model (:mod:`repro.model`) both consume the same
:class:`MachineParameters` object, so that their predictions are derived
from identical assumptions.  The parameters follow the hierarchical
"max-rate"/postal style model advocated for SMP nodes by Gropp, Olson and
Samfass (reference [8] of the paper):

* per-locality-level latency ``alpha`` and per-byte cost ``beta``
  (``beta = 1 / bandwidth``);
* a per-node NIC *injection* constraint: all inter-node messages leaving a
  node serialize on the NIC, paying a per-message overhead plus a per-byte
  cost at the injection bandwidth — the bottleneck the paper identifies for
  many-core nodes;
* per-message send/receive CPU overheads and a matching (queue-search) cost
  proportional to the number of pending receives, which is what makes large
  non-blocking exchanges expensive at scale;
* an eager/rendezvous threshold: messages above ``eager_limit`` cannot start
  transferring until the receiver has posted the matching receive, which is
  what creates the synchronization idle time of pairwise exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import ConfigurationError
from repro.machine.hierarchy import LocalityLevel

__all__ = ["LevelCosts", "MachineParameters"]


@dataclass(frozen=True)
class LevelCosts:
    """Latency/bandwidth pair describing one locality level.

    Parameters
    ----------
    latency:
        One-way message latency in seconds (the ``alpha`` term).
    bandwidth:
        Sustained point-to-point bandwidth in bytes/second for this level
        (the inverse of the ``beta`` term).
    """

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0.0:
            raise ConfigurationError(f"latency must be non-negative, got {self.latency}")
        if self.bandwidth <= 0.0:
            raise ConfigurationError(f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def byte_time(self) -> float:
        """Seconds per byte (``beta``)."""
        return 1.0 / self.bandwidth

    def message_time(self, nbytes: int) -> float:
        """Postal-model cost of a single ``nbytes`` message at this level."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency + nbytes * self.byte_time


def _default_levels() -> dict[LocalityLevel, LevelCosts]:
    """Reasonable Sapphire-Rapids-like defaults (overridden by presets)."""
    return {
        LocalityLevel.SELF: LevelCosts(latency=5.0e-8, bandwidth=5.0e10),
        LocalityLevel.NUMA: LevelCosts(latency=2.5e-7, bandwidth=1.2e10),
        LocalityLevel.SOCKET: LevelCosts(latency=4.0e-7, bandwidth=8.0e9),
        LocalityLevel.NODE: LevelCosts(latency=6.0e-7, bandwidth=5.0e9),
        LocalityLevel.NETWORK: LevelCosts(latency=1.6e-6, bandwidth=1.25e10),
    }


@dataclass(frozen=True)
class MachineParameters:
    """Complete set of cost-model parameters for a cluster.

    All times are in seconds, sizes in bytes, bandwidths in bytes/second.
    """

    #: Per-locality-level latency/bandwidth (must contain every level).
    levels: Mapping[LocalityLevel, LevelCosts] = field(default_factory=_default_levels)
    #: Aggregate NIC injection bandwidth per node, shared by all ranks on the node.
    injection_bandwidth: float = 1.25e10
    #: Per-message NIC occupancy (message-rate limit of the NIC / network stack).
    nic_message_overhead: float = 1.0e-7
    #: Aggregate intra-node fabric bandwidth per node shared by all traffic
    #: that crosses a NUMA boundary (inter-NUMA and inter-socket transfers).
    #: This is the many-core contention effect the paper attributes the
    #: intra-node redistribution overheads to; NUMA-local traffic does not
    #: consume it.
    cross_numa_bandwidth: float = 6.0e10
    #: CPU overhead to initiate a send (o_s in LogGP terms).
    send_overhead: float = 1.5e-7
    #: CPU overhead to complete a receive (o_r in LogGP terms).
    recv_overhead: float = 1.5e-7
    #: Cost of scanning one entry of the posted-receive / unexpected-message
    #: queue while matching; multiplied by the queue length at match time.
    match_overhead_per_entry: float = 3.0e-8
    #: Messages at most this large are sent eagerly; larger ones use a
    #: rendezvous protocol and cannot progress until the receive is posted.
    eager_limit: int = 8192
    #: Extra latency of the rendezvous handshake (ready-to-send / clear-to-send).
    rendezvous_overhead: float = 1.0e-6
    #: Memory-copy bandwidth used for packing/unpacking (repacking steps).
    copy_bandwidth: float = 2.0e10
    #: Fixed per-call cost of packing/unpacking (loop setup, cache effects).
    copy_latency: float = 2.0e-7

    def __post_init__(self) -> None:
        missing = [lvl for lvl in LocalityLevel if lvl not in self.levels]
        if missing:
            raise ConfigurationError(f"levels is missing entries for {missing}")
        for name in ("injection_bandwidth", "copy_bandwidth", "cross_numa_bandwidth"):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be positive")
        for name in (
            "nic_message_overhead",
            "send_overhead",
            "recv_overhead",
            "match_overhead_per_entry",
            "rendezvous_overhead",
            "copy_latency",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.eager_limit < 0:
            raise ConfigurationError("eager_limit must be non-negative")

    # -- elementary cost queries ---------------------------------------
    def level_costs(self, level: LocalityLevel) -> LevelCosts:
        """Latency/bandwidth of ``level``."""
        return self.levels[level]

    def latency(self, level: LocalityLevel) -> float:
        return self.levels[level].latency

    def byte_time(self, level: LocalityLevel) -> float:
        return self.levels[level].byte_time

    def wire_time(self, level: LocalityLevel, nbytes: int) -> float:
        """Postal cost of one message at ``level`` excluding CPU/NIC overheads."""
        return self.levels[level].message_time(nbytes)

    def injection_time(self, nbytes: int) -> float:
        """NIC occupancy of one inter-node message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
        return self.nic_message_overhead + nbytes / self.injection_bandwidth

    def fabric_time(self, nbytes: int) -> float:
        """Occupancy of the shared cross-NUMA fabric for one intra-node transfer."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
        return nbytes / self.cross_numa_bandwidth

    def copy_time(self, nbytes: int) -> float:
        """Cost of a local pack/unpack touching ``nbytes`` bytes."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.copy_latency + nbytes / self.copy_bandwidth

    def is_eager(self, nbytes: int) -> bool:
        """Whether a message of ``nbytes`` uses the eager protocol."""
        return nbytes <= self.eager_limit

    # -- convenience ----------------------------------------------------
    def with_overrides(self, **kwargs) -> "MachineParameters":
        """Return a copy with some fields replaced (used by ablation benches)."""
        return replace(self, **kwargs)

    def scale_level(self, level: LocalityLevel, *, latency_factor: float = 1.0,
                    bandwidth_factor: float = 1.0) -> "MachineParameters":
        """Return a copy with one level's latency/bandwidth scaled."""
        if latency_factor < 0 or bandwidth_factor <= 0:
            raise ConfigurationError("scaling factors must be positive")
        costs = self.levels[level]
        new_levels = dict(self.levels)
        new_levels[level] = LevelCosts(
            latency=costs.latency * latency_factor,
            bandwidth=costs.bandwidth * bandwidth_factor,
        )
        return replace(self, levels=new_levels)
