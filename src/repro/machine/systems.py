"""Presets for the systems evaluated in the paper (Table 1) plus test fixtures.

==========  =======================  =======================  ==================
Name        CPU                      Network                  System MPI
==========  =======================  =======================  ==================
Dane        Intel Sapphire Rapids    Cornelis Omni-Path       Open MPI 4.1.2
Amber       Intel Sapphire Rapids    Cornelis Omni-Path       Open MPI 4.1.6
Tuolomne    AMD Instinct MI300A      HPE Slingshot-11         Cray MPICH 8.1.32
==========  =======================  =======================  ==================

Dane and Amber have 112 cores per node (2 sockets x 4 NUMA x 14 cores);
Tuolomne has 96 cores per node (4 MI300A chips of 24 cores, modelled as four
"sockets" with a single NUMA domain each).

The cost parameters are *not* measurements of the real machines (which are
not available to this reproduction); they are calibrated so that the relative
behaviour of the all-to-all algorithms matches the paper's evaluation: an
injection-bandwidth- and message-rate-limited NIC shared by >90 ranks per
node, intra-node transfers one order of magnitude cheaper than inter-node
ones, and noticeably different costs for NUMA-local versus cross-socket
traffic.  Amber differs from Dane only by slightly slower parameters (older
libfabric), while Tuolomne has a faster interconnect (Slingshot-11) and a
better-tuned system MPI, which the paper observes makes the system MPI hard
to beat at large message sizes.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.hierarchy import LocalityLevel
from repro.machine.params import LevelCosts, MachineParameters
from repro.machine.topology import NodeArchitecture
from repro.netsim.fabric import FabricSpec, FullBisectionFabric

__all__ = [
    "sapphire_rapids_node",
    "mi300a_node",
    "dane",
    "amber",
    "tuolomne",
    "tiny_cluster",
    "SYSTEM_PRESETS",
    "TABLE1_NODE_COUNTS",
    "get_system",
    "list_systems",
    "paper_scale",
]


# ---------------------------------------------------------------------------
# Node architectures
# ---------------------------------------------------------------------------

def sapphire_rapids_node() -> NodeArchitecture:
    """112-core Sapphire Rapids node: 2 sockets, 4 NUMA domains each, 14 cores per NUMA."""
    return NodeArchitecture(name="sapphire-rapids", sockets=2, numa_per_socket=4, cores_per_numa=14)


def mi300a_node() -> NodeArchitecture:
    """96-core MI300A node: 4 chips modelled as sockets with 24 cores each."""
    return NodeArchitecture(name="mi300a", sockets=4, numa_per_socket=1, cores_per_numa=24)


# ---------------------------------------------------------------------------
# Cost parameter sets
# ---------------------------------------------------------------------------

def _omnipath_params(*, latency_scale: float = 1.0) -> MachineParameters:
    """Omni-Path-like parameters used for Dane and Amber.

    100 Gb/s (12.5 GB/s) per-node injection, ~1.6 us inter-node latency and a
    NIC message-processing cost of ~0.1 us (onload network stack), combined
    with Sapphire-Rapids-like intra-node characteristics.
    """
    levels = {
        LocalityLevel.SELF: LevelCosts(latency=5.0e-8, bandwidth=5.0e10),
        LocalityLevel.NUMA: LevelCosts(latency=2.5e-7 * latency_scale, bandwidth=1.2e10),
        LocalityLevel.SOCKET: LevelCosts(latency=4.5e-7 * latency_scale, bandwidth=7.0e9),
        LocalityLevel.NODE: LevelCosts(latency=7.0e-7 * latency_scale, bandwidth=4.5e9),
        LocalityLevel.NETWORK: LevelCosts(latency=1.6e-6 * latency_scale, bandwidth=1.25e10),
    }
    return MachineParameters(
        levels=levels,
        injection_bandwidth=1.25e10,
        nic_message_overhead=5.0e-8 * latency_scale,
        send_overhead=1.5e-7,
        recv_overhead=1.5e-7,
        match_overhead_per_entry=3.0e-8,
        eager_limit=8192,
        rendezvous_overhead=1.6e-6,
        copy_bandwidth=2.0e10,
        copy_latency=2.0e-7,
        cross_numa_bandwidth=5.0e10,
    )


def _slingshot_params() -> MachineParameters:
    """Slingshot-11-like parameters used for Tuolomne.

    200 Gb/s (25 GB/s) injection, lower per-message NIC cost (hardware
    offload), slightly lower network latency, and a somewhat slower
    intra-node fabric (MI300A cross-chip traffic goes over Infinity Fabric).
    """
    levels = {
        LocalityLevel.SELF: LevelCosts(latency=5.0e-8, bandwidth=5.0e10),
        LocalityLevel.NUMA: LevelCosts(latency=3.0e-7, bandwidth=1.0e10),
        LocalityLevel.SOCKET: LevelCosts(latency=5.5e-7, bandwidth=6.0e9),
        LocalityLevel.NODE: LevelCosts(latency=5.5e-7, bandwidth=6.0e9),
        LocalityLevel.NETWORK: LevelCosts(latency=1.3e-6, bandwidth=2.5e10),
    }
    return MachineParameters(
        levels=levels,
        injection_bandwidth=2.5e10,
        nic_message_overhead=2.0e-8,
        send_overhead=1.2e-7,
        recv_overhead=1.2e-7,
        match_overhead_per_entry=5.0e-9,
        eager_limit=16384,
        rendezvous_overhead=1.3e-6,
        copy_bandwidth=2.5e10,
        copy_latency=2.0e-7,
        cross_numa_bandwidth=3.5e10,
    )


def _testing_params() -> MachineParameters:
    """Fast, well-separated parameters for unit tests (not calibrated)."""
    levels = {
        LocalityLevel.SELF: LevelCosts(latency=1.0e-8, bandwidth=1.0e11),
        LocalityLevel.NUMA: LevelCosts(latency=1.0e-7, bandwidth=2.0e10),
        LocalityLevel.SOCKET: LevelCosts(latency=2.0e-7, bandwidth=1.0e10),
        LocalityLevel.NODE: LevelCosts(latency=4.0e-7, bandwidth=5.0e9),
        LocalityLevel.NETWORK: LevelCosts(latency=2.0e-6, bandwidth=1.0e10),
    }
    return MachineParameters(
        levels=levels,
        injection_bandwidth=1.0e10,
        nic_message_overhead=2.0e-7,
        send_overhead=1.0e-7,
        recv_overhead=1.0e-7,
        match_overhead_per_entry=2.0e-8,
        eager_limit=4096,
        rendezvous_overhead=2.0e-6,
        copy_bandwidth=1.0e10,
        copy_latency=1.0e-7,
        cross_numa_bandwidth=2.0e10,
    )


# ---------------------------------------------------------------------------
# System presets (Table 1)
# ---------------------------------------------------------------------------

def dane(num_nodes: int = 32, *, fabric: FabricSpec | None = None) -> Cluster:
    """LLNL Dane: Sapphire Rapids + Omni-Path + Open MPI 4.1.2 / libfabric 2.2.0."""
    return Cluster(
        name="dane",
        node=sapphire_rapids_node(),
        num_nodes=num_nodes,
        params=_omnipath_params(latency_scale=1.0),
        network_name="Cornelis Networks Omni-Path",
        system_mpi_name="OpenMPI 4.1.2 (libfabric 2.2.0)",
        fabric=fabric if fabric is not None else FullBisectionFabric(),
    )


def amber(num_nodes: int = 32, *, fabric: FabricSpec | None = None) -> Cluster:
    """SNL Amber: Sapphire Rapids + Omni-Path + Open MPI 4.1.6 / libfabric 2.1.0.

    Amber is architecturally identical to Dane; the older libfabric shows up
    as slightly higher small-message latencies in the paper's plots, which
    the preset models with a 15% latency scale.
    """
    return Cluster(
        name="amber",
        node=sapphire_rapids_node(),
        num_nodes=num_nodes,
        params=_omnipath_params(latency_scale=1.15),
        network_name="Cornelis Networks Omni-Path",
        system_mpi_name="OpenMPI 4.1.6 (libfabric 2.1.0)",
        fabric=fabric if fabric is not None else FullBisectionFabric(),
    )


def tuolomne(num_nodes: int = 32, *, fabric: FabricSpec | None = None) -> Cluster:
    """LLNL Tuolomne: MI300A + Slingshot-11 + Cray MPICH 8.1.32."""
    return Cluster(
        name="tuolomne",
        node=mi300a_node(),
        num_nodes=num_nodes,
        params=_slingshot_params(),
        network_name="HPE Slingshot-11",
        system_mpi_name="Cray MPICH 8.1.32 (libfabric 2.1)",
        fabric=fabric if fabric is not None else FullBisectionFabric(),
    )


def tiny_cluster(num_nodes: int = 4, *, sockets: int = 2, numa_per_socket: int = 2,
                 cores_per_numa: int = 2, fabric: FabricSpec | None = None) -> Cluster:
    """A small cluster for unit tests and examples (default 4 nodes x 8 cores)."""
    node = NodeArchitecture(
        name="tiny",
        sockets=sockets,
        numa_per_socket=numa_per_socket,
        cores_per_numa=cores_per_numa,
    )
    return Cluster(
        name="tiny",
        node=node,
        num_nodes=num_nodes,
        params=_testing_params(),
        network_name="simulated test fabric",
        system_mpi_name="reference MPI",
        fabric=fabric if fabric is not None else FullBisectionFabric(),
    )


#: Real deployment size of each Table-1 machine (nodes).  Dane and Amber run
#: 1536 Sapphire Rapids nodes (172,032 ranks at full 112 ppn); Tuolomne runs
#: 1152 MI300A nodes (110,592 ranks at 96 ppn).  Full-width simulation at
#: these scales is out of reach; symmetry folding
#: (:mod:`repro.machine.folding`) simulates them with one node's ranks.
TABLE1_NODE_COUNTS: dict[str, int] = {
    "dane": 1536,
    "amber": 1536,
    "tuolomne": 1152,
}


def paper_scale(name: str, *, fabric: FabricSpec | None = None) -> Cluster:
    """A Table-1 preset at its real deployment node count.

    Only the three paper machines have a recorded deployment size; asking
    for ``tiny`` (or an unknown name) raises
    :class:`~repro.errors.ConfigurationError`.
    """
    key = name.lower()
    if key not in TABLE1_NODE_COUNTS:
        raise ConfigurationError(
            f"no paper-scale node count for {name!r}; Table-1 machines: "
            f"{', '.join(sorted(TABLE1_NODE_COUNTS))}"
        )
    return get_system(key, TABLE1_NODE_COUNTS[key], fabric=fabric)


#: Factory registry keyed by lower-case system name.
SYSTEM_PRESETS: dict[str, Callable[..., Cluster]] = {
    "dane": dane,
    "amber": amber,
    "tuolomne": tuolomne,
    "tiny": tiny_cluster,
}


def list_systems() -> list[str]:
    """Names of the available system presets."""
    return sorted(SYSTEM_PRESETS)


def get_system(name: str, num_nodes: int | None = None,
               fabric: FabricSpec | None = None) -> Cluster:
    """Instantiate a system preset by name (case-insensitive).

    ``fabric`` overrides the preset's inter-node fabric (all presets default
    to contention-free full bisection); pass a spec built directly or via
    :func:`repro.netsim.fabric.parse_fabric`.
    """
    key = name.lower()
    if key not in SYSTEM_PRESETS:
        raise ConfigurationError(
            f"unknown system {name!r}; available systems: {', '.join(list_systems())}"
        )
    factory = SYSTEM_PRESETS[key]
    cluster = factory() if num_nodes is None else factory(num_nodes)
    if fabric is not None:
        cluster = cluster.with_fabric(fabric)
    return cluster
