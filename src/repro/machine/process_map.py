"""Mapping of MPI-style ranks onto the cores of a cluster.

The paper places ranks sequentially: rank ``r`` runs on node ``r // ppn``
and occupies local core ``r % ppn``, with cores themselves numbered
contiguously through NUMA domains and sockets.  :class:`ProcessMap` encodes
that placement and answers the locality queries every other subsystem needs:
which node a rank lives on, the locality level between two ranks, and the
rank groupings (per node, per NUMA, per leader group) that the hierarchical
algorithms split communicators along.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import TopologyError
from repro.machine.cluster import Cluster
from repro.machine.hierarchy import LocalityLevel
from repro.utils.partition import contiguous_partition, validate_group_size

__all__ = ["ProcessMap"]


@dataclass(frozen=True)
class ProcessMap:
    """Block mapping of ``nprocs`` ranks onto ``cluster``.

    Parameters
    ----------
    cluster:
        The machine the job runs on.
    ppn:
        Processes per node.  Must not exceed the cores per node; the paper
        always uses all cores (ppn == cores per node) but tests and reduced
        scale simulations use fewer.
    num_nodes:
        Number of nodes actually used by the job (defaults to the whole
        cluster).  Must not exceed ``cluster.num_nodes``.
    """

    cluster: Cluster
    ppn: int
    num_nodes: int | None = None

    #: Whether the engine should schedule only representative ranks.  The
    #: base map simulates every rank; :class:`repro.machine.folding.
    #: FoldedProcessMap` overrides this (plain class attribute, not a field,
    #: so equality and cache keys of unfolded maps are untouched).
    is_folded = False

    def __post_init__(self) -> None:
        nodes = self.cluster.num_nodes if self.num_nodes is None else self.num_nodes
        if nodes <= 0 or nodes > self.cluster.num_nodes:
            raise TopologyError(
                f"job uses {nodes} nodes but the cluster has {self.cluster.num_nodes}"
            )
        if self.ppn <= 0:
            raise TopologyError(f"ppn must be positive, got {self.ppn}")
        if self.ppn > self.cluster.cores_per_node:
            raise TopologyError(
                f"ppn={self.ppn} exceeds the {self.cluster.cores_per_node} cores per node"
            )
        object.__setattr__(self, "num_nodes", nodes)

    # -- sizes -----------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Total number of ranks in the job."""
        return self.num_nodes * self.ppn

    @property
    def sim_nodes(self) -> int:
        """Nodes the engine actually schedules (all of them when unfolded)."""
        return self.num_nodes

    @property
    def sim_nprocs(self) -> int:
        """Ranks the engine actually schedules (all of them when unfolded)."""
        return self.nprocs

    @property
    def multiplicity(self) -> int:
        """Logical ranks per simulated rank (1 when unfolded)."""
        return 1

    def folded(self, certificate=None):
        """Symmetry-folded view of this map (see :mod:`repro.machine.folding`)."""
        from repro.machine.folding import fold_process_map

        return fold_process_map(self, certificate)

    @property
    def node_arch(self):
        return self.cluster.node

    @property
    def params(self):
        return self.cluster.params

    # -- placement queries ------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise TopologyError(f"rank {rank} out of range for job with {self.nprocs} ranks")

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.ppn

    def local_rank(self, rank: int) -> int:
        """Rank within its node (also the core index it is pinned to)."""
        self._check_rank(rank)
        return rank % self.ppn

    def core_of(self, rank: int) -> int:
        """Core index (within the node) that ``rank`` is pinned to."""
        return self.local_rank(rank)

    def numa_of(self, rank: int) -> int:
        """Node-wide NUMA domain index of ``rank``."""
        return self.node_arch.numa_of_core(self.core_of(rank))

    def socket_of(self, rank: int) -> int:
        """Socket index of ``rank`` within its node."""
        return self.node_arch.socket_of_core(self.core_of(rank))

    @cached_property
    def _pair_locality(self) -> dict[tuple[int, int], LocalityLevel]:
        """Memo table behind :meth:`locality` (one entry per queried pair).

        The simulator resolves the locality of every simulated message; the
        level of a pair is a pure function of the (frozen) placement, so the
        at-most-``nprocs^2`` results are cached instead of re-deriving node
        and core indices per message.
        """
        return {}

    def locality(self, rank_a: int, rank_b: int) -> LocalityLevel:
        """Locality level between two ranks."""
        key = (rank_a, rank_b)
        level = self._pair_locality.get(key)
        if level is None:
            ppn = self.ppn
            if not (0 <= rank_a < self.nprocs and 0 <= rank_b < self.nprocs):
                self._check_rank(rank_a)
                self._check_rank(rank_b)
            if rank_a == rank_b:
                level = LocalityLevel.SELF
            elif rank_a // ppn != rank_b // ppn:
                level = LocalityLevel.NETWORK
            else:
                level = self.node_arch.core_locality(rank_a % ppn, rank_b % ppn)
            self._pair_locality[key] = level
        return level

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    # -- groupings used by the algorithms ---------------------------------
    def ranks_on_node(self, node: int) -> list[int]:
        """All ranks placed on ``node``, in local-rank order."""
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range for job using {self.num_nodes} nodes")
        start = node * self.ppn
        return list(range(start, start + self.ppn))

    def ranks_with_local_rank(self, local_rank: int) -> list[int]:
        """One rank per node: all ranks whose local rank equals ``local_rank``."""
        if not 0 <= local_rank < self.ppn:
            raise TopologyError(f"local rank {local_rank} out of range for ppn={self.ppn}")
        return [node * self.ppn + local_rank for node in range(self.num_nodes)]

    def ranks_in_numa(self, node: int, numa: int) -> list[int]:
        """Ranks of ``node`` pinned to NUMA domain ``numa`` (may be empty for small ppn)."""
        cores = self.node_arch.cores_in_numa(numa)
        return [node * self.ppn + c for c in cores if c < self.ppn]

    def leader_groups(self, node: int, procs_per_group: int) -> list[list[int]]:
        """Contiguous groups of ``procs_per_group`` ranks within ``node``.

        This is the grouping used by the multi-leader and locality-aware
        algorithms: the paper does not map groups to NUMA domains explicitly,
        it simply takes consecutive local ranks (which, with sequential core
        numbering, often do fall inside a NUMA domain).
        """
        validate_group_size(self.ppn, procs_per_group)
        return contiguous_partition(self.ranks_on_node(node), procs_per_group)

    def group_of(self, rank: int, procs_per_group: int) -> int:
        """Index (within the node) of the leader group containing ``rank``."""
        validate_group_size(self.ppn, procs_per_group)
        return self.local_rank(rank) // procs_per_group

    @cached_property
    def node_assignment(self) -> list[int]:
        """Node index of every rank (length ``nprocs``)."""
        return [r // self.ppn for r in range(self.nprocs)]

    @cached_property
    def model_fabric_state(self):
        """Inter-node fabric state for the analytic model's link bounds.

        ``None`` for the contention-free full-bisection default.  The
        simulator builds its own per-job state (link clocks are mutable);
        this shared instance is only ever used for its static routes and
        link bandwidths by :func:`repro.model.loggp.link_phase_bound`.
        """
        return self.cluster.fabric.build(self.num_nodes, self.params)

    def describe(self) -> str:
        return (
            f"{self.nprocs} ranks = {self.num_nodes} nodes x {self.ppn} ppn "
            f"on {self.cluster.name}"
        )
