"""Cluster model: many identical nodes connected by an interconnect.

Downstream consumers: :class:`repro.machine.ProcessMap` places ranks on a
cluster, :mod:`repro.simmpi` simulates on it and :mod:`repro.model`
predicts over it.  The inter-node fabric topology is part of the cluster
(:attr:`Cluster.fabric`), so simulated and modelled timings agree on which
links messages share.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TopologyError
from repro.machine.params import MachineParameters
from repro.machine.topology import NodeArchitecture
from repro.netsim.fabric import FabricSpec, FullBisectionFabric

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """A homogeneous cluster of :class:`NodeArchitecture` nodes.

    The cluster is the unit every experiment is configured against: it fixes
    the node architecture, the number of nodes, the communication cost
    parameters and the inter-node fabric topology.  A cluster does not know
    how many MPI ranks run on it — that mapping is handled by
    :class:`repro.machine.ProcessMap`, so that the same cluster can be
    reused for different processes-per-node settings.
    """

    name: str
    node: NodeArchitecture
    num_nodes: int
    params: MachineParameters = field(default_factory=MachineParameters)
    #: Free-form description of the interconnect (reported in Table 1).
    network_name: str = "generic fat-tree"
    #: Free-form description of the system MPI this cluster emulates.
    system_mpi_name: str = "reference MPI"
    #: Inter-node fabric topology; the contention-free full-bisection
    #: default reproduces the pre-fabric simulated timings bit-identically.
    fabric: FabricSpec = field(default_factory=FullBisectionFabric)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise TopologyError(f"num_nodes must be positive, got {self.num_nodes}")

    @property
    def cores_per_node(self) -> int:
        return self.node.cores_per_node

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores_per_node

    def with_nodes(self, num_nodes: int) -> "Cluster":
        """Return a copy of the cluster with a different node count.

        Used by the node-scaling experiments (Figures 11, 12 and 15), which
        sweep 2 to 32 nodes of an otherwise identical machine.
        """
        return replace(self, num_nodes=num_nodes)

    def with_params(self, params: MachineParameters) -> "Cluster":
        """Return a copy with different cost parameters (ablation studies)."""
        return replace(self, params=params)

    def with_fabric(self, fabric: FabricSpec) -> "Cluster":
        """Return a copy with a different inter-node fabric topology."""
        return replace(self, fabric=fabric)

    def describe(self) -> str:
        """Table 1 style one-line description."""
        return (
            f"{self.name}: {self.num_nodes} nodes x {self.node.describe()} | "
            f"network={self.network_name} | fabric={self.fabric.describe()} | "
            f"system MPI={self.system_mpi_name}"
        )
