"""Intra-node topology: cores grouped into NUMA domains and sockets.

A :class:`NodeArchitecture` captures the only facts about a node that the
algorithms and the cost model need: how many cores it has and how those
cores are grouped, so that the locality level between any two cores can be
derived.  Cores are numbered ``0 .. cores_per_node-1`` contiguously by NUMA
domain, then by socket, which mirrors the sequential (``--map-by core``)
rank placement the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.machine.hierarchy import LocalityLevel

__all__ = ["NodeArchitecture"]


@dataclass(frozen=True)
class NodeArchitecture:
    """Shape of a single compute node.

    Parameters
    ----------
    name:
        Short identifier used in reports (e.g. ``"sapphire-rapids"``).
    sockets:
        Number of CPU sockets in the node.
    numa_per_socket:
        Number of NUMA domains within each socket.
    cores_per_numa:
        Number of cores within each NUMA domain.
    """

    name: str
    sockets: int
    numa_per_socket: int
    cores_per_numa: int

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise TopologyError(f"sockets must be positive, got {self.sockets}")
        if self.numa_per_socket <= 0:
            raise TopologyError(f"numa_per_socket must be positive, got {self.numa_per_socket}")
        if self.cores_per_numa <= 0:
            raise TopologyError(f"cores_per_numa must be positive, got {self.cores_per_numa}")

    # -- derived sizes -------------------------------------------------
    @property
    def numa_domains(self) -> int:
        """Total NUMA domains in the node."""
        return self.sockets * self.numa_per_socket

    @property
    def cores_per_socket(self) -> int:
        return self.numa_per_socket * self.cores_per_numa

    @property
    def cores_per_node(self) -> int:
        return self.sockets * self.cores_per_socket

    # -- core placement -------------------------------------------------
    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.cores_per_node:
            raise TopologyError(
                f"core {core} out of range for node with {self.cores_per_node} cores"
            )

    def socket_of_core(self, core: int) -> int:
        """Socket index (0-based) hosting ``core``."""
        self._check_core(core)
        return core // self.cores_per_socket

    def numa_of_core(self, core: int) -> int:
        """Node-wide NUMA domain index (0-based) hosting ``core``."""
        self._check_core(core)
        return core // self.cores_per_numa

    def core_locality(self, core_a: int, core_b: int) -> LocalityLevel:
        """Locality level between two cores of the same node."""
        self._check_core(core_a)
        self._check_core(core_b)
        if core_a == core_b:
            return LocalityLevel.SELF
        if self.numa_of_core(core_a) == self.numa_of_core(core_b):
            return LocalityLevel.NUMA
        if self.socket_of_core(core_a) == self.socket_of_core(core_b):
            return LocalityLevel.SOCKET
        return LocalityLevel.NODE

    def cores_in_numa(self, numa: int) -> range:
        """Range of core indices belonging to node-wide NUMA domain ``numa``."""
        if not 0 <= numa < self.numa_domains:
            raise TopologyError(f"NUMA domain {numa} out of range (node has {self.numa_domains})")
        start = numa * self.cores_per_numa
        return range(start, start + self.cores_per_numa)

    def cores_in_socket(self, socket: int) -> range:
        """Range of core indices belonging to ``socket``."""
        if not 0 <= socket < self.sockets:
            raise TopologyError(f"socket {socket} out of range (node has {self.sockets})")
        start = socket * self.cores_per_socket
        return range(start, start + self.cores_per_socket)

    def describe(self) -> str:
        """One-line human readable summary (used for Table 1 reporting)."""
        return (
            f"{self.name}: {self.cores_per_node} cores/node = "
            f"{self.sockets} sockets x {self.numa_per_socket} NUMA x {self.cores_per_numa} cores"
        )
