"""Symmetry-folded process maps: simulate one node, stand in for all.

The paper's Table-1 machines run at >100k ranks; a direct simulation of a
uniform all-to-all at that scale needs O(ranks^2) messages and is far out of
reach.  Under node-rotation symmetry — the traffic matrix is invariant under
rotating every rank by one node (``ppn`` positions) and the machine itself
is node-transitive — every rank is role-equivalent to the rank with the same
*local* index on node 0.  A :class:`FoldedProcessMap` exposes the full
logical geometry (``nprocs`` ranks on ``num_nodes`` nodes, so algorithms are
byte-for-byte unchanged) while telling the engine to schedule only the
``ppn`` *representative* ranks of node 0, each standing in for its
equivalence class of ``num_nodes`` ranks.

Mirrors
-------
The folded timeline is closed under one substitution.  When a representative
sends to a *phantom* destination (a rank outside node 0), the message that
would have arrived at node 0 in the full run is the send's **mirror**: the
rotation of the (src, dst) pair that places the destination back on node 0.
For ``mirror = rotate by (num_nodes - node(dst))`` the mirror source is the
phantom rank whose role the representative plays, and the mirror destination
is a representative.  Delivering the mirror of every outbound representative
send reconstructs node 0's inbound message stream exactly — same shapes,
same posting times, same matching order — which is what makes the folded
timings bit-identical to the full run on node-transitive machines (see
``docs/ARCHITECTURE.md``, *Symmetry folding*).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.machine.process_map import ProcessMap

__all__ = ["FoldCertificate", "FoldedProcessMap", "fold_process_map", "uniform_certificate"]


@dataclass(frozen=True)
class FoldCertificate:
    """Compact record of *why* the ranks of a job are interchangeable.

    Produced either by the symmetry analyzer
    (:func:`repro.workloads.symmetry.analyze_symmetry`) for explicit traffic
    matrices, or synthesised directly for the uniform exchange whose
    invariance holds by construction.  Stored on the folded process map and
    surfaced through :attr:`repro.simmpi.engine.JobResult.fold` so results
    always say what symmetry they assumed.
    """

    #: Traffic-pattern family: ``uniform``, ``block-diagonal``,
    #: ``neighbor-shift``, ``per-node-leader`` or ``node-cyclic``.
    kind: str
    #: Human-readable proof sketch of the invariance.
    detail: str

    def describe(self) -> str:
        return f"{self.kind}: {self.detail}"


def uniform_certificate(nprocs: int, ppn: int) -> FoldCertificate:
    """Certificate for the uniform exchange (invariant under any rotation)."""
    return FoldCertificate(
        kind="uniform",
        detail=(
            f"uniform all-to-all: every one of the {nprocs} ranks sends the same "
            f"bytes to every peer, so the traffic matrix is invariant under the "
            f"rank rotation by ppn={ppn} and ranks sharing a local index are "
            f"role-equivalent"
        ),
    )


@dataclass(frozen=True)
class FoldedProcessMap(ProcessMap):
    """A :class:`ProcessMap` whose engine-side timeline is node-folded.

    Logically identical to the unfolded map — ``nprocs``, locality queries
    and rank groupings all describe the full machine, so algorithm code
    cannot tell the difference.  The engine consults :attr:`is_folded` /
    :attr:`sim_nprocs` to schedule only the representatives (node 0's
    ranks) and uses :meth:`mirror_inbound` / :meth:`mirror_outbound` to
    substitute phantom traffic by its node-0 mirror.
    """

    #: Why folding is sound for the traffic this map will carry.
    certificate: FoldCertificate | None = None

    is_folded = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_nodes < 1:
            raise TopologyError("folding requires at least one node")

    # -- folded geometry --------------------------------------------------
    @property
    def sim_nodes(self) -> int:
        """Number of nodes the engine actually schedules (node 0 only)."""
        return 1

    @property
    def sim_nprocs(self) -> int:
        """Number of ranks the engine actually schedules (the representatives)."""
        return self.ppn

    @property
    def multiplicity(self) -> int:
        """Class size: how many logical ranks each representative stands for."""
        return self.num_nodes

    @property
    def representatives(self) -> tuple[int, ...]:
        """The simulated ranks — node 0's ranks, one per equivalence class."""
        return tuple(range(self.ppn))

    # -- mirror maps -------------------------------------------------------
    def mirror_inbound(self, src: int, dst: int) -> tuple[int, int]:
        """Mirror of a representative send ``src -> dst`` (``dst`` off-node).

        Returns ``(mirror_src, mirror_dst)``: the unique rotation of the
        pair that lands the destination on node 0.  ``mirror_dst`` is a
        representative; ``mirror_src`` is the phantom peer whose send the
        representative's payload stands in for.
        """
        ppn = self.ppn
        shift = (self.num_nodes - dst // ppn) * ppn
        return src + shift, dst % ppn

    def mirror_outbound(self, mirror_src: int, mirror_dst: int) -> tuple[int, int]:
        """Inverse of :meth:`mirror_inbound`.

        Recovers the original representative pair from a mirrored inbound
        message — used by the rendezvous path to price the data transfer on
        node 0's NIC, which carries exactly the reservations of the full
        run.
        """
        ppn = self.ppn
        shift = (self.num_nodes - mirror_src // ppn) * ppn
        return mirror_src % ppn, mirror_dst + shift

    def unfolded(self) -> ProcessMap:
        """The equivalent full (unfolded) process map."""
        return ProcessMap(self.cluster, ppn=self.ppn, num_nodes=self.num_nodes)

    def describe(self) -> str:
        return (
            f"{super().describe()} [folded: {self.sim_nprocs} representative ranks "
            f"x multiplicity {self.multiplicity}]"
        )


def fold_process_map(pmap: ProcessMap, certificate: FoldCertificate | None = None) -> FoldedProcessMap:
    """Folded view of ``pmap`` (idempotent for already-folded maps)."""
    if pmap.is_folded:
        return pmap  # type: ignore[return-value]
    return FoldedProcessMap(
        cluster=pmap.cluster,
        ppn=pmap.ppn,
        num_nodes=pmap.num_nodes,
        certificate=certificate,
    )
