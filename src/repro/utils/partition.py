"""Partitioning helpers for leader/group assignment.

The hierarchical, multi-leader and locality-aware algorithms all divide the
processes of a node into groups (each with a designated leader).  The paper
evaluates group sizes of 4, 8 and 16 processes per leader; these helpers
implement the contiguous partitioning used there as well as a round-robin
variant used in ablation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "chunk_evenly",
    "contiguous_partition",
    "round_robin_partition",
    "divisors",
    "validate_group_size",
]


def chunk_evenly(n: int, nchunks: int) -> list[int]:
    """Return the sizes of ``nchunks`` chunks covering ``n`` items as evenly as possible.

    The first ``n % nchunks`` chunks receive one extra item, matching the
    block distribution conventionally used by MPI implementations.
    """
    if nchunks <= 0:
        raise ConfigurationError(f"number of chunks must be positive, got {nchunks}")
    if n < 0:
        raise ConfigurationError(f"number of items must be non-negative, got {n}")
    base, extra = divmod(n, nchunks)
    return [base + (1 if i < extra else 0) for i in range(nchunks)]


def contiguous_partition(items: Sequence[int], group_size: int) -> list[list[int]]:
    """Partition ``items`` into consecutive groups of ``group_size`` elements.

    ``len(items)`` must be divisible by ``group_size``; this mirrors the
    paper's requirement that the number of processes per node be a multiple
    of the processes-per-leader parameter.
    """
    validate_group_size(len(items), group_size)
    return [list(items[i : i + group_size]) for i in range(0, len(items), group_size)]


def round_robin_partition(items: Sequence[int], ngroups: int) -> list[list[int]]:
    """Deal ``items`` into ``ngroups`` groups round-robin (group ``i`` gets items ``i, i+ngroups, ...``)."""
    if ngroups <= 0:
        raise ConfigurationError(f"number of groups must be positive, got {ngroups}")
    if len(items) % ngroups != 0:
        raise ConfigurationError(
            f"{len(items)} items cannot be dealt evenly into {ngroups} round-robin groups"
        )
    return [list(items[g::ngroups]) for g in range(ngroups)]


def divisors(n: int) -> list[int]:
    """Return the sorted positive divisors of ``n`` (used for group-size sweeps)."""
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def validate_group_size(nitems: int, group_size: int) -> int:
    """Validate that ``group_size`` evenly divides ``nitems``; return the number of groups."""
    if group_size <= 0:
        raise ConfigurationError(f"group size must be positive, got {group_size}")
    if nitems <= 0:
        raise ConfigurationError(f"number of items must be positive, got {nitems}")
    if nitems % group_size != 0:
        raise ConfigurationError(
            f"group size {group_size} does not evenly divide {nitems} items; "
            f"valid sizes are {divisors(nitems)}"
        )
    return nitems // group_size
