"""Timing statistics helpers used by the benchmark harness.

The paper reports the minimum of three runs for every data point; the
helpers here implement that policy together with the summary statistics the
reporting layer prints (and a Welford running-statistics accumulator used
when many repetitions are requested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "min_of_runs",
    "speedup",
    "geometric_mean",
    "summarize",
    "RunningStatistics",
]


def min_of_runs(samples: Sequence[float]) -> float:
    """Return the minimum of a sequence of timing samples (the paper's policy)."""
    if len(samples) == 0:
        raise ValueError("min_of_runs requires at least one sample")
    return float(min(samples))


def speedup(baseline: float, candidate: float) -> float:
    """Return ``baseline / candidate`` (how many times faster the candidate is)."""
    if candidate <= 0.0:
        raise ValueError(f"candidate time must be positive, got {candidate}")
    if baseline < 0.0:
        raise ValueError(f"baseline time must be non-negative, got {baseline}")
    return baseline / candidate


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for cross-size speedup summaries)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric_mean requires at least one value")
    if any(v <= 0.0 for v in vals):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def summarize(samples: Sequence[float]) -> dict[str, float]:
    """Return min/max/mean/median/std of a sample set as a plain dict.

    ``std`` is the sample standard deviation (n-1 denominator), matching
    :class:`RunningStatistics` so both reporting paths agree on the same
    samples; a single sample has ``std = 0``.
    """
    if len(samples) == 0:
        raise ValueError("summarize requires at least one sample")
    vals = sorted(float(v) for v in samples)
    n = len(vals)
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / (n - 1) if n > 1 else 0.0
    mid = n // 2
    median = vals[mid] if n % 2 else 0.5 * (vals[mid - 1] + vals[mid])
    return {
        "n": float(n),
        "min": vals[0],
        "max": vals[-1],
        "mean": mean,
        "median": median,
        "std": math.sqrt(var),
    }


@dataclass
class RunningStatistics:
    """Welford-style online accumulator for timing samples.

    Keeps O(1) state regardless of how many samples are added, which lets
    long parameter sweeps track per-configuration statistics without storing
    every sample.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = field(default=math.inf)
    maximum: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def update(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def as_dict(self) -> dict[str, float]:
        if self.count == 0:
            raise ValueError("no samples accumulated")
        return {
            "n": float(self.count),
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "std": self.std,
        }
