"""Buffer helpers used by the all-to-all algorithms.

All collective algorithms in this package operate on flat, C-contiguous
NumPy arrays divided into equally sized *blocks*, one block per peer
process, mirroring the layout of ``MPI_Alltoall`` send/receive buffers.
These helpers centralise the block arithmetic so the algorithm modules can
stay close to the paper's pseudocode.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import BufferSizeError

__all__ = [
    "check_buffer",
    "block_slice",
    "as_block_view",
    "split_blocks",
    "concat_blocks",
    "make_alltoall_sendbuf",
    "displacements_from_counts",
    "check_v_counts",
    "check_counts_matrix",
]


def check_buffer(buf: np.ndarray, nblocks: int, block_items: int, *, name: str = "buffer") -> np.ndarray:
    """Validate that ``buf`` is a flat contiguous array of ``nblocks * block_items`` items.

    Returns the validated buffer (possibly the same object) so the call can
    be used inline.  Raises :class:`BufferSizeError` when the shape does not
    match and ``TypeError`` when the argument is not a NumPy array.
    """
    if not isinstance(buf, np.ndarray):
        raise TypeError(f"{name} must be a numpy.ndarray, got {type(buf).__name__}")
    if buf.ndim != 1:
        raise BufferSizeError(f"{name} must be one-dimensional, got shape {buf.shape}")
    if not buf.flags["C_CONTIGUOUS"]:
        raise BufferSizeError(f"{name} must be C-contiguous")
    expected = nblocks * block_items
    if buf.size != expected:
        raise BufferSizeError(
            f"{name} has {buf.size} items but the collective requires "
            f"{nblocks} blocks x {block_items} items = {expected}"
        )
    return buf


def block_slice(block: int, block_items: int) -> slice:
    """Return the slice selecting block ``block`` of a block-partitioned buffer."""
    if block < 0:
        raise ValueError(f"block index must be non-negative, got {block}")
    if block_items < 0:
        raise ValueError(f"block_items must be non-negative, got {block_items}")
    start = block * block_items
    return slice(start, start + block_items)


def as_block_view(buf: np.ndarray, nblocks: int, block_items: int) -> np.ndarray:
    """Return a 2-D view of ``buf`` with one row per block (no copy)."""
    check_buffer(buf, nblocks, block_items)
    return buf.reshape(nblocks, block_items)


def split_blocks(buf: np.ndarray, nblocks: int) -> list[np.ndarray]:
    """Split ``buf`` into ``nblocks`` equally sized contiguous views."""
    if nblocks <= 0:
        raise ValueError(f"nblocks must be positive, got {nblocks}")
    if buf.size % nblocks != 0:
        raise BufferSizeError(f"buffer of {buf.size} items cannot be split into {nblocks} equal blocks")
    block_items = buf.size // nblocks
    return [buf[block_slice(i, block_items)] for i in range(nblocks)]


def concat_blocks(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate blocks into a single contiguous buffer (copies)."""
    if len(blocks) == 0:
        raise ValueError("cannot concatenate an empty sequence of blocks")
    return np.concatenate([np.asarray(b).ravel() for b in blocks])


def displacements_from_counts(counts: Sequence[int] | np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of ``counts`` — the packed-layout displacements of ``MPI_Alltoallv``.

    ``displacements_from_counts([3, 0, 2])`` is ``[0, 3, 3]``: block ``i``
    occupies ``[displs[i], displs[i] + counts[i])`` of the flat buffer.
    """
    arr = np.asarray(counts, dtype=np.int64)
    displs = np.zeros(arr.size, dtype=np.int64)
    if arr.size > 1:
        np.cumsum(arr[:-1], out=displs[1:])
    return displs


def check_v_counts(counts: Sequence[int] | np.ndarray, nblocks: int, *, name: str = "counts") -> np.ndarray:
    """Validate a per-peer count vector for a v-style (variable-size) collective.

    Returns the counts as an ``int64`` array; raises
    :class:`BufferSizeError` when the length does not match the peer count or
    any entry is negative.
    """
    arr = np.asarray(counts, dtype=np.int64)
    if arr.ndim != 1 or arr.size != nblocks:
        raise BufferSizeError(
            f"{name} must be a flat vector of {nblocks} entries, got shape {arr.shape}"
        )
    if (arr < 0).any():
        raise BufferSizeError(f"{name} entries must be non-negative")
    return arr


def check_counts_matrix(counts, nprocs: int | None = None, *, name: str = "count") -> np.ndarray:
    """Validate a square per-pair count matrix and return it as ``int64``.

    The single checker behind every alltoallv-style consumer (v-algorithms,
    workload validation).  When ``nprocs`` is given the shape must be exactly
    ``(nprocs, nprocs)``; otherwise any square matrix is accepted.
    """
    arr = np.asarray(counts, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise BufferSizeError(f"the {name} matrix must be square, got shape {arr.shape}")
    if nprocs is not None and arr.shape[0] != nprocs:
        raise BufferSizeError(
            f"the {name} matrix must have shape ({nprocs}, {nprocs}), got {arr.shape}"
        )
    if (arr < 0).any():
        raise BufferSizeError(f"{name} matrix entries must be non-negative")
    return arr


def make_alltoall_sendbuf(rank: int, nprocs: int, block_items: int, dtype=np.int64) -> np.ndarray:
    """Build a deterministic all-to-all send buffer for testing and examples.

    Block ``d`` (destined for rank ``d``) of rank ``rank`` is filled with the
    values ``rank * nprocs + d`` followed by an arithmetic ramp, making every
    (source, destination, offset) triple uniquely identifiable.  The matching
    expected receive buffer can be produced with the same function by swapping
    the roles of source and destination (see
    :func:`repro.core.validation.expected_alltoall_result`).
    """
    if block_items < 0:
        raise ValueError("block_items must be non-negative")
    buf = np.empty(nprocs * block_items, dtype=dtype)
    if block_items:
        # Compute in int64 and wrap into the target dtype so small integer
        # dtypes (e.g. uint8 payload buffers) stay valid test patterns.  One
        # vectorised outer sum replaces the former per-destination loop (the
        # buffer build is part of every simulated job's setup cost).
        bases = (rank * nprocs + np.arange(nprocs, dtype=np.int64)) * 1000
        ramp = np.arange(block_items, dtype=np.int64)
        # One ufunc pass, casting each int64 sum into the target dtype on
        # store (same C cast as astype) without materialising the int64 grid.
        np.add(bases[:, None], ramp[None, :],
               out=buf.reshape(nprocs, block_items), casting="unsafe")
    return buf
