"""Logging configuration for the :mod:`repro` package.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace (standard library practice) and offers
:func:`enable_console_logging` as a convenience for the examples and the
benchmark harness.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_PACKAGE_LOGGER = "repro"

logging.getLogger(_PACKAGE_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("simmpi.engine")`` returns the ``repro.simmpi.engine``
    logger.  Passing ``None`` (or an already qualified ``repro.*`` name)
    returns the package logger itself / the name unchanged.
    """
    if name is None:
        return logging.getLogger(_PACKAGE_LOGGER)
    if name.startswith(_PACKAGE_LOGGER + ".") or name == _PACKAGE_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stream handler with a compact format to the package logger.

    Returns the handler so callers (tests in particular) can remove it again.
    """
    logger = logging.getLogger(_PACKAGE_LOGGER)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s"))
    handler.setLevel(level)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
