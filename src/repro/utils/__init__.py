"""Small supporting utilities shared across the :mod:`repro` subpackages."""

from repro.utils.buffers import (
    as_block_view,
    block_slice,
    check_buffer,
    concat_blocks,
    make_alltoall_sendbuf,
    split_blocks,
)
from repro.utils.partition import (
    chunk_evenly,
    contiguous_partition,
    divisors,
    round_robin_partition,
    validate_group_size,
)
from repro.utils.statistics import (
    RunningStatistics,
    geometric_mean,
    min_of_runs,
    speedup,
    summarize,
)

__all__ = [
    "as_block_view",
    "block_slice",
    "check_buffer",
    "concat_blocks",
    "make_alltoall_sendbuf",
    "split_blocks",
    "chunk_evenly",
    "contiguous_partition",
    "divisors",
    "round_robin_partition",
    "validate_group_size",
    "RunningStatistics",
    "geometric_mean",
    "min_of_runs",
    "speedup",
    "summarize",
]
