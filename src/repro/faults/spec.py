"""Fault-model dataclasses, the composed :class:`FaultSpec`, and its parser.

Every fault model is a frozen dataclass with a stable JSON ``payload()``,
so a :class:`FaultSpec` can participate in the runtime's cache identity
and round-trip through worker processes unchanged.

Parameter ranges are deliberately one-sided so that no fault can ever make
an operation *faster* than the healthy machine: degraded-link factors are
in ``(0, 1]`` (bandwidth only shrinks), straggler factors are ``>= 1``
(NIC occupancy only grows), OS noise is ``>= 0`` (operations are only
delayed) and flapping links only stall traffic.  That direction is what
keeps the parallel engine's conservative lookahead sound under faults —
``TimingModel.lookahead()`` floors (NIC message overhead, network latency,
route hop overheads) are never touched, see docs/FAULTS.md.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "DegradedLink",
    "FaultSpec",
    "FlappingLink",
    "OsNoise",
    "StragglerNode",
    "faults_from_payload",
    "noise_stream_seed",
    "parse_faults",
]


def _finite(name: str, value: float) -> float:
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return value


@dataclass(frozen=True)
class DegradedLink:
    """A fabric link running at a fraction of its nominal bandwidth.

    ``link`` is an exact link name (``df-g0-1``) or an ``fnmatch`` glob
    (``df-g*``); patterns that match no link of the built fabric are inert,
    so one spec can be swept across a fabric ladder.  ``factor`` is the
    surviving bandwidth fraction in ``(0, 1]`` — the link's per-byte time
    is divided by it, i.e. ``factor=0.25`` quarters the bandwidth.
    """

    link: str = "*"
    factor: float = 0.5

    kind = "degraded-link"

    def __post_init__(self) -> None:
        factor = _finite("degraded-link factor", self.factor)
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(
                f"degraded-link factor must be in (0, 1], got {factor} "
                "(a degraded link can only lose bandwidth)"
            )
        if not self.link:
            raise ConfigurationError("degraded-link needs a link name or glob pattern")
        object.__setattr__(self, "factor", factor)

    def payload(self) -> dict:
        return {"kind": self.kind, "link": self.link, "factor": self.factor}

    def describe(self) -> str:
        return f"link {self.link} at {self.factor:g}x bandwidth"


@dataclass(frozen=True)
class FlappingLink:
    """A fabric link that is only usable during periodic on-windows.

    The link is up during the first ``duty`` fraction of every ``period``
    seconds (offset by ``phase``); a message whose transmission would begin
    in an off-window is stalled to the start of the next on-window.  Only
    the *start* must fall in a window — occupancy need not fit inside it —
    so arbitrarily large messages still make progress.  ``duty=1`` is a
    healthy link (kept representable so sweeps can include the endpoint).
    """

    link: str = "*"
    period: float = 1e-3
    duty: float = 0.5
    phase: float = 0.0

    kind = "flapping-link"

    def __post_init__(self) -> None:
        period = _finite("flapping-link period", self.period)
        duty = _finite("flapping-link duty", self.duty)
        phase = _finite("flapping-link phase", self.phase)
        if period <= 0.0:
            raise ConfigurationError(f"flapping-link period must be > 0, got {period}")
        if not 0.0 < duty <= 1.0:
            raise ConfigurationError(f"flapping-link duty must be in (0, 1], got {duty}")
        if not self.link:
            raise ConfigurationError("flapping-link needs a link name or glob pattern")
        object.__setattr__(self, "period", period)
        object.__setattr__(self, "duty", duty)
        object.__setattr__(self, "phase", phase)

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "link": self.link,
            "period": self.period,
            "duty": self.duty,
            "phase": self.phase,
        }

    def describe(self) -> str:
        return (
            f"link {self.link} flapping (up {self.duty:g} of every "
            f"{self.period:g}s, phase {self.phase:g}s)"
        )


@dataclass(frozen=True)
class StragglerNode:
    """A node whose NIC serialises messages ``factor`` times slower.

    Scales the NIC occupancy (message overhead plus injection time) of
    every message *leaving* the node.  ``factor >= 1`` — a straggler can
    only be slower than the healthy machine.
    """

    node: int = 0
    factor: float = 2.0

    kind = "straggler"

    def __post_init__(self) -> None:
        if not isinstance(self.node, int) or isinstance(self.node, bool) or self.node < 0:
            raise ConfigurationError(f"straggler node must be a non-negative int, got {self.node!r}")
        factor = _finite("straggler factor", self.factor)
        if factor < 1.0:
            raise ConfigurationError(
                f"straggler factor must be >= 1, got {factor} "
                "(a straggler can only be slower)"
            )
        object.__setattr__(self, "factor", factor)

    def payload(self) -> dict:
        return {"kind": self.kind, "node": self.node, "factor": self.factor}

    def describe(self) -> str:
        return f"node {self.node} straggling at {self.factor:g}x NIC occupancy"


@dataclass(frozen=True)
class OsNoise:
    """Per-operation OS-noise jitter drawn from per-rank seeded streams.

    Every send/recv posting pays an extra uniform ``[0, amplitude)``
    seconds, drawn from a stream seeded by ``(FaultSpec.seed, rank)`` —
    a pure function of the spec and the rank's operation order, identical
    at any ``--jobs`` / ``--engine-jobs``.
    """

    amplitude: float = 1e-6

    kind = "os-noise"

    def __post_init__(self) -> None:
        amplitude = _finite("os-noise amplitude", self.amplitude)
        if amplitude < 0.0:
            raise ConfigurationError(f"os-noise amplitude must be >= 0, got {amplitude}")
        object.__setattr__(self, "amplitude", amplitude)

    def payload(self) -> dict:
        return {"kind": self.kind, "amplitude": self.amplitude}

    def describe(self) -> str:
        return f"OS noise up to {self.amplitude:g}s per operation"


_FAULT_TYPES = {
    DegradedLink.kind: DegradedLink,
    FlappingLink.kind: FlappingLink,
    StragglerNode.kind: StragglerNode,
    OsNoise.kind: OsNoise,
}

FaultModel = DegradedLink | FlappingLink | StragglerNode | OsNoise


@dataclass(frozen=True)
class FaultSpec:
    """An immutable composition of fault models plus the noise seed.

    Falsy when it contains no faults — every consumer treats an empty spec
    exactly like ``None`` (the bit-identical healthy machine), and the
    runtime's :meth:`repro.runtime.PointSpec.payload` omits it entirely so
    pre-existing cache keys keep hitting.
    """

    faults: tuple[FaultModel, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        for fault in faults:
            if not isinstance(fault, (DegradedLink, FlappingLink, StragglerNode, OsNoise)):
                raise ConfigurationError(f"unknown fault model: {fault!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(f"fault seed must be an int, got {self.seed!r}")
        object.__setattr__(self, "faults", faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- composition views ---------------------------------------------------
    def link_faults(self) -> tuple[FaultModel, ...]:
        return tuple(f for f in self.faults if isinstance(f, (DegradedLink, FlappingLink)))

    def stragglers(self) -> tuple[StragglerNode, ...]:
        return tuple(f for f in self.faults if isinstance(f, StragglerNode))

    def noise_amplitude(self) -> float:
        """Total per-operation jitter amplitude (OsNoise models compose additively)."""
        return sum(f.amplitude for f in self.faults if isinstance(f, OsNoise))

    # -- serialisation -------------------------------------------------------
    def payload(self) -> dict:
        return {"seed": self.seed, "faults": [f.payload() for f in self.faults]}

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return "; ".join(f.describe() for f in self.faults) + f" [seed {self.seed}]"


def faults_from_payload(payload: Mapping | None) -> FaultSpec | None:
    """Rebuild a :class:`FaultSpec` from its ``payload()`` dict (``None`` passes through)."""
    if payload is None:
        return None
    try:
        entries = payload["faults"]
        seed = int(payload.get("seed", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed fault payload: {payload!r}") from exc
    faults = []
    for entry in entries:
        kind = entry.get("kind") if isinstance(entry, Mapping) else None
        cls = _FAULT_TYPES.get(kind)
        if cls is None:
            raise ConfigurationError(f"unknown fault kind in payload: {kind!r}")
        fields = {k: v for k, v in entry.items() if k != "kind"}
        try:
            faults.append(cls(**fields))
        except TypeError as exc:
            raise ConfigurationError(f"malformed {kind} payload: {entry!r}") from exc
    return FaultSpec(faults=tuple(faults), seed=seed)


def noise_stream_seed(seed: int, rank: int) -> int:
    """Seed of rank ``rank``'s OS-noise stream — a pure function of (spec seed, rank)."""
    digest = hashlib.sha256(f"{seed}:os-noise:{rank}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


# -- the ``--faults`` grammar -------------------------------------------------
#
# Clauses separated by ';', each ``kind:option,option,...`` where options are
# ``name=value`` pairs or bare positional values, mirroring ``parse_fabric``:
#
#   degraded-link:df-g0-1,0.25;straggler:0,2;os-noise:1e-6;seed:42
#   flap:link=df-g*,period=1e-3,duty=0.5
#
_CLAUSE_ALIASES = {
    "degraded-link": "degraded-link",
    "degraded": "degraded-link",
    "degrade": "degraded-link",
    "flapping-link": "flapping-link",
    "flapping": "flapping-link",
    "flap": "flapping-link",
    "straggler": "straggler",
    "straggler-node": "straggler",
    "os-noise": "os-noise",
    "noise": "os-noise",
    "seed": "seed",
}

# field order for bare positional values, and the coercion per field
_POSITIONAL_FIELDS = {
    "degraded-link": ("link", "factor"),
    "flapping-link": ("link", "period", "duty", "phase"),
    "straggler": ("node", "factor"),
    "os-noise": ("amplitude",),
}

_FIELD_TYPES = {
    "degraded-link": {"link": str, "factor": float},
    "flapping-link": {"link": str, "period": float, "duty": float, "phase": float},
    "straggler": {"node": int, "factor": float},
    "os-noise": {"amplitude": float},
}


def _coerce(kind: str, name: str, raw: str):
    types = _FIELD_TYPES[kind]
    if name not in types:
        known = ", ".join(sorted(types))
        raise ConfigurationError(f"unknown {kind} option {name!r} (known: {known})")
    caster = types[name]
    if caster is str:
        return raw
    try:
        if caster is int:
            return int(raw, 0)
        return float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{kind} option {name!r} needs a number, got {raw!r}") from exc


def _parse_clause(clause: str):
    kind_text, _, option_text = clause.partition(":")
    kind_text = kind_text.strip().lower()
    kind = _CLAUSE_ALIASES.get(kind_text)
    if kind is None:
        known = ", ".join(sorted(set(_CLAUSE_ALIASES.values())))
        raise ConfigurationError(f"unknown fault kind {kind_text!r} (known: {known})")
    if kind == "seed":
        raw = option_text.strip() or kind_text.partition("=")[2]
        try:
            return "seed", int(raw, 0)
        except ValueError as exc:
            raise ConfigurationError(f"fault seed needs an integer, got {raw!r}") from exc
    options: dict[str, object] = {}
    positional = list(_POSITIONAL_FIELDS[kind])
    for chunk in option_text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" in chunk:
            name, _, raw = chunk.partition("=")
            name = name.strip().lower()
            options[name] = _coerce(kind, name, raw.strip())
            if name in positional:
                positional.remove(name)
        else:
            if not positional:
                raise ConfigurationError(f"too many positional values in {clause!r}")
            name = positional.pop(0)
            options[name] = _coerce(kind, name, chunk)
    try:
        return "fault", _FAULT_TYPES[kind](**options)
    except TypeError as exc:
        raise ConfigurationError(f"malformed fault clause {clause!r}: {exc}") from exc


def parse_faults(text: str) -> FaultSpec:
    """Parse a ``--faults`` specification string into a :class:`FaultSpec`.

    Grammar: ``;``-separated clauses, each ``kind:opt,opt,...`` with bare
    positional values or ``name=value`` pairs; a ``seed:N`` clause sets the
    noise seed.  An empty string is the empty (healthy) spec.
    """
    faults: list[FaultModel] = []
    seed = 0
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        tag, value = _parse_clause(clause)
        if tag == "seed":
            seed = value
        else:
            faults.append(value)
    return FaultSpec(faults=tuple(faults), seed=seed)
