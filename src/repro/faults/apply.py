"""Application of a :class:`~repro.faults.FaultSpec` to simulation state.

This module is the single place that knows how abstract fault models map
onto the concrete machinery: link faults mutate the built
:class:`~repro.netsim.fabric.FabricState` (scaled ``byte_time``, installed
flap windows), stragglers become a per-node NIC occupancy scale vector,
and OS noise becomes per-rank seeded :class:`random.Random` streams.

All of it runs once at job construction — the hot paths only ever see the
result (a mutated link, a ``list[float] | None``, a stream object), kept
behind single ``is not None`` tests so the healthy machine stays
bit-identical and pays one pointer test per site.
"""

from __future__ import annotations

import random
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING

from repro.faults.spec import (
    DegradedLink,
    FaultSpec,
    FlappingLink,
    noise_stream_seed,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.fabric import FabricState
    from repro.obs.sink import EventSink

__all__ = ["OsNoiseState", "announce_faults", "apply_link_faults", "nic_scale_vector"]


def apply_link_faults(state: "FabricState", spec: FaultSpec) -> int:
    """Mutate the built fabric's links per ``spec``; returns the match count.

    Degradation divides ``byte_time`` by the surviving-bandwidth factor
    (stacking multiplicatively if several clauses match one link); flapping
    installs a ``(period, on_window, phase)`` tuple on the link's ``flap``
    slot for :meth:`FabricState.traverse` to honour.  Patterns matching no
    link are inert by design — one spec can be swept across a fabric
    ladder (or a full-bisection machine with no fabric at all).
    """
    matched = 0
    for fault in spec.link_faults():
        for link in state.links:
            if not fnmatchcase(link.name, fault.link):
                continue
            matched += 1
            if isinstance(fault, DegradedLink):
                link.byte_time = link.byte_time / fault.factor
            elif isinstance(fault, FlappingLink) and fault.duty < 1.0:
                link.flap = (fault.period, fault.period * fault.duty, fault.phase)
    return matched


def nic_scale_vector(spec: FaultSpec, num_nodes: int) -> "list[float] | None":
    """Per-node NIC occupancy multipliers, or ``None`` when no straggler applies.

    Stragglers naming nodes outside the simulated machine are inert (the
    same spec can be swept across node counts); several stragglers on one
    node stack multiplicatively.
    """
    scale: list[float] | None = None
    for fault in spec.stragglers():
        if fault.node >= num_nodes:
            continue
        if scale is None:
            scale = [1.0] * num_nodes
        scale[fault.node] *= fault.factor
    return scale


class OsNoiseState:
    """Per-rank seeded jitter streams for the OS-noise fault model.

    ``draw(rank)`` returns the next uniform ``[0, amplitude)`` delay of
    that rank's stream.  Each stream is seeded by
    :func:`~repro.faults.spec.noise_stream_seed`, so the sequence is a
    pure function of ``(FaultSpec.seed, rank, draw index)`` — and because
    each rank's operations post in program order regardless of engine
    parallelism, the same faulted run is bit-identical at any ``--jobs``
    or ``--engine-jobs``.
    """

    __slots__ = ("amplitude", "seed", "_streams")

    def __init__(self, amplitude: float, seed: int) -> None:
        self.amplitude = amplitude
        self.seed = seed
        self._streams: dict[int, random.Random] = {}

    def draw(self, rank: int) -> float:
        stream = self._streams.get(rank)
        if stream is None:
            stream = self._streams[rank] = random.Random(noise_stream_seed(self.seed, rank))
        return stream.random() * self.amplitude


def announce_faults(sink: "EventSink", spec: FaultSpec) -> None:
    """Emit one ``fault`` event per active fault model at t=0.

    Gives traces (and the Chrome export's ``faults`` track) a manifest of
    the injected degradations next to the behaviour they cause.
    """
    for fault in spec.faults:
        target = getattr(fault, "link", None)
        if target is None:
            node = getattr(fault, "node", None)
            target = f"node{node}" if node is not None else "all-ranks"
        sink.fault(fault.kind, str(target), 0.0, 0.0, fault.describe())
