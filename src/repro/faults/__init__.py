"""Deterministic fault injection for the simulated machine.

The paper's algorithm-selection story assumes a healthy machine; real
Table-1 systems run degraded — dragonfly global links fail or flap, and
per-node noise and stragglers perturb the phase bounds the analytic model
inherits.  This package makes those degradations first-class, *seeded*
simulation inputs:

* :class:`FaultSpec` — an immutable, JSON-serialisable composition of
  fault models (:class:`DegradedLink`, :class:`FlappingLink`,
  :class:`StragglerNode`, :class:`OsNoise`) plus a seed for the noise
  streams.  It participates in :class:`repro.runtime.PointSpec` cache
  identity (omitted when empty, so existing cache keys survive).
* :func:`parse_faults` — the ``--faults`` CLI grammar.
* :mod:`repro.faults.apply` — applies a spec to the materialised
  simulation state (fabric links, NIC scaling, noise streams).

The determinism contract: every fault draw is a pure function of
``(FaultSpec, seed, rank/link)``, independent of ``--jobs`` and
``--engine-jobs``; an empty/absent spec is bit-identical to a build
without this package (see docs/FAULTS.md).
"""

from repro.faults.spec import (
    DegradedLink,
    FaultSpec,
    FlappingLink,
    OsNoise,
    StragglerNode,
    faults_from_payload,
    parse_faults,
)

__all__ = [
    "DegradedLink",
    "FaultSpec",
    "FlappingLink",
    "OsNoise",
    "StragglerNode",
    "faults_from_payload",
    "parse_faults",
]
