"""Parameter sweeps beyond the paper's figures (used by the ablation benchmarks).

These helpers vary one machine or algorithm parameter at a time and report
how the algorithm ranking responds — the sensitivity studies DESIGN.md
calls out (inner exchange kind, group size, NIC injection bandwidth,
matching cost).

Every sweep collects its full batch of :class:`PointSpec` objects first and
runs them through :func:`repro.runtime.execute`, so passing an ``executor``
parallelizes (and caches) the whole sweep, including the variants that
rebuild the cluster with overridden cost parameters.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.datasets import DataSeries, FigureResult
from repro.bench.harness import BenchmarkHarness
from repro.machine.cluster import Cluster
from repro.runtime import SweepExecutor, execute
from repro.utils.partition import divisors

__all__ = [
    "inner_exchange_sweep",
    "group_size_sweep",
    "injection_bandwidth_sweep",
    "matching_cost_sweep",
]


def inner_exchange_sweep(cluster: Cluster, ppn: int, *, algorithm: str = "node-aware",
                         msg_sizes: Sequence[int] = (4, 256, 4096), engine: str = "model",
                         inners: Sequence[str] = ("pairwise", "nonblocking", "bruck"),
                         executor: SweepExecutor | None = None, **options) -> FigureResult:
    """Compare the inner exchange kinds inside one hierarchical algorithm."""
    harness = BenchmarkHarness(cluster, ppn, engine=engine, executor=executor)
    fig = FigureResult("ablation-inner", f"Inner exchange sweep for {algorithm}",
                       "message size (bytes)", configuration=harness.describe())
    for inner in inners:
        fig.add_series(
            harness.size_sweep(algorithm, msg_sizes=msg_sizes, label=inner, inner=inner, **options)
        )
    return fig


def group_size_sweep(cluster: Cluster, ppn: int, *, algorithm: str = "locality-aware",
                     msg_bytes: int = 4096, engine: str = "model",
                     group_sizes: Sequence[int] | None = None,
                     executor: SweepExecutor | None = None) -> DataSeries:
    """Sweep the aggregation-group / leader-group size from 1 to the whole node."""
    harness = BenchmarkHarness(cluster, ppn, engine=engine)
    sizes = list(group_sizes) if group_sizes is not None else divisors(ppn)
    option_name = "procs_per_leader" if "leader" in algorithm else "procs_per_group"
    specs = [
        harness.point_spec(algorithm, msg_bytes, harness.cluster.num_nodes,
                           **{option_name: group})
        for group in sizes
    ]
    series = DataSeries(label=f"{algorithm} @ {msg_bytes} B")
    for group, point in zip(sizes, execute(specs, executor)):
        series.add(group, point.seconds, phases=point.phases)
    return series


def injection_bandwidth_sweep(cluster: Cluster, ppn: int, *, algorithm: str = "node-aware",
                              msg_bytes: int = 4096, factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                              engine: str = "model",
                              executor: SweepExecutor | None = None) -> DataSeries:
    """Scale the per-node NIC injection bandwidth and report the resulting times."""
    specs = []
    for factor in factors:
        params = cluster.params.with_overrides(
            injection_bandwidth=cluster.params.injection_bandwidth * factor
        )
        harness = BenchmarkHarness(cluster.with_params(params), ppn, engine=engine)
        specs.append(harness.point_spec(algorithm, msg_bytes, cluster.num_nodes))
    series = DataSeries(label=f"{algorithm} vs injection bandwidth @ {msg_bytes} B")
    for factor, point in zip(factors, execute(specs, executor)):
        series.add(factor, point.seconds, phases=point.phases)
    return series


def matching_cost_sweep(cluster: Cluster, ppn: int, *, algorithm: str = "nonblocking",
                        msg_bytes: int = 1024, factors: Sequence[float] = (0.0, 1.0, 4.0, 16.0),
                        engine: str = "model",
                        executor: SweepExecutor | None = None) -> DataSeries:
    """Scale the per-entry matching (queue search) cost; drives the pairwise/non-blocking trade-off."""
    specs = []
    for factor in factors:
        params = cluster.params.with_overrides(
            match_overhead_per_entry=cluster.params.match_overhead_per_entry * factor
        )
        harness = BenchmarkHarness(cluster.with_params(params), ppn, engine=engine)
        specs.append(harness.point_spec(algorithm, msg_bytes, cluster.num_nodes))
    series = DataSeries(label=f"{algorithm} vs matching cost @ {msg_bytes} B")
    for factor, point in zip(factors, execute(specs, executor)):
        series.add(factor, point.seconds, phases=point.phases)
    return series
