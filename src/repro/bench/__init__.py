"""Benchmark harness: regenerate every table and figure of the paper's evaluation.

The harness has three layers:

* :mod:`repro.bench.datasets` — plain dataclasses for series and figures;
* :mod:`repro.bench.harness` — :class:`BenchmarkHarness`, which times one
  (algorithm, message size, node count) point either through the
  discrete-event simulator (exact, reduced scale) or through the analytic
  model (instant, full paper scale);
* :mod:`repro.bench.figures` — one function per table/figure of the paper
  (:func:`figure07` ... :func:`figure18`, :func:`table1`,
  :func:`headline_speedup`), each returning a
  :class:`~repro.bench.datasets.FigureResult` whose rows mirror the series
  the paper plots;
* :mod:`repro.bench.reporting` — ASCII/CSV rendering of those results;
* :mod:`repro.bench.micro` — hot-path microbenchmarks of the simulator
  itself (the ``repro-bench perf`` suite behind ``BENCH_simmpi.json``).

The ``benchmarks/`` directory at the repository root contains one
pytest-benchmark module per figure that simply invokes these functions and
prints the regenerated series.
"""

from repro.bench.datasets import DataSeries, FigureResult, SeriesPoint
from repro.bench.harness import BenchmarkHarness, PAPER_MESSAGE_SIZES, PAPER_NODE_COUNTS
from repro.bench.figures import (
    FIGURES,
    figure07,
    figure08,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    figure18,
    headline_speedup,
    table1,
)
from repro.bench.reporting import format_figure, format_table1, to_csv

__all__ = [
    "DataSeries",
    "FigureResult",
    "SeriesPoint",
    "BenchmarkHarness",
    "PAPER_MESSAGE_SIZES",
    "PAPER_NODE_COUNTS",
    "FIGURES",
    "figure07",
    "figure08",
    "figure09",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "figure18",
    "headline_speedup",
    "table1",
    "format_figure",
    "format_table1",
    "to_csv",
]
