"""Data containers produced by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["TimedPoint", "SeriesPoint", "DataSeries", "FigureResult"]


@dataclass
class TimedPoint:
    """Result of timing one benchmark configuration."""

    seconds: float
    phases: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SeriesPoint:
    """One measured or modelled data point of a series."""

    #: Independent variable (message size in bytes, or node count).
    x: float
    #: Execution time in seconds.
    seconds: float
    #: Optional extra information (per-phase breakdown, configuration, ...).
    details: dict = field(default_factory=dict)


@dataclass
class DataSeries:
    """One line of a figure: a labelled sequence of points."""

    label: str
    points: list[SeriesPoint] = field(default_factory=list)

    def add(self, x: float, seconds: float, **details) -> None:
        self.points.append(SeriesPoint(x=x, seconds=seconds, details=dict(details)))

    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    def ys(self) -> list[float]:
        return [p.seconds for p in self.points]

    def at(self, x: float) -> SeriesPoint:
        for point in self.points:
            if point.x == x:
                return point
        raise ConfigurationError(f"series {self.label!r} has no point at x={x}")

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class FigureResult:
    """A regenerated figure: several series over a common x axis."""

    figure_id: str
    title: str
    xlabel: str
    series: list[DataSeries] = field(default_factory=list)
    #: Description of the machine / engine the data was produced on.
    configuration: str = ""
    notes: str = ""

    def add_series(self, series: DataSeries) -> None:
        self.series.append(series)

    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    def get(self, label: str) -> DataSeries:
        for series in self.series:
            if series.label == label:
                return series
        raise ConfigurationError(
            f"figure {self.figure_id} has no series {label!r}; available: {self.labels()}"
        )

    def xs(self) -> list[float]:
        """Union of x values across series, sorted."""
        values: set[float] = set()
        for series in self.series:
            values.update(series.xs())
        return sorted(values)

    def best_at(self, x: float) -> tuple[str, float]:
        """Label and time of the fastest series at ``x`` (ignoring series without that point)."""
        best: tuple[str, float] | None = None
        for series in self.series:
            try:
                point = series.at(x)
            except ConfigurationError:
                continue
            if best is None or point.seconds < best[1]:
                best = (series.label, point.seconds)
        if best is None:
            raise ConfigurationError(f"figure {self.figure_id} has no data at x={x}")
        return best

    def speedup_over(self, baseline_label: str, x: float) -> float:
        """Best-series speedup over the named baseline at ``x``."""
        baseline = self.get(baseline_label).at(x).seconds
        _, best = self.best_at(x)
        return baseline / best if best > 0 else float("inf")
