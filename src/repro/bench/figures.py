"""One function per table / figure of the paper's evaluation (Section 4).

Every function regenerates the corresponding experiment and returns a
:class:`~repro.bench.datasets.FigureResult` whose series mirror the lines of
the paper's plot.  All figures default to the analytic-model engine at the
paper's full scale (32 nodes x 112 ranks of Dane, or Amber / Tuolomne for
Figures 17 / 18); passing ``engine="simulate"`` together with a smaller
``ppn`` / ``num_nodes`` reruns the same experiment through the
discrete-event simulator.

The default multi-leader / locality-aware group size is 4 processes per
leader/group (i.e. 28 groups per 112-core node), matching the configuration
Figure 10 of the paper uses for its combined comparison.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.datasets import DataSeries, FigureResult
from repro.bench.harness import PAPER_MESSAGE_SIZES, PAPER_NODE_COUNTS, BenchmarkHarness
from repro.core.instrumentation import (
    PHASE_GATHER,
    PHASE_INTER,
    PHASE_INTRA,
    PHASE_SCATTER,
)
from repro.machine.cluster import Cluster
from repro.machine.systems import amber, dane, tuolomne
from repro.runtime import SweepExecutor
from repro.utils.statistics import speedup

__all__ = [
    "FIGURES",
    "table1",
    "figure07",
    "figure08",
    "figure09",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "figure18",
    "figure_contention",
    "figure_link_utilisation",
    "figure_robustness",
    "figure_adaptive",
    "CONTENTION_FABRICS",
    "ROBUSTNESS_FAULTS",
    "ADAPTIVE_FABRIC",
    "adaptive_demo_workload",
    "headline_speedup",
]

#: Group sizes (processes per leader/group) the paper sweeps.
GROUP_SIZES = (4, 8, 16)
#: Default group size for the combined comparisons (28 groups per Dane node).
DEFAULT_GROUP = 4


def _harness(
    cluster: Cluster | None,
    *,
    default_cluster: Callable[[], Cluster] = dane,
    ppn: int | None,
    engine: str,
    executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
) -> BenchmarkHarness:
    machine = cluster if cluster is not None else default_cluster()
    processes = ppn if ppn is not None else machine.cores_per_node
    return BenchmarkHarness(machine, processes, engine=engine, executor=executor,
                            engine_jobs=engine_jobs, faults=faults)


def _valid_groups(ppn: int) -> list[int]:
    return [g for g in GROUP_SIZES if ppn % g == 0 and g <= ppn]


def _clamp_node_counts(harness: BenchmarkHarness, node_counts) -> list[int]:
    """Restrict a node sweep to what the harness's cluster can host.

    Lets the node-scaling figures run on small clusters (``--system X
    --nodes 2`` or the reduced-scale simulate engine) instead of failing on
    the paper's 32-node sweep.
    """
    valid = [n for n in node_counts if n <= harness.cluster.num_nodes]
    return valid or [harness.cluster.num_nodes]


def _default_group(ppn: int) -> int:
    groups = _valid_groups(ppn)
    return groups[0] if groups else ppn


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1() -> list[dict[str, str]]:
    """Table 1: the three evaluation systems and their software stacks."""
    rows = []
    for cluster in (dane(), amber(), tuolomne()):
        rows.append(
            {
                "name": cluster.name,
                "cpu": cluster.node.name,
                "cores_per_node": str(cluster.cores_per_node),
                "network": cluster.network_name,
                "fabric": cluster.fabric.describe(),
                "mpi": cluster.system_mpi_name,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 7-10: size sweeps on Dane, 32 nodes
# ---------------------------------------------------------------------------

def figure07(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES, num_nodes: int | None = None) -> FigureResult:
    """Figure 7: hierarchical vs multi-leader (4/8/16 processes per leader), 32 nodes of Dane."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    nodes = num_nodes or harness.cluster.num_nodes
    fig = FigureResult("fig07", "Hierarchical vs Multileader", "message size (bytes)",
                       configuration=harness.describe())
    fig.add_series(harness.size_sweep("system-mpi", msg_sizes=msg_sizes, num_nodes=nodes,
                                      label="System MPI"))
    fig.add_series(harness.size_sweep("hierarchical", msg_sizes=msg_sizes, num_nodes=nodes,
                                      label="Hierarchical"))
    for group in _valid_groups(harness.ppn):
        fig.add_series(
            harness.size_sweep("multileader", msg_sizes=msg_sizes, num_nodes=nodes,
                               label=f"{group} Processes Per Leader", procs_per_leader=group)
        )
    return fig


def figure08(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES, num_nodes: int | None = None) -> FigureResult:
    """Figure 8: node-aware vs locality-aware aggregation (4/8/16 processes per group)."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    nodes = num_nodes or harness.cluster.num_nodes
    fig = FigureResult("fig08", "Node-Aware vs Locality-Aware", "message size (bytes)",
                       configuration=harness.describe())
    fig.add_series(harness.size_sweep("system-mpi", msg_sizes=msg_sizes, num_nodes=nodes,
                                      label="System MPI"))
    for group in _valid_groups(harness.ppn):
        fig.add_series(
            harness.size_sweep("locality-aware", msg_sizes=msg_sizes, num_nodes=nodes,
                               label=f"{group} Processes Per Group", procs_per_group=group)
        )
    fig.add_series(harness.size_sweep("node-aware", msg_sizes=msg_sizes, num_nodes=nodes,
                                      label="Node-Aware"))
    return fig


def figure09(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES, num_nodes: int | None = None) -> FigureResult:
    """Figure 9: multi-leader + node-aware for 4/8/16 processes per leader, with its two limits."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    nodes = num_nodes or harness.cluster.num_nodes
    fig = FigureResult("fig09", "Multileader + Locality", "message size (bytes)",
                       configuration=harness.describe())
    fig.add_series(harness.size_sweep("system-mpi", msg_sizes=msg_sizes, num_nodes=nodes,
                                      label="System MPI"))
    fig.add_series(harness.size_sweep("hierarchical", msg_sizes=msg_sizes, num_nodes=nodes,
                                      label="Hierarchical"))
    for group in _valid_groups(harness.ppn):
        fig.add_series(
            harness.size_sweep("multileader-node-aware", msg_sizes=msg_sizes, num_nodes=nodes,
                               label=f"{group} Processes Per Leader", procs_per_leader=group)
        )
    fig.add_series(harness.size_sweep("node-aware", msg_sizes=msg_sizes, num_nodes=nodes,
                                      label="Node-Aware"))
    return fig


def _all_algorithm_series(harness: BenchmarkHarness, fig: FigureResult, *, msg_sizes, num_nodes=None,
                          node_counts=None, msg_bytes=None) -> None:
    """The six series of Figures 10-12: every algorithm at the default group size."""
    group = _default_group(harness.ppn)
    configs = [
        ("System MPI", "system-mpi", {}),
        ("Hierarchical", "hierarchical", {}),
        ("Node-Aware", "node-aware", {}),
        ("Multileader", "multileader", {"procs_per_leader": group}),
        ("Locality-Aware", "locality-aware", {"procs_per_group": group}),
        ("Multileader + Locality", "multileader-node-aware", {"procs_per_leader": group}),
    ]
    for label, name, options in configs:
        if node_counts is not None:
            fig.add_series(
                harness.node_sweep(name, msg_bytes=msg_bytes, node_counts=node_counts,
                                   label=label, **options)
            )
        else:
            fig.add_series(
                harness.size_sweep(name, msg_sizes=msg_sizes, num_nodes=num_nodes,
                                   label=label, **options)
            )


def figure10(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES, num_nodes: int | None = None) -> FigureResult:
    """Figure 10: all algorithms across message sizes on 32 nodes of Dane."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    nodes = num_nodes or harness.cluster.num_nodes
    fig = FigureResult("fig10", "Various Sizes, 32 Nodes", "message size (bytes)",
                       configuration=harness.describe())
    _all_algorithm_series(harness, fig, msg_sizes=msg_sizes, num_nodes=nodes)
    return fig


# ---------------------------------------------------------------------------
# Figures 11-12: node scaling
# ---------------------------------------------------------------------------

def figure11(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             node_counts=PAPER_NODE_COUNTS) -> FigureResult:
    """Figure 11: node scaling at 4 bytes per process pair."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    fig = FigureResult("fig11", "Message Size: 4 bytes, Node Scaling", "nodes",
                       configuration=harness.describe())
    _all_algorithm_series(harness, fig, msg_sizes=None,
                          node_counts=_clamp_node_counts(harness, node_counts), msg_bytes=4)
    return fig


def figure12(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             node_counts=PAPER_NODE_COUNTS) -> FigureResult:
    """Figure 12: node scaling at 4096 bytes per process pair."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    fig = FigureResult("fig12", "Message Size: 4096 bytes, Node Scaling", "nodes",
                       configuration=harness.describe())
    _all_algorithm_series(harness, fig, msg_sizes=None,
                          node_counts=_clamp_node_counts(harness, node_counts), msg_bytes=4096)
    return fig


# ---------------------------------------------------------------------------
# Figures 13-16: intra- vs inter-node breakdowns
# ---------------------------------------------------------------------------

def figure13(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES, num_nodes: int | None = None) -> FigureResult:
    """Figure 13: hierarchical timing breakdown (gather, scatter, leader all-to-all)."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    nodes = num_nodes or harness.cluster.num_nodes
    fig = FigureResult("fig13", "Hierarchical Timing Breakdown", "per-message size (bytes)",
                       configuration=harness.describe())
    fig.add_series(harness.phase_series("hierarchical", PHASE_GATHER, msg_sizes=msg_sizes,
                                        num_nodes=nodes, label="MPI Gather", inner="pairwise"))
    fig.add_series(harness.phase_series("hierarchical", PHASE_SCATTER, msg_sizes=msg_sizes,
                                        num_nodes=nodes, label="MPI Scatter", inner="pairwise"))
    fig.add_series(harness.phase_series("hierarchical", PHASE_INTER, msg_sizes=msg_sizes,
                                        num_nodes=nodes, label="Alltoall (Pairwise)", inner="pairwise"))
    fig.add_series(harness.phase_series("hierarchical", PHASE_INTER, msg_sizes=msg_sizes,
                                        num_nodes=nodes, label="Alltoall (Nonblocking)",
                                        inner="nonblocking"))
    return fig


def figure14(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES, num_nodes: int | None = None) -> FigureResult:
    """Figure 14: node-aware timing breakdown (intra- vs inter-node all-to-all, both inner exchanges)."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    nodes = num_nodes or harness.cluster.num_nodes
    fig = FigureResult("fig14", "Node-Aware Timing Breakdown", "per-message size (bytes)",
                       configuration=harness.describe())
    for inner in ("pairwise", "nonblocking"):
        fig.add_series(harness.phase_series("node-aware", PHASE_INTRA, msg_sizes=msg_sizes,
                                            num_nodes=nodes, label=f"Intra-Node ({inner.title()})",
                                            inner=inner))
        fig.add_series(harness.phase_series("node-aware", PHASE_INTER, msg_sizes=msg_sizes,
                                            num_nodes=nodes, label=f"Inter-Node ({inner.title()})",
                                            inner=inner))
    return fig


def figure15(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             node_counts=PAPER_NODE_COUNTS, msg_bytes: int = 4096) -> FigureResult:
    """Figure 15: node-aware breakdown versus node count at 4096 bytes (1024 integers)."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    fig = FigureResult("fig15", "Node-Aware Breakdown, 4096 B, 2-32 Nodes", "nodes",
                       configuration=harness.describe())
    intra = DataSeries("Intra-Node Alltoall")
    inter = DataSeries("Inter-Node Alltoall")
    counts = _clamp_node_counts(harness, node_counts)
    specs = [harness.point_spec("node-aware", msg_bytes, nodes, inner="pairwise")
             for nodes in counts]
    for nodes, point in zip(counts, harness.run_specs(specs)):
        intra.add(nodes, point.phases.get(PHASE_INTRA, 0.0))
        inter.add(nodes, point.phases.get(PHASE_INTER, 0.0))
    fig.add_series(intra)
    fig.add_series(inter)
    return fig


def figure16(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             num_nodes: int | None = None, msg_bytes: int = 4096) -> FigureResult:
    """Figure 16: locality-aware breakdown versus group size (node-aware, 16, 8 and 4 PPG)."""
    harness = _harness(cluster, ppn=ppn, engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    nodes = num_nodes or harness.cluster.num_nodes
    fig = FigureResult("fig16", "Locality-Aware Breakdown vs Group Size", "group configuration",
                       configuration=harness.describe(),
                       notes="x = group size; the whole node (node-aware) is encoded as x = ppn")
    intra = DataSeries("Intra-Node Alltoall")
    inter = DataSeries("Inter-Node Alltoall")
    configs: list[tuple[str, dict, int]] = [("node-aware", {}, harness.ppn)]
    for group in sorted(_valid_groups(harness.ppn), reverse=True):
        configs.append(("locality-aware", {"procs_per_group": group}, group))
    specs = [harness.point_spec(name, msg_bytes, nodes, inner="pairwise", **options)
             for name, options, _ in configs]
    for (name, options, group), point in zip(configs, harness.run_specs(specs)):
        intra.add(group, point.phases.get(PHASE_INTRA, 0.0))
        inter.add(group, point.phases.get(PHASE_INTER, 0.0))
    fig.add_series(intra)
    fig.add_series(inter)
    return fig


# ---------------------------------------------------------------------------
# Figures 17-18: Amber and Tuolomne
# ---------------------------------------------------------------------------

def _best_algorithms_figure(figure_id: str, title: str, machine: Cluster, *, ppn: int | None,
                            engine: str, msg_sizes,
                            executor: SweepExecutor | None = None,
                            engine_jobs: int = 1, faults=None) -> FigureResult:
    harness = BenchmarkHarness(machine, ppn if ppn is not None else machine.cores_per_node,
                               engine=engine, executor=executor, engine_jobs=engine_jobs, faults=faults)
    group = _default_group(harness.ppn)
    fig = FigureResult(figure_id, title, "message size (bytes)", configuration=harness.describe())
    fig.add_series(harness.size_sweep("system-mpi", msg_sizes=msg_sizes, label="System MPI"))
    fig.add_series(harness.size_sweep("node-aware", msg_sizes=msg_sizes, label="Node-Aware"))
    fig.add_series(harness.size_sweep("locality-aware", msg_sizes=msg_sizes, label="Locality-Aware",
                                      procs_per_group=group))
    fig.add_series(harness.size_sweep("multileader-node-aware", msg_sizes=msg_sizes,
                                      label="Multileader + Locality", procs_per_leader=group))
    return fig


def figure17(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES) -> FigureResult:
    """Figure 17: best algorithms vs system MPI on 32 nodes of Amber."""
    machine = cluster if cluster is not None else amber()
    return _best_algorithms_figure("fig17", "Amber, Various Sizes, 32 Nodes", machine,
                                   ppn=ppn, engine=engine, msg_sizes=msg_sizes, executor=executor,
                                   engine_jobs=engine_jobs, faults=faults)


def figure18(cluster: Cluster | None = None, *, ppn: int | None = None, engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
             msg_sizes=PAPER_MESSAGE_SIZES) -> FigureResult:
    """Figure 18: best algorithms vs system MPI on 32 nodes of Tuolomne."""
    machine = cluster if cluster is not None else tuolomne()
    return _best_algorithms_figure("fig18", "Tuolomne, Various Sizes, 32 Nodes", machine,
                                   ppn=ppn, engine=engine, msg_sizes=msg_sizes, executor=executor,
                                   engine_jobs=engine_jobs, faults=faults)


# ---------------------------------------------------------------------------
# Contention demo (not a paper figure): fabric ladder on a skewed workload
# ---------------------------------------------------------------------------

#: The fabric ladder of the contention figure: x position -> (label, spec).
CONTENTION_FABRICS = (
    ("full-bisection", "full-bisection"),
    ("fat-tree 2:1", "fat-tree:hosts=2,oversub=2"),
    ("fat-tree 4:1", "fat-tree:hosts=2,oversub=4"),
    ("fat-tree 8:1", "fat-tree:hosts=2,oversub=8"),
    ("dragonfly 8:1", "dragonfly:hosts=1,routers=2,taper=8"),
)


def figure_contention(cluster: Cluster | None = None, *, ppn: int | None = None,
                      engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
                      msg_bytes: int = 256, num_nodes: int | None = None) -> FigureResult:
    """Link contention demo: a skewed MoE shuffle across the fabric ladder.

    Runs the flat algorithms against node-aware aggregation on the same
    skewed workload while the inter-node fabric degrades from full
    bisection to an 8:1 oversubscribed fat-tree and a heavily tapered
    dragonfly.  On the contention-free default the flat non-blocking
    exchange wins; once shared links queue per message, aggregation's lower
    inter-node message count pays for its extra phases and the ordering
    flips — the paper's locality thesis, visible only with a fabric model.
    """
    from repro.netsim.fabric import parse_fabric
    from repro.workloads import skewed_moe

    base = cluster if cluster is not None else dane(8)
    processes = ppn if ppn is not None else min(base.cores_per_node, 16)
    nodes = num_nodes or base.num_nodes
    matrix = skewed_moe(nodes * processes, msg_bytes, seed=0)
    fig = FigureResult(
        "contention", "Skewed Workload Under Link Contention", "fabric (ladder index)",
        configuration=f"{base.name}, {nodes} nodes x {processes} ppn, "
                      f"skewed-moe {msg_bytes} B, engine={engine}",
        notes="x = index into the fabric ladder: "
              + "; ".join(f"{i}={label}" for i, (label, _) in enumerate(CONTENTION_FABRICS)),
    )
    for label, algorithm, options in (
        ("Nonblocking", "nonblocking", {}),
        ("Pairwise", "pairwise", {}),
        ("Node-Aware", "node-aware", {}),
    ):
        series = DataSeries(label)
        for index, (_fabric_label, spec) in enumerate(CONTENTION_FABRICS):
            machine = base.with_fabric(parse_fabric(spec))
            harness = BenchmarkHarness(machine, processes, engine=engine, executor=executor,
                                       engine_jobs=engine_jobs, faults=faults)
            point = harness.workload_point(algorithm, matrix, nodes, **options)
            series.add(index, point.seconds)
        fig.add_series(series)
    return fig


def figure_link_utilisation(cluster: Cluster | None = None, *, ppn: int | None = None,
                            engine: str = "simulate", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
                            msg_bytes: int = 256, num_nodes: int | None = None,
                            bins: int = 12,
                            fabric_spec: str = "dragonfly:hosts=1,routers=2,taper=8") -> FigureResult:
    """Link utilisation over time on the tapered dragonfly (trace-derived).

    The contention figure shows *that* the winner flips on the tapered
    dragonfly; this one shows *why*.  Each algorithm runs the same skewed
    MoE shuffle with a recording :class:`~repro.obs.sink.RecordingSink`
    attached, the per-link occupancy slices are binned over the run's own
    makespan, and each series reports the mean number of concurrently-busy
    fabric links per bin.  The flat non-blocking exchange keeps the few
    global links saturated for its whole (long) runtime; node-aware
    aggregation compresses the fabric work into a short, wider burst.

    Always simulates regardless of ``engine`` (a timeline needs the
    event-level trace the analytic model does not produce); ``engine`` and
    ``executor`` are accepted for registry compatibility only.
    """
    from repro.core.runner import run_workload
    from repro.machine.process_map import ProcessMap
    from repro.netsim.fabric import parse_fabric
    from repro.obs.sink import RecordingSink
    from repro.workloads import skewed_moe

    base = cluster if cluster is not None else dane(4)
    processes = ppn if ppn is not None else min(base.cores_per_node, 8)
    nodes = num_nodes or base.num_nodes
    machine = base.with_fabric(parse_fabric(fabric_spec))
    matrix = skewed_moe(nodes * processes, msg_bytes, seed=0)
    fig = FigureResult(
        "linkutil", "Fabric Link Utilisation Over Time",
        "time bin (each run's makespan / %d)" % bins,
        configuration=f"{base.name}, {nodes} nodes x {processes} ppn, "
                      f"skewed-moe {msg_bytes} B, fabric={fabric_spec}",
        notes="y = mean concurrently-busy fabric links in the bin; each "
              "series is normalised to its own makespan, so compare shapes "
              "(saturation plateaus), not absolute times",
    )
    for label, algorithm in (("Nonblocking", "nonblocking"), ("Node-Aware", "node-aware")):
        sink = RecordingSink()
        pmap = ProcessMap(machine, ppn=processes, num_nodes=nodes)
        outcome = run_workload(algorithm, pmap, matrix, validate=False,
                               keep_job=False, sink=sink, engine_jobs=engine_jobs, faults=faults)
        makespan = outcome.elapsed
        width = makespan / bins if makespan > 0.0 else 1.0
        busy = [0.0] * bins
        for event in sink.of_kind("link"):
            begin, end = event[3], event[4]
            first = min(bins - 1, max(0, int(begin / width)))
            last = min(bins - 1, max(0, int(end / width)))
            for index in range(first, last + 1):
                lo = max(begin, index * width)
                hi = min(end, (index + 1) * width)
                if hi > lo:
                    busy[index] += hi - lo
        series = DataSeries(label)
        for index in range(bins):
            series.add(index, busy[index] / width)
        fig.add_series(series)
    return fig


# ---------------------------------------------------------------------------
# Robustness demo (not a paper figure): fault-induced winner flip
# ---------------------------------------------------------------------------

#: The fault injected by the robustness figure: one dragonfly global link
#: running at a quarter of its bandwidth and flapping on/off.
ROBUSTNESS_FAULTS = "degraded-link:df-g0-1,0.25;flapping-link:df-g0-1,4e-6,0.5"


def figure_robustness(cluster: Cluster | None = None, *, ppn: int | None = None,
                      engine: str = "simulate", executor: SweepExecutor | None = None,
                      engine_jobs: int = 1, faults=None,
                      msg_bytes: int = 1024, num_nodes: int | None = None,
                      fabric_spec: str = "dragonfly:hosts=1,routers=2,taper=2") -> FigureResult:
    """Fault-induced winner flip: a skewed MoE shuffle on a degraded dragonfly.

    Runs the flat exchanges against node-aware aggregation on the same
    skewed workload twice — on the healthy dragonfly and with one global
    link degraded (quarter bandwidth, flapping on/off).  Healthy, the flat
    non-blocking exchange wins; on the degraded machine every message
    crossing the sick link risks a stall until its next on-window, so
    node-aware aggregation's far lower inter-node message count flips the
    ranking.  An algorithm selection tuned on the healthy machine is wrong
    on the degraded one — the operational argument for re-running the
    ``select`` sweep under ``--faults``.

    Always simulates regardless of ``engine`` (fault injection needs the
    discrete-event machine); ``engine`` is accepted for registry
    compatibility only.  A non-empty ``faults`` spec replaces the default
    :data:`ROBUSTNESS_FAULTS` injection.
    """
    from repro.faults import parse_faults
    from repro.netsim.fabric import parse_fabric
    from repro.workloads import skewed_moe

    base = cluster if cluster is not None else dane(4)
    processes = ppn if ppn is not None else min(base.cores_per_node, 4)
    nodes = num_nodes or base.num_nodes
    machine = base.with_fabric(parse_fabric(fabric_spec))
    matrix = skewed_moe(nodes * processes, msg_bytes, seed=0)
    injected = faults if faults else parse_faults(ROBUSTNESS_FAULTS)
    fig = FigureResult(
        "robustness", "Fault-Induced Winner Flip", "machine state (0=healthy, 1=faulted)",
        configuration=f"{base.name}, {nodes} nodes x {processes} ppn, "
                      f"skewed-moe {msg_bytes} B, fabric={fabric_spec}",
        notes="x = 0: healthy machine; x = 1: " + injected.describe(),
    )
    for label, algorithm in (("Nonblocking", "nonblocking"), ("Pairwise", "pairwise"),
                             ("Node-Aware", "node-aware")):
        series = DataSeries(label)
        for index, spec in enumerate((None, injected)):
            harness = BenchmarkHarness(machine, processes, engine="simulate",
                                       executor=executor, engine_jobs=engine_jobs,
                                       faults=spec)
            point = harness.workload_point(algorithm, matrix, nodes)
            series.add(index, point.seconds)
        fig.add_series(series)
    return fig


# ---------------------------------------------------------------------------
# Adaptive demo (not a paper figure): per-phase selection under interference
# ---------------------------------------------------------------------------

#: The shared fabric of the adaptive figure: a heavily tapered dragonfly, so
#: the background job's traffic contends with the foreground job's phases.
ADAPTIVE_FABRIC = "dragonfly:hosts=1,routers=2,taper=8"


def adaptive_demo_workload(nprocs: int, msg_bytes: int = 2048):
    """The foreground job of the adaptive figure: an MoE-style iteration.

    Two phases per iteration whose best algorithms differ on the tapered
    dragonfly: a heavy skewed ``dispatch`` (token shuffle towards hot
    experts) and a tiny uniform ``combine`` (per-token result return).
    Used when :func:`figure_adaptive` is not given an ingested workload.
    """
    from repro.workloads import Phase, PhasedWorkload, skewed_moe, uniform

    return PhasedWorkload((
        Phase("dispatch", skewed_moe(nprocs, msg_bytes, seed=0), repeats=2),
        Phase("combine", uniform(nprocs, 4), repeats=4),
    ))


def figure_adaptive(cluster: Cluster | None = None, *, ppn: int | None = None,
                    engine: str = "simulate", executor: SweepExecutor | None = None,
                    engine_jobs: int = 1, faults=None,
                    msg_bytes: int = 2048, num_nodes: int | None = None,
                    fabric_spec: str = ADAPTIVE_FABRIC,
                    workload=None) -> FigureResult:
    """Static vs adaptive per-phase selection on a shared dragonfly.

    Two jobs split a tapered dragonfly: a phased foreground job (an
    MoE-style dispatch/combine iteration, or any ingested
    :class:`~repro.workloads.PhasedWorkload` passed as ``workload``) and a
    fixed background job whose skewed shuffle keeps the global links busy.
    The foreground job runs twice — once with the *static* pick (the single
    algorithm :func:`~repro.core.selection.select_phased` would pin for the
    whole iteration) and once with the *adaptive* per-phase assignment —
    against the identical background.  Because the per-phase winners
    disagree (the skewed heavy phase wants the flat non-blocking exchange,
    the tiny uniform phase wants node-aware aggregation), the static pick
    pays on whichever phase it is wrong about and adaptive wins the
    realized total under interference.

    Always simulates regardless of ``engine`` (interference needs the
    discrete-event fabric model); ``engine`` is accepted for registry
    compatibility only.
    """
    from repro.core.runner import PhasedJob
    from repro.core.selection import select_phased
    from repro.errors import ConfigurationError
    from repro.netsim.fabric import parse_fabric
    from repro.workloads import load_phased, skewed_moe

    base = cluster if cluster is not None else dane(8)
    processes = ppn if ppn is not None else min(base.cores_per_node, 4)
    nodes = num_nodes or base.num_nodes
    machine = base.with_fabric(parse_fabric(fabric_spec))
    if workload is None:
        fg_nodes = max(1, nodes // 2)
        workload = adaptive_demo_workload(fg_nodes * processes, msg_bytes)
    else:
        workload = load_phased(workload)
        if workload.nprocs % processes != 0:
            raise ConfigurationError(
                f"phased workload has {workload.nprocs} ranks, "
                f"not a multiple of ppn={processes}"
            )
        fg_nodes = workload.nprocs // processes
    bg_nodes = nodes - fg_nodes
    if bg_nodes < 1:
        raise ConfigurationError(
            f"the foreground job needs {fg_nodes} of {nodes} nodes; "
            "no node left for the background job"
        )

    selection = select_phased(machine, processes, workload, engine="simulate",
                              executor=executor, engine_jobs=engine_jobs,
                              faults=faults)
    from repro.workloads import Phase, PhasedWorkload

    background = PhasedJob.make(
        PhasedWorkload((
            Phase("background", skewed_moe(bg_nodes * processes, msg_bytes, seed=1),
                  repeats=6),
        )),
        "nonblocking", bg_nodes,
    )
    harness = BenchmarkHarness(machine, processes, engine="simulate",
                               executor=executor, engine_jobs=engine_jobs,
                               faults=faults)
    specs = [
        harness.phased_spec([PhasedJob.make(workload, assignment, fg_nodes), background])
        for assignment in (selection.static, selection.assignment)
    ]
    static_point, adaptive_point = harness.run_specs(specs)

    fig = FigureResult(
        "adaptive", "Static vs Adaptive Per-Phase Selection", "phase index",
        configuration=f"{base.name}, {nodes} nodes x {processes} ppn "
                      f"({fg_nodes} foreground + {bg_nodes} background), "
                      f"fabric={fabric_spec}",
        notes=(
            "x = foreground phase index; x = "
            f"{workload.num_phases} is the foreground job's total. "
            f"static pick = {selection.static.describe()}; adaptive = "
            + ", ".join(f"{c.phase}: {c.candidate.describe()}" for c in selection.choices)
        ),
    )
    for label, point in (("Static", static_point), ("Adaptive", adaptive_point)):
        series = DataSeries(label)
        for index, name in enumerate(workload.names):
            series.add(index, point.phases[f"job0/phase{index}:{name}"])
        series.add(workload.num_phases, point.phases["job0:total"])
        fig.add_series(series)
    return fig


# ---------------------------------------------------------------------------
# Headline claim
# ---------------------------------------------------------------------------

def headline_speedup(cluster: Cluster | None = None, *, ppn: int | None = None,
                     engine: str = "model", executor: SweepExecutor | None = None, engine_jobs: int = 1, faults=None,
                     msg_sizes=PAPER_MESSAGE_SIZES,
                     num_nodes: int | None = None) -> dict:
    """Section 1's headline: best speedup of the novel algorithms over system MPI at 32 nodes."""
    fig = figure10(cluster, ppn=ppn, engine=engine, executor=executor,
                   engine_jobs=engine_jobs, faults=faults,
                   msg_sizes=msg_sizes, num_nodes=num_nodes)
    speedups = {}
    for size in fig.xs():
        baseline = fig.get("System MPI").at(size).seconds
        novel = min(
            fig.get(label).at(size).seconds
            for label in ("Node-Aware", "Locality-Aware", "Multileader + Locality")
        )
        speedups[size] = speedup(baseline, novel)
    best_size = max(speedups, key=speedups.get)
    return {
        "per_size": speedups,
        "best_size": best_size,
        "best_speedup": speedups[best_size],
        "configuration": fig.configuration,
    }


#: Registry used by the benchmark modules and tests.
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig07": figure07,
    "fig08": figure08,
    "fig09": figure09,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
    "fig16": figure16,
    "fig17": figure17,
    "fig18": figure18,
    "contention": figure_contention,
    "linkutil": figure_link_utilisation,
    "robustness": figure_robustness,
    "adaptive": figure_adaptive,
}
