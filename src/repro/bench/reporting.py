"""Rendering of regenerated figures as ASCII tables and CSV.

The paper's figures are log-log line plots; in a text environment the same
information is conveyed as one row per x value with one column per series,
which is what :func:`format_figure` produces (and what the benchmark
modules print).
"""

from __future__ import annotations

import io

from repro.bench.datasets import FigureResult
from repro.errors import ConfigurationError

__all__ = [
    "format_figure",
    "format_metrics",
    "format_table1",
    "to_csv",
    "format_speedup_summary",
    "format_verification_summary",
]


def _format_seconds(value: float) -> str:
    return f"{value:10.3e}"


def format_figure(figure: FigureResult, *, max_label: int = 28) -> str:
    """Render a figure as an aligned ASCII table (one row per x value)."""
    labels = [label[:max_label] for label in figure.labels()]
    header = f"{figure.figure_id}: {figure.title}\n{figure.configuration}\n"
    if figure.notes:
        header += f"note: {figure.notes}\n"
    xs = figure.xs()
    col_width = max(12, max(len(label) for label in labels) + 2) if labels else 12
    lines = [header]
    lines.append(f"{figure.xlabel:>24s}" + "".join(f"{label:>{col_width}s}" for label in labels))
    for x in xs:
        row = f"{x:>24g}"
        for series in figure.series:
            # Only a genuinely missing point renders as '-'; any other error
            # (e.g. a broken cost model raising) is a real defect and
            # propagates.
            try:
                row += f"{_format_seconds(series.at(x).seconds):>{col_width}s}"
            except ConfigurationError:
                row += f"{'-':>{col_width}s}"
        lines.append(row)
    return "\n".join(lines)


def _format_metric_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _flatten_metrics(metrics: dict, prefix: str = "") -> list[tuple[str, object]]:
    rows: list[tuple[str, object]] = []
    for name in sorted(metrics):
        value = metrics[name]
        dotted = f"{prefix}{name}"
        if isinstance(value, dict):
            rows.extend(_flatten_metrics(value, f"{dotted}."))
        else:
            rows.append((dotted, value))
    return rows


def format_metrics(metrics: dict, *, title: str = "Metrics") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` / ``JobResult.metrics`` dict.

    The nested snapshot is flattened back to sorted dotted names — one
    aligned ``name  value`` row per leaf — so the output is deterministic
    and greppable whatever the nesting depth.
    """
    rows = _flatten_metrics(metrics)
    if not rows:
        return f"{title}: (none)"
    width = max(len(name) for name, _ in rows)
    lines = [f"{title}:"]
    for name, value in rows:
        lines.append(f"  {name:<{width}s}  {_format_metric_value(value)}")
    return "\n".join(lines)


def format_table1(rows: list[dict[str, str]]) -> str:
    """Render Table 1 (system architectures)."""
    columns = ["name", "cpu", "cores_per_node", "network", "fabric", "mpi"]
    widths = {c: max(len(c), max(len(r[c]) for r in rows)) + 2 for c in columns}
    out = ["Table 1: System Architectures"]
    out.append("".join(f"{c:<{widths[c]}s}" for c in columns))
    for row in rows:
        out.append("".join(f"{row[c]:<{widths[c]}s}" for c in columns))
    return "\n".join(out)


def format_speedup_summary(summary: dict) -> str:
    """Render the headline-speedup dictionary produced by ``headline_speedup``."""
    lines = [f"Speedup of the best novel algorithm over system MPI ({summary['configuration']})"]
    for size, value in sorted(summary["per_size"].items()):
        lines.append(f"  {int(size):>6d} B : {value:5.2f}x")
    lines.append(
        f"  best: {summary['best_speedup']:.2f}x at {int(summary['best_size'])} B per process pair"
    )
    return "\n".join(lines)


def format_verification_summary(records) -> str:
    """Render a batch of :class:`~repro.verify.VerificationRecord` results.

    One line per scenario plus an aggregate tail; failure details are
    rendered separately by :func:`repro.verify.format_failure` so the
    summary stays scannable even when a sweep goes red.
    """
    lines = [record.summary_line() for record in records]
    verified = sum(len(record.verified) for record in records)
    skipped = sum(len(record.skipped) for record in records)
    failing = [record for record in records if not record.ok]
    lines.append(
        f"{len(records)} scenario(s): {verified} algorithm run(s) verified, "
        f"{skipped} skipped, {len(failing)} scenario(s) failing"
    )
    return "\n".join(lines)


def to_csv(figure: FigureResult) -> str:
    """Render a figure as CSV (columns: x, one column per series)."""
    buffer = io.StringIO()
    labels = figure.labels()
    buffer.write(",".join([figure.xlabel] + labels) + "\n")
    for x in figure.xs():
        row = [f"{x:g}"]
        for series in figure.series:
            try:
                row.append(f"{series.at(x).seconds:.6e}")
            except ConfigurationError:
                row.append("")
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()
