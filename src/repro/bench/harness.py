"""Timing harness shared by every figure definition.

A :class:`BenchmarkHarness` is bound to one machine (cluster preset + ppn)
and one *engine*:

* ``engine="simulate"`` runs the exchange on the discrete-event simulator —
  exact per-message accounting, practical at reduced scale (a few hundred
  ranks);
* ``engine="model"`` evaluates the analytic cost model — instant, used to
  regenerate the figures at the paper's full scale (32 nodes x 112 ranks).

The paper reports the minimum of three repetitions for every point; the
harness keeps that policy (``repetitions`` parameter) even though the
simulator is deterministic, so measured-system backends can reuse the same
interface.

Every point is described by a picklable
:class:`~repro.runtime.spec.PointSpec` and executed either inline (the
default) or through a :class:`~repro.runtime.SweepExecutor`, which fans the
independent points of a sweep out over a process pool and can serve
already-simulated points from an on-disk result store.  Sweeps batch all
their specs into a single executor call, so ``size_sweep`` over six message
sizes becomes six parallel simulator runs.
"""

from __future__ import annotations

from repro.core.runner import run_alltoall, run_workload
from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.process_map import ProcessMap
from repro.model.predict import predict_breakdown, predict_workload_breakdown
from repro.bench.datasets import DataSeries, TimedPoint
from repro.runtime.spec import PointSpec
from repro.utils.statistics import min_of_runs

__all__ = ["BenchmarkHarness", "PAPER_MESSAGE_SIZES", "PAPER_NODE_COUNTS", "TimedPoint"]

#: Per-destination message sizes the paper sweeps (4 B to 4096 B).
PAPER_MESSAGE_SIZES: tuple[int, ...] = (4, 16, 64, 256, 1024, 4096)

#: Node counts the paper scales over (2 to 32 nodes).
PAPER_NODE_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32)

_ENGINES = ("simulate", "model")


class BenchmarkHarness:
    """Times all-to-all configurations on one machine through one engine."""

    def __init__(
        self,
        cluster: Cluster,
        ppn: int,
        *,
        engine: str = "model",
        repetitions: int = 1,
        executor=None,
        engine_jobs: int = 1,
        faults=None,
    ) -> None:
        if engine not in _ENGINES:
            raise ConfigurationError(f"unknown engine {engine!r}; choose from {_ENGINES}")
        if repetitions <= 0:
            raise ConfigurationError("repetitions must be positive")
        if engine_jobs < 1:
            raise ConfigurationError(f"engine_jobs must be >= 1, got {engine_jobs}")
        if faults is not None and not faults:
            faults = None
        if faults is not None and engine != "simulate":
            raise ConfigurationError(
                "fault injection requires the simulate engine "
                f"(got engine={engine!r})"
            )
        self.cluster = cluster
        self.ppn = ppn
        self.engine = engine
        self.repetitions = repetitions
        #: Optional :class:`~repro.runtime.SweepExecutor`; ``None`` executes inline.
        self.executor = executor
        #: Parallel-engine worker count per simulated point (bit-identical
        #: results at any value; excluded from cache identity).
        self.engine_jobs = engine_jobs
        #: Optional :class:`repro.faults.FaultSpec` stamped on every spec
        #: this harness builds (part of cache identity when non-empty).
        self.faults = faults

    # -- configuration ------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.cluster.name}: up to {self.cluster.num_nodes} nodes x {self.ppn} ppn, "
            f"engine={self.engine}"
        )

    def process_map(self, num_nodes: int) -> ProcessMap:
        if num_nodes > self.cluster.num_nodes:
            raise ConfigurationError(
                f"requested {num_nodes} nodes but the cluster has {self.cluster.num_nodes}"
            )
        return ProcessMap(self.cluster, ppn=self.ppn, num_nodes=num_nodes)

    # -- point specs ---------------------------------------------------------
    def point_spec(self, algorithm: str, msg_bytes: int, num_nodes: int, *,
                   fold: str = "off", **options) -> PointSpec:
        """The :class:`PointSpec` of one uniform (algorithm, size, nodes) point.

        ``PointSpec`` itself rejects node counts the cluster cannot host.
        """
        return PointSpec.for_alltoall(
            self.cluster, self.ppn, num_nodes, algorithm, msg_bytes,
            engine=self.engine, repetitions=self.repetitions, fold=fold,
            engine_jobs=self.engine_jobs, faults=self.faults, **options,
        )

    def workload_spec(self, algorithm: str, matrix, num_nodes: int, *,
                      fold: str = "off", **options) -> PointSpec:
        """The :class:`PointSpec` of one non-uniform workload point."""
        if matrix.nprocs != num_nodes * self.ppn:
            raise ConfigurationError(
                f"traffic matrix describes {matrix.nprocs} ranks but the harness "
                f"point uses {num_nodes * self.ppn} ({num_nodes} nodes x {self.ppn} ppn)"
            )
        return PointSpec.for_workload(
            self.cluster, self.ppn, num_nodes, algorithm, matrix,
            engine=self.engine, repetitions=self.repetitions, fold=fold,
            engine_jobs=self.engine_jobs, faults=self.faults, **options,
        )

    # -- timing --------------------------------------------------------------
    def time_point(self, algorithm: str, msg_bytes: int, num_nodes: int, **options) -> TimedPoint:
        """Time one (algorithm, message size, node count) configuration."""
        return self.run_specs([self.point_spec(algorithm, msg_bytes, num_nodes, **options)])[0]

    def workload_point(self, algorithm: str, matrix, num_nodes: int, **options) -> TimedPoint:
        """Time one non-uniform workload (algorithm, :class:`~repro.workloads.TrafficMatrix`, node count).

        The matrix must describe exactly ``num_nodes * ppn`` ranks.  With the
        model engine the point is priced by
        :func:`repro.model.predict.predict_workload_breakdown`; with the
        simulate engine the exchange runs on the discrete-event simulator,
        following the same minimum-of-repetitions policy as
        :meth:`time_point`.
        """
        return self.run_specs([self.workload_spec(algorithm, matrix, num_nodes, **options)])[0]

    def phased_spec(self, jobs, **spec_kwargs) -> PointSpec:
        """The :class:`PointSpec` of one phased (possibly multi-job) run.

        ``jobs`` is a sequence of :class:`repro.core.runner.PhasedJob`
        descriptors; their node counts must sum to a count the cluster can
        host (checked by the spec itself).
        """
        return PointSpec.for_phased(
            self.cluster, self.ppn, jobs, repetitions=self.repetitions,
            engine_jobs=self.engine_jobs, faults=self.faults, **spec_kwargs,
        )

    def run_spec(self, spec: PointSpec) -> TimedPoint:
        """Execute one spec in-process (the executor's worker also lands here).

        The spec is self-contained and wins over the harness configuration:
        cluster, ppn, engine and repetitions all come from the spec, so the
        inline path and the worker-pool path (which rebuilds a harness from
        the spec) produce identical results for any spec.
        """
        pmap = ProcessMap(spec.cluster, ppn=spec.ppn, num_nodes=spec.num_nodes)
        options = dict(spec.options)
        if spec.phases is not None:
            from repro.core.runner import run_phased  # deferred: phased only

            jobs = spec.phased_jobs()
            return self._timed_min(
                lambda: run_phased(
                    jobs, pmap, validate=False, keep_job=False,
                    engine_jobs=spec.engine_jobs, faults=spec.faults,
                ),
                spec.repetitions,
            )
        if spec.trace is not None:
            matrix = spec.matrix()
            if matrix.nprocs != pmap.nprocs:
                raise ConfigurationError(
                    f"traffic matrix describes {matrix.nprocs} ranks but the spec "
                    f"point uses {pmap.nprocs} ({spec.num_nodes} nodes x {spec.ppn} ppn)"
                )
            if spec.engine == "model":
                breakdown = predict_workload_breakdown(spec.algorithm, pmap, matrix, **options)
                return TimedPoint(seconds=breakdown.total, phases=dict(breakdown.phases))
            return self._timed_min(
                lambda: run_workload(
                    spec.algorithm, pmap, matrix, validate=False, keep_job=False,
                    fold=spec.fold, engine_jobs=spec.engine_jobs, faults=spec.faults,
                    **options
                ),
                spec.repetitions,
            )
        if spec.engine == "model":
            breakdown = predict_breakdown(spec.algorithm, pmap, spec.msg_bytes, **options)
            return TimedPoint(seconds=breakdown.total, phases=dict(breakdown.phases))
        return self._timed_min(
            lambda: run_alltoall(
                spec.algorithm, pmap, spec.msg_bytes, validate=False, keep_job=False,
                fold=spec.fold, engine_jobs=spec.engine_jobs, faults=spec.faults,
                **options
            ),
            spec.repetitions,
        )

    def run_specs(self, specs: list[PointSpec]) -> list[TimedPoint]:
        if self.executor is None:
            return [self.run_spec(spec) for spec in specs]
        return self.executor.run(specs)

    def _timed_min(self, run_once, repetitions: int | None = None) -> TimedPoint:
        """Minimum-of-repetitions timing; the phase breakdown comes from the fastest run."""
        samples: list[float] = []
        best = None
        for _ in range(repetitions if repetitions is not None else self.repetitions):
            outcome = run_once()
            samples.append(outcome.elapsed)
            if best is None or outcome.elapsed < best.elapsed:
                best = outcome
        return TimedPoint(seconds=min_of_runs(samples), phases=dict(best.phase_times))

    # -- sweeps ----------------------------------------------------------------
    def size_sweep(
        self,
        algorithm: str,
        *,
        msg_sizes=PAPER_MESSAGE_SIZES,
        num_nodes: int | None = None,
        label: str | None = None,
        **options,
    ) -> DataSeries:
        """Sweep the per-destination message size at a fixed node count."""
        nodes = self.cluster.num_nodes if num_nodes is None else num_nodes
        specs = [self.point_spec(algorithm, msg_bytes, nodes, **options) for msg_bytes in msg_sizes]
        series = DataSeries(label=label or algorithm)
        for msg_bytes, point in zip(msg_sizes, self.run_specs(specs)):
            series.add(msg_bytes, point.seconds, phases=point.phases)
        return series

    def node_sweep(
        self,
        algorithm: str,
        *,
        msg_bytes: int,
        node_counts=PAPER_NODE_COUNTS,
        label: str | None = None,
        **options,
    ) -> DataSeries:
        """Sweep the node count at a fixed message size."""
        specs = [self.point_spec(algorithm, msg_bytes, nodes, **options) for nodes in node_counts]
        series = DataSeries(label=label or algorithm)
        for nodes, point in zip(node_counts, self.run_specs(specs)):
            series.add(nodes, point.seconds, phases=point.phases)
        return series

    def phase_series(
        self,
        algorithm: str,
        phase: str,
        *,
        msg_sizes=PAPER_MESSAGE_SIZES,
        num_nodes: int | None = None,
        label: str | None = None,
        **options,
    ) -> DataSeries:
        """Sweep the message size and report the duration of a single internal phase."""
        nodes = self.cluster.num_nodes if num_nodes is None else num_nodes
        specs = [self.point_spec(algorithm, msg_bytes, nodes, **options) for msg_bytes in msg_sizes]
        series = DataSeries(label=label or f"{algorithm}:{phase}")
        for msg_bytes, point in zip(msg_sizes, self.run_specs(specs)):
            series.add(msg_bytes, point.phases.get(phase, 0.0), phases=point.phases)
        return series
