"""Timing harness shared by every figure definition.

A :class:`BenchmarkHarness` is bound to one machine (cluster preset + ppn)
and one *engine*:

* ``engine="simulate"`` runs the exchange on the discrete-event simulator —
  exact per-message accounting, practical at reduced scale (a few hundred
  ranks);
* ``engine="model"`` evaluates the analytic cost model — instant, used to
  regenerate the figures at the paper's full scale (32 nodes x 112 ranks).

The paper reports the minimum of three repetitions for every point; the
harness keeps that policy (``repetitions`` parameter) even though the
simulator is deterministic, so measured-system backends can reuse the same
interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runner import run_alltoall, run_workload
from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.machine.process_map import ProcessMap
from repro.model.predict import predict_breakdown, predict_workload_breakdown
from repro.bench.datasets import DataSeries
from repro.utils.statistics import min_of_runs

__all__ = ["BenchmarkHarness", "PAPER_MESSAGE_SIZES", "PAPER_NODE_COUNTS", "TimedPoint"]

#: Per-destination message sizes the paper sweeps (4 B to 4096 B).
PAPER_MESSAGE_SIZES: tuple[int, ...] = (4, 16, 64, 256, 1024, 4096)

#: Node counts the paper scales over (2 to 32 nodes).
PAPER_NODE_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32)

_ENGINES = ("simulate", "model")


@dataclass
class TimedPoint:
    """Result of timing one configuration."""

    seconds: float
    phases: dict[str, float] = field(default_factory=dict)


class BenchmarkHarness:
    """Times all-to-all configurations on one machine through one engine."""

    def __init__(
        self,
        cluster: Cluster,
        ppn: int,
        *,
        engine: str = "model",
        repetitions: int = 1,
    ) -> None:
        if engine not in _ENGINES:
            raise ConfigurationError(f"unknown engine {engine!r}; choose from {_ENGINES}")
        if repetitions <= 0:
            raise ConfigurationError("repetitions must be positive")
        self.cluster = cluster
        self.ppn = ppn
        self.engine = engine
        self.repetitions = repetitions

    # -- configuration ------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.cluster.name}: up to {self.cluster.num_nodes} nodes x {self.ppn} ppn, "
            f"engine={self.engine}"
        )

    def process_map(self, num_nodes: int) -> ProcessMap:
        if num_nodes > self.cluster.num_nodes:
            raise ConfigurationError(
                f"requested {num_nodes} nodes but the cluster has {self.cluster.num_nodes}"
            )
        return ProcessMap(self.cluster, ppn=self.ppn, num_nodes=num_nodes)

    # -- timing --------------------------------------------------------------
    def time_point(self, algorithm: str, msg_bytes: int, num_nodes: int, **options) -> TimedPoint:
        """Time one (algorithm, message size, node count) configuration."""
        pmap = self.process_map(num_nodes)
        if self.engine == "model":
            breakdown = predict_breakdown(algorithm, pmap, msg_bytes, **options)
            return TimedPoint(seconds=breakdown.total, phases=dict(breakdown.phases))
        return self._timed_min(
            lambda: run_alltoall(
                algorithm, pmap, msg_bytes, validate=False, keep_job=False, **options
            )
        )

    def workload_point(self, algorithm: str, matrix, num_nodes: int, **options) -> TimedPoint:
        """Time one non-uniform workload (algorithm, :class:`~repro.workloads.TrafficMatrix`, node count).

        The matrix must describe exactly ``num_nodes * ppn`` ranks.  With the
        model engine the point is priced by
        :func:`repro.model.predict.predict_workload_breakdown`; with the
        simulate engine the exchange runs on the discrete-event simulator,
        following the same minimum-of-repetitions policy as
        :meth:`time_point`.
        """
        pmap = self.process_map(num_nodes)
        if matrix.nprocs != pmap.nprocs:
            raise ConfigurationError(
                f"traffic matrix describes {matrix.nprocs} ranks but the harness "
                f"point uses {pmap.nprocs} ({num_nodes} nodes x {self.ppn} ppn)"
            )
        if self.engine == "model":
            breakdown = predict_workload_breakdown(algorithm, pmap, matrix, **options)
            return TimedPoint(seconds=breakdown.total, phases=dict(breakdown.phases))
        return self._timed_min(
            lambda: run_workload(
                algorithm, pmap, matrix, validate=False, keep_job=False, **options
            )
        )

    def _timed_min(self, run_once) -> TimedPoint:
        """Minimum-of-repetitions timing; the phase breakdown comes from the fastest run."""
        samples: list[float] = []
        best = None
        for _ in range(self.repetitions):
            outcome = run_once()
            samples.append(outcome.elapsed)
            if best is None or outcome.elapsed < best.elapsed:
                best = outcome
        return TimedPoint(seconds=min_of_runs(samples), phases=dict(best.phase_times))

    # -- sweeps ----------------------------------------------------------------
    def size_sweep(
        self,
        algorithm: str,
        *,
        msg_sizes=PAPER_MESSAGE_SIZES,
        num_nodes: int | None = None,
        label: str | None = None,
        **options,
    ) -> DataSeries:
        """Sweep the per-destination message size at a fixed node count."""
        nodes = self.cluster.num_nodes if num_nodes is None else num_nodes
        series = DataSeries(label=label or algorithm)
        for msg_bytes in msg_sizes:
            point = self.time_point(algorithm, msg_bytes, nodes, **options)
            series.add(msg_bytes, point.seconds, phases=point.phases)
        return series

    def node_sweep(
        self,
        algorithm: str,
        *,
        msg_bytes: int,
        node_counts=PAPER_NODE_COUNTS,
        label: str | None = None,
        **options,
    ) -> DataSeries:
        """Sweep the node count at a fixed message size."""
        series = DataSeries(label=label or algorithm)
        for nodes in node_counts:
            point = self.time_point(algorithm, msg_bytes, nodes, **options)
            series.add(nodes, point.seconds, phases=point.phases)
        return series

    def phase_series(
        self,
        algorithm: str,
        phase: str,
        *,
        msg_sizes=PAPER_MESSAGE_SIZES,
        num_nodes: int | None = None,
        label: str | None = None,
        **options,
    ) -> DataSeries:
        """Sweep the message size and report the duration of a single internal phase."""
        nodes = self.cluster.num_nodes if num_nodes is None else num_nodes
        series = DataSeries(label=label or f"{algorithm}:{phase}")
        for msg_bytes in msg_sizes:
            point = self.time_point(algorithm, msg_bytes, nodes, **options)
            series.add(msg_bytes, point.phases.get(phase, 0.0), phases=point.phases)
        return series
