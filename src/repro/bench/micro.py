"""Hot-path microbenchmarks of the discrete-event simulator.

Every figure producer, ablation sweep and ``repro-bench verify`` run funnels
through the same hot path: the event loop in :mod:`repro.netsim` and the
matching/timing layer in :mod:`repro.simmpi`.  This module times that hot
path directly on a canonical set of simulated jobs — the paper's exchange
algorithms at 4 to 64 nodes, uniform and skewed traffic — and records the
results in a committed JSON file (``BENCH_simmpi.json``) so the repository
carries a real performance trajectory instead of an anecdote.

The report file has up to three sections:

``baseline``
    The pre-optimization measurement recorded once at the seed of the
    hot-path overhaul PR.  Never overwritten by a normal run.
``current``
    The most recent committed measurement (what CI compares against).
``speedup``
    Per-point ``baseline_wall / current_wall`` ratios, derived whenever both
    sections share a point.

Wall-clock times are machine-dependent, so cross-machine comparisons (the
CI smoke job runs on whatever runner it gets) are scaled by a *calibration
probe*: a fixed pure-Python workload with the same flavour of work as the
simulator (heap churn, integer arithmetic, small NumPy copies) timed on the
recording machine and again on the checking machine.  A point only counts
as regressed when it is slower than the committed time by more than the
tolerance *after* that scaling.
"""

from __future__ import annotations

import heapq
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.runner import run_alltoall, run_workload
from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system
from repro.workloads import make_pattern

__all__ = [
    "MicroJob",
    "MicroResult",
    "CANONICAL_JOBS",
    "quick_jobs",
    "run_job",
    "run_suite",
    "calibrate",
    "load_report",
    "write_report",
    "merge_results",
    "compare_results",
    "format_results",
    "DEFAULT_REPORT_PATH",
    "DEFAULT_TOLERANCE",
]

#: Report file committed at the repository root.
DEFAULT_REPORT_PATH = Path(__file__).resolve().parents[3] / "BENCH_simmpi.json"

#: Maximum tolerated slowdown versus the committed measurement (25 %).
DEFAULT_TOLERANCE = 0.25

_SCHEMA = 1


@dataclass(frozen=True)
class MicroJob:
    """One canonical simulated job the perf suite times."""

    key: str
    kind: str  # "uniform" | "workload"
    algorithm: str
    nodes: int
    ppn: int
    msg_bytes: int
    system: str = "dane"
    pattern: str | None = None  # workload jobs only
    pattern_seed: int = 0
    #: Member of the ``--quick`` subset (CI smoke / fast local check).
    quick: bool = False
    #: Run symmetry-folded ("on"); the default times the full-width engine.
    fold: str = "off"
    #: Worker threads of the conservative-lookahead parallel engine
    #: (1 = the serial engine; results are bit-identical at any value).
    engine_jobs: int = 1

    @property
    def nprocs(self) -> int:
        return self.nodes * self.ppn

    def describe(self) -> str:
        traffic = self.pattern if self.pattern is not None else f"{self.msg_bytes}B uniform"
        folded = ", folded" if self.fold != "off" else ""
        parallel = f", {self.engine_jobs} workers" if self.engine_jobs != 1 else ""
        return (
            f"{self.algorithm} @ {self.nodes} nodes x {self.ppn} ppn "
            f"({traffic}{folded}{parallel})"
        )


def _uniform(key, algorithm, nodes, ppn, msg_bytes=256, quick=False, fold="off",
             engine_jobs=1):
    return MicroJob(key=key, kind="uniform", algorithm=algorithm, nodes=nodes,
                    ppn=ppn, msg_bytes=msg_bytes, quick=quick, fold=fold,
                    engine_jobs=engine_jobs)


def _workload(key, algorithm, nodes, ppn, pattern, msg_bytes=64, quick=False,
              engine_jobs=1):
    return MicroJob(key=key, kind="workload", algorithm=algorithm, nodes=nodes,
                    ppn=ppn, msg_bytes=msg_bytes, pattern=pattern, quick=quick,
                    engine_jobs=engine_jobs)


#: The canonical suite.  Keys are stable identifiers: changing a job's shape
#: means renaming its key, so stored measurements never silently change
#: meaning.  The 64-node pairwise point is the headline O(P^2)-message job.
CANONICAL_JOBS: tuple[MicroJob, ...] = (
    _uniform("pairwise/4n8p/256B", "pairwise", 4, 8, quick=True),
    _uniform("pairwise/16n8p/256B", "pairwise", 16, 8, quick=True),
    _uniform("pairwise/64n8p/256B", "pairwise", 64, 8),
    _uniform("bruck/4n8p/256B", "bruck", 4, 8, quick=True),
    _uniform("bruck/16n8p/256B", "bruck", 16, 8),
    _uniform("bruck/64n8p/256B", "bruck", 64, 8),
    _uniform("hierarchical/4n8p/256B", "hierarchical", 4, 8, quick=True),
    _uniform("hierarchical/16n8p/256B", "hierarchical", 16, 8),
    _uniform("hierarchical/64n8p/256B", "hierarchical", 64, 8),
    _uniform("nonblocking/16n8p/256B", "nonblocking", 16, 8, quick=True),
    _uniform("nonblocking/32n8p/256B", "nonblocking", 32, 8),
    _workload("workload-pairwise/8n8p/skewed-moe", "pairwise", 8, 8, "skewed-moe",
              quick=True),
    _workload("workload-node-aware/8n8p/skewed-moe", "node-aware", 8, 8, "skewed-moe"),
    # Symmetry-folded points.  The 64n8p pair shares its shape with the
    # unfolded pairwise/64n8p headline job, so their ratio is the measured
    # fold speedup at a shape the full engine can still run; the two
    # paper-scale points have no unfolded counterpart by construction.
    _uniform("fold-pairwise/64n8p/256B", "pairwise", 64, 8, quick=True, fold="on"),
    _uniform("fold-pairwise/65536n1p/64B", "pairwise", 65536, 1, msg_bytes=64,
             quick=True, fold="on"),
    _uniform("fold-node-aware/1536n112p/4B", "node-aware", 1536, 112, msg_bytes=4,
             fold="on"),
    # Parallel-engine points.  Each shape is timed serially and at N
    # workers, so the stored ratio is the measured parallel-engine cost or
    # benefit on the recording machine (on a single-core, GIL-bound box the
    # exact-merge engine cannot beat serial; the points exist to keep its
    # overhead on the recorded trajectory and in the CI smoke gate).  The
    # 512-node skewed-moe job is non-foldable (no node symmetry), so the
    # parallel engine is the only sub-serial-wall path it could ever have.
    # (serial counterpart of the 4w point: the pairwise/16n8p/256B job above)
    _uniform("par-pairwise/16n8p/256B/4w", "pairwise", 16, 8, quick=True,
             engine_jobs=4),
    _workload("par-workload-pairwise/512n1p/skewed-moe/1w", "pairwise", 512, 1,
              "skewed-moe"),
    _workload("par-workload-pairwise/512n1p/skewed-moe/8w", "pairwise", 512, 1,
              "skewed-moe", engine_jobs=8),
)


def quick_jobs() -> tuple[MicroJob, ...]:
    """The fast subset used by ``repro-bench perf --quick`` and CI."""
    return tuple(job for job in CANONICAL_JOBS if job.quick)


@dataclass
class MicroResult:
    """Timing of one :class:`MicroJob` (best over ``repeats`` runs)."""

    key: str
    description: str
    wall_seconds: float
    sim_elapsed: float
    events: int
    repeats: int

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.events / self.wall_seconds

    def as_dict(self) -> dict:
        return {
            "description": self.description,
            "wall_seconds": self.wall_seconds,
            "sim_elapsed": self.sim_elapsed,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "repeats": self.repeats,
        }


def _job_matrix(job: MicroJob):
    return make_pattern(job.pattern, job.nprocs, job.msg_bytes, seed=job.pattern_seed)


def run_job(job: MicroJob, repeats: int = 3) -> MicroResult:
    """Time one job: best wall-clock over ``repeats`` fresh simulations."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    cluster = get_system(job.system, job.nodes)
    pmap = ProcessMap(cluster, ppn=job.ppn, num_nodes=job.nodes)
    matrix = _job_matrix(job) if job.kind == "workload" else None

    best_wall = float("inf")
    sim_elapsed = 0.0
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        if matrix is not None:
            outcome = run_workload(job.algorithm, pmap, matrix, validate=False,
                                   fold=job.fold, engine_jobs=job.engine_jobs)
        else:
            outcome = run_alltoall(job.algorithm, pmap, job.msg_bytes, validate=False,
                                   fold=job.fold, engine_jobs=job.engine_jobs)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
            sim_elapsed = outcome.elapsed
            events = outcome.job.events_processed
    return MicroResult(
        key=job.key,
        description=job.describe(),
        wall_seconds=best_wall,
        sim_elapsed=sim_elapsed,
        events=events,
        repeats=repeats,
    )


def run_suite(
    *,
    quick: bool = False,
    repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> list[MicroResult]:
    """Run the canonical suite (or its quick subset) and return the results."""
    jobs = quick_jobs() if quick else CANONICAL_JOBS
    results = []
    for job in jobs:
        if progress is not None:
            progress(f"timing {job.key} ({job.describe()})")
        results.append(run_job(job, repeats=repeats))
    return results


# ---------------------------------------------------------------------------
# Machine-speed calibration
# ---------------------------------------------------------------------------


def _calibration_probe() -> None:
    """Fixed workload with the simulator's flavour of work (no simulator code)."""
    heap: list[tuple[int, int]] = []
    push, pop = heapq.heappush, heapq.heappop
    acc = 0
    for i in range(120_000):
        push(heap, ((i * 2654435761) % 1000003, i))
        acc += i ^ (acc >> 3)
    while heap:
        acc += pop(heap)[0]
    src = np.arange(256, dtype=np.uint8)
    dst = np.zeros(256, dtype=np.uint8)
    for _ in range(2_000):
        dst[:] = src


def calibrate(repeats: int = 3) -> float:
    """Seconds the calibration probe takes on this machine (best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _calibration_probe()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# Report file
# ---------------------------------------------------------------------------


def load_report(path: Path | str = DEFAULT_REPORT_PATH) -> dict:
    """Read the report file; an empty skeleton if it does not exist yet."""
    path = Path(path)
    if not path.exists():
        return {"schema": _SCHEMA, "suite": "repro.bench.micro"}
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read perf report at {path}: {exc}") from exc
    if report.get("schema") != _SCHEMA:
        raise ConfigurationError(
            f"perf report at {path} has schema {report.get('schema')!r}, expected {_SCHEMA}"
        )
    return report


def _section(results: Sequence[MicroResult], calibration: float, label: str) -> dict:
    return {
        "label": label,
        "python": platform.python_version(),
        "calibration_seconds": calibration,
        "points": {r.key: r.as_dict() for r in results},
    }


def merge_results(
    report: dict,
    results: Sequence[MicroResult],
    calibration: float,
    *,
    label: str,
    section: str = "current",
) -> dict:
    """Merge ``results`` into ``report[section]`` and refresh the speedup table.

    Points not measured by this run (e.g. a ``--quick`` run) keep their stored
    values, so a quick CI check never erases the full committed measurement.
    """
    if section not in ("baseline", "current"):
        raise ConfigurationError(f"unknown report section {section!r}")
    old_section = report.get(section, {})
    existing = old_section.get("points", {})
    merged = _section(results, calibration, label)
    for key, point in existing.items():
        if key not in merged["points"]:
            # A point kept from an earlier (possibly different-machine) run
            # must carry the calibration it was measured under — otherwise a
            # later --check would scale its wall time by this run's probe.
            kept = dict(point)
            kept.setdefault("calibration_seconds",
                            old_section.get("calibration_seconds"))
            merged["points"][key] = kept
    report[section] = merged

    baseline = report.get("baseline", {}).get("points", {})
    current = report.get("current", {}).get("points", {})
    speedup = {}
    for key, base_point in baseline.items():
        cur_point = current.get(key)
        if cur_point and cur_point["wall_seconds"] > 0.0:
            speedup[key] = base_point["wall_seconds"] / cur_point["wall_seconds"]
    if speedup:
        report["speedup"] = speedup
    return report


def write_report(report: dict, path: Path | str = DEFAULT_REPORT_PATH) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Regression check
# ---------------------------------------------------------------------------


@dataclass
class _CheckOutcome:
    problems: list[str] = field(default_factory=list)
    compared: int = 0


def compare_results(
    report: dict,
    results: Sequence[MicroResult],
    calibration: float,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Compare fresh ``results`` against ``report["current"]``.

    Returns human-readable problem strings (empty list = no regression).
    Committed wall-clock times are scaled by the ratio of this machine's
    calibration probe to the recording machine's before applying
    ``tolerance``, so a slower CI runner is not reported as a regression.
    """
    if tolerance < 0.0:
        raise ConfigurationError(f"tolerance must be non-negative, got {tolerance}")
    section = report.get("current")
    if not section or not section.get("points"):
        return ["report has no 'current' section to compare against; "
                "record one with `repro-bench perf` first"]
    section_cal = float(section.get("calibration_seconds") or 0.0)
    outcome = _CheckOutcome()
    for result in results:
        committed = section["points"].get(result.key)
        if committed is None:
            continue  # new point: nothing to regress against
        outcome.compared += 1
        # Points merged from an earlier run carry their own calibration.
        recorded_cal = float(committed.get("calibration_seconds") or section_cal)
        scale = calibration / recorded_cal if recorded_cal > 0.0 else 1.0
        allowed = committed["wall_seconds"] * scale * (1.0 + tolerance)
        if result.wall_seconds > allowed:
            outcome.problems.append(
                f"{result.key}: {result.wall_seconds:.3f}s wall exceeds the "
                f"committed {committed['wall_seconds']:.3f}s "
                f"(machine-scaled limit {allowed:.3f}s, tolerance {tolerance:.0%})"
            )
    if outcome.compared == 0:
        outcome.problems.append(
            "no measured point overlaps the committed report; the suite and "
            "the report have diverged — re-record with `repro-bench perf`"
        )
    return outcome.problems


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def format_results(results: Sequence[MicroResult], report: dict | None = None) -> str:
    """Aligned table of one run, with speedup vs baseline when available."""
    baseline = (report or {}).get("baseline", {}).get("points", {})
    lines = [
        f"{'point':<40s} {'wall s':>9s} {'events':>9s} {'events/s':>12s} {'vs baseline':>12s}"
    ]
    for result in results:
        base = baseline.get(result.key)
        if base and result.wall_seconds > 0.0:
            ratio = f"{base['wall_seconds'] / result.wall_seconds:10.2f}x"
        else:
            ratio = f"{'-':>11s}"
        lines.append(
            f"{result.key:<40s} {result.wall_seconds:9.3f} {result.events:9d} "
            f"{result.events_per_sec:12.0f} {ratio:>12s}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover - thin CLI shim
    """Allow ``python -m repro.bench.micro`` as an alias of ``repro-bench perf``."""
    from repro.cli import main as cli_main

    return cli_main(["perf", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
