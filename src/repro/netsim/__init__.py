"""Discrete-event simulation core.

This package contains the generic machinery underneath the simulated MPI
layer: a time-ordered event queue, serial resources used to model NIC
injection serialization, and a trace recorder for per-message accounting.
It knows nothing about MPI semantics — those live in :mod:`repro.simmpi`.
"""

from repro.netsim.events import Event, EventQueue
from repro.netsim.resources import SerialResource, ThroughputTracker
from repro.netsim.simulator import Simulator
from repro.netsim.trace import MessageRecord, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "SerialResource",
    "ThroughputTracker",
    "Simulator",
    "MessageRecord",
    "TraceRecorder",
]
