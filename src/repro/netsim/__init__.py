"""Discrete-event simulation core.

This package contains the generic machinery underneath the simulated MPI
layer: a time-ordered event queue, serial resources used to model NIC
injection serialization, inter-node fabric topologies with per-link
contention, and a trace recorder for per-message accounting.  It knows
nothing about MPI semantics — those live in :mod:`repro.simmpi`.
"""

from repro.netsim.events import Event, EventQueue
from repro.netsim.fabric import (
    DragonflyFabric,
    FabricSpec,
    FabricState,
    FatTreeFabric,
    FullBisectionFabric,
    fabric_from_payload,
    list_fabrics,
    parse_fabric,
)
from repro.netsim.resources import SerialResource, ThroughputTracker
from repro.netsim.simulator import Simulator
from repro.netsim.trace import MessageRecord, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "SerialResource",
    "ThroughputTracker",
    "Simulator",
    "MessageRecord",
    "TraceRecorder",
    "FabricSpec",
    "FabricState",
    "FullBisectionFabric",
    "FatTreeFabric",
    "DragonflyFabric",
    "fabric_from_payload",
    "list_fabrics",
    "parse_fabric",
]
