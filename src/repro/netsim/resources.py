"""Serial resources used to model shared hardware.

The dominant shared resource in the paper's setting is the per-node NIC:
when 112 ranks on a node all inject inter-node messages, those messages
serialize on the NIC's message-processing pipeline and injection bandwidth.
:class:`SerialResource` models exactly that: a single server that handles
one reservation at a time, in the order reservations are requested.

:class:`ThroughputTracker` is a lighter-weight accounting helper used to
report how many bytes crossed a resource (for the intra- vs inter-node
breakdown figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["SerialResource", "ThroughputTracker"]


@dataclass
class SerialResource:
    """A FIFO single-server resource with an availability horizon.

    ``reserve(earliest_start, duration)`` books the resource for ``duration``
    seconds starting no earlier than ``earliest_start`` and no earlier than
    the end of the previous reservation, returning the (start, end) interval.
    This is the classic "available-at" NIC model: cheap (O(1) per message)
    yet capturing serialization and queueing delay.
    """

    name: str = "resource"
    available_at: float = 0.0
    busy_time: float = 0.0
    reservations: int = 0

    def reserve(self, earliest_start: float, duration: float) -> tuple[float, float]:
        if duration < 0.0:
            raise SimulationError(f"{self.name}: reservation duration must be non-negative")
        if earliest_start < 0.0:
            raise SimulationError(f"{self.name}: reservation start must be non-negative")
        start = max(earliest_start, self.available_at)
        end = start + duration
        self.available_at = end
        self.busy_time += duration
        self.reservations += 1
        return start, end

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` during which the resource was busy."""
        if horizon <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset(self) -> None:
        self.available_at = 0.0
        self.busy_time = 0.0
        self.reservations = 0


@dataclass
class ThroughputTracker:
    """Accumulates message and byte counts crossing a resource or level.

    ``per_key`` maps a key to a **mutable** ``[messages, bytes]`` pair so
    the steady state of a record is two in-place increments (the simulated
    message router inlines exactly this); consumers wanting an immutable
    view normalise with ``tuple(counts)``.
    """

    name: str = "traffic"
    messages: int = 0
    total_bytes: int = 0
    per_key: dict = field(default_factory=dict)

    def record(self, nbytes: int, key=None) -> None:
        if nbytes < 0:
            raise SimulationError("cannot record a negative byte count")
        self.messages += 1
        self.total_bytes += nbytes
        if key is not None:
            counts = self.per_key.get(key)
            if counts is None:
                self.per_key[key] = [1, nbytes]
            else:
                counts[0] += 1
                counts[1] += nbytes

    def merge(self, other: "ThroughputTracker") -> None:
        self.messages += other.messages
        self.total_bytes += other.total_bytes
        for key, (msgs, byts) in other.per_key.items():
            counts = self.per_key.get(key)
            if counts is None:
                self.per_key[key] = [msgs, byts]
            else:
                counts[0] += msgs
                counts[1] += byts

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "messages": self.messages,
            "bytes": self.total_bytes,
            "per_key": {key: tuple(counts) for key, counts in self.per_key.items()},
        }
