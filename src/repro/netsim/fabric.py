"""Inter-node fabric topologies with per-link bandwidth-sharing contention.

Upstream of :mod:`repro.simmpi`: the timing model consults the fabric for
every inter-node message; downstream of :mod:`repro.machine`, whose
:class:`~repro.machine.cluster.Cluster` carries a fabric *specification*.

Until this module existed, every inter-node message paid only the sender's
NIC injection plus a contention-free ``alpha + n * beta`` wire term — two
nodes never shared a link, so a fat-tree and a dragonfly were
indistinguishable and incast traffic showed no congestion at all.  The
fabric layer closes that gap with a deliberately small model:

* a **specification** (:class:`FullBisectionFabric`, :class:`FatTreeFabric`,
  :class:`DragonflyFabric`) is a frozen, picklable, JSON-serializable value
  that lives on the :class:`~repro.machine.cluster.Cluster` and is part of
  every benchmark point's cache identity;
* ``spec.build(num_nodes, params)`` materialises the runtime
  :class:`FabricState`: the concrete shared links (each a
  :class:`~repro.netsim.resources.SerialResource`) and a precomputed route —
  a tuple of links — for every ordered node pair;
* the timing model calls :meth:`FabricState.traverse` *after* NIC
  injection: the message reserves each link of its route in order (FIFO,
  the same available-at discipline as the NIC), each hop occupying the link
  for ``hop_overhead + nbytes / link_bandwidth`` seconds.  Contention is
  therefore queueing delay on shared links, computed in O(route length) =
  O(1) per message — the PR 4 hot-path budget is preserved.

The default :class:`FullBisectionFabric` builds **no** state at all
(``build`` returns ``None``): the timing model keeps its original inlined
arithmetic, so default simulated timings are bit-identical to the pinned
golden fixture.  A fat-tree with ``oversubscription <= 1`` is rearrangeably
non-blocking and likewise builds no state, which is what makes the
``oversubscription=1 == full-bisection`` identity exact rather than
approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import ConfigurationError, SimulationError
from repro.netsim.resources import SerialResource

__all__ = [
    "FabricSpec",
    "FullBisectionFabric",
    "FatTreeFabric",
    "DragonflyFabric",
    "FabricState",
    "FoldedFabricView",
    "FABRIC_KINDS",
    "parse_fabric",
    "fabric_from_payload",
    "list_fabrics",
]


# ---------------------------------------------------------------------------
# Runtime state
# ---------------------------------------------------------------------------


class _Link:
    """One shared fabric link: a FIFO serial resource with a byte rate.

    ``byte_time`` is ``1 / bandwidth`` and ``hop_overhead`` the per-message
    switch processing cost, both precomputed so a traversal hop is two
    multiplies and a comparison on the hot path.

    Besides the :class:`~repro.netsim.resources.SerialResource` accounting
    (reservations, busy time), each link accumulates the bytes it moved and
    the queueing delay messages spent waiting behind earlier traffic —
    ``queued_time`` is the link's time-at-saturation proxy and
    ``max_queue_delay`` its worst single-message stall.

    ``flap`` is ``None`` on a healthy link; fault injection
    (:mod:`repro.faults.apply`) installs a ``(period, on_window, phase)``
    tuple that :meth:`FabricState.traverse` honours by stalling messages
    whose transmission would begin in an off-window.
    """

    __slots__ = ("name", "byte_time", "hop_overhead", "resource",
                 "bytes_moved", "queued_time", "max_queue_delay", "flap")

    def __init__(self, name: str, bandwidth: float, hop_overhead: float) -> None:
        if bandwidth <= 0.0:
            raise ConfigurationError(f"link {name}: bandwidth must be positive")
        if hop_overhead < 0.0:
            raise ConfigurationError(f"link {name}: hop overhead must be non-negative")
        self.name = name
        self.byte_time = 1.0 / bandwidth
        self.hop_overhead = hop_overhead
        self.resource = SerialResource(name=name)
        self.bytes_moved = 0
        self.queued_time = 0.0
        self.max_queue_delay = 0.0
        self.flap = None


class FabricState:
    """Materialised fabric: shared links plus a route per ordered node pair.

    Built once per :class:`~repro.simmpi.p2p.TimingModel` (i.e. once per
    simulated job) by ``spec.build``; never shared between jobs, so link
    occupancy always starts from an idle fabric.
    """

    __slots__ = ("name", "links", "routes", "sink", "_route_counts", "_min_route_latency")

    def __init__(self, name: str, links: list[_Link],
                 routes: dict[tuple[int, int], tuple[_Link, ...]]) -> None:
        self.name = name
        self.links = links
        self.routes = routes
        #: Optional :class:`repro.obs.sink.EventSink` receiving one ``link``
        #: event per hop; ``None`` costs one pointer test per traversal.
        self.sink = None
        #: Lazily computed number of node-pair routes crossing each link
        #: (keyed by ``id(link)``); only the analytic uniform bound needs it.
        self._route_counts: dict[int, int] | None = None
        #: Memoized :meth:`min_route_latency` (pure function of the routes).
        self._min_route_latency: float | None = None

    def route(self, src_node: int, dst_node: int) -> tuple[_Link, ...]:
        """The shared links a ``src_node -> dst_node`` message traverses."""
        try:
            return self.routes[(src_node, dst_node)]
        except KeyError:
            raise SimulationError(
                f"fabric {self.name!r} has no route {src_node} -> {dst_node}"
            ) from None

    def min_route_latency(self) -> float:
        """Uncongested latency of the cheapest inter-node route.

        The sum of ``hop_overhead`` over the shortest route between any two
        distinct nodes — the floor an empty fabric adds to a zero-byte
        message.  Intra-switch routes are empty tuples and contribute
        ``0.0``; a fabric with no routes at all (degenerate single-node
        build) also reports ``0.0``.  This is the fabric's contribution to
        the conservative-lookahead window used by the parallel engine
        (:mod:`repro.simmpi.parallel`): no message between nodes can cross
        the fabric faster than this.
        """
        cached = self._min_route_latency
        if cached is None:
            cached = min(
                (sum(link.hop_overhead for link in route)
                 for route in self.routes.values()),
                default=0.0,
            )
            self._min_route_latency = cached
        return cached

    def traverse(self, src_node: int, dst_node: int, nbytes: int, start: float) -> float:
        """Push ``nbytes`` through the route, reserving each link in order.

        Returns the time the message exits the last shared link (``start``
        unchanged for an empty route).  Each hop applies the
        :class:`~repro.netsim.resources.SerialResource` discipline inline:
        begin no earlier than the link frees up, occupy it for
        ``hop_overhead + nbytes * byte_time``.  A flapping link
        additionally stalls the message to the start of the next on-window
        (only the start must fall inside a window, so large messages still
        make progress); the stall lands in ``queued_time`` like any other
        wait.
        """
        t = start
        sink = self.sink
        for link in self.routes[(src_node, dst_node)]:
            occupancy = link.hop_overhead + nbytes * link.byte_time
            resource = link.resource
            available = resource.available_at
            begin = t if t >= available else available
            flap = link.flap
            if flap is not None:
                period, on_window, phase = flap
                position = (begin - phase) % period
                if position >= on_window:
                    stalled = begin + (period - position)
                    if sink is not None:
                        sink.fault("flap-stall", link.name, begin, stalled,
                                   f"{nbytes} B held for the next on-window")
                    begin = stalled
            end = begin + occupancy
            resource.available_at = end
            resource.busy_time += occupancy
            resource.reservations += 1
            # Occupancy accounting off the timing arithmetic: `end` above is
            # computed exactly as before, these accumulators only observe it.
            link.bytes_moved += nbytes
            delay = begin - t
            link.queued_time += delay
            if delay > link.max_queue_delay:
                link.max_queue_delay = delay
            if sink is not None:
                sink.link(link.name, t, begin, end, nbytes, src_node, dst_node)
            t = end
        return t

    def statistics(self) -> list[dict]:
        """Per-link accounting for reports, metrics and tests.

        ``queued_time`` — total time messages spent waiting for the link
        (its time-at-saturation proxy); ``max_queue_delay`` — the worst
        single-message stall.
        """
        return [
            {
                "link": link.name,
                "messages": link.resource.reservations,
                "busy_time": link.resource.busy_time,
                "bytes": link.bytes_moved,
                "queued_time": link.queued_time,
                "max_queue_delay": link.max_queue_delay,
            }
            for link in self.links
        ]

    def phase_bound(self, pair_msgs, pair_bytes) -> float:
        """Analytic lower bound of a phase from the busiest shared link.

        ``pair_msgs[a][b]`` / ``pair_bytes[a][b]`` give the inter-node
        messages and bytes node ``a`` sends node ``b`` during the phase.
        Every (messages, bytes) load is pushed over its route; the phase can
        finish no sooner than the total occupancy of the busiest link.  This
        is the congestion-aware analogue of
        :func:`repro.model.loggp.nic_phase_bound`, used by the model layer.
        """
        occupancy: dict[int, float] = {}
        for (src, dst), route in self.routes.items():
            if not route:
                continue
            msgs = float(pair_msgs[src][dst])
            byts = float(pair_bytes[src][dst])
            if msgs <= 0.0 and byts <= 0.0:
                continue
            for link in route:
                load = msgs * link.hop_overhead + byts * link.byte_time
                key = id(link)
                occupancy[key] = occupancy.get(key, 0.0) + load
        return max(occupancy.values(), default=0.0)

    def uniform_phase_bound(self, msgs_per_pair: float, bytes_per_pair: float) -> float:
        """:meth:`phase_bound` when every node pair carries the same load.

        The per-link occupancy collapses to ``routes_through_link * load``,
        so after a one-time count of routes per link the bound costs
        O(links) per call — the analytic sweeps evaluate it once per cost
        model call and never need the O(nodes^2) pair matrices.
        """
        counts = self._route_counts
        if counts is None:
            counts = {}
            for route in self.routes.values():
                for link in route:
                    key = id(link)
                    counts[key] = counts.get(key, 0) + 1
            self._route_counts = counts
        if not counts:
            return 0.0
        by_id = {id(link): link for link in self.links}
        return max(
            count * (msgs_per_pair * by_id[key].hop_overhead
                     + bytes_per_pair * by_id[key].byte_time)
            for key, count in counts.items()
        )


class FoldedFabricView:
    """Multiplicity-weighted view of a :class:`FabricState` for folded jobs.

    A symmetry-folded job (:mod:`repro.machine.folding`) simulates only the
    sends of node 0's representative ranks, so a shared link would see only
    the fraction of its traffic that originates at the simulated nodes —
    a fat-tree uplink shared by ``hosts_per_switch`` nodes would be loaded
    by just one of them and contention would evaporate.  This view restores
    the absent nodes' load with two per-link multipliers:

    * the **aggregate weight** ``w_L`` — all node-pair routes crossing the
      link divided by the routes originating at simulated nodes — scales the
      *accounting* (``busy_time``, ``bytes``), so every link reports exactly
      the multiplicity-weighted totals of the full run;
    * the **aligned concurrency** ``a_L`` — the maximum, over destination
      offsets ``d``, of how many sources ``s`` route ``s -> (s + d) % N``
      through the link — scales the *timeline reservation*.  Under the
      node-rotation symmetry every folded-away node runs the representative's
      schedule at the same instants, so at any moment a link is contended by
      the sources aligned on the current offset, not by its whole-run
      average.  Reserving ``a_L`` occupancies per traversal reproduces the
      full run's per-link saturation (a fat-tree uplink's ``a_L`` is its
      ``hosts_per_switch``) without the burst amplification that scaling by
      ``w_L`` would cause on fan-in links (a downlink's ``w_L`` counts every
      remote switch, but only one switch converges on it at a time).

    Unlike the NIC and matching paths, which the mirror construction makes
    bit-exact, weighted link occupancy is an *aggregate-faithful smoothing*:
    per-message queueing is interleaved differently than in the full run.
    The differential fold gate therefore checks contended-fabric timings
    against a tolerance rather than bit equality (see
    :mod:`repro.verify.folding`).

    The view exposes the same ``traverse`` / ``statistics`` / ``sink``
    surface the timing model uses, so the hot path is unchanged.
    """

    __slots__ = ("state", "sim_nodes", "_weights", "_concurrency")

    def __init__(self, state: FabricState, sim_nodes: int) -> None:
        self.state = state
        self.sim_nodes = sim_nodes
        total: dict[int, int] = {}
        simulated: dict[int, int] = {}
        nodes = 0
        for (src, dst), route in state.routes.items():
            if src >= nodes:
                nodes = src + 1
            if dst >= nodes:
                nodes = dst + 1
            for link in route:
                key = id(link)
                total[key] = total.get(key, 0) + 1
                if src < sim_nodes:
                    simulated[key] = simulated.get(key, 0) + 1
        #: id(link) -> accounting multiplier.  Links never reached from a
        #: simulated node keep no weight: they are never traversed.
        self._weights = {
            key: total[key] / simulated[key] for key in total if key in simulated
        }
        #: id(link) -> timeline multiplier: max sources aligned on one
        #: destination offset (one O(nodes^2) sweep at construction).
        concurrency: dict[int, int] = {}
        for offset in range(1, nodes):
            per_offset: dict[int, int] = {}
            for src in range(nodes):
                route = state.routes.get((src, (src + offset) % nodes))
                if not route:
                    continue
                for link in route:
                    key = id(link)
                    per_offset[key] = per_offset.get(key, 0) + 1
            for key, count in per_offset.items():
                if count > concurrency.get(key, 0):
                    concurrency[key] = count
        self._concurrency = {
            key: float(concurrency.get(key, 1)) for key in self._weights
        }

    @property
    def name(self) -> str:
        return f"{self.state.name} [folded]"

    @property
    def sink(self):
        return self.state.sink

    @sink.setter
    def sink(self, value) -> None:
        self.state.sink = value

    @property
    def routes(self) -> dict[tuple[int, int], tuple[_Link, ...]]:
        return self.state.routes

    def fold_weight(self, link: _Link) -> float:
        """Accounting multiplier (``w_L``) applied to traversals of ``link``."""
        return self._weights.get(id(link), 1.0)

    def aligned_concurrency(self, link: _Link) -> float:
        """Timeline multiplier (``a_L``) applied to traversals of ``link``."""
        return self._concurrency.get(id(link), 1.0)

    def route(self, src_node: int, dst_node: int) -> tuple[_Link, ...]:
        return self.state.route(src_node, dst_node)

    def min_route_latency(self) -> float:
        """Cheapest uncongested route of the underlying fabric (unweighted)."""
        return self.state.min_route_latency()

    def traverse(self, src_node: int, dst_node: int, nbytes: int, start: float) -> float:
        """Weighted :meth:`FabricState.traverse`: same FIFO discipline, the
        timeline reservation scaled by the link's aligned concurrency and
        the accounting by its aggregate fold weight."""
        t = start
        state = self.state
        sink = state.sink
        weights = self._weights
        concurrency = self._concurrency
        for link in state.routes[(src_node, dst_node)]:
            key = id(link)
            occupancy = link.hop_overhead + nbytes * link.byte_time
            reserved = occupancy * concurrency.get(key, 1.0)
            weight = weights.get(key, 1.0)
            resource = link.resource
            available = resource.available_at
            begin = t if t >= available else available
            end = begin + reserved
            resource.available_at = end
            resource.busy_time += occupancy * weight
            resource.reservations += 1
            link.bytes_moved += int(nbytes * weight)
            delay = begin - t
            link.queued_time += delay
            if delay > link.max_queue_delay:
                link.max_queue_delay = delay
            if sink is not None:
                sink.link(link.name, t, begin, end, nbytes, src_node, dst_node)
            t = end
        return t

    def statistics(self) -> list[dict]:
        """Per-link accounting (the underlying state's, already weighted)."""
        return self.state.statistics()


# ---------------------------------------------------------------------------
# Specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FullBisectionFabric:
    """The contention-free default: every node pair has dedicated capacity.

    ``build`` returns ``None`` so the timing model keeps its original,
    fabric-free arithmetic — the bit-identical baseline every golden timing
    is pinned against.
    """

    kind: ClassVar[str] = "full-bisection"

    def build(self, num_nodes: int, params) -> FabricState | None:
        return None

    def payload(self) -> dict:
        return {"kind": self.kind}

    def describe(self) -> str:
        return "full bisection (contention-free)"


@dataclass(frozen=True)
class FatTreeFabric:
    """Two-level fat-tree: nodes under edge switches, shared up/down links.

    Parameters
    ----------
    hosts_per_switch:
        Nodes attached to each edge switch (``k / 2`` of a radix-``k``
        tree's edge layer).
    oversubscription:
        Ratio of attached host bandwidth to uplink bandwidth.  ``1`` is a
        non-blocking tree — by definition full bisection, so no shared
        links are built; ``4`` means four hosts share one host's worth of
        core bandwidth, the classic cost-reduced datacenter tree.

    Same-switch traffic never leaves the edge switch; cross-switch traffic
    reserves the source switch's uplink and the destination switch's
    downlink, each of bandwidth
    ``hosts_per_switch * injection_bandwidth / oversubscription``.
    """

    kind: ClassVar[str] = "fat-tree"

    hosts_per_switch: int = 4
    oversubscription: float = 2.0

    def __post_init__(self) -> None:
        if self.hosts_per_switch <= 0:
            raise ConfigurationError(
                f"hosts_per_switch must be positive, got {self.hosts_per_switch}"
            )
        if self.oversubscription < 1.0:
            raise ConfigurationError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )

    def build(self, num_nodes: int, params) -> FabricState | None:
        if self.oversubscription <= 1.0:
            return None
        hosts = self.hosts_per_switch
        num_switches = (num_nodes + hosts - 1) // hosts
        if num_switches <= 1:
            # Every node hangs off one edge switch: no traffic crosses the
            # (oversubscribed) core, so there is nothing to contend on.
            return None
        bandwidth = hosts * params.injection_bandwidth / self.oversubscription
        overhead = params.nic_message_overhead
        up = [_Link(f"ft-up{s}", bandwidth, overhead) for s in range(num_switches)]
        down = [_Link(f"ft-down{s}", bandwidth, overhead) for s in range(num_switches)]
        routes: dict[tuple[int, int], tuple[_Link, ...]] = {}
        for src in range(num_nodes):
            for dst in range(num_nodes):
                if src == dst:
                    continue
                s, d = src // hosts, dst // hosts
                routes[(src, dst)] = () if s == d else (up[s], down[d])
        return FabricState(self.describe(), up + down, routes)

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "hosts_per_switch": self.hosts_per_switch,
            "oversubscription": self.oversubscription,
        }

    def describe(self) -> str:
        return (
            f"fat-tree (hosts/switch={self.hosts_per_switch}, "
            f"oversubscription={self.oversubscription:g}:1)"
        )


@dataclass(frozen=True)
class DragonflyFabric:
    """Dragonfly: routers grouped, all-to-all global links between groups.

    Parameters
    ----------
    hosts_per_router:
        Nodes attached to each router.
    routers_per_group:
        Routers forming one group (connected by a group-local crossbar).
    global_taper:
        Ratio of a group's attached host bandwidth to each of its global
        links; real dragonflies taper the expensive global optics.

    Routing is minimal: same router — no shared link; same group — the
    source and destination routers' local ports; different groups — source
    router port, the direct ``src-group -> dst-group`` global link, then the
    destination router port.  Router ports carry
    ``hosts_per_router * injection_bandwidth``; a global link carries the
    whole group's host bandwidth divided by ``global_taper``.
    """

    kind: ClassVar[str] = "dragonfly"

    hosts_per_router: int = 2
    routers_per_group: int = 2
    global_taper: float = 2.0

    def __post_init__(self) -> None:
        if self.hosts_per_router <= 0:
            raise ConfigurationError(
                f"hosts_per_router must be positive, got {self.hosts_per_router}"
            )
        if self.routers_per_group <= 0:
            raise ConfigurationError(
                f"routers_per_group must be positive, got {self.routers_per_group}"
            )
        if self.global_taper <= 0.0:
            raise ConfigurationError(
                f"global_taper must be positive, got {self.global_taper}"
            )

    def build(self, num_nodes: int, params) -> FabricState | None:
        hosts = self.hosts_per_router
        num_routers = (num_nodes + hosts - 1) // hosts
        if num_routers <= 1:
            return None
        overhead = params.nic_message_overhead
        port_bw = hosts * params.injection_bandwidth
        local = [_Link(f"df-r{r}", port_bw, overhead) for r in range(num_routers)]
        rpg = self.routers_per_group
        num_groups = (num_routers + rpg - 1) // rpg
        group_bw = rpg * hosts * params.injection_bandwidth / self.global_taper
        glob: dict[tuple[int, int], _Link] = {}
        for a in range(num_groups):
            for b in range(num_groups):
                if a != b:
                    glob[(a, b)] = _Link(f"df-g{a}-{b}", group_bw, overhead)
        routes: dict[tuple[int, int], tuple[_Link, ...]] = {}
        for src in range(num_nodes):
            for dst in range(num_nodes):
                if src == dst:
                    continue
                rs, rd = src // hosts, dst // hosts
                if rs == rd:
                    routes[(src, dst)] = ()
                    continue
                gs, gd = rs // rpg, rd // rpg
                if gs == gd:
                    routes[(src, dst)] = (local[rs], local[rd])
                else:
                    routes[(src, dst)] = (local[rs], glob[(gs, gd)], local[rd])
        links = local + [glob[key] for key in sorted(glob)]
        return FabricState(self.describe(), links, routes)

    def payload(self) -> dict:
        return {
            "kind": self.kind,
            "hosts_per_router": self.hosts_per_router,
            "routers_per_group": self.routers_per_group,
            "global_taper": self.global_taper,
        }

    def describe(self) -> str:
        return (
            f"dragonfly (hosts/router={self.hosts_per_router}, "
            f"routers/group={self.routers_per_group}, taper={self.global_taper:g}:1)"
        )


#: Union type accepted wherever a fabric specification is expected.
FabricSpec = FullBisectionFabric | FatTreeFabric | DragonflyFabric

#: Registry of fabric kinds, keyed by their CLI / payload name.
FABRIC_KINDS: dict[str, type] = {
    FullBisectionFabric.kind: FullBisectionFabric,
    FatTreeFabric.kind: FatTreeFabric,
    DragonflyFabric.kind: DragonflyFabric,
}

#: Short CLI option aliases accepted by :func:`parse_fabric`.
_OPTION_ALIASES = {
    "hosts": None,  # resolved per kind below
    "oversub": "oversubscription",
    "routers": "routers_per_group",
    "taper": "global_taper",
    "k": None,
}

_INT_FIELDS = {"hosts_per_switch", "hosts_per_router", "routers_per_group"}

#: Field binding order for bare positional option values
#: (``dragonfly:64,8,8`` == ``dragonfly:hosts=64,routers=8,taper=8``).
_POSITIONAL_FIELDS = {
    "full-bisection": (),
    "fat-tree": ("hosts_per_switch", "oversubscription"),
    "dragonfly": ("hosts_per_router", "routers_per_group", "global_taper"),
}


def list_fabrics() -> list[str]:
    """Names of the available fabric kinds."""
    return sorted(FABRIC_KINDS)


def parse_fabric(text: str) -> FabricSpec:
    """Parse a CLI fabric specification string.

    Accepted forms (options are comma-separated ``name=value`` pairs, or
    bare values binding to the kind's fields in declaration order)::

        full-bisection
        fat-tree                      # defaults: hosts=4, oversub=2
        fat-tree:oversub=4
        fat-tree:k=8,oversub=4        # radix-k edge layer: hosts = k/2
        dragonfly
        dragonfly:hosts=2,routers=4,taper=4
        dragonfly:64,8,8              # hosts=64, routers=8, taper=8
    """
    kind, _, option_text = text.partition(":")
    kind = kind.strip().lower()
    if kind not in FABRIC_KINDS:
        raise ConfigurationError(
            f"unknown fabric {kind!r}; available fabrics: {', '.join(list_fabrics())}"
        )
    options: dict[str, float | int] = {}
    positional = list(_POSITIONAL_FIELDS[kind])
    if option_text.strip():
        for item in option_text.split(","):
            name, sep, value = item.partition("=")
            name = name.strip().lower()
            if not sep:
                # Bare value: bind to the next positional field of the kind.
                if not positional:
                    raise ConfigurationError(
                        f"too many positional fabric options in {text!r} "
                        f"({kind} takes {len(_POSITIONAL_FIELDS[kind])})"
                    )
                name, value = positional.pop(0), item.strip()
                if not value:
                    raise ConfigurationError(
                        f"malformed fabric option {item!r} in {text!r} "
                        "(expected name=value or a bare value)"
                    )
                try:
                    options[name] = int(value) if name in _INT_FIELDS else float(value)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"invalid value for fabric option {name!r}: {value!r}"
                    ) from exc
                continue
            if not name or not value.strip():
                raise ConfigurationError(
                    f"malformed fabric option {item!r} in {text!r} (expected name=value)"
                )
            if name == "k":
                if kind != "fat-tree":
                    raise ConfigurationError("option 'k' only applies to fat-tree")
                try:
                    radix = int(value)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"invalid value for fabric option 'k': {value!r}"
                    ) from exc
                if radix < 2:
                    raise ConfigurationError(f"fat-tree radix k must be >= 2, got {radix}")
                name, value = "hosts_per_switch", str(radix // 2)
            elif name == "hosts":
                name = "hosts_per_switch" if kind == "fat-tree" else "hosts_per_router"
            else:
                name = _OPTION_ALIASES.get(name, name) or name
            try:
                options[name] = int(value) if name in _INT_FIELDS else float(value)
            except ValueError as exc:
                raise ConfigurationError(
                    f"invalid value for fabric option {name!r}: {value!r}"
                ) from exc
    try:
        return FABRIC_KINDS[kind](**options)
    except TypeError as exc:
        raise ConfigurationError(f"invalid options for fabric {kind!r}: {exc}") from exc


def fabric_from_payload(payload: dict | None) -> FabricSpec:
    """Rebuild a fabric spec from its :meth:`payload` form (``None`` = default)."""
    if payload is None:
        return FullBisectionFabric()
    options = dict(payload)
    kind = options.pop("kind", None)
    if kind not in FABRIC_KINDS:
        raise ConfigurationError(f"unknown fabric kind in payload: {kind!r}")
    try:
        return FABRIC_KINDS[kind](**options)
    except TypeError as exc:
        raise ConfigurationError(f"invalid fabric payload for {kind!r}: {exc}") from exc
