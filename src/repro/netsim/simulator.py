"""The discrete-event simulator driving all simulated ranks.

The simulator is deliberately tiny: a clock, an event queue and a run loop.
All semantics (processes, messages, matching) are layered on top by
:mod:`repro.simmpi.engine`, which schedules plain callbacks here.

The queue is a bare heap of ``(time, seq, fn, a, b)`` tuples: tuple
comparison is native, ties are broken by the scheduling sequence number
(keeping the simulation fully deterministic), and binding the callback's
two argument slots directly into the heap entry removes both the
per-event ``functools.partial`` allocation the engine used to pay on
every step and the ``*args`` tuple of a generic variadic design.  Calls
with other arities are routed through a tiny trampoline.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Simulator"]


def _call_nullary(callback, _unused) -> None:
    callback()


def _call_variadic(fn, args) -> None:
    fn(*args)


class Simulator:
    """Minimal deterministic discrete-event simulator."""

    __slots__ = ("_heap", "_now", "_processed", "_max_events", "_running", "_next_seq")

    def __init__(self, *, max_events: int = 200_000_000) -> None:
        self._heap: list[tuple] = []
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events
        self._running = False
        self._next_seq = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # -- scheduling ---------------------------------------------------------
    def schedule_call(self, time: float, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now).

        The past-scheduling guard tolerates rounding error *relative* to the
        current clock: an absolute tolerance would drop below one float ulp
        once simulated time passes a few milliseconds, turning single-ulp
        rounding in a callback's computed time into a spurious error.  The
        window stays at a few ulps so genuinely mis-computed past times
        still raise.
        """
        now = self._now
        if time < now:
            tolerance = max(1e-18, 4.0 * math.ulp(now))
            if time < now - tolerance:
                raise SimulationError(
                    f"cannot schedule an event in the past (now={now}, requested={time})"
                )
            time = now
        seq = self._next_seq
        self._next_seq = seq + 1
        if len(args) == 2:
            heappush(self._heap, (time, seq, fn, args[0], args[1]))
        else:
            heappush(self._heap, (time, seq, _call_variadic, fn, args))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule a no-argument ``callback`` at absolute time ``time`` (>= now)."""
        now = self._now
        if time < now:
            tolerance = max(1e-18, 4.0 * math.ulp(now))
            if time < now - tolerance:
                raise SimulationError(
                    f"cannot schedule an event in the past (now={now}, requested={time})"
                )
            time = now
        seq = self._next_seq
        self._next_seq = seq + 1
        heappush(self._heap, (time, seq, _call_nullary, callback, None))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        seq = self._next_seq
        self._next_seq = seq + 1
        heappush(self._heap, (self._now + delay, seq, _call_nullary, callback, None))

    # -- run loop -----------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the queue is empty (or ``until`` is reached).

        Returns the final simulated time.  The loop is re-entrant safe in the
        sense that event callbacks may schedule further events, but calling
        :meth:`run` from inside a callback is an error.
        """
        if self._running:
            raise SimulationError("Simulator.run() called re-entrantly from an event callback")
        self._running = True
        heap = self._heap
        max_events = self._max_events
        processed = self._processed
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    break
                time, _seq, fn, a, b = heappop(heap)
                self._now = time
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; "
                        "likely a livelock in the simulated program"
                    )
                fn(a, b)
        finally:
            self._running = False
            self._processed = processed
        return self._now

    def reset(self) -> None:
        """Discard all pending events and rewind the clock (used between runs)."""
        self._heap = []
        self._now = 0.0
        self._processed = 0
        self._next_seq = 0
