"""The discrete-event simulator driving all simulated ranks.

The simulator is deliberately tiny: a clock, an event queue and a run loop.
All semantics (processes, messages, matching) are layered on top by
:mod:`repro.simmpi.engine`, which schedules plain callbacks here.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import SimulationError
from repro.netsim.events import EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self, *, max_events: int = 200_000_000) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events
        self._running = False

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- scheduling ---------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time`` (>= now).

        The past-scheduling guard tolerates rounding error *relative* to the
        current clock: an absolute tolerance would drop below one float ulp
        once simulated time passes a few milliseconds, turning single-ulp
        rounding in a callback's computed time into a spurious error.  The
        window stays at a few ulps so genuinely mis-computed past times
        still raise.
        """
        tolerance = max(1e-18, 4.0 * math.ulp(self._now))
        if time < self._now - tolerance:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self._now}, requested={time})"
            )
        self._queue.push(max(time, self._now), callback)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self._queue.push(self._now + delay, callback)

    # -- run loop -----------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the queue is empty (or ``until`` is reached).

        Returns the final simulated time.  The loop is re-entrant safe in the
        sense that event callbacks may schedule further events, but calling
        :meth:`run` from inside a callback is an error.
        """
        if self._running:
            raise SimulationError("Simulator.run() called re-entrantly from an event callback")
        self._running = True
        try:
            while self._queue:
                if until is not None and self._queue.peek_time() > until:
                    self._now = until
                    break
                event = self._queue.pop()
                self._now = event.time
                self._processed += 1
                if self._processed > self._max_events:
                    raise SimulationError(
                        f"simulation exceeded {self._max_events} events; "
                        "likely a livelock in the simulated program"
                    )
                event.fire()
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Discard all pending events and rewind the clock (used between runs)."""
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0
