"""Per-message trace recording.

A :class:`TraceRecorder` can be attached to a simulated job to capture every
point-to-point message with its endpoints, size, locality level and timing.
The intra- vs inter-node breakdown figures (Figures 13–16 of the paper) and
several tests are built on these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.hierarchy import LocalityLevel

__all__ = ["MessageRecord", "TraceRecorder"]


@dataclass(frozen=True)
class MessageRecord:
    """A single completed point-to-point message."""

    source: int
    dest: int
    nbytes: int
    level: LocalityLevel
    tag: int
    context_id: int
    post_time: float
    arrival_time: float
    completion_time: float

    @property
    def latency(self) -> float:
        """Time from send posting to receive completion."""
        return self.completion_time - self.post_time

    @property
    def is_inter_node(self) -> bool:
        return self.level == LocalityLevel.NETWORK


@dataclass
class TraceRecorder:
    """Collects :class:`MessageRecord` objects for a simulated job."""

    enabled: bool = True
    records: list[MessageRecord] = field(default_factory=list)

    def record(self, record: MessageRecord) -> None:
        if self.enabled:
            self.records.append(record)

    def clear(self) -> None:
        self.records.clear()

    # -- aggregate queries -------------------------------------------------
    def message_count(self, *, inter_node: bool | None = None) -> int:
        """Number of recorded messages, optionally filtered by locality."""
        return sum(1 for r in self._filtered(inter_node))

    def byte_count(self, *, inter_node: bool | None = None) -> int:
        """Total bytes moved, optionally filtered by locality."""
        return sum(r.nbytes for r in self._filtered(inter_node))

    def bytes_by_level(self) -> dict[LocalityLevel, int]:
        """Total bytes moved per locality level."""
        out: dict[LocalityLevel, int] = {}
        for r in self.records:
            out[r.level] = out.get(r.level, 0) + r.nbytes
        return out

    def messages_by_level(self) -> dict[LocalityLevel, int]:
        """Message counts per locality level."""
        out: dict[LocalityLevel, int] = {}
        for r in self.records:
            out[r.level] = out.get(r.level, 0) + 1
        return out

    def max_completion_time(self) -> float:
        """Completion time of the last message (0.0 when no messages recorded)."""
        return max((r.completion_time for r in self.records), default=0.0)

    def _filtered(self, inter_node: bool | None):
        if inter_node is None:
            return iter(self.records)
        return (r for r in self.records if r.is_inter_node == inter_node)
