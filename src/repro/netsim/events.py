"""Time-ordered event queue.

Events are ``(time, sequence)`` ordered: two events scheduled for the same
instant are processed in the order they were scheduled, which keeps the
simulation fully deterministic (there is no randomness anywhere in the
engine).

:class:`Simulator` no longer routes its hot path through this module — it
keeps a bare tuple heap internally (see :mod:`repro.netsim.simulator`) —
but the queue remains the public standalone primitive for tooling and
tests that want explicit :class:`Event` records.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    The callback takes no arguments; any state it needs must be bound via a
    closure or :func:`functools.partial` at scheduling time.  Events order
    by ``(time, seq)``; the callback never participates in comparisons.
    """

    __slots__ = ("time", "seq", "callback")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback

    def fire(self) -> None:
        self.callback()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event t={self.time} seq={self.seq}>"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < 0.0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the earliest pending event."""
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0].time
