"""Time-ordered event queue.

Events are ``(time, sequence)`` ordered: two events scheduled for the same
instant are processed in the order they were scheduled, which keeps the
simulation fully deterministic (there is no randomness anywhere in the
engine).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    The callback takes no arguments; any state it needs must be bound via a
    closure or :func:`functools.partial` at scheduling time.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)

    def fire(self) -> None:
        self.callback()


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < 0.0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Time of the earliest pending event."""
        if not self._heap:
            raise SimulationError("peek on an empty event queue")
        return self._heap[0].time
