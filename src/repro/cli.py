"""Command-line interface for the reproduction.

Installed as the ``repro-bench`` console script (and runnable as
``python -m repro.cli``).  Sub-commands:

``systems``
    Print Table 1 (the three evaluation systems).
``figures``
    Regenerate one or all of the paper's figures and print the series
    (optionally as CSV).
``run``
    Simulate a single all-to-all exchange on a chosen system at reduced
    scale and print timing, phase breakdown and traffic.
``select``
    Print the model-driven algorithm-selection table for a system
    (the paper's Section 5 future-work item).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.bench.figures import FIGURES, headline_speedup, table1
from repro.bench.reporting import format_figure, format_speedup_summary, format_table1, to_csv
from repro.core.runner import run_alltoall
from repro.core.selection import AlgorithmSelector
from repro.machine.process_map import ProcessMap
from repro.machine.systems import get_system, list_systems

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduction toolkit for 'Scaling All-to-all Operations Across "
        "Emerging Many-Core Supercomputers'",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="print Table 1 (evaluation systems)")

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--id", default="all", choices=["all", *sorted(FIGURES)],
                         help="which figure to regenerate (default: all)")
    figures.add_argument("--engine", default="model", choices=["model", "simulate"],
                         help="timing engine (simulate runs at reduced scale)")
    figures.add_argument("--csv", action="store_true", help="emit CSV instead of aligned tables")
    figures.add_argument("--headline", action="store_true",
                         help="also print the headline speedup summary")

    run = sub.add_parser("run", help="simulate one all-to-all exchange")
    run.add_argument("--system", default="dane", choices=list_systems())
    run.add_argument("--algorithm", default="multileader-node-aware")
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--ppn", type=int, default=8)
    run.add_argument("--msg-bytes", type=int, default=256)
    run.add_argument("--group-size", type=int, default=None,
                     help="processes per leader/group for the hierarchical algorithms")
    run.add_argument("--inner", default=None, choices=["pairwise", "nonblocking", "bruck", "batched"])

    select = sub.add_parser("select", help="print the model-driven algorithm selection table")
    select.add_argument("--system", default="dane", choices=list_systems())
    select.add_argument("--nodes", type=int, default=32)
    select.add_argument("--ppn", type=int, default=None,
                        help="ranks per node (default: all cores of the system)")
    select.add_argument("--sizes", type=int, nargs="+", default=[4, 16, 64, 256, 1024, 4096])
    return parser


def _cmd_systems(_args: argparse.Namespace) -> int:
    print(format_table1(table1()))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    selected = sorted(FIGURES) if args.id == "all" else [args.id]
    for figure_id in selected:
        producer = FIGURES[figure_id]
        if args.engine == "simulate":
            figure = producer(get_system("dane", 8), ppn=8, engine="simulate")
        else:
            figure = producer()
        print(to_csv(figure) if args.csv else format_figure(figure))
        print()
    if args.headline:
        print(format_speedup_summary(headline_speedup()))
    return 0


def _algorithm_options(args: argparse.Namespace) -> dict:
    options: dict = {}
    if args.inner is not None:
        options["inner"] = args.inner
    if args.group_size is not None:
        if args.algorithm in ("hierarchical", "multileader", "multileader-node-aware"):
            options["procs_per_leader"] = args.group_size
        elif args.algorithm == "locality-aware":
            options["procs_per_group"] = args.group_size
        else:
            raise SystemExit(f"--group-size is not applicable to algorithm {args.algorithm!r}")
    return options


def _cmd_run(args: argparse.Namespace) -> int:
    cluster = get_system(args.system, args.nodes)
    pmap = ProcessMap(cluster, ppn=args.ppn, num_nodes=args.nodes)
    outcome = run_alltoall(args.algorithm, pmap, args.msg_bytes, **_algorithm_options(args))
    print(outcome.summary())
    print(f"  inter-node messages: {outcome.inter_node_messages}")
    print(f"  inter-node bytes:    {outcome.inter_node_bytes}")
    for phase, seconds in sorted(outcome.phase_times.items()):
        print(f"  phase {phase:<22s} {seconds:.3e} s")
    return 0 if outcome.correct else 1


def _cmd_select(args: argparse.Namespace) -> int:
    cluster = get_system(args.system, args.nodes)
    ppn = args.ppn if args.ppn is not None else cluster.cores_per_node
    selector = AlgorithmSelector(cluster, ppn=ppn)
    print(f"Best algorithm per message size on {cluster.name} ({args.nodes} nodes x {ppn} ppn):")
    for size, description in selector.selection_map(args.nodes, args.sizes).items():
        print(f"  {size:>7d} B -> {description}")
    return 0


_COMMANDS = {
    "systems": _cmd_systems,
    "figures": _cmd_figures,
    "run": _cmd_run,
    "select": _cmd_select,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
