"""Command-line interface for the reproduction.

Installed as the ``repro-bench`` console script (and runnable as
``python -m repro.cli``).  Sub-commands:

``systems``
    Print Table 1 (the three evaluation systems).
``figures``
    Regenerate one or all of the paper's figures — plus the ``contention``
    fabric-ladder demo — and print the series (optionally as CSV).
``run``
    Simulate a single all-to-all exchange on a chosen system at reduced
    scale and print timing, phase breakdown and traffic.
``select``
    Print the model-driven algorithm-selection table for a system
    (the paper's Section 5 future-work item).
``workload``
    Simulate a non-uniform traffic workload (alltoallv semantics) from a
    generated pattern or a recorded JSON trace, validate the exchange, and
    compare against the analytic workload model.
``ingest``
    Parse a recorded trace (phase-log JSONL or MoE token-routing),
    normalise it into a phased workload, and print / save / index it in a
    content-addressed trace store.  The result feeds the ``--phases``
    flag of ``workload``, ``select`` and ``figures --id adaptive``.
``verify``
    Differential conformance fuzzing: run every registered algorithm on
    seeded random scenarios, assert byte-identical results against the
    reference, and print a minimal seeded reproducer on any mismatch.
``perf``
    Hot-path microbenchmarks of the discrete-event simulator: time the
    canonical job suite, record/compare the committed ``BENCH_simmpi.json``
    trajectory, and fail on wall-clock regressions beyond the tolerance.
``trace``
    Simulate one exchange (uniform or a workload pattern) with a recording
    event sink attached and export the simulated timeline as Chrome
    trace-event JSON — one track per rank and per fabric link, loadable in
    Perfetto / ``chrome://tracing`` — plus an optional metrics sidecar.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.bench.figures import FIGURES, headline_speedup, table1
from repro.bench.reporting import (
    format_figure,
    format_speedup_summary,
    format_table1,
    format_verification_summary,
    to_csv,
)
from repro.bench.harness import BenchmarkHarness
from repro.core.alltoall.valgorithms import list_v_algorithms
from repro.core.runner import run_alltoall, run_workload
from repro.core.selection import AlgorithmSelector, build_selection_table
from repro.errors import ConfigurationError
from repro.faults import parse_faults
from repro.machine.process_map import ProcessMap
from repro.machine.systems import SYSTEM_PRESETS, get_system, list_systems
from repro.model.predict import WORKLOAD_MODELED_ALGORITHMS, predict_workload_time
from repro.netsim.fabric import FullBisectionFabric, list_fabrics, parse_fabric
from repro.runtime import ResultStore, RetryPolicy, SweepExecutor
from repro.runtime.executor import default_jobs
from repro.workloads import list_patterns, load_trace, make_pattern

__all__ = ["build_parser", "main"]


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be strictly positive (nodes, ppn)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for durations that must be strictly positive (timeouts)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _job_count(text: str) -> int:
    """Argparse type for ``--jobs``: a non-negative integer (0 = all CPU cores)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {value}")
    return value


def _node_count(text: str):
    """Argparse type for ``--nodes``: a positive integer or ``paper``.

    ``paper`` resolves to the system's real Table-1 deployment size
    (see :data:`repro.machine.systems.TABLE1_NODE_COUNTS`).
    """
    if text.strip().lower() == "paper":
        return "paper"
    return _positive_int(text)


def _resolve_nodes(args: argparse.Namespace) -> int:
    """Turn ``--nodes paper`` into the system's Table-1 node count."""
    if args.nodes == "paper":
        from repro.machine.systems import TABLE1_NODE_COUNTS

        counts = TABLE1_NODE_COUNTS
        key = args.system.lower()
        if key not in counts:
            raise SystemExit(
                f"--nodes paper: no Table-1 deployment size for system {args.system!r} "
                f"(known: {', '.join(sorted(counts))})"
            )
        return counts[key]
    return args.nodes


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """The parallel-runtime flags shared by figures / workload / select."""
    runtime = parser.add_argument_group("parallel runtime")
    runtime.add_argument("--jobs", type=_job_count, default=1, metavar="N",
                         help="worker processes for independent benchmark points "
                              "(1 = serial in-process, 0 = all CPU cores)")
    runtime.add_argument("--engine-jobs", type=_positive_int, default=1, metavar="N",
                         help="worker threads inside each simulated point "
                              "(conservative-lookahead parallel engine; results "
                              "are bit-identical at any value)")
    runtime.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="on-disk result store; already-simulated points are "
                              "served from it and new results are appended")
    runtime.add_argument("--no-cache", action="store_true",
                         help="ignore --cache-dir entirely (recompute everything, "
                              "write nothing)")
    runtime.add_argument("--progress", action="store_true",
                         help="report sweep progress on stderr as benchmark "
                              "points resolve (per point when serial, per "
                              "batch when parallel)")
    runtime.add_argument("--point-timeout", type=_positive_float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget per benchmark point when running "
                              "with a worker pool; a point past its deadline is "
                              "retried and eventually quarantined")
    runtime.add_argument("--point-retries", type=_positive_int, default=None,
                         metavar="N",
                         help="attempts per benchmark point before it is "
                              "quarantined (default 3; failures are reported "
                              "after the surviving points complete)")


def _add_fabric_argument(parser: argparse.ArgumentParser) -> None:
    """The inter-node fabric override shared by the simulating subcommands."""
    parser.add_argument(
        "--fabric", default=None, metavar="SPEC",
        help="inter-node fabric topology: 'full-bisection' (default), "
             "'fat-tree[:hosts=H,oversub=O]' or "
             "'dragonfly[:hosts=H,routers=R,taper=T]'",
    )


def _fabric_from_args(args: argparse.Namespace):
    """Parse the --fabric flag (None when absent or explicitly default).

    An explicit ``--fabric full-bisection`` normalises to ``None`` so it
    behaves exactly like omitting the flag everywhere (no --system
    requirement for figures, default scenario sampling for verify).
    """
    if getattr(args, "fabric", None) is None:
        return None
    try:
        spec = parse_fabric(args.fabric)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    if isinstance(spec, FullBisectionFabric):
        return None
    return spec


def _add_faults_argument(parser: argparse.ArgumentParser) -> None:
    """The deterministic fault-injection flag shared by the simulating subcommands."""
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault injection: ';'-separated clauses "
             "'degraded-link:PATTERN,FACTOR', "
             "'flapping-link:PATTERN,PERIOD,DUTY[,PHASE]', "
             "'straggler:NODE,FACTOR', 'os-noise:AMPLITUDE' and 'seed:N' "
             "(e.g. 'degraded-link:df-g*,0.25;os-noise:1e-6;seed:7'); "
             "requires the simulate engine and fold=off",
    )


def _faults_from_args(args: argparse.Namespace):
    """Parse the --faults flag (None when absent or empty).

    An empty spec normalises to ``None`` so it behaves exactly like
    omitting the flag — in particular the result-store cache keys are
    the healthy keys.
    """
    text = getattr(args, "faults", None)
    if text is None:
        return None
    try:
        spec = parse_faults(text)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    return spec if spec else None


def _add_phases_argument(parser: argparse.ArgumentParser, help_suffix: str) -> None:
    """The phased-workload input flag shared by workload / select / figures."""
    parser.add_argument(
        "--phases", default=None, metavar="SOURCE",
        help="phased workload: a file written by 'ingest --out', inline "
             "JSON, or 'store:DIR:NAME_OR_KEY' to load from a trace store; "
             + help_suffix,
    )


def _phases_from_args(args: argparse.Namespace):
    """Resolve the --phases flag into a PhasedWorkload (None when absent)."""
    text = getattr(args, "phases", None)
    if text is None:
        return None
    from repro.ingest import TraceStore
    from repro.workloads import load_phased

    try:
        if text.startswith("store:"):
            rest = text[len("store:"):]
            root, sep, key = rest.rpartition(":")
            if not sep or not root or not key:
                raise SystemExit(
                    f"--phases {text!r}: store syntax is store:DIR:NAME_OR_KEY"
                )
            return TraceStore(root).load(key)
        return load_phased(text)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc


def _print_progress(done: int, total: int) -> None:
    print(f"[runtime] {done}/{total} point(s) resolved", file=sys.stderr, flush=True)


def _executor_from_args(args: argparse.Namespace) -> SweepExecutor | None:
    """Build the executor the runtime flags ask for (None = legacy inline path)."""
    jobs = args.jobs if args.jobs != 0 else default_jobs()
    store = None
    if args.cache_dir is not None and not args.no_cache:
        store = ResultStore(args.cache_dir)
    progress = getattr(args, "progress", False)
    retry_kwargs = {}
    if getattr(args, "point_retries", None) is not None:
        retry_kwargs["max_attempts"] = args.point_retries
    if getattr(args, "point_timeout", None) is not None:
        retry_kwargs["timeout"] = args.point_timeout
    retry = RetryPolicy(**retry_kwargs) if retry_kwargs else None
    if jobs == 1 and store is None and not progress and retry is None:
        return None
    executor = SweepExecutor(jobs, store=store, retry=retry)
    if progress:
        executor.progress = _print_progress
    return executor


def _finish_executor(executor: SweepExecutor | None) -> None:
    if executor is not None:
        print(executor.stats_line(), file=sys.stderr)
        executor.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduction toolkit for 'Scaling All-to-all Operations Across "
        "Emerging Many-Core Supercomputers'",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    systems = sub.add_parser(
        "systems",
        help="print Table 1 and list every preset with its node architecture and fabric",
    )
    _add_fabric_argument(systems)

    figures = sub.add_parser(
        "figures",
        help="regenerate the paper's figures (fig07-fig18) plus the "
             "'contention' fabric demo; --id all runs every producer",
    )
    figures.add_argument("--id", default="all", choices=["all", *sorted(FIGURES)],
                         help="which figure to regenerate (default: all)")
    figures.add_argument("--engine", default="model", choices=["model", "simulate"],
                         help="timing engine (simulate runs at reduced scale)")
    figures.add_argument("--system", default=None, choices=list_systems(),
                         help="system preset (default: each figure's own system; "
                              "dane for --engine simulate)")
    figures.add_argument("--nodes", type=_positive_int, default=None,
                         help="cluster size in nodes (default: the preset's; 8 for simulate)")
    figures.add_argument("--ppn", type=_positive_int, default=None,
                         help="ranks per node (default: all cores; 8 for simulate)")
    figures.add_argument("--csv", action="store_true", help="emit CSV instead of aligned tables")
    figures.add_argument("--headline", action="store_true",
                         help="also print the headline speedup summary")
    _add_phases_argument(figures, "only valid with --id adaptive (the "
                                  "foreground job of the interference demo)")
    _add_fabric_argument(figures)
    _add_faults_argument(figures)
    _add_runtime_arguments(figures)

    run = sub.add_parser("run", help="simulate one all-to-all exchange")
    run.add_argument("--system", default="dane", choices=list_systems())
    run.add_argument("--algorithm", default="multileader-node-aware")
    run.add_argument("--nodes", type=_node_count, default=4,
                     help="node count, or 'paper' for the system's Table-1 deployment size")
    run.add_argument("--ppn", type=_positive_int, default=8)
    run.add_argument("--msg-bytes", type=_positive_int, default=256)
    run.add_argument("--engine-jobs", type=_positive_int, default=1, metavar="N",
                     help="worker threads of the conservative-lookahead parallel "
                          "engine (bit-identical results at any value)")
    run.add_argument("--group-size", type=int, default=None,
                     help="processes per leader/group for the hierarchical algorithms")
    run.add_argument("--inner", default=None, choices=["pairwise", "nonblocking", "bruck", "batched"])
    run.add_argument("--fold", default="off", choices=["off", "auto", "on"],
                     help="symmetry folding: simulate one node's ranks standing in "
                          "for the whole machine (exact for the uniform exchange; "
                          "required for paper-scale node counts)")
    _add_fabric_argument(run)
    _add_faults_argument(run)

    select = sub.add_parser("select", help="print the algorithm selection table")
    select.add_argument("--system", default="dane", choices=list_systems())
    select.add_argument("--nodes", type=_positive_int, default=32)
    select.add_argument("--ppn", type=_positive_int, default=None,
                        help="ranks per node (default: all cores of the system)")
    select.add_argument("--sizes", type=_positive_int, nargs="+",
                        default=[4, 16, 64, 256, 1024, 4096])
    select.add_argument("--engine", default="model", choices=["model", "simulate"],
                        help="model: analytic cost model (instant); simulate: build a "
                             "measurement-driven table from simulator sweeps "
                             "(use small --nodes/--ppn)")
    _add_phases_argument(select, "switches to adaptive per-phase selection "
                                 "over the workload's phases (simulate "
                                 "engine; node count derives from the "
                                 "workload, --nodes only bounds the cluster)")
    _add_fabric_argument(select)
    _add_faults_argument(select)
    _add_runtime_arguments(select)

    workload = sub.add_parser(
        "workload", help="simulate a non-uniform traffic workload (alltoallv)"
    )
    workload.add_argument("--pattern", default="skewed-moe",
                          choices=[*list_patterns(), "trace"],
                          help="traffic pattern to generate (or 'trace' to replay --trace)")
    workload.add_argument("--trace", default=None,
                          help="JSON trace file to replay (requires --pattern trace)")
    workload.add_argument("--algorithm", default="node-aware", choices=list_v_algorithms())
    workload.add_argument("--system", default="dane", choices=list_systems())
    workload.add_argument("--nodes", type=_positive_int, default=4)
    workload.add_argument("--ppn", type=_positive_int, default=8)
    workload.add_argument("--msg-bytes", type=_positive_int, default=64,
                          help="base bytes per (source, destination) pair")
    workload.add_argument("--seed", type=int, default=0, help="RNG seed of random patterns")
    workload.add_argument("--concentration", type=float, default=4.0,
                          help="skewed-moe: traffic multiplier of hot experts")
    workload.add_argument("--hot-fraction", type=float, default=0.125,
                          help="skewed-moe: fraction of destinations that are hot")
    workload.add_argument("--exponent", type=float, default=1.2,
                          help="zipf: power-law exponent of the per-destination decay")
    workload.add_argument("--out-degree", type=int, default=4,
                          help="sparse: destinations per source")
    workload.add_argument("--pattern-group-size", type=int, default=4,
                          help="block-diagonal: ranks per dense group")
    workload.add_argument("--hotspots", type=int, default=1,
                          help="incast: number of victim destination ranks")
    workload.add_argument("--background-bytes", type=int, default=0,
                          help="incast: bytes of every non-victim pair")
    workload.add_argument("--shift", type=int, default=1,
                          help="neighbor-shift: cyclic rank distance of the exchange")
    workload.add_argument("--degree", type=int, default=1,
                          help="neighbor-shift: number of shifted neighbours per rank")
    workload.add_argument("--group-size", type=int, default=None,
                          help="node-aware: aggregation group size (default: whole node)")
    workload.add_argument("--inner", default=None, choices=["pairwise", "nonblocking"],
                          help="node-aware: inner exchange of both phases")
    workload.add_argument("--fold", default="off", choices=["off", "auto", "on"],
                          help="symmetry folding: 'auto' folds when the traffic "
                               "matrix is node-rotation symmetric, 'on' demands it, "
                               "'off' (default) simulates every rank")
    workload.add_argument("--no-model", action="store_true",
                          help="skip the analytic-model comparison")
    _add_phases_argument(workload, "runs the phases back-to-back on one "
                                   "engine timeline with --algorithm "
                                   "(overrides --pattern/--trace)")
    _add_fabric_argument(workload)
    _add_faults_argument(workload)
    _add_runtime_arguments(workload)

    verify = sub.add_parser(
        "verify", help="differential conformance check over seeded random scenarios"
    )
    verify.add_argument("--seed", type=int, default=2025,
                        help="base seed; scenario i uses seed SEED+i, so a failure "
                             "at seed S is replayed with --seed S --count 1")
    verify.add_argument("--count", type=_positive_int, default=25,
                        help="number of consecutive-seed scenarios to verify")
    verify.add_argument("--jobs", type=_job_count, default=1, metavar="N",
                        help="worker processes for independent scenarios "
                             "(1 = serial in-process, 0 = all CPU cores)")
    verify.add_argument("--engine-jobs", type=_positive_int, default=1, metavar="N",
                        help="worker threads of the parallel engine inside every "
                             "differential run (results must stay bit-identical)")
    verify.add_argument("--max-ranks", type=_positive_int, default=24,
                        help="upper bound on nodes x ppn per sampled scenario")
    verify.add_argument("--golden", default=None, metavar="PATH",
                        help="also check the golden corpus file and fail on drift")
    verify.add_argument("--fold-gate", action="store_true",
                        help="also run the symmetry-folding differential gate: every "
                             "algorithm folded vs full width with bit-identical "
                             "timings demanded (plus a folded-vs-model cross-check)")
    verify.add_argument("--fabric", default=None, metavar="SPEC",
                        help="verify over fabric-enabled scenarios (adds the "
                             "incast/neighbor-shift shapes); same syntax as the "
                             "other subcommands' --fabric")
    verify.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject faults into every differential run (same "
                             "syntax as the other subcommands' --faults); faults "
                             "perturb timings only, so verdicts and golden "
                             "digests must stay unchanged")
    verify.add_argument("--phased", action="store_true",
                        help="sample multi-phase scenarios too (phased workloads "
                             "run end-to-end on one engine timeline); off by "
                             "default so existing seeds keep their digests")

    trace = sub.add_parser(
        "trace",
        help="simulate one exchange with tracing on and export a Perfetto-"
             "compatible Chrome trace-event JSON timeline",
    )
    trace.add_argument("--system", default="dane", choices=list_systems())
    trace.add_argument("--algorithm", default="multileader-node-aware",
                       help="alltoall algorithm (or a v-algorithm when --pattern is given)")
    trace.add_argument("--nodes", type=_positive_int, default=4)
    trace.add_argument("--ppn", type=_positive_int, default=8)
    trace.add_argument("--msg-bytes", type=int, default=256)
    trace.add_argument("--group-size", type=int, default=None,
                       help="processes per leader/group for the hierarchical algorithms")
    trace.add_argument("--inner", default=None,
                       help="inner exchange of the hierarchical/node-aware algorithms")
    trace.add_argument("--pattern", default=None, choices=list_patterns(),
                       help="trace a non-uniform workload instead of a uniform "
                            "alltoall (switches --algorithm to the v-algorithm "
                            "registry)")
    trace.add_argument("--seed", type=int, default=0,
                       help="RNG seed of the random workload patterns")
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="Chrome trace-event JSON output (default: trace.json)")
    trace.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="also write the run's metrics registry snapshot "
                            "as a JSON sidecar")
    _add_phases_argument(trace, "trace the phases back-to-back on one "
                                "timeline (phase boundaries become spans on "
                                "the rank tracks; needs a v-algorithm)")
    _add_fabric_argument(trace)
    _add_faults_argument(trace)

    ingest = sub.add_parser(
        "ingest",
        help="parse a recorded trace (phase-log JSONL or MoE token-routing) "
             "into a phased workload and print / save / index it",
    )
    ingest.add_argument("trace", nargs="?", default=None,
                        help="trace file to ingest (omit with --list)")
    ingest.add_argument("--store", default=None, metavar="DIR",
                        help="content-addressed trace store directory to index "
                             "the workload in (created if missing)")
    ingest.add_argument("--name", default=None,
                        help="human-readable name to bind in the store index")
    ingest.add_argument("--out", default=None, metavar="PATH",
                        help="write the normalised phased workload as canonical "
                             "JSON (the format --phases accepts)")
    ingest.add_argument("--list", action="store_true",
                        help="list the store's indexed workloads (requires --store)")

    perf = sub.add_parser(
        "perf", help="time the simulator hot path on the canonical job suite"
    )
    perf.add_argument("--quick", action="store_true",
                      help="run only the fast subset (the CI smoke set)")
    perf.add_argument("--repeats", type=_positive_int, default=3,
                      help="fresh runs per point; the best wall-clock is kept")
    perf.add_argument("--out", default=None, metavar="PATH",
                      help="write/update the report file (default: the committed "
                           "BENCH_simmpi.json when recording, none when checking)")
    perf.add_argument("--check", default=None, metavar="PATH",
                      help="compare against the committed report instead of "
                           "recording; exit 1 on any regression beyond --tolerance")
    perf.add_argument("--tolerance", type=float, default=None,
                      help="allowed slowdown vs the committed measurement "
                           "(default 0.25 = 25%%)")
    perf.add_argument("--record-baseline", action="store_true",
                      help="write results into the 'baseline' section (done once, "
                           "pre-optimization) instead of 'current'")
    perf.add_argument("--label", default=None,
                      help="free-form label stored with the recorded section")
    return parser


def _cmd_systems(args: argparse.Namespace) -> int:
    print(format_table1(table1()))
    fabric = _fabric_from_args(args)
    print()
    print("Presets" + (f" (with --fabric {args.fabric})" if fabric is not None else "") + ":")
    for name in sorted(SYSTEM_PRESETS):
        cluster = get_system(name, fabric=fabric)
        print(f"  {cluster.describe()}")
    print()
    print(f"Fabric kinds for --fabric: {', '.join(list_fabrics())} "
          "(e.g. fat-tree:hosts=4,oversub=2 or dragonfly:hosts=2,routers=2,taper=4)")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    selected = sorted(FIGURES) if args.id == "all" else [args.id]
    # The simulate engine needs a reduced scale to stay tractable, so it gets
    # concrete defaults; the model engine keeps each figure's own full-scale
    # system unless the user overrides it.
    if args.engine == "simulate":
        system = args.system or "dane"
        nodes = args.nodes if args.nodes is not None else 8
        ppn = args.ppn if args.ppn is not None else 8
    else:
        system = args.system
        nodes = args.nodes
        ppn = args.ppn
        if nodes is not None and system is None:
            raise SystemExit(
                "--nodes requires --system with --engine model (the cluster preset to resize)"
            )
    fabric = _fabric_from_args(args)
    if fabric is not None and system is None:
        raise SystemExit(
            "--fabric requires --system with --engine model (the cluster preset to modify)"
        )
    faults = _faults_from_args(args)
    if faults is not None and args.engine != "simulate":
        raise SystemExit(
            "--faults requires --engine simulate (the analytic model has no "
            "machine to degrade)"
        )
    phased = _phases_from_args(args)
    if phased is not None and selected != ["adaptive"]:
        raise SystemExit("--phases is only valid with --id adaptive")
    cluster = get_system(system, nodes, fabric=fabric) if system is not None else None
    executor = _executor_from_args(args)
    try:
        for figure_id in selected:
            producer = FIGURES[figure_id]
            extra = {"workload": phased} if phased is not None else {}
            figure = producer(cluster, ppn=ppn, engine=args.engine, executor=executor,
                              engine_jobs=args.engine_jobs, faults=faults, **extra)
            print(to_csv(figure) if args.csv else format_figure(figure))
            print()
        if args.headline:
            print(format_speedup_summary(
                headline_speedup(executor=executor, engine_jobs=args.engine_jobs,
                                 faults=faults)))
    finally:
        _finish_executor(executor)
    return 0


def _algorithm_options(args: argparse.Namespace) -> dict:
    options: dict = {}
    if args.inner is not None:
        options["inner"] = args.inner
    if args.group_size is not None:
        if args.algorithm in ("hierarchical", "multileader", "multileader-node-aware"):
            options["procs_per_leader"] = args.group_size
        elif args.algorithm == "locality-aware":
            options["procs_per_group"] = args.group_size
        else:
            raise SystemExit(f"--group-size is not applicable to algorithm {args.algorithm!r}")
    return options


def _cmd_run(args: argparse.Namespace) -> int:
    nodes = _resolve_nodes(args)
    fold = args.fold
    if args.nodes == "paper" and fold == "off":
        # A full-width run at Table-1 scale is out of reach by construction;
        # folding is the whole point of asking for the paper machine.
        fold = "auto"
    cluster = get_system(args.system, nodes, fabric=_fabric_from_args(args))
    pmap = ProcessMap(cluster, ppn=args.ppn, num_nodes=nodes)
    try:
        outcome = run_alltoall(args.algorithm, pmap, args.msg_bytes, fold=fold,
                               engine_jobs=args.engine_jobs,
                               faults=_faults_from_args(args),
                               **_algorithm_options(args))
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    print(outcome.summary())
    print(f"  inter-node messages: {outcome.inter_node_messages}")
    print(f"  inter-node bytes:    {outcome.inter_node_bytes}")
    for phase, seconds in sorted(outcome.phase_times.items()):
        print(f"  phase {phase:<22s} {seconds:.3e} s")
    return 0 if outcome.correct else 1


def _cmd_select(args: argparse.Namespace) -> int:
    cluster = get_system(args.system, args.nodes, fabric=_fabric_from_args(args))
    ppn = args.ppn if args.ppn is not None else cluster.cores_per_node
    faults = _faults_from_args(args)
    if faults is not None and args.engine != "simulate":
        raise SystemExit(
            "--faults requires --engine simulate (the analytic model has no "
            "machine to degrade)"
        )
    phased = _phases_from_args(args)
    if phased is not None:
        if args.engine != "simulate":
            raise SystemExit(
                "--phases requires --engine simulate (per-phase costs come "
                "from the discrete-event engine)"
            )
        from repro.core.selection import select_phased

        executor = _executor_from_args(args)
        try:
            selection = select_phased(cluster, ppn, phased, executor=executor,
                                      engine_jobs=args.engine_jobs, faults=faults)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        finally:
            _finish_executor(executor)
        nodes = phased.nprocs // ppn
        print(f"Adaptive per-phase selection on {cluster.name} "
              f"({nodes} nodes x {ppn} ppn, {phased.num_phases} phase(s)):")
        print(selection.describe())
        if selection.skipped:
            print("skipped candidates: "
                  + ", ".join(c.describe() for c in selection.skipped))
        return 0
    executor = _executor_from_args(args)
    try:
        if args.engine == "simulate":
            table = build_selection_table(cluster, ppn, node_counts=[args.nodes],
                                          msg_sizes=args.sizes, engine="simulate",
                                          executor=executor,
                                          engine_jobs=args.engine_jobs,
                                          faults=faults)
            mapping = {size: table.best(args.nodes, size) for size in args.sizes}
            flavour = " [measured, simulate engine]"
        else:
            selector = AlgorithmSelector(cluster, ppn=ppn, executor=executor)
            mapping = selector.selection_map(args.nodes, args.sizes)
            flavour = ""
        print(f"Best algorithm per message size on {cluster.name} "
              f"({args.nodes} nodes x {ppn} ppn){flavour}:")
        for size, description in mapping.items():
            print(f"  {size:>7d} B -> {description}")
    finally:
        _finish_executor(executor)
    return 0


def _print_workload_model_comparison(args: argparse.Namespace, pmap: ProcessMap, matrix,
                                     options: dict, simulated_seconds: float) -> None:
    if args.algorithm in WORKLOAD_MODELED_ALGORITHMS:
        predicted = predict_workload_time(args.algorithm, pmap, matrix, **options)
        ratio = simulated_seconds / predicted if predicted else float("inf")
        print(f"Model prediction: {predicted:.3e} s  (simulated / modelled = {ratio:.2f}x)")
    else:
        print(f"Model prediction: not available for algorithm {args.algorithm!r}")


def _workload_matrix(args: argparse.Namespace, nprocs: int):
    """Build the TrafficMatrix the workload subcommand was asked for."""
    if args.pattern == "trace":
        if args.trace is None:
            raise SystemExit("--pattern trace requires --trace FILE")
        return load_trace(args.trace)
    pattern_options: dict = {}
    if args.pattern == "skewed-moe":
        pattern_options = {
            "concentration": args.concentration,
            "hot_fraction": args.hot_fraction,
            "seed": args.seed,
        }
    elif args.pattern == "zipf":
        pattern_options = {"exponent": args.exponent, "seed": args.seed}
    elif args.pattern == "sparse":
        pattern_options = {"out_degree": args.out_degree, "seed": args.seed}
    elif args.pattern == "block-diagonal":
        pattern_options = {"group_size": args.pattern_group_size}
    elif args.pattern == "incast":
        pattern_options = {
            "hotspots": args.hotspots,
            "background_bytes": args.background_bytes,
            "seed": args.seed,
        }
    elif args.pattern == "neighbor-shift":
        pattern_options = {"shift": args.shift, "degree": args.degree}
    return make_pattern(args.pattern, nprocs, args.msg_bytes, **pattern_options)


def _cmd_workload_phased(args: argparse.Namespace, pmap: ProcessMap, workload) -> int:
    """The --phases path of the workload subcommand: one phased job, simulated."""
    from repro.core.runner import run_phased_workload

    if workload.nprocs != pmap.nprocs:
        raise SystemExit(
            f"phased workload describes {workload.nprocs} ranks but "
            f"{args.nodes} nodes x {args.ppn} ppn gives {pmap.nprocs}"
        )
    if args.fold != "off":
        raise SystemExit(
            "--phases does not support symmetry folding (the phases share "
            "one engine timeline)"
        )
    options: dict = {}
    if args.inner is not None:
        options["inner"] = args.inner
    if args.group_size is not None:
        if args.algorithm != "node-aware":
            raise SystemExit(f"--group-size is not applicable to algorithm {args.algorithm!r}")
        options["procs_per_group"] = args.group_size
    algorithms = (args.algorithm, tuple(sorted(options.items()))) if options \
        else args.algorithm

    print(f"Workload: {workload.describe()}")
    print(f"Machine:  {pmap.describe()}")
    try:
        outcome = run_phased_workload(algorithms, pmap, workload,
                                      engine_jobs=args.engine_jobs,
                                      faults=_faults_from_args(args))
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    print(outcome.summary())
    for phase, seconds in sorted(outcome.phase_times.items()):
        print(f"  phase {phase:<22s} {seconds:.3e} s")
    return 0 if outcome.correct else 1


def _cmd_workload(args: argparse.Namespace) -> int:
    cluster = get_system(args.system, args.nodes, fabric=_fabric_from_args(args))
    pmap = ProcessMap(cluster, ppn=args.ppn, num_nodes=args.nodes)
    phased = _phases_from_args(args)
    if phased is not None:
        return _cmd_workload_phased(args, pmap, phased)
    try:
        matrix = _workload_matrix(args, pmap.nprocs)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    if matrix.nprocs != pmap.nprocs:
        raise SystemExit(
            f"trace describes {matrix.nprocs} ranks but {args.nodes} nodes x "
            f"{args.ppn} ppn gives {pmap.nprocs}"
        )

    options: dict = {}
    if args.inner is not None:
        options["inner"] = args.inner
    if args.group_size is not None:
        if args.algorithm != "node-aware":
            raise SystemExit(f"--group-size is not applicable to algorithm {args.algorithm!r}")
        options["procs_per_group"] = args.group_size

    print(f"Workload: {matrix.describe()}")
    print(f"Machine:  {pmap.describe()}")
    faults = _faults_from_args(args)
    executor = _executor_from_args(args)
    if executor is not None and executor.store is None:
        # A single workload point gains nothing from a worker pool; keep the
        # validated direct path (and its exit-code contract) unless a result
        # store was explicitly requested.
        executor.close()
        executor = None
    if executor is not None:
        # Runtime path: timing through the executor / result store.  The
        # cache can satisfy the point without running the simulator at all,
        # so the validation and traffic report of the direct path are
        # unavailable here.
        try:
            harness = BenchmarkHarness(cluster, args.ppn, engine="simulate",
                                       executor=executor,
                                       engine_jobs=args.engine_jobs,
                                       faults=faults)
            point = harness.workload_point(args.algorithm, matrix, args.nodes, **options)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        finally:
            _finish_executor(executor)
        print(f"Simulated {args.algorithm}: {point.seconds:.3e} s  "
              "(timing via runtime executor; rerun without --cache-dir to validate)")
        for phase, seconds in sorted(point.phases.items()):
            print(f"  phase {phase:<22s} {seconds:.3e} s")
        if not args.no_model:
            _print_workload_model_comparison(args, pmap, matrix, options, point.seconds)
        return 0

    try:
        outcome = run_workload(args.algorithm, pmap, matrix, fold=args.fold,
                               engine_jobs=args.engine_jobs, faults=faults,
                               **options)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    if outcome.fold is not None:
        print(f"Folded: {outcome.fold['simulated_ranks']} representatives x "
              f"{outcome.fold['multiplicity']} ({outcome.fold['kind']} symmetry)")
    validated = "validated against the reference transposition" if outcome.correct \
        else "** INCORRECT RESULT **"
    print(f"Simulated {outcome.algorithm}: {outcome.elapsed:.3e} s  ({validated})")
    print(f"  inter-node messages: {outcome.inter_node_messages}")
    print(f"  inter-node bytes:    {outcome.inter_node_bytes}")
    for phase, seconds in sorted(outcome.phase_times.items()):
        print(f"  phase {phase:<22s} {seconds:.3e} s")

    if not args.no_model:
        _print_workload_model_comparison(args, pmap, matrix, options, outcome.elapsed)
    return 0 if outcome.correct else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import format_failure, verify_task
    from repro.verify.golden import check_corpus

    jobs = args.jobs if args.jobs != 0 else default_jobs()

    fabric = _fabric_from_args(args)
    faults = _faults_from_args(args)
    # Trailing optional task slots (see verify_task): fabric, engine_jobs,
    # faults, phased.
    if args.phased:
        extra: tuple = (fabric, args.engine_jobs, faults, True)
    elif faults is not None:
        extra = (fabric, args.engine_jobs, faults)
    elif args.engine_jobs != 1:
        extra = (fabric, args.engine_jobs)
    elif fabric is not None:
        extra = (fabric,)
    else:
        extra = ()
    tasks = [(args.seed + i, args.max_ranks, *extra) for i in range(args.count)]
    with SweepExecutor(jobs) as executor:
        records = executor.map(verify_task, tasks)
    print(format_verification_summary(records))

    status = 0
    for record in records:
        for failure in record.failures:
            print()
            print(format_failure(failure))
            status = 1

    if args.golden is not None:
        problems = check_corpus(args.golden)
        for problem in problems:
            print(f"golden corpus: {problem}", file=sys.stderr)
        if problems:
            status = 1
        else:
            print("golden corpus: consistent")

    if args.fold_gate:
        from repro.verify.folding import model_crosscheck, run_fold_gate

        report = run_fold_gate(engine_jobs=args.engine_jobs)
        print(report.describe())
        if not report.ok:
            status = 1
        points = model_crosscheck(node_counts=(256, 1024), algorithms=("pairwise", "node-aware"))
        for point in points:
            print(point.describe())
        if not all(point.ok for point in points):
            status = 1
    return status


#: Workload generators whose output depends on an RNG seed.
_SEEDED_PATTERNS = frozenset({"skewed-moe", "zipf", "sparse", "incast"})


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.bench.reporting import format_metrics
    from repro.obs import RecordingSink, validate_chrome_trace, write_chrome_trace

    cluster = get_system(args.system, args.nodes, fabric=_fabric_from_args(args))
    pmap = ProcessMap(cluster, ppn=args.ppn, num_nodes=args.nodes)
    faults = _faults_from_args(args)
    phased = _phases_from_args(args)
    sink = RecordingSink()
    try:
        if phased is not None:
            from repro.core.runner import run_phased_workload

            if args.algorithm not in list_v_algorithms():
                raise SystemExit(
                    f"--phases needs a v-algorithm ({', '.join(list_v_algorithms())}), "
                    f"got {args.algorithm!r}"
                )
            if phased.nprocs != pmap.nprocs:
                raise SystemExit(
                    f"phased workload describes {phased.nprocs} ranks but "
                    f"{args.nodes} nodes x {args.ppn} ppn gives {pmap.nprocs}"
                )
            options = {}
            if args.inner is not None:
                options["inner"] = args.inner
            if args.group_size is not None:
                options["procs_per_group"] = args.group_size
            algorithms = (args.algorithm, tuple(sorted(options.items()))) \
                if options else args.algorithm
            outcome = run_phased_workload(algorithms, pmap, phased, sink=sink,
                                          faults=faults)
        elif args.pattern is not None:
            if args.algorithm not in list_v_algorithms():
                raise SystemExit(
                    f"--pattern needs a v-algorithm ({', '.join(list_v_algorithms())}), "
                    f"got {args.algorithm!r}"
                )
            options: dict = {}
            if args.inner is not None:
                options["inner"] = args.inner
            if args.group_size is not None:
                options["procs_per_group"] = args.group_size
            pattern_options = {"seed": args.seed} if args.pattern in _SEEDED_PATTERNS else {}
            matrix = make_pattern(args.pattern, pmap.nprocs, args.msg_bytes, **pattern_options)
            outcome = run_workload(args.algorithm, pmap, matrix, sink=sink,
                                   faults=faults, **options)
        else:
            outcome = run_alltoall(args.algorithm, pmap, args.msg_bytes, sink=sink,
                                   faults=faults, **_algorithm_options(args))
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc

    configuration = (
        f"{args.algorithm} on {cluster.name}, {args.nodes} nodes x {args.ppn} ppn, "
        f"{args.msg_bytes} B"
    )
    if phased is not None:
        configuration += f", phases={','.join(phased.names)}"
    elif args.pattern is not None:
        configuration += f", pattern={args.pattern}"
    if args.fabric is not None:
        configuration += f", fabric={args.fabric}"
    if faults is not None:
        configuration += f", faults={faults.describe()}"

    write_chrome_trace(args.out, sink, configuration=configuration)
    summary = validate_chrome_trace(Path(args.out))
    print(f"simulated {args.algorithm}: {outcome.elapsed:.3e} s "
          f"({len(sink)} sink event(s) recorded)")
    print(f"wrote {args.out}: {summary.describe()}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")

    metrics = outcome.job.metrics if outcome.job is not None else {}
    if args.metrics_out is not None:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        print(f"wrote {args.metrics_out}: metrics registry snapshot")
    print()
    print(format_metrics(metrics))
    return 0 if outcome.correct else 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.ingest import TraceStore, normalize_trace, parse_trace
    from repro.workloads import save_phased

    if args.list:
        if args.store is None:
            raise SystemExit("--list requires --store DIR")
        entries = TraceStore(args.store).entries()
        if not entries:
            print(f"trace store {args.store}: empty")
            return 0
        print(f"trace store {args.store}: {len(entries)} workload(s)")
        for entry in entries:
            print(f"  {entry.describe()}")
        return 0

    if args.trace is None:
        raise SystemExit("ingest needs a trace file (or --list with --store)")
    if args.name is not None and args.store is None:
        raise SystemExit("--name requires --store")
    try:
        parsed = parse_trace(args.trace)
        workload = normalize_trace(parsed)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"parsed {args.trace}: format={parsed.format}, "
          f"{len(parsed.records)} record(s)")
    print(workload.describe())
    print(f"digest: {workload.digest()}")
    if args.out is not None:
        save_phased(workload, args.out)
        print(f"wrote {args.out}")
    if args.store is not None:
        try:
            key = TraceStore(args.store).put(workload, name=args.name)
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from exc
        label = f" as {args.name!r}" if args.name is not None else ""
        print(f"indexed in {args.store}{label} [{key[:12]}]")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench import micro

    tolerance = micro.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    if tolerance < 0.0:
        raise SystemExit(f"--tolerance must be non-negative, got {args.tolerance}")
    if args.check is not None and args.record_baseline:
        raise SystemExit("--check and --record-baseline are mutually exclusive")

    print("calibrating machine speed...", file=sys.stderr)
    calibration = micro.calibrate()
    results = micro.run_suite(
        quick=args.quick, repeats=args.repeats,
        progress=lambda message: print(message, file=sys.stderr),
    )

    if args.check is not None:
        report = micro.load_report(args.check)
        print(micro.format_results(results, report))
        problems = micro.compare_results(report, results, calibration, tolerance=tolerance)
        for problem in problems:
            print(f"perf regression: {problem}", file=sys.stderr)
        if args.out is not None:
            # Persist what this run measured (CI uploads it as an artifact)
            # without touching the committed sections semantics: the measured
            # points land in a standalone report file.
            out = {"schema": 1, "suite": "repro.bench.micro"}
            micro.merge_results(out, results, calibration,
                                label=args.label or "check run")
            micro.write_report(out, args.out)
        if not problems:
            print(f"perf check: no regression beyond {tolerance:.0%} "
                  f"across {len(results)} point(s)")
        return 1 if problems else 0

    path = args.out if args.out is not None else micro.DEFAULT_REPORT_PATH
    report = micro.load_report(path)
    section = "baseline" if args.record_baseline else "current"
    default_label = "pre-optimization baseline" if args.record_baseline else "recorded run"
    micro.merge_results(report, results, calibration,
                        label=args.label or default_label, section=section)
    micro.write_report(report, path)
    print(micro.format_results(results, report))
    print(f"recorded {len(results)} point(s) into the {section!r} section of {path}")
    return 0


_COMMANDS = {
    "systems": _cmd_systems,
    "figures": _cmd_figures,
    "run": _cmd_run,
    "select": _cmd_select,
    "workload": _cmd_workload,
    "verify": _cmd_verify,
    "perf": _cmd_perf,
    "trace": _cmd_trace,
    "ingest": _cmd_ingest,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
