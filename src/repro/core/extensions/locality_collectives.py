"""Locality-aware variants of allgather, broadcast, allreduce and reduce-scatter.

These collectives apply the paper's aggregation idea beyond the all-to-all:
communication-heavy phases run once per aggregation group (typically once
per node or NUMA domain) instead of once per rank, and a cheap intra-group
phase fans the result out (or in).  They operate on the same
:class:`~repro.simmpi.engine.RankContext` / communicator machinery as the
all-to-all family, so they can be simulated, traced and compared with their
flat counterparts from :mod:`repro.simmpi.collectives`.

All functions are generator functions (call with ``yield from``) and use the
same contiguous group layout as the all-to-all algorithms
(``procs_per_group`` consecutive local ranks per group, ``None`` meaning the
whole node).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BufferSizeError, CommunicatorError
from repro.simmpi.engine import RankContext
from repro.simmpi.collectives import REDUCTION_OPS
from repro.simmpi.ops import LocalCopy
from repro.simmpi.split import cross_group_comm, local_group_comm
from repro.utils.partition import validate_group_size

__all__ = [
    "locality_aware_allgather",
    "locality_aware_bcast",
    "locality_aware_allreduce",
    "locality_aware_reduce_scatter",
]


def _group_size(ctx: RankContext, procs_per_group: int | None) -> int:
    group = ctx.pmap.ppn if procs_per_group is None else procs_per_group
    validate_group_size(ctx.pmap.ppn, group)
    return group


# ---------------------------------------------------------------------------
# Allgather
# ---------------------------------------------------------------------------

def locality_aware_allgather(ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray,
                             *, procs_per_group: int | None = None):
    """Two-phase allgather: aggregate within the group, then exchange between groups.

    Phase 1 gathers the group's contributions onto every group member
    (intra-group allgather); phase 2 exchanges the aggregated group blocks
    between corresponding members of every group (inter-group allgather).
    The result is ordered by world rank, exactly like a flat allgather.
    """
    group = _group_size(ctx, procs_per_group)
    nprocs = ctx.nprocs
    block = sendbuf.size
    if recvbuf.size != nprocs * block:
        raise BufferSizeError(
            f"allgather receive buffer must hold {nprocs} blocks of {block} items"
        )
    local = local_group_comm(ctx, group)
    cross = cross_group_comm(ctx, group)
    ngroups = cross.size

    # Phase 1: everyone in the group collects the group's blocks.
    group_block = np.empty(group * block, dtype=sendbuf.dtype)
    yield from local.allgather(sendbuf, group_block)

    # Phase 2: exchange aggregated group blocks between groups.  Because
    # groups are contiguous in world-rank order, the inter-group allgather
    # writes straight into the final receive buffer.
    yield from cross.allgather(group_block, recvbuf)


# ---------------------------------------------------------------------------
# Broadcast
# ---------------------------------------------------------------------------

def locality_aware_bcast(ctx: RankContext, buf: np.ndarray, *, root: int = 0,
                         procs_per_group: int | None = None):
    """Hierarchical broadcast: between group leaders first, then within each group.

    ``root`` is a world rank.  The root first sends the data to the leader of
    its own group if it is not a leader itself; the leaders then run a
    binomial broadcast among themselves (one message per group, the only
    inter-node traffic), and finally each leader broadcasts within its group.
    """
    group = _group_size(ctx, procs_per_group)
    local = local_group_comm(ctx, group)

    # The "leaders" of this broadcast are the members occupying the root's
    # position within their group, so the root itself is one of them and no
    # extra intra-group hop is needed before the leader phase.
    position = root % group
    if ctx.local_rank % group == position:
        cross = cross_group_comm(ctx, group)
        yield from cross.bcast(buf, root=cross.local_rank_of(root))
    yield from local.bcast(buf, root=position)


# ---------------------------------------------------------------------------
# Allreduce
# ---------------------------------------------------------------------------

def locality_aware_allreduce(ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray,
                             *, op: str = "sum", procs_per_group: int | None = None):
    """Three-phase allreduce: intra-group reduce, inter-group allreduce, intra-group broadcast.

    Only the group leaders participate in the expensive inter-group phase, so
    each group contributes a single message stream to the network — the
    allreduce analogue of the node-aware aggregation studied in the paper
    (and of reference [3], "Node-Aware Improvements to Allreduce").
    """
    if op not in REDUCTION_OPS:
        raise CommunicatorError(f"unknown reduction op {op!r}; choose from {sorted(REDUCTION_OPS)}")
    if recvbuf.size != sendbuf.size:
        raise BufferSizeError("allreduce buffers must have identical sizes")
    group = _group_size(ctx, procs_per_group)
    local = local_group_comm(ctx, group)
    cross = cross_group_comm(ctx, group)
    is_leader = local.rank == 0

    # Phase 1: reduce the group's contributions onto the leader.
    partial = np.empty_like(sendbuf) if is_leader else None
    yield from local.reduce(sendbuf, partial, op=op, root=0)

    # Phase 2: allreduce among the leaders (one participant per group).
    if is_leader:
        yield from cross.allreduce(partial, recvbuf, op=op)

    # Phase 3: broadcast the final result within the group.
    yield from local.bcast(recvbuf, root=0)


# ---------------------------------------------------------------------------
# Reduce-scatter
# ---------------------------------------------------------------------------

def locality_aware_reduce_scatter(ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray,
                                  *, op: str = "sum", procs_per_group: int | None = None):
    """Locality-aware reduce-scatter with equal blocks per rank.

    ``sendbuf`` holds one block per world rank (``nprocs * block`` items);
    after the collective, ``recvbuf`` (``block`` items) holds the reduction
    of block ``r`` over every rank, where ``r`` is the caller's world rank.

    Phases: (1) intra-group reduction of the full vector onto the leader;
    (2) reduce-scatter among the leaders at whole-group granularity, so each
    leader ends up with the fully reduced blocks of its own group's members;
    (3) intra-group scatter of those blocks.
    """
    if op not in REDUCTION_OPS:
        raise CommunicatorError(f"unknown reduction op {op!r}; choose from {sorted(REDUCTION_OPS)}")
    group = _group_size(ctx, procs_per_group)
    nprocs = ctx.nprocs
    if sendbuf.size % nprocs != 0:
        raise BufferSizeError(
            f"reduce-scatter send buffer of {sendbuf.size} items is not divisible by {nprocs} ranks"
        )
    block = sendbuf.size // nprocs
    if recvbuf.size != block:
        raise BufferSizeError(f"reduce-scatter receive buffer must hold {block} items")
    operator = REDUCTION_OPS[op]
    local = local_group_comm(ctx, group)
    cross = cross_group_comm(ctx, group)
    ngroups = cross.size
    is_leader = local.rank == 0

    # Phase 1: reduce the group's full vectors onto the leader.
    partial = np.empty_like(sendbuf) if is_leader else None
    yield from local.reduce(sendbuf, partial, op=op, root=0)

    scatter_source = None
    if is_leader:
        # Phase 2: reduce-scatter among leaders at group granularity,
        # implemented as a pairwise exchange of group-sized slices followed
        # by a local reduction (a "reduce-scatter-block" over ngroups
        # participants).  Leader g must end up with the reduction of slice g
        # (the blocks of its own group's members) over every group.
        my_group_index = cross.rank
        group_slice_items = group * block
        partial_view = partial.reshape(ngroups, group_slice_items)
        accumulator = np.array(partial_view[my_group_index], copy=True)
        incoming = np.empty(group_slice_items, dtype=sendbuf.dtype)
        for step in range(1, ngroups):
            dest = (my_group_index + step) % ngroups
            source = (my_group_index - step) % ngroups
            # Send the slice belonging to ``dest``'s group, receive our slice
            # as reduced by ``source``.
            yield from cross.sendrecv(
                np.ascontiguousarray(partial_view[dest]), dest, incoming, source,
                sendtag=901, recvtag=901,
            )
            accumulator = operator(accumulator, incoming)
        scatter_source = accumulator

    # Phase 3: hand each group member its fully reduced block.
    yield from local.scatter(scatter_source, recvbuf, root=0)
