"""Extensions beyond the paper's all-to-all focus.

Section 5 of the paper plans to apply the same locality-aware aggregation
ideas "on both other HPC critical collectives (allgather, broadcast, etc.)
and AI critical collectives (allreduce, reduce-scatter, etc.)".  This
subpackage implements that extension on the same simulated substrate:

* :func:`~repro.core.extensions.locality_collectives.locality_aware_allgather`
* :func:`~repro.core.extensions.locality_collectives.locality_aware_bcast`
* :func:`~repro.core.extensions.locality_collectives.locality_aware_allreduce`
* :func:`~repro.core.extensions.locality_collectives.locality_aware_reduce_scatter`

Each follows the same pattern as Algorithms 3–5: aggregate within a local
group, perform the expensive exchange once per group (instead of once per
rank), then redistribute locally.
"""

from repro.core.extensions.locality_collectives import (
    locality_aware_allgather,
    locality_aware_allreduce,
    locality_aware_bcast,
    locality_aware_reduce_scatter,
)

__all__ = [
    "locality_aware_allgather",
    "locality_aware_allreduce",
    "locality_aware_bcast",
    "locality_aware_reduce_scatter",
]
