"""The paper's contribution: the all-to-all algorithm family and its tooling.

Public entry points:

* :func:`repro.core.runner.run_alltoall` — run any algorithm of the family on
  a simulated machine and get back timing, per-phase breakdown and a
  correctness check;
* :mod:`repro.core.alltoall` — the algorithms themselves (flat exchanges and
  the hierarchical / node-aware / locality-aware / multi-leader variants);
* :mod:`repro.core.selection` — pick the best algorithm for a machine,
  process count and message size (the paper's future-work item);
* :mod:`repro.core.validation` — reference results and result checking.
"""

from repro.core.alltoall import (
    ALGORITHM_NAMES,
    INNER_EXCHANGES,
    AlltoallAlgorithm,
    get_algorithm,
    list_algorithms,
)
from repro.core.runner import AlltoallOutcome, run_alltoall
from repro.core.selection import AlgorithmSelector, SelectionTable
from repro.core.validation import expected_alltoall_result, validate_alltoall_results

__all__ = [
    "ALGORITHM_NAMES",
    "INNER_EXCHANGES",
    "AlltoallAlgorithm",
    "get_algorithm",
    "list_algorithms",
    "AlltoallOutcome",
    "run_alltoall",
    "AlgorithmSelector",
    "SelectionTable",
    "expected_alltoall_result",
    "validate_alltoall_results",
]
