"""The paper's contribution: the all-to-all algorithm family and its tooling.

Public entry points:

* :func:`repro.core.runner.run_alltoall` — run any algorithm of the family on
  a simulated machine and get back timing, per-phase breakdown and a
  correctness check;
* :mod:`repro.core.alltoall` — the algorithms themselves (flat exchanges and
  the hierarchical / node-aware / locality-aware / multi-leader variants);
* :mod:`repro.core.selection` — pick the best algorithm for a machine,
  process count and message size (the paper's future-work item);
* :mod:`repro.core.validation` — reference results and result checking.
"""

from repro.core.alltoall import (
    ALGORITHM_NAMES,
    INNER_EXCHANGES,
    V_ALGORITHM_NAMES,
    AlltoallAlgorithm,
    AlltoallvAlgorithm,
    get_algorithm,
    get_v_algorithm,
    list_algorithms,
    list_v_algorithms,
)
from repro.core.runner import (
    AlltoallOutcome,
    JobOutcome,
    PhasedJob,
    PhasedOutcome,
    PhaseResult,
    WorkloadOutcome,
    run_alltoall,
    run_phased,
    run_phased_workload,
    run_workload,
)
from repro.core.selection import (
    AlgorithmSelector,
    PhasedSelection,
    SelectionTable,
    build_selection_table,
    select_phased,
)
from repro.core.validation import (
    alltoallv_reference,
    expected_alltoall_result,
    expected_workload_result,
    validate_alltoall_results,
    validate_workload_results,
)

__all__ = [
    "ALGORITHM_NAMES",
    "INNER_EXCHANGES",
    "V_ALGORITHM_NAMES",
    "AlltoallAlgorithm",
    "AlltoallvAlgorithm",
    "get_algorithm",
    "get_v_algorithm",
    "list_algorithms",
    "list_v_algorithms",
    "AlltoallOutcome",
    "WorkloadOutcome",
    "PhasedJob",
    "PhaseResult",
    "JobOutcome",
    "PhasedOutcome",
    "run_alltoall",
    "run_workload",
    "run_phased",
    "run_phased_workload",
    "AlgorithmSelector",
    "PhasedSelection",
    "SelectionTable",
    "build_selection_table",
    "select_phased",
    "expected_alltoall_result",
    "expected_workload_result",
    "validate_alltoall_results",
    "validate_workload_results",
    "alltoallv_reference",
]
