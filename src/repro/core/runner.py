"""High-level runner: execute one all-to-all on a simulated machine.

This is the main user-facing entry point of the library: given an algorithm
(name or instance), a process map and a per-destination message size, it
builds deterministic send buffers, runs the SPMD job on the discrete-event
engine, validates the result against the defining transposition and returns
the timing plus the per-phase breakdown.

Two entry points cover the two traffic families:

* :func:`run_alltoall` — the paper's uniform exchange, parameterised by a
  scalar per-destination ``msg_bytes``;
* :func:`run_workload` — a non-uniform exchange described by a
  :class:`~repro.workloads.TrafficMatrix`, run with the variable-count
  (``alltoallv``) algorithms of :mod:`repro.core.alltoall.valgorithms` and
  validated against the non-uniform transposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm
from repro.core.alltoall.registry import get_algorithm
from repro.core.alltoall.valgorithms import AlltoallvAlgorithm, get_v_algorithm
from repro.core.validation import (
    make_workload_sendbuf,
    validate_alltoall_results,
    validate_folded_alltoall_results,
    validate_folded_workload_results,
    validate_workload_results,
)
from repro.errors import ConfigurationError
from repro.machine.folding import uniform_certificate
from repro.machine.hierarchy import LocalityLevel
from repro.machine.process_map import ProcessMap
from repro.simmpi.engine import JobResult, run_spmd
from repro.utils.buffers import make_alltoall_sendbuf
from repro.workloads.matrix import TrafficMatrix

__all__ = [
    "AlltoallOutcome",
    "WorkloadOutcome",
    "PhasedJob",
    "PhaseResult",
    "JobOutcome",
    "PhasedOutcome",
    "run_alltoall",
    "run_workload",
    "run_phased",
    "run_phased_workload",
    "alltoall_program",
    "workload_program",
    "phased_program",
    "FOLD_MODES",
]

#: Accepted values of the ``fold`` parameter / ``--fold`` CLI option.
FOLD_MODES = ("off", "auto", "on")


def _check_fold_mode(fold: str) -> str:
    if fold not in FOLD_MODES:
        raise ConfigurationError(
            f"fold must be one of {', '.join(FOLD_MODES)}; got {fold!r}"
        )
    return fold


def _resolve_uniform_fold(pmap: ProcessMap, fold: str) -> ProcessMap:
    """Process map to simulate a *uniform* exchange with under ``fold`` mode.

    Uniform traffic is invariant under every rank rotation, so ``auto`` and
    ``on`` both fold (unless the map already is, or folding is a no-op on a
    single node in which case it still works but saves nothing).
    """
    _check_fold_mode(fold)
    if fold == "off" or pmap.is_folded:
        return pmap
    return pmap.folded(uniform_certificate(pmap.nprocs, pmap.ppn))


def _resolve_workload_fold(pmap: ProcessMap, fold: str, matrix: TrafficMatrix) -> ProcessMap:
    """Process map for a workload: fold only when the analyzer certifies it."""
    _check_fold_mode(fold)
    if fold == "off" or pmap.is_folded:
        return pmap
    from repro.workloads.symmetry import analyze_symmetry

    report = analyze_symmetry(matrix, pmap.ppn)
    if report.foldable:
        return pmap.folded(report.fold_certificate())
    if fold == "on":
        raise ConfigurationError(
            f"fold requested but the traffic is not foldable: {report.certificate}"
        )
    return pmap


@dataclass
class AlltoallOutcome:
    """Result of one simulated all-to-all exchange."""

    #: Human-readable description of the algorithm and its options.
    algorithm: str
    #: Per-destination message size in bytes.
    msg_bytes: int
    #: Number of nodes used.
    num_nodes: int
    #: Processes per node.
    ppn: int
    #: Simulated execution time of the collective (max over ranks), seconds.
    elapsed: float
    #: Whether the receive buffers matched the reference transposition.
    correct: bool
    #: Max-over-ranks duration of each instrumented phase.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Message and byte counts per locality level.
    traffic_by_level: dict[LocalityLevel, tuple[int, int]] = field(default_factory=dict)
    #: Full engine result (per-rank data, traces, NIC statistics).
    job: JobResult | None = None
    #: Symmetry-folding metadata (``None`` for unfolded runs); mirrors
    #: :attr:`repro.simmpi.engine.JobResult.fold` so it survives
    #: ``keep_job=False``.
    fold: dict | None = None

    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ppn

    @property
    def inter_node_bytes(self) -> int:
        """Total bytes that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[1]

    @property
    def inter_node_messages(self) -> int:
        """Total messages that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[0]

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v:.3e}s" for k, v in sorted(self.phase_times.items()))
        folded = ""
        if self.fold is not None:
            folded = (
                f" [folded: {self.fold['simulated_ranks']} representatives "
                f"x {self.fold['multiplicity']}]"
            )
        return (
            f"{self.algorithm}: {self.msg_bytes} B x {self.nprocs} ranks "
            f"({self.num_nodes} nodes x {self.ppn} ppn) -> {self.elapsed:.3e} s"
            + folded
            + (f" [{phases}]" if phases else "")
            + ("" if self.correct else "  ** INCORRECT RESULT **")
        )


def alltoall_program(ctx, algorithm: AlltoallAlgorithm, block_items: int, dtype):
    """Rank program that builds buffers, runs ``algorithm`` and stores the result.

    The receive buffer is exposed as the rank result up front (the exchange
    fills it in place) and the algorithm's generator is returned directly:
    a ``yield from`` wrapper here would put one more frame under every
    simulated operation.
    """
    nprocs = ctx.nprocs
    sendbuf = make_alltoall_sendbuf(ctx.rank, nprocs, block_items, dtype=dtype)
    recvbuf = np.zeros(nprocs * block_items, dtype=dtype)
    ctx.result = recvbuf
    return algorithm.run(ctx, sendbuf, recvbuf)


def run_alltoall(
    algorithm: str | AlltoallAlgorithm,
    pmap: ProcessMap,
    msg_bytes: int,
    *,
    dtype=np.uint8,
    validate: bool = True,
    record_trace: bool = False,
    sink=None,
    keep_job: bool = True,
    fold: str = "off",
    engine_jobs: int = 1,
    faults=None,
    **algorithm_options: Any,
) -> AlltoallOutcome:
    """Simulate one all-to-all exchange and return its :class:`AlltoallOutcome`.

    Parameters
    ----------
    algorithm:
        Registry name (``"node-aware"``, ``"multileader-node-aware"``, ...)
        or an :class:`AlltoallAlgorithm` instance.
    pmap:
        Process placement (machine, node count, processes per node).
    msg_bytes:
        Bytes each rank sends to each other rank (the paper's x-axis).
    dtype:
        Element type of the exchanged buffers; ``msg_bytes`` must be a
        multiple of its item size.
    validate:
        Check the receive buffers against the reference transposition.
    record_trace:
        Keep a full per-message trace on the returned job (slower, more
        memory; used by the breakdown figures and some tests).
    sink:
        Optional :class:`repro.obs.sink.EventSink` observing the job's
        simulated lifecycle (phase/wait/match/NIC/link events); ``None``
        keeps tracing off at zero cost.
    fold:
        Symmetry folding mode — ``"off"`` (default) simulates every rank;
        ``"auto"`` and ``"on"`` simulate one node's representatives standing
        in for the whole machine (always sound for the uniform exchange; see
        :mod:`repro.machine.folding`).  With folding off the simulated
        arithmetic is bit-identical to what it was before folding existed.
    engine_jobs:
        Worker count of the conservative-lookahead parallel engine
        (:mod:`repro.simmpi.parallel`).  ``1`` (default) runs the serial
        engine; any value yields bit-identical simulated timings, so this
        knob is excluded from cache identity.
    faults:
        Optional :class:`repro.faults.FaultSpec` injecting deterministic
        machine degradations (degraded/flapping links, stragglers, OS
        noise).  Empty/``None`` is bit-identical to a fault-free build;
        incompatible with folding (faults break node-rotation symmetry).
    algorithm_options:
        Forwarded to the algorithm constructor when ``algorithm`` is a name.
    """
    if msg_bytes <= 0:
        raise ConfigurationError(f"msg_bytes must be positive, got {msg_bytes}")
    if faults is not None and not faults:
        faults = None
    if faults is not None and fold != "off":
        raise ConfigurationError(
            "fault injection is incompatible with symmetry folding "
            f"(fold={fold!r}): faults break the node-rotation symmetry the "
            "fold relies on; run with fold='off'"
        )
    itemsize = np.dtype(dtype).itemsize
    if msg_bytes % itemsize != 0:
        raise ConfigurationError(
            f"msg_bytes={msg_bytes} is not a multiple of the {itemsize}-byte dtype {np.dtype(dtype)}"
        )
    block_items = msg_bytes // itemsize

    algo = get_algorithm(algorithm, **algorithm_options) if isinstance(algorithm, str) else algorithm
    if algorithm_options and not isinstance(algorithm, str):
        raise ConfigurationError("algorithm options can only be given together with an algorithm name")
    pmap = _resolve_uniform_fold(pmap, fold)
    algo.validate(pmap)

    job = run_spmd(pmap, alltoall_program, algo, block_items, np.dtype(dtype),
                   record_trace=record_trace, sink=sink, engine_jobs=engine_jobs,
                   faults=faults)

    correct = True
    if validate:
        if pmap.is_folded:
            correct = validate_folded_alltoall_results(
                job.results, pmap.nprocs, pmap.ppn, block_items
            )
        else:
            correct = validate_alltoall_results(job.results, pmap.nprocs, block_items)

    phase_times = {name: job.phase_time(name) for name in job.phases()}
    outcome = AlltoallOutcome(
        algorithm=algo.describe(),
        msg_bytes=msg_bytes,
        num_nodes=pmap.num_nodes,
        ppn=pmap.ppn,
        elapsed=job.elapsed,
        correct=correct,
        phase_times=phase_times,
        traffic_by_level=dict(job.traffic_by_level),
        job=job if keep_job else None,
        fold=job.fold,
    )
    return outcome


# ---------------------------------------------------------------------------
# Non-uniform workloads (alltoallv)
# ---------------------------------------------------------------------------


@dataclass
class WorkloadOutcome:
    """Result of one simulated non-uniform (alltoallv) exchange."""

    #: Human-readable description of the algorithm and its options.
    algorithm: str
    #: Traffic pattern name of the matrix that was exchanged.
    pattern: str
    #: Total bytes moved by the exchange.
    total_bytes: int
    #: Load imbalance of the matrix (max per-rank send bytes over the mean).
    skew: float
    #: Number of nodes used.
    num_nodes: int
    #: Processes per node.
    ppn: int
    #: Simulated execution time of the collective (max over ranks), seconds.
    elapsed: float
    #: Whether the receive buffers matched the reference transposition.
    correct: bool
    #: Max-over-ranks duration of each instrumented phase.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Message and byte counts per locality level.
    traffic_by_level: dict[LocalityLevel, tuple[int, int]] = field(default_factory=dict)
    #: Full engine result (per-rank data, traces, NIC statistics).
    job: JobResult | None = None
    #: Symmetry-folding metadata (``None`` for unfolded runs).
    fold: dict | None = None

    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ppn

    @property
    def inter_node_bytes(self) -> int:
        """Total bytes that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[1]

    @property
    def inter_node_messages(self) -> int:
        """Total messages that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[0]

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v:.3e}s" for k, v in sorted(self.phase_times.items()))
        return (
            f"{self.algorithm} [{self.pattern}]: {self.total_bytes} B total "
            f"(skew {self.skew:.2f}x) over {self.nprocs} ranks "
            f"({self.num_nodes} nodes x {self.ppn} ppn) -> {self.elapsed:.3e} s"
            + (f" [{phases}]" if phases else "")
            + ("" if self.correct else "  ** INCORRECT RESULT **")
        )


# ---------------------------------------------------------------------------
# Phased workloads (multi-exchange timelines, optional multi-job interference)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhasedJob:
    """One job of a phased run: a workload, its per-phase algorithms, its nodes.

    ``algorithms`` holds one ``(name, options)`` pair per phase of the
    workload — the *assignment*.  A static assignment repeats the same
    pair for every phase; an adaptive one re-picks per phase (see
    :func:`repro.core.selection.select_phased`).
    """

    workload: Any
    algorithms: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...]
    num_nodes: int

    @classmethod
    def make(cls, workload, algorithms, num_nodes: int) -> "PhasedJob":
        """Build a job, normalising ``algorithms`` into the canonical tuple form.

        ``algorithms`` may be a single algorithm (name, ``(name, options)``
        pair, or anything with ``.algorithm``/``.as_kwargs()`` such as a
        :class:`~repro.core.selection.CandidateConfig`) applied to every
        phase, or a sequence with one such entry per phase.
        """
        num_phases = workload.num_phases
        if isinstance(algorithms, (str, tuple)) or hasattr(algorithms, "algorithm"):
            entries = [algorithms] * num_phases
        else:
            entries = list(algorithms)
        if len(entries) != num_phases:
            raise ConfigurationError(
                f"phased job needs one algorithm per phase: got {len(entries)} "
                f"for {num_phases} phase(s)"
            )
        normalised = []
        for entry in entries:
            if hasattr(entry, "algorithm") and hasattr(entry, "as_kwargs"):
                name, options = entry.algorithm, entry.as_kwargs()
            elif isinstance(entry, str):
                name, options = entry, {}
            elif isinstance(entry, tuple) and len(entry) == 2:
                name, options = entry[0], dict(entry[1])
            else:
                raise ConfigurationError(
                    f"cannot interpret {entry!r} as a phase algorithm; expected "
                    "a name, a (name, options) pair or a candidate config"
                )
            normalised.append((name, tuple(sorted(options.items()))))
        return cls(workload=workload, algorithms=tuple(normalised),
                   num_nodes=num_nodes)

    def describe_assignment(self) -> str:
        parts = []
        for (name, options), phase in zip(self.algorithms, self.workload.phases):
            opts = ", ".join(f"{k}={v}" for k, v in options)
            parts.append(f"{phase.name}={name}({opts})" if opts else f"{phase.name}={name}")
        return "; ".join(parts)


@dataclass
class PhaseResult:
    """Realized timing of one phase of one job."""

    #: Phase name from the workload.
    name: str
    #: Algorithm description the phase ran with.
    algorithm: str
    #: Back-to-back repeats of the exchange.
    repeats: int
    #: Max-over-ranks simulated time spent in the phase (all repeats).
    elapsed: float
    #: Whether the phase's receive buffers matched the reference.
    correct: bool


@dataclass
class JobOutcome:
    """Realized outcome of one job of a phased run."""

    index: int
    num_nodes: int
    ppn: int
    phases: list[PhaseResult]
    #: Simulated completion time of the job (max over its ranks).
    elapsed: float

    @property
    def correct(self) -> bool:
        return all(phase.correct for phase in self.phases)

    def summary(self) -> str:
        steps = ", ".join(
            f"{p.name}[{p.algorithm}]={p.elapsed:.3e}s" for p in self.phases
        )
        return (
            f"job{self.index} ({self.num_nodes} nodes x {self.ppn} ppn): "
            f"{self.elapsed:.3e} s [{steps}]"
            + ("" if self.correct else "  ** INCORRECT RESULT **")
        )


@dataclass
class PhasedOutcome:
    """Result of one phased (possibly multi-job) simulation."""

    jobs: list[JobOutcome]
    num_nodes: int
    ppn: int
    #: Simulated completion time of the whole run (max over all jobs).
    elapsed: float
    #: Max-over-ranks duration of every recorded span (phase boundaries,
    #: per-job totals, and the algorithms' internal phases).
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Message and byte counts per locality level (whole run).
    traffic_by_level: dict[LocalityLevel, tuple[int, int]] = field(default_factory=dict)
    #: Full engine result; ``None`` with ``keep_job=False``.
    job: JobResult | None = None

    @property
    def correct(self) -> bool:
        return all(job.correct for job in self.jobs)

    def summary(self) -> str:
        lines = [
            f"phased run: {len(self.jobs)} job(s) on {self.num_nodes} nodes "
            f"x {self.ppn} ppn -> {self.elapsed:.3e} s"
        ]
        lines.extend(job.summary() for job in self.jobs)
        return "\n".join(lines)


def _phase_label(num_jobs: int, job_index: int, phase_index: int, name: str) -> str:
    """Span label of one phase: stable, parseable, unique per (job, phase)."""
    label = f"phase{phase_index}:{name}"
    return label if num_jobs == 1 else f"job{job_index}/{label}"


def _job_total_label(num_jobs: int, job_index: int) -> str:
    return "job:total" if num_jobs == 1 else f"job{job_index}:total"


@dataclass(frozen=True)
class _JobPlan:
    """Resolved per-job execution plan shared by every rank program."""

    index: int
    rank_base: int
    pmap: ProcessMap
    #: One ``(label, algorithm instance, counts, repeats)`` tuple per phase.
    phases: tuple
    total_label: str


def phased_program(ctx, plans: tuple, dtype):
    """Rank program of a phased run: my job's phases, back-to-back.

    The rank locates its job by engine-rank range, builds a job-local view
    (:func:`repro.simmpi.jobview.job_view`) and runs every phase of its
    job's plan through it.  A job-internal barrier separates consecutive
    exchanges so no message of one phase can match a receive of the next;
    jobs never synchronise with each other — their only coupling is link
    contention on the shared fabric.

    Each phase's span is recorded as ``phase<i>:<name>`` (prefixed with
    ``job<j>/`` for multi-job runs) via
    :meth:`~repro.simmpi.engine.RankContext.record_span`, so phase
    boundaries land on the exported Chrome-trace rank tracks; the job's
    completion time accumulates under its ``job:total`` label.
    """
    from repro.simmpi.jobview import job_view  # deferred: avoids an import cycle

    plan = None
    for candidate in plans:
        if candidate.rank_base <= ctx.rank < candidate.rank_base + candidate.pmap.nprocs:
            plan = candidate
            break
    assert plan is not None, f"rank {ctx.rank} belongs to no job"
    view = job_view(ctx, plan.index, plan.rank_base, plan.pmap)
    results = []
    for label, algo, counts, repeats in plan.phases:
        recvbuf = None
        for _ in range(repeats):
            sendbuf = make_workload_sendbuf(view.rank, counts, dtype=dtype)
            recvbuf = np.zeros(int(counts[:, view.rank].sum()), dtype=dtype)
            start = ctx.now
            yield from algo.run(view, counts, sendbuf, recvbuf)
            ctx.record_span(label, start, ctx.now)
            # The barrier keeps consecutive exchanges from overlapping on a
            # shared communicator context; it is job-internal, so other
            # jobs keep running (and contending) freely.
            yield from view.world.barrier()
        results.append(recvbuf)
    ctx.add_timing(plan.total_label, ctx.now)
    ctx.result = results


def run_phased(
    jobs,
    pmap: ProcessMap,
    *,
    dtype=np.uint8,
    validate: bool = True,
    record_trace: bool = False,
    sink=None,
    keep_job: bool = True,
    engine_jobs: int = 1,
    faults=None,
) -> PhasedOutcome:
    """Simulate one or more phased jobs on a single engine timeline.

    Parameters
    ----------
    jobs:
        Sequence of :class:`PhasedJob` descriptors.  Jobs are placed on
        contiguous node ranges in order; their node counts must sum to
        ``pmap.num_nodes`` and every job's workload must describe exactly
        ``job.num_nodes * pmap.ppn`` ranks.
    pmap:
        Process map of the *whole machine* (all jobs).  Its cluster — and
        in particular its fabric — is what the jobs share: on a tapered
        dragonfly, one job's traffic delays another's, which is the
        interference adaptive selection exploits.  Folded maps are
        rejected (phases and multi-job placements break the rotation
        symmetry folding relies on).
    validate / record_trace / sink / keep_job / engine_jobs / faults:
        As in :func:`run_workload`; validation checks every phase of every
        job against the non-uniform reference transposition.
    """
    jobs = list(jobs)
    if not jobs:
        raise ConfigurationError("a phased run needs at least one job")
    if pmap.is_folded:
        raise ConfigurationError(
            "phased runs are incompatible with symmetry folding: phase "
            "sequences and multi-job placements break the node-rotation "
            "symmetry the fold relies on"
        )
    if faults is not None and not faults:
        faults = None
    total_nodes = sum(job.num_nodes for job in jobs)
    if total_nodes != pmap.num_nodes:
        raise ConfigurationError(
            f"job node counts sum to {total_nodes} but the process map has "
            f"{pmap.num_nodes} nodes"
        )
    np_dtype = np.dtype(dtype)

    plans: list[_JobPlan] = []
    node_base = 0
    for index, job in enumerate(jobs):
        if job.num_nodes <= 0:
            raise ConfigurationError(
                f"job {index} must occupy at least one node, got {job.num_nodes}"
            )
        job_pmap = ProcessMap(pmap.cluster, ppn=pmap.ppn, num_nodes=job.num_nodes)
        if job.workload.nprocs != job_pmap.nprocs:
            raise ConfigurationError(
                f"job {index} workload describes {job.workload.nprocs} ranks "
                f"but its placement has {job_pmap.nprocs} "
                f"({job.num_nodes} nodes x {pmap.ppn} ppn)"
            )
        phases = []
        for phase_index, (phase, (name, options)) in enumerate(
            zip(job.workload.phases, job.algorithms)
        ):
            algo = get_v_algorithm(name, **dict(options))
            counts = phase.matrix.item_counts(np_dtype)
            algo.validate(job_pmap, counts)
            label = _phase_label(len(jobs), index, phase_index, phase.name)
            phases.append((label, algo, counts, phase.repeats))
        plans.append(
            _JobPlan(
                index=index,
                rank_base=node_base * pmap.ppn,
                pmap=job_pmap,
                phases=tuple(phases),
                total_label=_job_total_label(len(jobs), index),
            )
        )
        node_base += job.num_nodes

    engine_result = run_spmd(
        pmap, phased_program, tuple(plans), np_dtype,
        record_trace=record_trace, sink=sink, engine_jobs=engine_jobs,
        faults=faults,
    )

    phase_times = {name: engine_result.phase_time(name) for name in engine_result.phases()}
    job_outcomes: list[JobOutcome] = []
    for plan, job in zip(plans, jobs):
        phase_results: list[PhaseResult] = []
        for (label, algo, counts, repeats), phase in zip(plan.phases, job.workload.phases):
            correct = True
            if validate:
                base = plan.rank_base
                phase_index = len(phase_results)
                bufs = [
                    engine_result.results[base + rank][phase_index]
                    for rank in range(plan.pmap.nprocs)
                ]
                correct = validate_workload_results(bufs, counts)
            phase_results.append(
                PhaseResult(
                    name=phase.name,
                    algorithm=algo.describe(),
                    repeats=repeats,
                    elapsed=phase_times.get(label, 0.0),
                    correct=correct,
                )
            )
        job_outcomes.append(
            JobOutcome(
                index=plan.index,
                num_nodes=job.num_nodes,
                ppn=pmap.ppn,
                phases=phase_results,
                elapsed=phase_times.get(plan.total_label, 0.0),
            )
        )

    return PhasedOutcome(
        jobs=job_outcomes,
        num_nodes=pmap.num_nodes,
        ppn=pmap.ppn,
        elapsed=engine_result.elapsed,
        phase_times=phase_times,
        traffic_by_level=dict(engine_result.traffic_by_level),
        job=engine_result if keep_job else None,
    )


def run_phased_workload(
    algorithms,
    pmap: ProcessMap,
    workload,
    **kwargs,
) -> PhasedOutcome:
    """Simulate one phased workload occupying the whole machine.

    ``algorithms`` is a single algorithm applied to every phase or a
    per-phase sequence (see :meth:`PhasedJob.make`); everything else is as
    in :func:`run_phased`.
    """
    job = PhasedJob.make(workload, algorithms, pmap.num_nodes)
    return run_phased([job], pmap, **kwargs)


def workload_program(ctx, algorithm: AlltoallvAlgorithm, counts: np.ndarray, dtype):
    """Rank program that builds packed v-buffers, runs ``algorithm`` and stores the result.

    Like :func:`alltoall_program`, the receive buffer is published as the
    rank result up front and the algorithm's generator is returned without
    a delegating frame.
    """
    sendbuf = make_workload_sendbuf(ctx.rank, counts, dtype=dtype)
    recvbuf = np.zeros(int(counts[:, ctx.rank].sum()), dtype=dtype)
    ctx.result = recvbuf
    return algorithm.run(ctx, counts, sendbuf, recvbuf)


def run_workload(
    algorithm: str | AlltoallvAlgorithm,
    pmap: ProcessMap,
    matrix: TrafficMatrix | np.ndarray,
    *,
    dtype=np.uint8,
    validate: bool = True,
    record_trace: bool = False,
    sink=None,
    keep_job: bool = True,
    fold: str = "off",
    engine_jobs: int = 1,
    faults=None,
    **algorithm_options: Any,
) -> WorkloadOutcome:
    """Simulate one non-uniform exchange and return its :class:`WorkloadOutcome`.

    Parameters
    ----------
    algorithm:
        V-algorithm registry name (``"pairwise"``, ``"nonblocking"``,
        ``"node-aware"``) or an :class:`AlltoallvAlgorithm` instance.
    pmap:
        Process placement; ``matrix.nprocs`` must equal ``pmap.nprocs``.
    matrix:
        The :class:`~repro.workloads.TrafficMatrix` to exchange (a raw
        square byte array is accepted and wrapped).
    dtype:
        Element type of the exchanged buffers; every matrix entry must be a
        multiple of its item size (always true for the default ``uint8``).
    validate:
        Check the receive buffers against the non-uniform reference
        transposition.
    record_trace:
        Keep a full per-message trace on the returned job.
    sink:
        Optional :class:`repro.obs.sink.EventSink` (see :func:`run_alltoall`).
    fold:
        Symmetry folding mode.  ``"auto"`` folds when the symmetry analyzer
        (:func:`repro.workloads.symmetry.analyze_symmetry`) certifies the
        matrix as node-rotation invariant and falls back to the full
        simulation otherwise; ``"on"`` raises if the traffic is not
        foldable; ``"off"`` (default) always simulates every rank.
    engine_jobs:
        Parallel-engine worker count (see :func:`run_alltoall`); any value
        produces bit-identical simulated timings.
    faults:
        Optional :class:`repro.faults.FaultSpec` (see :func:`run_alltoall`);
        incompatible with folding.
    algorithm_options:
        Forwarded to the algorithm constructor when ``algorithm`` is a name
        (e.g. ``procs_per_group=4``, ``inner="nonblocking"``).
    """
    if isinstance(matrix, np.ndarray):
        matrix = TrafficMatrix(matrix)
    if faults is not None and not faults:
        faults = None
    if faults is not None and fold != "off":
        raise ConfigurationError(
            "fault injection is incompatible with symmetry folding "
            f"(fold={fold!r}): faults break the node-rotation symmetry the "
            "fold relies on; run with fold='off'"
        )
    if matrix.nprocs != pmap.nprocs:
        raise ConfigurationError(
            f"traffic matrix describes {matrix.nprocs} ranks but the process map "
            f"has {pmap.nprocs}"
        )
    counts = matrix.item_counts(np.dtype(dtype))

    if isinstance(algorithm, str):
        algo = get_v_algorithm(algorithm, **algorithm_options)
    else:
        algo = algorithm
        if algorithm_options:
            raise ConfigurationError(
                "algorithm options can only be given together with an algorithm name"
            )
    pmap = _resolve_workload_fold(pmap, fold, matrix)
    algo.validate(pmap, counts)

    job = run_spmd(pmap, workload_program, algo, counts, np.dtype(dtype),
                   record_trace=record_trace, sink=sink, engine_jobs=engine_jobs,
                   faults=faults)

    correct = True
    if validate:
        if pmap.is_folded:
            correct = validate_folded_workload_results(job.results, counts, pmap.ppn)
        else:
            correct = validate_workload_results(job.results, counts)

    phase_times = {name: job.phase_time(name) for name in job.phases()}
    return WorkloadOutcome(
        algorithm=algo.describe(),
        pattern=matrix.pattern,
        total_bytes=matrix.total_bytes,
        skew=matrix.skew,
        num_nodes=pmap.num_nodes,
        ppn=pmap.ppn,
        elapsed=job.elapsed,
        correct=correct,
        phase_times=phase_times,
        traffic_by_level=dict(job.traffic_by_level),
        job=job if keep_job else None,
        fold=job.fold,
    )
