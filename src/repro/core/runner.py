"""High-level runner: execute one all-to-all on a simulated machine.

This is the main user-facing entry point of the library: given an algorithm
(name or instance), a process map and a per-destination message size, it
builds deterministic send buffers, runs the SPMD job on the discrete-event
engine, validates the result against the defining transposition and returns
the timing plus the per-phase breakdown.

Two entry points cover the two traffic families:

* :func:`run_alltoall` — the paper's uniform exchange, parameterised by a
  scalar per-destination ``msg_bytes``;
* :func:`run_workload` — a non-uniform exchange described by a
  :class:`~repro.workloads.TrafficMatrix`, run with the variable-count
  (``alltoallv``) algorithms of :mod:`repro.core.alltoall.valgorithms` and
  validated against the non-uniform transposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm
from repro.core.alltoall.registry import get_algorithm
from repro.core.alltoall.valgorithms import AlltoallvAlgorithm, get_v_algorithm
from repro.core.validation import (
    make_workload_sendbuf,
    validate_alltoall_results,
    validate_folded_alltoall_results,
    validate_folded_workload_results,
    validate_workload_results,
)
from repro.errors import ConfigurationError
from repro.machine.folding import uniform_certificate
from repro.machine.hierarchy import LocalityLevel
from repro.machine.process_map import ProcessMap
from repro.simmpi.engine import JobResult, run_spmd
from repro.utils.buffers import make_alltoall_sendbuf
from repro.workloads.matrix import TrafficMatrix

__all__ = [
    "AlltoallOutcome",
    "WorkloadOutcome",
    "run_alltoall",
    "run_workload",
    "alltoall_program",
    "workload_program",
    "FOLD_MODES",
]

#: Accepted values of the ``fold`` parameter / ``--fold`` CLI option.
FOLD_MODES = ("off", "auto", "on")


def _check_fold_mode(fold: str) -> str:
    if fold not in FOLD_MODES:
        raise ConfigurationError(
            f"fold must be one of {', '.join(FOLD_MODES)}; got {fold!r}"
        )
    return fold


def _resolve_uniform_fold(pmap: ProcessMap, fold: str) -> ProcessMap:
    """Process map to simulate a *uniform* exchange with under ``fold`` mode.

    Uniform traffic is invariant under every rank rotation, so ``auto`` and
    ``on`` both fold (unless the map already is, or folding is a no-op on a
    single node in which case it still works but saves nothing).
    """
    _check_fold_mode(fold)
    if fold == "off" or pmap.is_folded:
        return pmap
    return pmap.folded(uniform_certificate(pmap.nprocs, pmap.ppn))


def _resolve_workload_fold(pmap: ProcessMap, fold: str, matrix: TrafficMatrix) -> ProcessMap:
    """Process map for a workload: fold only when the analyzer certifies it."""
    _check_fold_mode(fold)
    if fold == "off" or pmap.is_folded:
        return pmap
    from repro.workloads.symmetry import analyze_symmetry

    report = analyze_symmetry(matrix, pmap.ppn)
    if report.foldable:
        return pmap.folded(report.fold_certificate())
    if fold == "on":
        raise ConfigurationError(
            f"fold requested but the traffic is not foldable: {report.certificate}"
        )
    return pmap


@dataclass
class AlltoallOutcome:
    """Result of one simulated all-to-all exchange."""

    #: Human-readable description of the algorithm and its options.
    algorithm: str
    #: Per-destination message size in bytes.
    msg_bytes: int
    #: Number of nodes used.
    num_nodes: int
    #: Processes per node.
    ppn: int
    #: Simulated execution time of the collective (max over ranks), seconds.
    elapsed: float
    #: Whether the receive buffers matched the reference transposition.
    correct: bool
    #: Max-over-ranks duration of each instrumented phase.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Message and byte counts per locality level.
    traffic_by_level: dict[LocalityLevel, tuple[int, int]] = field(default_factory=dict)
    #: Full engine result (per-rank data, traces, NIC statistics).
    job: JobResult | None = None
    #: Symmetry-folding metadata (``None`` for unfolded runs); mirrors
    #: :attr:`repro.simmpi.engine.JobResult.fold` so it survives
    #: ``keep_job=False``.
    fold: dict | None = None

    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ppn

    @property
    def inter_node_bytes(self) -> int:
        """Total bytes that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[1]

    @property
    def inter_node_messages(self) -> int:
        """Total messages that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[0]

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v:.3e}s" for k, v in sorted(self.phase_times.items()))
        folded = ""
        if self.fold is not None:
            folded = (
                f" [folded: {self.fold['simulated_ranks']} representatives "
                f"x {self.fold['multiplicity']}]"
            )
        return (
            f"{self.algorithm}: {self.msg_bytes} B x {self.nprocs} ranks "
            f"({self.num_nodes} nodes x {self.ppn} ppn) -> {self.elapsed:.3e} s"
            + folded
            + (f" [{phases}]" if phases else "")
            + ("" if self.correct else "  ** INCORRECT RESULT **")
        )


def alltoall_program(ctx, algorithm: AlltoallAlgorithm, block_items: int, dtype):
    """Rank program that builds buffers, runs ``algorithm`` and stores the result.

    The receive buffer is exposed as the rank result up front (the exchange
    fills it in place) and the algorithm's generator is returned directly:
    a ``yield from`` wrapper here would put one more frame under every
    simulated operation.
    """
    nprocs = ctx.nprocs
    sendbuf = make_alltoall_sendbuf(ctx.rank, nprocs, block_items, dtype=dtype)
    recvbuf = np.zeros(nprocs * block_items, dtype=dtype)
    ctx.result = recvbuf
    return algorithm.run(ctx, sendbuf, recvbuf)


def run_alltoall(
    algorithm: str | AlltoallAlgorithm,
    pmap: ProcessMap,
    msg_bytes: int,
    *,
    dtype=np.uint8,
    validate: bool = True,
    record_trace: bool = False,
    sink=None,
    keep_job: bool = True,
    fold: str = "off",
    engine_jobs: int = 1,
    faults=None,
    **algorithm_options: Any,
) -> AlltoallOutcome:
    """Simulate one all-to-all exchange and return its :class:`AlltoallOutcome`.

    Parameters
    ----------
    algorithm:
        Registry name (``"node-aware"``, ``"multileader-node-aware"``, ...)
        or an :class:`AlltoallAlgorithm` instance.
    pmap:
        Process placement (machine, node count, processes per node).
    msg_bytes:
        Bytes each rank sends to each other rank (the paper's x-axis).
    dtype:
        Element type of the exchanged buffers; ``msg_bytes`` must be a
        multiple of its item size.
    validate:
        Check the receive buffers against the reference transposition.
    record_trace:
        Keep a full per-message trace on the returned job (slower, more
        memory; used by the breakdown figures and some tests).
    sink:
        Optional :class:`repro.obs.sink.EventSink` observing the job's
        simulated lifecycle (phase/wait/match/NIC/link events); ``None``
        keeps tracing off at zero cost.
    fold:
        Symmetry folding mode — ``"off"`` (default) simulates every rank;
        ``"auto"`` and ``"on"`` simulate one node's representatives standing
        in for the whole machine (always sound for the uniform exchange; see
        :mod:`repro.machine.folding`).  With folding off the simulated
        arithmetic is bit-identical to what it was before folding existed.
    engine_jobs:
        Worker count of the conservative-lookahead parallel engine
        (:mod:`repro.simmpi.parallel`).  ``1`` (default) runs the serial
        engine; any value yields bit-identical simulated timings, so this
        knob is excluded from cache identity.
    faults:
        Optional :class:`repro.faults.FaultSpec` injecting deterministic
        machine degradations (degraded/flapping links, stragglers, OS
        noise).  Empty/``None`` is bit-identical to a fault-free build;
        incompatible with folding (faults break node-rotation symmetry).
    algorithm_options:
        Forwarded to the algorithm constructor when ``algorithm`` is a name.
    """
    if msg_bytes <= 0:
        raise ConfigurationError(f"msg_bytes must be positive, got {msg_bytes}")
    if faults is not None and not faults:
        faults = None
    if faults is not None and fold != "off":
        raise ConfigurationError(
            "fault injection is incompatible with symmetry folding "
            f"(fold={fold!r}): faults break the node-rotation symmetry the "
            "fold relies on; run with fold='off'"
        )
    itemsize = np.dtype(dtype).itemsize
    if msg_bytes % itemsize != 0:
        raise ConfigurationError(
            f"msg_bytes={msg_bytes} is not a multiple of the {itemsize}-byte dtype {np.dtype(dtype)}"
        )
    block_items = msg_bytes // itemsize

    algo = get_algorithm(algorithm, **algorithm_options) if isinstance(algorithm, str) else algorithm
    if algorithm_options and not isinstance(algorithm, str):
        raise ConfigurationError("algorithm options can only be given together with an algorithm name")
    pmap = _resolve_uniform_fold(pmap, fold)
    algo.validate(pmap)

    job = run_spmd(pmap, alltoall_program, algo, block_items, np.dtype(dtype),
                   record_trace=record_trace, sink=sink, engine_jobs=engine_jobs,
                   faults=faults)

    correct = True
    if validate:
        if pmap.is_folded:
            correct = validate_folded_alltoall_results(
                job.results, pmap.nprocs, pmap.ppn, block_items
            )
        else:
            correct = validate_alltoall_results(job.results, pmap.nprocs, block_items)

    phase_times = {name: job.phase_time(name) for name in job.phases()}
    outcome = AlltoallOutcome(
        algorithm=algo.describe(),
        msg_bytes=msg_bytes,
        num_nodes=pmap.num_nodes,
        ppn=pmap.ppn,
        elapsed=job.elapsed,
        correct=correct,
        phase_times=phase_times,
        traffic_by_level=dict(job.traffic_by_level),
        job=job if keep_job else None,
        fold=job.fold,
    )
    return outcome


# ---------------------------------------------------------------------------
# Non-uniform workloads (alltoallv)
# ---------------------------------------------------------------------------


@dataclass
class WorkloadOutcome:
    """Result of one simulated non-uniform (alltoallv) exchange."""

    #: Human-readable description of the algorithm and its options.
    algorithm: str
    #: Traffic pattern name of the matrix that was exchanged.
    pattern: str
    #: Total bytes moved by the exchange.
    total_bytes: int
    #: Load imbalance of the matrix (max per-rank send bytes over the mean).
    skew: float
    #: Number of nodes used.
    num_nodes: int
    #: Processes per node.
    ppn: int
    #: Simulated execution time of the collective (max over ranks), seconds.
    elapsed: float
    #: Whether the receive buffers matched the reference transposition.
    correct: bool
    #: Max-over-ranks duration of each instrumented phase.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Message and byte counts per locality level.
    traffic_by_level: dict[LocalityLevel, tuple[int, int]] = field(default_factory=dict)
    #: Full engine result (per-rank data, traces, NIC statistics).
    job: JobResult | None = None
    #: Symmetry-folding metadata (``None`` for unfolded runs).
    fold: dict | None = None

    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ppn

    @property
    def inter_node_bytes(self) -> int:
        """Total bytes that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[1]

    @property
    def inter_node_messages(self) -> int:
        """Total messages that crossed the network."""
        counts = self.traffic_by_level.get(LocalityLevel.NETWORK, (0, 0))
        return counts[0]

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v:.3e}s" for k, v in sorted(self.phase_times.items()))
        return (
            f"{self.algorithm} [{self.pattern}]: {self.total_bytes} B total "
            f"(skew {self.skew:.2f}x) over {self.nprocs} ranks "
            f"({self.num_nodes} nodes x {self.ppn} ppn) -> {self.elapsed:.3e} s"
            + (f" [{phases}]" if phases else "")
            + ("" if self.correct else "  ** INCORRECT RESULT **")
        )


def workload_program(ctx, algorithm: AlltoallvAlgorithm, counts: np.ndarray, dtype):
    """Rank program that builds packed v-buffers, runs ``algorithm`` and stores the result.

    Like :func:`alltoall_program`, the receive buffer is published as the
    rank result up front and the algorithm's generator is returned without
    a delegating frame.
    """
    sendbuf = make_workload_sendbuf(ctx.rank, counts, dtype=dtype)
    recvbuf = np.zeros(int(counts[:, ctx.rank].sum()), dtype=dtype)
    ctx.result = recvbuf
    return algorithm.run(ctx, counts, sendbuf, recvbuf)


def run_workload(
    algorithm: str | AlltoallvAlgorithm,
    pmap: ProcessMap,
    matrix: TrafficMatrix | np.ndarray,
    *,
    dtype=np.uint8,
    validate: bool = True,
    record_trace: bool = False,
    sink=None,
    keep_job: bool = True,
    fold: str = "off",
    engine_jobs: int = 1,
    faults=None,
    **algorithm_options: Any,
) -> WorkloadOutcome:
    """Simulate one non-uniform exchange and return its :class:`WorkloadOutcome`.

    Parameters
    ----------
    algorithm:
        V-algorithm registry name (``"pairwise"``, ``"nonblocking"``,
        ``"node-aware"``) or an :class:`AlltoallvAlgorithm` instance.
    pmap:
        Process placement; ``matrix.nprocs`` must equal ``pmap.nprocs``.
    matrix:
        The :class:`~repro.workloads.TrafficMatrix` to exchange (a raw
        square byte array is accepted and wrapped).
    dtype:
        Element type of the exchanged buffers; every matrix entry must be a
        multiple of its item size (always true for the default ``uint8``).
    validate:
        Check the receive buffers against the non-uniform reference
        transposition.
    record_trace:
        Keep a full per-message trace on the returned job.
    sink:
        Optional :class:`repro.obs.sink.EventSink` (see :func:`run_alltoall`).
    fold:
        Symmetry folding mode.  ``"auto"`` folds when the symmetry analyzer
        (:func:`repro.workloads.symmetry.analyze_symmetry`) certifies the
        matrix as node-rotation invariant and falls back to the full
        simulation otherwise; ``"on"`` raises if the traffic is not
        foldable; ``"off"`` (default) always simulates every rank.
    engine_jobs:
        Parallel-engine worker count (see :func:`run_alltoall`); any value
        produces bit-identical simulated timings.
    faults:
        Optional :class:`repro.faults.FaultSpec` (see :func:`run_alltoall`);
        incompatible with folding.
    algorithm_options:
        Forwarded to the algorithm constructor when ``algorithm`` is a name
        (e.g. ``procs_per_group=4``, ``inner="nonblocking"``).
    """
    if isinstance(matrix, np.ndarray):
        matrix = TrafficMatrix(matrix)
    if faults is not None and not faults:
        faults = None
    if faults is not None and fold != "off":
        raise ConfigurationError(
            "fault injection is incompatible with symmetry folding "
            f"(fold={fold!r}): faults break the node-rotation symmetry the "
            "fold relies on; run with fold='off'"
        )
    if matrix.nprocs != pmap.nprocs:
        raise ConfigurationError(
            f"traffic matrix describes {matrix.nprocs} ranks but the process map "
            f"has {pmap.nprocs}"
        )
    counts = matrix.item_counts(np.dtype(dtype))

    if isinstance(algorithm, str):
        algo = get_v_algorithm(algorithm, **algorithm_options)
    else:
        algo = algorithm
        if algorithm_options:
            raise ConfigurationError(
                "algorithm options can only be given together with an algorithm name"
            )
    pmap = _resolve_workload_fold(pmap, fold, matrix)
    algo.validate(pmap, counts)

    job = run_spmd(pmap, workload_program, algo, counts, np.dtype(dtype),
                   record_trace=record_trace, sink=sink, engine_jobs=engine_jobs,
                   faults=faults)

    correct = True
    if validate:
        if pmap.is_folded:
            correct = validate_folded_workload_results(job.results, counts, pmap.ppn)
        else:
            correct = validate_workload_results(job.results, counts)

    phase_times = {name: job.phase_time(name) for name in job.phases()}
    return WorkloadOutcome(
        algorithm=algo.describe(),
        pattern=matrix.pattern,
        total_bytes=matrix.total_bytes,
        skew=matrix.skew,
        num_nodes=pmap.num_nodes,
        ppn=pmap.ppn,
        elapsed=job.elapsed,
        correct=correct,
        phase_times=phase_times,
        traffic_by_level=dict(job.traffic_by_level),
        job=job if keep_job else None,
        fold=job.fold,
    )
