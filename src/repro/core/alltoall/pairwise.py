"""Pairwise-exchange all-to-all (Algorithm 1 of the paper).

The exchange proceeds in ``p - 1`` disjoint steps; at step ``i`` rank ``r``
sends its block for rank ``(r + i) mod p`` and receives the block from rank
``(r - i) mod p`` with a combined send/receive.  Only one exchange is in
flight per rank at any time, which limits network contention and matching
queue length, at the price of synchronization delay whenever the partner of
a step arrives late.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.simmpi.ops import LocalCopy, PostRecv, PostSend, Wait

__all__ = ["exchange_pairwise", "PairwiseAlltoall"]

_TAG = 101


def exchange_pairwise(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Pairwise exchange over ``comm`` (generator; also used as an inner exchange).

    The body yields the primitive operations of ``comm.sendrecv`` directly
    (receive posted first, exactly as ``MPI_Sendrecv`` requires): with
    O(P^2) sendrecv steps per job this is the simulator's hottest rank
    program, and flattening it drops one generator frame plus the per-step
    buffer/rank re-validation, all of which is invariant across steps.
    """
    size, rank = comm.size, comm.rank
    block = check_alltoall_buffers(sendbuf, recvbuf, size)
    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)
    yield LocalCopy(dest=recv_view[rank], source=send_view[rank])
    world = comm.group.world_ranks
    context_id = comm.context_id
    # The engine consumes operations synchronously while this generator is
    # suspended (see repro.simmpi.ops), so the three per-step records can be
    # reused across all P-1 steps instead of allocated anew.
    recv_op = PostRecv(0, recvbuf, _TAG, context_id)
    send_op = PostSend(0, sendbuf, _TAG, context_id)
    wait_op = Wait(())
    for step in range(1, size):
        dest = rank + step
        if dest >= size:
            dest -= size
        source = rank - step
        if source < 0:
            source += size
        recv_op.source = world[source]
        recv_op.buffer = recv_view[source]
        recv_req = yield recv_op
        send_op.dest = world[dest]
        send_op.payload = send_view[dest]
        send_req = yield send_op
        wait_op.requests = (recv_req, send_req)
        yield wait_op


class PairwiseAlltoall(AlltoallAlgorithm):
    """Flat pairwise exchange over the world communicator."""

    name = "pairwise"

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        # Returns the exchange generator directly (rather than forwarding it
        # with ``yield from``) so every operation crosses one frame less.
        return exchange_pairwise(ctx.world, sendbuf, recvbuf)
