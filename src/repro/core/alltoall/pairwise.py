"""Pairwise-exchange all-to-all (Algorithm 1 of the paper).

The exchange proceeds in ``p - 1`` disjoint steps; at step ``i`` rank ``r``
sends its block for rank ``(r + i) mod p`` and receives the block from rank
``(r - i) mod p`` with a combined send/receive.  Only one exchange is in
flight per rank at any time, which limits network contention and matching
queue length, at the price of synchronization delay whenever the partner of
a step arrives late.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.simmpi.ops import LocalCopy

__all__ = ["exchange_pairwise", "PairwiseAlltoall"]

_TAG = 101


def exchange_pairwise(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Pairwise exchange over ``comm`` (generator; also used as an inner exchange)."""
    size, rank = comm.size, comm.rank
    block = check_alltoall_buffers(sendbuf, recvbuf, size)
    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)
    yield LocalCopy(dest=recv_view[rank], source=send_view[rank])
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        yield from comm.sendrecv(
            send_view[dest], dest, recv_view[source], source, sendtag=_TAG, recvtag=_TAG
        )


class PairwiseAlltoall(AlltoallAlgorithm):
    """Flat pairwise exchange over the world communicator."""

    name = "pairwise"

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from exchange_pairwise(ctx.world, sendbuf, recvbuf)
