"""Flat variable-count exchange kernels (``alltoallv`` semantics).

These mirror :mod:`repro.core.alltoall.pairwise` and
:mod:`repro.core.alltoall.nonblocking` but move a *different* number of
items to every peer, as described by per-peer count vectors.  Both kernels
use the packed buffer layout (block ``i`` at the exclusive prefix sum of the
counts) and skip zero-count pairs entirely, so sparse traffic matrices cost
only the messages they actually contain.

They serve double duty exactly like the uniform kernels: as the flat
v-algorithms over the world communicator and as the inner exchanges of the
hierarchical v-algorithms (see :mod:`repro.core.alltoall.valgorithms`),
resolved by name through :data:`V_EXCHANGES`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import BufferSizeError, ConfigurationError
from repro.simmpi.comm import Communicator
from repro.simmpi.ops import LocalCopy
from repro.utils.buffers import check_v_counts, displacements_from_counts

__all__ = [
    "exchange_pairwise_v",
    "exchange_nonblocking_v",
    "V_EXCHANGES",
    "get_v_exchange",
]

_TAG_NONBLOCKING_V = 112


def _validate_v_buffers(
    comm: Communicator,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    sendcounts,
    recvcounts,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Validate packed v-exchange buffers; return (sendcounts, recvcounts, sdispls, rdispls)."""
    size, rank = comm.size, comm.rank
    sendcounts = check_v_counts(sendcounts, size, name="sendcounts")
    recvcounts = check_v_counts(recvcounts, size, name="recvcounts")
    if sendbuf.size != int(sendcounts.sum()):
        raise BufferSizeError(
            f"send buffer has {sendbuf.size} items but the counts sum to {int(sendcounts.sum())}"
        )
    if recvbuf.size != int(recvcounts.sum()):
        raise BufferSizeError(
            f"receive buffer has {recvbuf.size} items but the counts sum to {int(recvcounts.sum())}"
        )
    if sendcounts[rank] != recvcounts[rank]:
        raise BufferSizeError(
            f"rank {rank} sends itself {int(sendcounts[rank])} items "
            f"but expects {int(recvcounts[rank])}"
        )
    return sendcounts, recvcounts, displacements_from_counts(sendcounts), displacements_from_counts(recvcounts)


def exchange_pairwise_v(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray,
                        sendcounts, recvcounts):
    """Pairwise-exchange alltoallv over ``comm`` (generator; packed layout).

    ``p - 1`` disjoint steps with at most one exchange in flight per rank,
    like the uniform Algorithm 1; step partners with zero bytes in both
    directions cost nothing.  After validating the packed layout this
    delegates to :meth:`~repro.simmpi.comm.Communicator.alltoallv`, which
    implements exactly that schedule.
    """
    sendcounts, recvcounts, sdispls, rdispls = _validate_v_buffers(
        comm, sendbuf, recvbuf, sendcounts, recvcounts
    )
    yield from comm.alltoallv(sendbuf, sendcounts, recvbuf, recvcounts, sdispls, rdispls)


def exchange_nonblocking_v(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray,
                           sendcounts, recvcounts):
    """Post-all-then-wait alltoallv over ``comm`` (generator; packed layout).

    All non-empty receives are posted first (in expected arrival order, to
    keep the unexpected queue short), then all non-empty sends, like the
    uniform Algorithm 2 — and with the same matching-cost exposure when the
    effective peer count is large.
    """
    size, rank = comm.size, comm.rank
    sendcounts, recvcounts, sdispls, rdispls = _validate_v_buffers(
        comm, sendbuf, recvbuf, sendcounts, recvcounts
    )
    requests = []
    for step in range(1, size):
        source = (rank - step) % size
        if recvcounts[source]:
            req = yield from comm.irecv(
                recvbuf[rdispls[source]: rdispls[source] + recvcounts[source]],
                source=source, tag=_TAG_NONBLOCKING_V,
            )
            requests.append(req)
    for step in range(1, size):
        dest = (rank + step) % size
        if sendcounts[dest]:
            req = yield from comm.isend(
                sendbuf[sdispls[dest]: sdispls[dest] + sendcounts[dest]],
                dest=dest, tag=_TAG_NONBLOCKING_V,
            )
            requests.append(req)
    if sendcounts[rank]:
        yield LocalCopy(
            dest=recvbuf[rdispls[rank]: rdispls[rank] + recvcounts[rank]],
            source=sendbuf[sdispls[rank]: sdispls[rank] + sendcounts[rank]],
        )
    yield from comm.waitall(requests)


#: name -> generator function ``f(comm, sendbuf, recvbuf, sendcounts, recvcounts)``.
V_EXCHANGES: dict[str, Callable] = {
    "pairwise": exchange_pairwise_v,
    "nonblocking": exchange_nonblocking_v,
}


def get_v_exchange(name: str) -> Callable:
    """Resolve a variable-count inner exchange by name."""
    if name not in V_EXCHANGES:
        raise ConfigurationError(
            f"unknown v-exchange {name!r}; available: {', '.join(sorted(V_EXCHANGES))}"
        )
    return V_EXCHANGES[name]
