"""Name-based registry of every all-to-all algorithm in the package."""

from __future__ import annotations

from typing import Type

from repro.core.alltoall.base import AlltoallAlgorithm
from repro.core.alltoall.batched import BatchedAlltoall
from repro.core.alltoall.bruck import BruckAlltoall
from repro.core.alltoall.hierarchical import HierarchicalAlltoall, MultiLeaderAlltoall
from repro.core.alltoall.multileader_node_aware import MultiLeaderNodeAwareAlltoall
from repro.core.alltoall.node_aware import LocalityAwareAlltoall, NodeAwareAlltoall
from repro.core.alltoall.nonblocking import NonblockingAlltoall
from repro.core.alltoall.pairwise import PairwiseAlltoall
from repro.core.alltoall.system_mpi import SystemMPIAlltoall
from repro.errors import ConfigurationError

__all__ = ["ALGORITHMS", "ALGORITHM_NAMES", "get_algorithm", "list_algorithms"]

#: Registry mapping algorithm name to its class.
ALGORITHMS: dict[str, Type[AlltoallAlgorithm]] = {
    cls.name: cls
    for cls in (
        PairwiseAlltoall,
        NonblockingAlltoall,
        BruckAlltoall,
        BatchedAlltoall,
        SystemMPIAlltoall,
        HierarchicalAlltoall,
        MultiLeaderAlltoall,
        NodeAwareAlltoall,
        LocalityAwareAlltoall,
        MultiLeaderNodeAwareAlltoall,
    )
}

#: Stable ordering of algorithm names used by reports and sweeps.
ALGORITHM_NAMES: tuple[str, ...] = tuple(ALGORITHMS)


def list_algorithms() -> list[str]:
    """Names of every registered algorithm."""
    return list(ALGORITHM_NAMES)


def get_algorithm(name: str, **options) -> AlltoallAlgorithm:
    """Instantiate an algorithm by name with keyword configuration.

    Examples
    --------
    >>> get_algorithm("locality-aware", procs_per_group=4, inner="nonblocking")
    >>> get_algorithm("hierarchical")          # single leader per node
    >>> get_algorithm("multileader-node-aware", procs_per_leader=8)
    """
    if isinstance(name, AlltoallAlgorithm):
        return name
    key = name.lower()
    if key not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown all-to-all algorithm {name!r}; available: {', '.join(ALGORITHM_NAMES)}"
        )
    try:
        return ALGORITHMS[key](**options)
    except TypeError as exc:
        raise ConfigurationError(f"invalid options for algorithm {name!r}: {exc}") from exc
