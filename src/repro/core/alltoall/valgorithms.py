"""Variable-count (alltoallv) members of the all-to-all algorithm family.

Every algorithm here exchanges a :class:`~repro.workloads.TrafficMatrix`
worth of data: rank ``r``'s send buffer is the concatenation of its
variable-size blocks for destinations ``0..p-1`` (packed layout), and its
receive buffer ends up holding the blocks from sources ``0..p-1`` — the
same transposition that defines ``MPI_Alltoallv``.  The per-pair *item*
counts are a global ``(p, p)`` matrix known to every rank, exactly as the
count arguments of ``MPI_Alltoallv`` are.

Three algorithms cover the paper's design space for irregular traffic:

* :class:`PairwiseAlltoallv` — Algorithm 1's step-synchronous schedule;
* :class:`NonblockingAlltoallv` — Algorithm 2's post-all-then-wait schedule;
* :class:`NodeAwareAlltoallv` — Algorithm 4's two-phase aggregation, where
  the inter-node phase moves per-*group* aggregated (still non-uniform)
  messages and the intra-node phase redistributes them; with
  ``procs_per_group < ppn`` this is the locality-aware variant.

Zero-count pairs exchange no message, so sparse matrices benefit fully from
aggregation (fewer, larger inter-node messages) without paying for empty
pairs.  Resolve algorithms by name through :func:`get_v_algorithm`.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.core.alltoall.vexchange import get_v_exchange
from repro.core.alltoall.repack import pack_delay
from repro.core.instrumentation import PHASE_INTER, PHASE_INTRA, PHASE_PACK, PhaseRecorder
from repro.errors import BufferSizeError, ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.simmpi.engine import RankContext
from repro.simmpi.split import cross_group_comm, local_group_comm
from repro.utils.buffers import check_counts_matrix
from repro.utils.partition import validate_group_size

__all__ = [
    "AlltoallvAlgorithm",
    "PairwiseAlltoallv",
    "NonblockingAlltoallv",
    "NodeAwareAlltoallv",
    "check_workload_counts",
    "V_ALGORITHMS",
    "V_ALGORITHM_NAMES",
    "get_v_algorithm",
    "list_v_algorithms",
]


def check_workload_counts(counts, nprocs: int) -> np.ndarray:
    """Validate a per-pair item-count matrix and return it as ``int64``."""
    return check_counts_matrix(counts, nprocs)


class AlltoallvAlgorithm(abc.ABC):
    """Base class of the variable-count all-to-all implementations.

    Subclasses set :attr:`name` and implement :meth:`run`, a generator that
    performs the exchange for one rank: ``counts[s, d]`` items flow from
    rank ``s`` to rank ``d``, with ``sendbuf`` / ``recvbuf`` in the packed
    layout (block order = peer rank order, no gaps).
    """

    #: Registry key; overridden by subclasses.
    name: str = "abstract"

    def validate(self, pmap: ProcessMap, counts: np.ndarray) -> None:
        """Check that this algorithm can run ``counts`` on ``pmap``.

        The default checks the count matrix shape; subclasses add their own
        configuration checks (e.g. group-size divisibility) on top.
        """
        check_workload_counts(counts, pmap.nprocs)

    @abc.abstractmethod
    def run(self, ctx: RankContext, counts: np.ndarray, sendbuf: np.ndarray, recvbuf: np.ndarray):
        """Perform the exchange for the calling rank (generator)."""

    # -- description -------------------------------------------------------
    def options(self) -> dict[str, Any]:
        """Configuration of this instance (reported by the benchmark harness)."""
        return {}

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in sorted(self.options().items()))
        return f"{self.name}v({opts})" if opts else f"{self.name}v"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class PairwiseAlltoallv(AlltoallvAlgorithm):
    """Flat pairwise-exchange alltoallv over the world communicator."""

    name = "pairwise"

    def run(self, ctx: RankContext, counts: np.ndarray, sendbuf: np.ndarray, recvbuf: np.ndarray):
        # validate() checked the matrix once for the whole job; the exchange
        # kernel still validates this rank's count vectors.
        counts = np.asarray(counts, dtype=np.int64)
        exchange = get_v_exchange("pairwise")
        yield from exchange(ctx.world, sendbuf, recvbuf, counts[ctx.rank], counts[:, ctx.rank])


class NonblockingAlltoallv(AlltoallvAlgorithm):
    """Flat post-all-then-wait alltoallv over the world communicator."""

    name = "nonblocking"

    def run(self, ctx: RankContext, counts: np.ndarray, sendbuf: np.ndarray, recvbuf: np.ndarray):
        counts = np.asarray(counts, dtype=np.int64)
        exchange = get_v_exchange("nonblocking")
        yield from exchange(ctx.world, sendbuf, recvbuf, counts[ctx.rank], counts[:, ctx.rank])


def _concat(chunks: list[np.ndarray], dtype) -> np.ndarray:
    if not chunks:
        return np.empty(0, dtype=dtype)
    return np.concatenate(chunks)


def node_aware_alltoallv(
    ctx: RankContext,
    counts: np.ndarray,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    *,
    procs_per_group: int | None = None,
    inner: str = "pairwise",
    phases: PhaseRecorder | None = None,
):
    """Run the node-aware / locality-aware alltoallv for one rank (generator).

    The structure is Algorithm 4's, generalised to variable counts.  With
    aggregation groups of ``L`` consecutive ranks (``G`` groups in total),
    rank ``r`` — member ``m`` of group ``i`` — proceeds as:

    1. *inter-region*: on the cross-group communicator (one member of every
       group at position ``m``), send to the member of group ``g`` the
       concatenation of my blocks for all of ``g``'s members
       (``sum(counts[r, g*L:(g+1)*L])`` items — contiguous in the packed
       send buffer because destination ranks within a group are consecutive);
    2. *repack* from (source group, destination member) order to
       (destination member, source group) order;
    3. *intra-region*: on my aggregation group, send member ``k`` everything
       that arrived for it and receive from member ``k`` everything the
       position-``k`` sources addressed to me;
    4. *repack* into source world-rank order.

    All counts of the intermediate exchanges are derived from the global
    ``counts`` matrix, so every rank computes a consistent schedule without
    extra communication.
    """
    pmap = ctx.pmap
    params = pmap.params
    nprocs = pmap.nprocs
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != (nprocs, nprocs):
        raise BufferSizeError(
            f"the count matrix must have shape ({nprocs}, {nprocs}), got {counts.shape}"
        )
    group_size = pmap.ppn if procs_per_group is None else procs_per_group
    validate_group_size(pmap.ppn, group_size)
    exchange = get_v_exchange(inner)
    recorder = phases if phases is not None else PhaseRecorder(ctx)

    rank = ctx.rank
    L = group_size
    G = nprocs // L
    my_group = rank // L
    my_pos = rank % L
    dtype = sendbuf.dtype

    if sendbuf.size != int(counts[rank].sum()):
        raise BufferSizeError(
            f"rank {rank}: send buffer has {sendbuf.size} items but the count row sums "
            f"to {int(counts[rank].sum())}"
        )
    if recvbuf.size != int(counts[:, rank].sum()):
        raise BufferSizeError(
            f"rank {rank}: receive buffer has {recvbuf.size} items but the count column "
            f"sums to {int(counts[:, rank].sum())}"
        )

    local = local_group_comm(ctx, L)
    cross = cross_group_comm(ctx, L)

    # World ranks of my cross-group peers (the position-`my_pos` member of
    # every group) and of my own group's members.
    reps = np.arange(G) * L + my_pos
    group_members = my_group * L + np.arange(L)

    # Phase 1: inter-region alltoallv.  Send to cross-peer g my blocks for
    # all of group g's members; receive from it its blocks for all of mine.
    with recorder.phase(PHASE_INTER):
        send_cross = counts[rank].reshape(G, L).sum(axis=1)
        # chunk_sizes[g, k]: items cross-peer g holds for member k of my group.
        chunk_sizes = counts[np.ix_(reps, group_members)]
        recv_cross = chunk_sizes.sum(axis=1)
        inter_recv = np.empty(int(recv_cross.sum()), dtype=dtype)
        yield from exchange(cross, sendbuf, inter_recv, send_cross, recv_cross)

    # Phase 2: repack (source group, dest member) -> (dest member, source group).
    with recorder.phase(PHASE_PACK):
        offsets = np.concatenate(([0], np.cumsum(chunk_sizes.reshape(-1))))

        def chunk(g: int, k: int) -> np.ndarray:
            start = offsets[g * L + k]
            return inter_recv[start: start + chunk_sizes[g, k]]

        intra_send = _concat([chunk(g, k) for k in range(L) for g in range(G)], dtype)
        yield pack_delay(params, intra_send.nbytes)

    # Phase 3: intra-region alltoallv redistributes within the group.
    with recorder.phase(PHASE_INTRA):
        send_local = chunk_sizes.sum(axis=0)
        # recv_sizes[g, k]: items the position-k sources of group g addressed to me.
        recv_sizes = counts[:, rank].reshape(G, L)
        recv_local = recv_sizes.sum(axis=0)
        intra_recv = np.empty(int(recv_local.sum()), dtype=dtype)
        yield from exchange(local, intra_send, intra_recv, send_local, recv_local)

    # Phase 4: repack (source position, source group) -> source world-rank order.
    with recorder.phase(PHASE_PACK):
        pos_major = np.concatenate(([0], np.cumsum(recv_sizes.T.reshape(-1))))

        def final_chunk(g: int, k: int) -> np.ndarray:
            start = pos_major[k * G + g]
            return intra_recv[start: start + recv_sizes[g, k]]

        final = _concat([final_chunk(g, k) for g in range(G) for k in range(L)], dtype)
        recvbuf[:] = final
        yield pack_delay(params, final.nbytes)


class NodeAwareAlltoallv(AlltoallvAlgorithm):
    """Node-aware (or, with smaller groups, locality-aware) aggregated alltoallv.

    Parameters
    ----------
    procs_per_group:
        Aggregation group size; ``None`` uses the whole node (the classic
        node-aware algorithm), smaller divisors of ``ppn`` give the paper's
        locality-aware aggregation.
    inner:
        Variable-count exchange used for both phases (``"pairwise"`` or
        ``"nonblocking"``).
    """

    name = "node-aware"

    def __init__(self, procs_per_group: int | None = None, inner: str = "pairwise") -> None:
        if procs_per_group is not None and procs_per_group <= 0:
            raise ConfigurationError(
                f"procs_per_group must be positive, got {procs_per_group}"
            )
        self.procs_per_group = procs_per_group
        self.inner = inner
        get_v_exchange(inner)

    def validate(self, pmap: ProcessMap, counts: np.ndarray) -> None:
        super().validate(pmap, counts)
        if self.procs_per_group is not None:
            validate_group_size(pmap.ppn, self.procs_per_group)

    def options(self):
        opts: dict[str, Any] = {"inner": self.inner}
        if self.procs_per_group is not None:
            opts["procs_per_group"] = self.procs_per_group
        return opts

    def run(self, ctx: RankContext, counts: np.ndarray, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from node_aware_alltoallv(
            ctx, counts, sendbuf, recvbuf,
            procs_per_group=self.procs_per_group, inner=self.inner,
        )


#: Registry mapping algorithm name to its class.
V_ALGORITHMS: dict[str, type[AlltoallvAlgorithm]] = {
    cls.name: cls
    for cls in (PairwiseAlltoallv, NonblockingAlltoallv, NodeAwareAlltoallv)
}

#: Stable ordering of v-algorithm names used by reports and the CLI.
V_ALGORITHM_NAMES: tuple[str, ...] = tuple(V_ALGORITHMS)


def list_v_algorithms() -> list[str]:
    """Names of every registered variable-count algorithm."""
    return list(V_ALGORITHM_NAMES)


def get_v_algorithm(name: str, **options) -> AlltoallvAlgorithm:
    """Instantiate a variable-count algorithm by name with keyword configuration."""
    if isinstance(name, AlltoallvAlgorithm):
        return name
    key = name.lower()
    if key not in V_ALGORITHMS:
        raise ConfigurationError(
            f"unknown alltoallv algorithm {name!r}; available: {', '.join(V_ALGORITHM_NAMES)}"
        )
    try:
        return V_ALGORITHMS[key](**options)
    except TypeError as exc:
        raise ConfigurationError(f"invalid options for algorithm {name!r}: {exc}") from exc
