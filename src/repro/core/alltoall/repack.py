"""Buffer repacking for the hierarchical all-to-all algorithms.

Algorithms 3–5 of the paper interleave communication phases with "Repack
Data" steps that reorder blocks between the layout produced by one phase and
the layout the next phase needs.  Because ranks are placed blockwise (node
by node, group by group), every repack is a pure reshape/transpose of a
dense array; this module implements them as vectorised NumPy operations and
exposes the byte counts so the algorithms can charge the memory-copy cost to
the simulated clock.

Conventions: ``block`` is the number of array items each rank sends to each
destination; groups of ``L`` consecutive ranks form the aggregation/leader
groups; groups are numbered globally in world-rank order.
"""

from __future__ import annotations

import numpy as np

from repro.machine.params import MachineParameters
from repro.simmpi.ops import Delay

__all__ = [
    "pack_delay",
    "hierarchical_pack_for_leaders",
    "hierarchical_unpack_to_scatter",
    "group_transpose_forward",
    "group_transpose_backward",
    "mlna_pack_for_internode",
    "mlna_pack_for_intranode",
    "mlna_unpack_to_scatter",
]


def pack_delay(params: MachineParameters, nbytes: int) -> Delay:
    """A :class:`Delay` operation charging the cost of touching ``nbytes`` during a repack."""
    return Delay(params.copy_time(int(nbytes)))


# ---------------------------------------------------------------------------
# Hierarchical / multi-leader (Algorithm 3)
# ---------------------------------------------------------------------------

def hierarchical_pack_for_leaders(gathered: np.ndarray, ppl: int, ngroups: int, block: int) -> np.ndarray:
    """Reorder a leader's gathered buffer for the leader-to-leader all-to-all.

    ``gathered`` holds the full send buffers of the ``ppl`` group members in
    member order (shape ``ppl * ngroups * ppl * block``).  The returned array
    is ordered by destination group: block ``g`` holds, for every source
    member and every destination member of group ``g``, the corresponding
    payload — the ``s·ppl²`` message of Algorithm 3.
    """
    cube = gathered.reshape(ppl, ngroups, ppl, block)
    # axes: (src_member, dest_group, dest_member, item) -> (dest_group, src_member, dest_member, item)
    packed = cube.transpose(1, 0, 2, 3)
    return np.ascontiguousarray(packed).reshape(-1)


def hierarchical_unpack_to_scatter(received: np.ndarray, ppl: int, ngroups: int, block: int) -> np.ndarray:
    """Reorder the leader-to-leader result into the per-member scatter layout.

    ``received`` is ordered by source group, then source member, then
    destination member.  The scatter buffer must be ordered by destination
    member first (one contiguous chunk per group member), with each chunk
    ordered by source world rank, i.e. by (source group, source member).
    """
    cube = received.reshape(ngroups, ppl, ppl, block)
    # axes: (src_group, src_member, dest_member, item) -> (dest_member, src_group, src_member, item)
    packed = cube.transpose(2, 0, 1, 3)
    return np.ascontiguousarray(packed).reshape(-1)


# ---------------------------------------------------------------------------
# Node-aware / locality-aware (Algorithm 4)
# ---------------------------------------------------------------------------

def group_transpose_forward(received: np.ndarray, ngroups: int, group_size: int, block: int) -> np.ndarray:
    """Reorder the inter-group result for the intra-group redistribution.

    After the inter-region all-to-all, the buffer is ordered by source group
    then destination member; the intra-region all-to-all needs it ordered by
    destination member then source group.
    """
    cube = received.reshape(ngroups, group_size, block)
    packed = cube.transpose(1, 0, 2)
    return np.ascontiguousarray(packed).reshape(-1)


def group_transpose_backward(received: np.ndarray, ngroups: int, group_size: int, block: int) -> np.ndarray:
    """Reorder the intra-group result into world-rank (source) order.

    After the intra-region all-to-all, the buffer is ordered by source member
    then source group; the final receive buffer is ordered by source world
    rank, i.e. source group then source member.
    """
    cube = received.reshape(group_size, ngroups, block)
    packed = cube.transpose(1, 0, 2)
    return np.ascontiguousarray(packed).reshape(-1)


# ---------------------------------------------------------------------------
# Multi-leader + node-aware (Algorithm 5)
# ---------------------------------------------------------------------------

def mlna_pack_for_internode(gathered: np.ndarray, ppl: int, num_nodes: int, ppn: int, block: int) -> np.ndarray:
    """Reorder a leader's gathered buffer for the inter-node all-to-all.

    The message to node ``n`` contains, for every source member of the
    leader's group, the data destined to every rank of node ``n``
    (``s·ppn·ppl`` bytes in the paper's notation).
    """
    cube = gathered.reshape(ppl, num_nodes, ppn, block)
    # (src_member, dest_node, dest_local_rank, item) -> (dest_node, src_member, dest_local_rank, item)
    packed = cube.transpose(1, 0, 2, 3)
    return np.ascontiguousarray(packed).reshape(-1)


def mlna_pack_for_intranode(received: np.ndarray, num_nodes: int, ppl: int, leaders_per_node: int, block: int) -> np.ndarray:
    """Reorder the inter-node result for the leader-to-leader exchange within the node.

    The message to node-local leader ``k`` contains, for every source node and
    every source member (of the remote groups with this leader's index), the
    data destined to the members of leader ``k``'s group
    (``s·nnodes·ppl²`` bytes in the paper's notation).
    """
    cube = received.reshape(num_nodes, ppl, leaders_per_node, ppl, block)
    # (src_node, src_member, dest_leader, dest_member, item)
    #   -> (dest_leader, src_node, src_member, dest_member, item)
    packed = cube.transpose(2, 0, 1, 3, 4)
    return np.ascontiguousarray(packed).reshape(-1)


def mlna_unpack_to_scatter(received: np.ndarray, leaders_per_node: int, num_nodes: int, ppl: int, block: int) -> np.ndarray:
    """Reorder the intra-node leader exchange result into the scatter layout.

    The scatter buffer holds one contiguous chunk per group member (the
    destination), each ordered by source world rank, i.e. by
    (source node, source leader, source member).
    """
    cube = received.reshape(leaders_per_node, num_nodes, ppl, ppl, block)
    # (src_leader, src_node, src_member, dest_member, item)
    #   -> (dest_member, src_node, src_leader, src_member, item)
    packed = cube.transpose(3, 1, 0, 2, 4)
    return np.ascontiguousarray(packed).reshape(-1)
