"""Node-aware and locality-aware all-to-all (Algorithm 4 of the paper).

Every rank participates in both phases — nothing is funnelled through a
single leader:

1. *Inter-region all-to-all* on ``group_comm`` (one member of every
   aggregation group, all sharing the caller's position within their
   group): each rank sends, to the corresponding member of every other
   group, the data destined for that whole group (``s·|local_comm|``
   bytes per message — red arrows in Figures 4/5);
2. repack;
3. *Intra-region all-to-all* on ``local_comm`` (the caller's aggregation
   group): the received data is redistributed so every member ends up with
   exactly the blocks addressed to it (blue arrows);
4. repack into source-rank order.

With one aggregation group per node (``procs_per_group == ppn``) this is
the classic node-aware algorithm; smaller groups give the paper's novel
*locality-aware* aggregation, which shrinks the expensive whole-node
redistribution at the cost of more (smaller) inter-node messages.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall import repack
from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.core.alltoall.exchanges import get_inner_exchange
from repro.core.instrumentation import PHASE_INTER, PHASE_INTRA, PHASE_PACK, PhaseRecorder
from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.simmpi.engine import RankContext
from repro.simmpi.split import cross_group_comm, local_group_comm
from repro.utils.partition import validate_group_size

__all__ = ["NodeAwareAlltoall", "LocalityAwareAlltoall", "node_aware_alltoall"]


def node_aware_alltoall(
    ctx: RankContext,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    *,
    procs_per_group: int | None = None,
    inner: str = "pairwise",
    phases: PhaseRecorder | None = None,
):
    """Run the node-aware / locality-aware exchange for one rank (generator)."""
    pmap = ctx.pmap
    params = pmap.params
    nprocs = pmap.nprocs
    block = check_alltoall_buffers(sendbuf, recvbuf, nprocs)
    group_size = pmap.ppn if procs_per_group is None else procs_per_group
    validate_group_size(pmap.ppn, group_size)
    exchange = get_inner_exchange(inner)
    recorder = phases if phases is not None else PhaseRecorder(ctx)

    local = local_group_comm(ctx, group_size)
    cross = cross_group_comm(ctx, group_size)
    ngroups = cross.size  # total aggregation groups in the job

    # Phase 1: inter-region all-to-all.  The send buffer is already ordered
    # by destination world rank, i.e. by (group, member), so the message for
    # group ``g`` is simply blocks [g*group_size, (g+1)*group_size).
    with recorder.phase(PHASE_INTER):
        inter_recv = np.empty_like(sendbuf)
        yield from exchange(cross, sendbuf, inter_recv)

    # Phase 2: repack so the data destined to each group member is contiguous.
    with recorder.phase(PHASE_PACK):
        intra_send = repack.group_transpose_forward(inter_recv, ngroups, group_size, block)
        yield repack.pack_delay(params, intra_send.nbytes)

    # Phase 3: intra-region all-to-all redistributes within the group.
    with recorder.phase(PHASE_INTRA):
        intra_recv = np.empty_like(intra_send)
        yield from exchange(local, intra_send, intra_recv)

    # Phase 4: reorder into source world-rank order.
    with recorder.phase(PHASE_PACK):
        final = repack.group_transpose_backward(intra_recv, ngroups, group_size, block)
        yield repack.pack_delay(params, final.nbytes)
    recvbuf[:] = final.reshape(recvbuf.shape)


class NodeAwareAlltoall(AlltoallAlgorithm):
    """Node-aware aggregation: one aggregation group per node."""

    name = "node-aware"

    def __init__(self, inner: str = "pairwise") -> None:
        self.inner = inner
        get_inner_exchange(inner)

    def options(self):
        return {"inner": self.inner}

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from node_aware_alltoall(ctx, sendbuf, recvbuf, procs_per_group=None, inner=self.inner)


class LocalityAwareAlltoall(AlltoallAlgorithm):
    """Locality-aware aggregation (novel in the paper): several groups per node.

    Parameters
    ----------
    procs_per_group:
        Aggregation group size.  The paper evaluates 4, 8 and 16 processes
        per group (28, 14 and 7 groups per 112-core node).
    inner:
        Exchange used for both the inter-region and intra-region all-to-alls.
    """

    name = "locality-aware"

    def __init__(self, procs_per_group: int = 4, inner: str = "pairwise") -> None:
        if procs_per_group <= 0:
            raise ConfigurationError(f"procs_per_group must be positive, got {procs_per_group}")
        self.procs_per_group = procs_per_group
        self.inner = inner
        get_inner_exchange(inner)

    def validate(self, pmap: ProcessMap) -> None:
        validate_group_size(pmap.ppn, self.procs_per_group)

    def options(self):
        return {"procs_per_group": self.procs_per_group, "inner": self.inner}

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from node_aware_alltoall(
            ctx, sendbuf, recvbuf, procs_per_group=self.procs_per_group, inner=self.inner
        )
