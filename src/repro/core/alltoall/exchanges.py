"""Registry of flat exchange kernels usable inside the hierarchical algorithms.

Algorithms 3–5 of the paper each contain one or more ``MPI_Alltoall`` calls
on sub-communicators; the paper evaluates every algorithm with both a
pairwise-exchange and a non-blocking implementation of those inner calls
(solid vs. dashed lines in its figures).  This module maps the exchange
names to the generator functions so the hierarchical algorithms can be
configured with a string.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.core.alltoall.batched import exchange_batched
from repro.core.alltoall.bruck import exchange_bruck
from repro.core.alltoall.nonblocking import exchange_nonblocking
from repro.core.alltoall.pairwise import exchange_pairwise
from repro.errors import ConfigurationError

__all__ = ["INNER_EXCHANGES", "get_inner_exchange"]

#: name -> generator function ``f(comm, sendbuf, recvbuf)``.
INNER_EXCHANGES: dict[str, Callable] = {
    "pairwise": exchange_pairwise,
    "nonblocking": exchange_nonblocking,
    "bruck": exchange_bruck,
    "batched": exchange_batched,
}


def get_inner_exchange(name: str, **options) -> Callable:
    """Resolve an inner exchange by name, optionally binding options (e.g. ``batch_size``)."""
    if name not in INNER_EXCHANGES:
        raise ConfigurationError(
            f"unknown inner exchange {name!r}; available: {', '.join(sorted(INNER_EXCHANGES))}"
        )
    fn = INNER_EXCHANGES[name]
    if options:
        return partial(fn, **options)
    return fn
