"""System-MPI baseline: size-switched flat all-to-all.

The paper compares every algorithm against the vendor MPI's ``MPI_Alltoall``
(Intel MPI on Dane/Amber, Cray MPICH on Tuolomne).  Those implementations
are proprietary, but the paper notes the observed behaviour is consistent
with the conventional open-source selection logic: the Bruck algorithm for
small messages (minimising message count) and a flat pairwise / non-blocking
exchange for large ones (minimising volume).  This baseline reproduces that
selection, with the thresholds exposed so the per-system presets can be
tuned (Cray MPICH's large-message path on Slingshot is notably better, which
is how the paper's Figure 18 differs from Figures 10 and 17).
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.core.alltoall.bruck import exchange_bruck
from repro.core.alltoall.nonblocking import exchange_nonblocking
from repro.core.alltoall.pairwise import exchange_pairwise
from repro.errors import ConfigurationError
from repro.simmpi.engine import RankContext

__all__ = ["SystemMPIAlltoall"]


class SystemMPIAlltoall(AlltoallAlgorithm):
    """Flat all-to-all with MPICH-style size-based algorithm selection.

    Parameters
    ----------
    small_threshold:
        Per-destination payloads of at most this many bytes use the Bruck
        algorithm (MPICH's default switch point is 256 bytes).
    medium_threshold:
        Payloads between the two thresholds use the non-blocking exchange;
        larger ones use pairwise exchange (MPICH switches at 32 KiB).
    """

    name = "system-mpi"

    def __init__(self, small_threshold: int = 256, medium_threshold: int = 32768) -> None:
        if small_threshold < 0 or medium_threshold < small_threshold:
            raise ConfigurationError(
                "thresholds must satisfy 0 <= small_threshold <= medium_threshold, got "
                f"{small_threshold} and {medium_threshold}"
            )
        self.small_threshold = small_threshold
        self.medium_threshold = medium_threshold

    def options(self):
        return {
            "small_threshold": self.small_threshold,
            "medium_threshold": self.medium_threshold,
        }

    def chosen_exchange(self, msg_bytes: int) -> str:
        """Name of the flat exchange that would be used for ``msg_bytes`` per destination."""
        if msg_bytes <= self.small_threshold:
            return "bruck"
        if msg_bytes <= self.medium_threshold:
            return "nonblocking"
        return "pairwise"

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        nprocs = ctx.pmap.nprocs
        block = check_alltoall_buffers(sendbuf, recvbuf, nprocs)
        msg_bytes = block * sendbuf.dtype.itemsize
        choice = self.chosen_exchange(msg_bytes)
        if choice == "bruck":
            yield from exchange_bruck(ctx.world, sendbuf, recvbuf)
        elif choice == "nonblocking":
            yield from exchange_nonblocking(ctx.world, sendbuf, recvbuf)
        else:
            yield from exchange_pairwise(ctx.world, sendbuf, recvbuf)
