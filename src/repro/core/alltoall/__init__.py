"""The all-to-all algorithm family.

Flat exchanges (Section 2 of the paper):

* :class:`~repro.core.alltoall.pairwise.PairwiseAlltoall` — Algorithm 1;
* :class:`~repro.core.alltoall.nonblocking.NonblockingAlltoall` — Algorithm 2;
* :class:`~repro.core.alltoall.bruck.BruckAlltoall` — log-step small-message algorithm;
* :class:`~repro.core.alltoall.batched.BatchedAlltoall` — bounded-outstanding related work;
* :class:`~repro.core.alltoall.system_mpi.SystemMPIAlltoall` — size-switched baseline.

Locality-exploiting algorithms (Section 3):

* :class:`~repro.core.alltoall.hierarchical.HierarchicalAlltoall` /
  :class:`~repro.core.alltoall.hierarchical.MultiLeaderAlltoall` — Algorithm 3;
* :class:`~repro.core.alltoall.node_aware.NodeAwareAlltoall` /
  :class:`~repro.core.alltoall.node_aware.LocalityAwareAlltoall` — Algorithm 4
  (locality-aware aggregation is one of the paper's two novel algorithms);
* :class:`~repro.core.alltoall.multileader_node_aware.MultiLeaderNodeAwareAlltoall`
  — Algorithm 5, the paper's second novel algorithm.

Variable-count (``alltoallv``) members, driven by a
:class:`~repro.workloads.TrafficMatrix` (see :mod:`repro.workloads`):

* :class:`~repro.core.alltoall.valgorithms.PairwiseAlltoallv` /
  :class:`~repro.core.alltoall.valgorithms.NonblockingAlltoallv` — flat
  schedules with per-peer counts;
* :class:`~repro.core.alltoall.valgorithms.NodeAwareAlltoallv` — Algorithm 4
  generalised to non-uniform traffic (node-aware and locality-aware).
"""

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.core.alltoall.batched import BatchedAlltoall, exchange_batched
from repro.core.alltoall.bruck import BruckAlltoall, exchange_bruck
from repro.core.alltoall.exchanges import INNER_EXCHANGES, get_inner_exchange
from repro.core.alltoall.hierarchical import (
    HierarchicalAlltoall,
    MultiLeaderAlltoall,
    hierarchical_alltoall,
)
from repro.core.alltoall.multileader_node_aware import (
    MultiLeaderNodeAwareAlltoall,
    multileader_node_aware_alltoall,
)
from repro.core.alltoall.node_aware import (
    LocalityAwareAlltoall,
    NodeAwareAlltoall,
    node_aware_alltoall,
)
from repro.core.alltoall.nonblocking import NonblockingAlltoall, exchange_nonblocking
from repro.core.alltoall.pairwise import PairwiseAlltoall, exchange_pairwise
from repro.core.alltoall.registry import (
    ALGORITHM_NAMES,
    ALGORITHMS,
    get_algorithm,
    list_algorithms,
)
from repro.core.alltoall.system_mpi import SystemMPIAlltoall
from repro.core.alltoall.valgorithms import (
    V_ALGORITHM_NAMES,
    V_ALGORITHMS,
    AlltoallvAlgorithm,
    NodeAwareAlltoallv,
    NonblockingAlltoallv,
    PairwiseAlltoallv,
    get_v_algorithm,
    list_v_algorithms,
    node_aware_alltoallv,
)
from repro.core.alltoall.vexchange import (
    V_EXCHANGES,
    exchange_nonblocking_v,
    exchange_pairwise_v,
    get_v_exchange,
)

__all__ = [
    "AlltoallAlgorithm",
    "check_alltoall_buffers",
    "BatchedAlltoall",
    "BruckAlltoall",
    "HierarchicalAlltoall",
    "MultiLeaderAlltoall",
    "MultiLeaderNodeAwareAlltoall",
    "LocalityAwareAlltoall",
    "NodeAwareAlltoall",
    "NonblockingAlltoall",
    "PairwiseAlltoall",
    "SystemMPIAlltoall",
    "exchange_batched",
    "exchange_bruck",
    "exchange_nonblocking",
    "exchange_pairwise",
    "hierarchical_alltoall",
    "multileader_node_aware_alltoall",
    "node_aware_alltoall",
    "INNER_EXCHANGES",
    "get_inner_exchange",
    "ALGORITHMS",
    "ALGORITHM_NAMES",
    "get_algorithm",
    "list_algorithms",
    "AlltoallvAlgorithm",
    "PairwiseAlltoallv",
    "NonblockingAlltoallv",
    "NodeAwareAlltoallv",
    "node_aware_alltoallv",
    "exchange_pairwise_v",
    "exchange_nonblocking_v",
    "V_EXCHANGES",
    "get_v_exchange",
    "V_ALGORITHMS",
    "V_ALGORITHM_NAMES",
    "get_v_algorithm",
    "list_v_algorithms",
]
