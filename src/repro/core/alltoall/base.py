"""Common infrastructure for the all-to-all algorithm family.

Every algorithm is a small class with a ``run(ctx, sendbuf, recvbuf)``
generator method so that it can be configured once (group size, inner
exchange, thresholds) and then executed on any simulated machine.  The
module also provides the buffer-validation helper shared by every
implementation.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.errors import AlgorithmError, BufferSizeError
from repro.machine.process_map import ProcessMap
from repro.simmpi.engine import RankContext

__all__ = ["AlltoallAlgorithm", "check_alltoall_buffers", "block_count"]


def block_count(buf: np.ndarray, nprocs: int) -> int:
    """Items per block of an all-to-all buffer over ``nprocs`` ranks."""
    if nprocs <= 0:
        raise AlgorithmError(f"nprocs must be positive, got {nprocs}")
    if buf.size % nprocs != 0:
        raise BufferSizeError(
            f"buffer of {buf.size} items cannot be divided into {nprocs} equal blocks"
        )
    return buf.size // nprocs


def check_alltoall_buffers(sendbuf: np.ndarray, recvbuf: np.ndarray, nprocs: int) -> int:
    """Validate a send/receive buffer pair and return the per-block item count."""
    if not isinstance(sendbuf, np.ndarray) or not isinstance(recvbuf, np.ndarray):
        raise BufferSizeError("send and receive buffers must be numpy arrays")
    if sendbuf.dtype != recvbuf.dtype:
        raise BufferSizeError(
            f"send ({sendbuf.dtype}) and receive ({recvbuf.dtype}) buffers must share a dtype"
        )
    if sendbuf.size != recvbuf.size:
        raise BufferSizeError(
            f"send buffer has {sendbuf.size} items but receive buffer has {recvbuf.size}"
        )
    return block_count(sendbuf, nprocs)


class AlltoallAlgorithm(abc.ABC):
    """Base class of every all-to-all implementation.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`run`, a generator that performs the exchange for one rank using
    the communicators derived from ``ctx``.  ``validate(pmap)`` is called by
    the runner before a job starts so configuration errors (e.g. a group
    size that does not divide the processes per node) surface immediately
    rather than as a deadlock.
    """

    #: Registry key; overridden by subclasses.
    name: str = "abstract"

    def validate(self, pmap: ProcessMap) -> None:
        """Check that this algorithm can run on ``pmap`` (default: always)."""

    @abc.abstractmethod
    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        """Perform the exchange for the calling rank (generator)."""

    # -- description -------------------------------------------------------
    def options(self) -> dict[str, Any]:
        """Configuration of this instance (reported by the benchmark harness)."""
        return {}

    def describe(self) -> str:
        opts = ", ".join(f"{k}={v}" for k, v in sorted(self.options().items()))
        return f"{self.name}({opts})" if opts else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"
