"""Batched all-to-all (related work, Namugwanya et al. 2023).

A middle ground between pairwise exchange and the fully non-blocking
algorithm: the rank keeps at most ``batch_size`` exchanges in flight, which
bounds both the synchronization delay of pairwise exchange and the queue
search / contention overheads of posting everything at once.  With
``batch_size=1`` this degenerates to pairwise exchange; with
``batch_size >= p - 1`` it becomes the non-blocking algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.errors import ConfigurationError
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.simmpi.ops import LocalCopy

__all__ = ["exchange_batched", "BatchedAlltoall"]

_TAG = 104


def exchange_batched(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray, *, batch_size: int = 8):
    """Exchange over ``comm`` with at most ``batch_size`` outstanding sendrecv pairs."""
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    size, rank = comm.size, comm.rank
    block = check_alltoall_buffers(sendbuf, recvbuf, size)
    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)
    yield LocalCopy(dest=recv_view[rank], source=send_view[rank])

    steps = list(range(1, size))
    for start in range(0, len(steps), batch_size):
        batch = steps[start : start + batch_size]
        requests = []
        for step in batch:
            source = (rank - step) % size
            req = yield from comm.irecv(recv_view[source], source=source, tag=_TAG)
            requests.append(req)
        for step in batch:
            dest = (rank + step) % size
            req = yield from comm.isend(send_view[dest], dest=dest, tag=_TAG)
            requests.append(req)
        yield from comm.waitall(requests)


class BatchedAlltoall(AlltoallAlgorithm):
    """Flat batched exchange over the world communicator."""

    name = "batched"

    def __init__(self, batch_size: int = 8) -> None:
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = batch_size

    def options(self):
        return {"batch_size": self.batch_size}

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from exchange_batched(ctx.world, sendbuf, recvbuf, batch_size=self.batch_size)
