"""Multi-leader + node-aware all-to-all (Algorithm 5 — the paper's main novel algorithm).

The algorithm combines the low inter-node message count of the hierarchical
approach with the balanced participation of the node-aware approach: the
hierarchical gather/scatter shrinks to small leader groups (cheap), while
the exchange between leaders is replaced by the node-aware two-phase
exchange, so every leader sends exactly one message per remote node.

Phases (colours refer to the paper's Figure 6):

1. ``MPI_Gather`` of each member's send buffer onto its leader (blue);
2. repack by destination node;
3. *inter-node* all-to-all on ``group_comm`` (the leaders with the same
   node-local rank, one per node): each leader sends ``s·ppn·ppl`` bytes to
   every other node (red);
4. repack by destination leader;
5. *intra-node* all-to-all among the leaders of the node
   (``leader_group_comm``): each leader keeps the data addressed to its own
   members (brown);
6. repack into per-member order;
7. ``MPI_Scatter`` back to the members (yellow).
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall import repack
from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.core.alltoall.exchanges import get_inner_exchange
from repro.core.instrumentation import (
    PHASE_GATHER,
    PHASE_INTER,
    PHASE_INTRA,
    PHASE_PACK,
    PHASE_SCATTER,
    PhaseRecorder,
)
from repro.errors import ConfigurationError
from repro.machine.process_map import ProcessMap
from repro.simmpi.engine import RankContext
from repro.simmpi.split import cross_node_comm, local_group_comm, node_leaders_comm
from repro.utils.partition import validate_group_size

__all__ = ["MultiLeaderNodeAwareAlltoall", "multileader_node_aware_alltoall"]


def multileader_node_aware_alltoall(
    ctx: RankContext,
    sendbuf: np.ndarray,
    recvbuf: np.ndarray,
    *,
    procs_per_leader: int = 4,
    inner: str = "pairwise",
    phases: PhaseRecorder | None = None,
):
    """Run the multi-leader + node-aware exchange for one rank (generator)."""
    pmap = ctx.pmap
    params = pmap.params
    nprocs = pmap.nprocs
    ppn = pmap.ppn
    num_nodes = pmap.num_nodes
    block = check_alltoall_buffers(sendbuf, recvbuf, nprocs)
    validate_group_size(ppn, procs_per_leader)
    ppl = procs_per_leader
    leaders_per_node = ppn // ppl
    exchange = get_inner_exchange(inner)
    recorder = phases if phases is not None else PhaseRecorder(ctx)

    local = local_group_comm(ctx, ppl)
    is_leader = local.rank == 0

    # Phase 1: gather the members' send buffers onto the leader.
    with recorder.phase(PHASE_GATHER):
        gathered = np.empty(ppl * nprocs * block, dtype=sendbuf.dtype) if is_leader else None
        yield from local.gather(sendbuf, gathered, root=0)

    scatter_source = None
    if is_leader:
        across_nodes = cross_node_comm(ctx)          # leaders with my node-local rank, one per node
        node_leaders = node_leaders_comm(ctx, ppl)   # the leaders of my node

        # Phase 2: repack by destination node.
        with recorder.phase(PHASE_PACK):
            inter_send = repack.mlna_pack_for_internode(gathered, ppl, num_nodes, ppn, block)
            yield repack.pack_delay(params, inter_send.nbytes)

        # Phase 3: inter-node all-to-all (one message per remote node).
        with recorder.phase(PHASE_INTER):
            inter_recv = np.empty_like(inter_send)
            yield from exchange(across_nodes, inter_send, inter_recv)

        # Phase 4: repack by destination leader within the node.
        with recorder.phase(PHASE_PACK):
            intra_send = repack.mlna_pack_for_intranode(inter_recv, num_nodes, ppl, leaders_per_node, block)
            yield repack.pack_delay(params, intra_send.nbytes)

        # Phase 5: intra-node all-to-all among the node's leaders.
        with recorder.phase(PHASE_INTRA):
            intra_recv = np.empty_like(intra_send)
            yield from exchange(node_leaders, intra_send, intra_recv)

        # Phase 6: repack into per-member (scatter) order.
        with recorder.phase(PHASE_PACK):
            scatter_source = repack.mlna_unpack_to_scatter(intra_recv, leaders_per_node, num_nodes, ppl, block)
            yield repack.pack_delay(params, scatter_source.nbytes)

    # Phase 7: scatter each member's result back from its leader.
    with recorder.phase(PHASE_SCATTER):
        yield from local.scatter(scatter_source, recvbuf, root=0)


class MultiLeaderNodeAwareAlltoall(AlltoallAlgorithm):
    """The paper's novel combination of multi-leader and node-aware all-to-all.

    Parameters
    ----------
    procs_per_leader:
        Size of each leader's group.  One leader per group performs the
        inter-node and intra-node leader exchanges.  With
        ``procs_per_leader == 1`` the algorithm reduces to node-aware
        aggregation; with ``procs_per_leader == ppn`` it reduces to the
        single-leader hierarchical algorithm (as noted in Section 3.3).
    inner:
        Exchange used for both leader all-to-alls.
    """

    name = "multileader-node-aware"

    def __init__(self, procs_per_leader: int = 4, inner: str = "pairwise") -> None:
        if procs_per_leader <= 0:
            raise ConfigurationError(f"procs_per_leader must be positive, got {procs_per_leader}")
        self.procs_per_leader = procs_per_leader
        self.inner = inner
        get_inner_exchange(inner)

    def validate(self, pmap: ProcessMap) -> None:
        validate_group_size(pmap.ppn, self.procs_per_leader)

    def options(self):
        return {"procs_per_leader": self.procs_per_leader, "inner": self.inner}

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from multileader_node_aware_alltoall(
            ctx, sendbuf, recvbuf,
            procs_per_leader=self.procs_per_leader, inner=self.inner,
        )
