"""Non-blocking all-to-all (Algorithm 2 of the paper).

Every rank posts all of its receives and sends up front and then waits for
all of them.  This removes the step-by-step synchronization of pairwise
exchange, but with ``p - 1`` receives posted simultaneously, every incoming
message pays a queue-search (matching) cost proportional to the number of
pending entries — the overhead the paper identifies at large scales.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.simmpi.ops import LocalCopy, PostRecv, PostSend, Wait

__all__ = ["exchange_nonblocking", "NonblockingAlltoall"]

_TAG = 102


def exchange_nonblocking(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Post-all-then-wait exchange over ``comm`` (generator; also used as an inner exchange).

    Like :func:`~repro.core.alltoall.pairwise.exchange_pairwise`, the body
    yields the primitive operations directly — same operation sequence as
    the former ``irecv``/``isend``/``waitall`` calls, one generator frame
    and one per-step validation less.
    """
    size, rank = comm.size, comm.rank
    block = check_alltoall_buffers(sendbuf, recvbuf, size)
    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)

    world = comm.group.world_ranks
    context_id = comm.context_id
    requests = []
    # Operations are consumed synchronously by the engine (see
    # repro.simmpi.ops), so one record per direction is reused across steps.
    # Receives are posted first (and in the order the messages are expected
    # to arrive) to keep the unexpected-message queue short, mirroring the
    # usual MPI implementation guidance.
    recv_op = PostRecv(0, recvbuf, _TAG, context_id)
    for step in range(1, size):
        source = (rank - step) % size
        recv_op.source = world[source]
        recv_op.buffer = recv_view[source]
        requests.append((yield recv_op))
    send_op = PostSend(0, sendbuf, _TAG, context_id)
    for step in range(1, size):
        dest = (rank + step) % size
        send_op.dest = world[dest]
        send_op.payload = send_view[dest]
        requests.append((yield send_op))
    yield LocalCopy(dest=recv_view[rank], source=send_view[rank])
    yield Wait(tuple(requests))


class NonblockingAlltoall(AlltoallAlgorithm):
    """Flat non-blocking exchange over the world communicator."""

    name = "nonblocking"

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        # Returns the exchange generator directly (rather than forwarding it
        # with ``yield from``) so every operation crosses one frame less.
        return exchange_nonblocking(ctx.world, sendbuf, recvbuf)
