"""Non-blocking all-to-all (Algorithm 2 of the paper).

Every rank posts all of its receives and sends up front and then waits for
all of them.  This removes the step-by-step synchronization of pairwise
exchange, but with ``p - 1`` receives posted simultaneously, every incoming
message pays a queue-search (matching) cost proportional to the number of
pending entries — the overhead the paper identifies at large scales.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.simmpi.ops import LocalCopy

__all__ = ["exchange_nonblocking", "NonblockingAlltoall"]

_TAG = 102


def exchange_nonblocking(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Post-all-then-wait exchange over ``comm`` (generator; also used as an inner exchange)."""
    size, rank = comm.size, comm.rank
    block = check_alltoall_buffers(sendbuf, recvbuf, size)
    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)

    requests = []
    # Receives are posted first (and in the order the messages are expected
    # to arrive) to keep the unexpected-message queue short, mirroring the
    # usual MPI implementation guidance.
    for step in range(1, size):
        source = (rank - step) % size
        req = yield from comm.irecv(recv_view[source], source=source, tag=_TAG)
        requests.append(req)
    for step in range(1, size):
        dest = (rank + step) % size
        req = yield from comm.isend(send_view[dest], dest=dest, tag=_TAG)
        requests.append(req)
    yield LocalCopy(dest=recv_view[rank], source=send_view[rank])
    yield from comm.waitall(requests)


class NonblockingAlltoall(AlltoallAlgorithm):
    """Flat non-blocking exchange over the world communicator."""

    name = "nonblocking"

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from exchange_nonblocking(ctx.world, sendbuf, recvbuf)
