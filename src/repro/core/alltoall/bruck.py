"""Bruck all-to-all for small messages.

The Bruck algorithm [Bruck et al., 1997] exchanges data among ``p`` ranks in
``ceil(log2 p)`` steps.  At step ``k`` every rank packs all blocks whose
index has bit ``k`` set (roughly half of its buffer, ``s * p / 2`` bytes)
and sends them to the rank ``2**k`` positions away.  The logarithmic message
count makes it the algorithm of choice for very small per-pair sizes, where
per-message latency dominates; the repeated forwarding of half the buffer
makes it lose badly once sizes grow — the trade-off the paper's system MPI
baselines exhibit.

The implementation follows the standard three-phase structure:

1. local upward rotation by ``rank`` blocks;
2. ``ceil(log2 p)`` packed exchanges;
3. local inverse rotation (by ``rank + 1``) followed by a block reversal.
"""

from __future__ import annotations

import numpy as np

from repro.core.alltoall.base import AlltoallAlgorithm, check_alltoall_buffers
from repro.simmpi.comm import Communicator
from repro.simmpi.engine import RankContext
from repro.simmpi.ops import Delay

__all__ = ["exchange_bruck", "BruckAlltoall"]

_TAG = 103


def exchange_bruck(comm: Communicator, sendbuf: np.ndarray, recvbuf: np.ndarray):
    """Bruck exchange over ``comm`` (generator; also used as an inner exchange)."""
    size, rank = comm.size, comm.rank
    block = check_alltoall_buffers(sendbuf, recvbuf, size)
    params = None  # filled lazily for the pack-cost delays

    if size == 1:
        recvbuf[:] = sendbuf
        return

    send_view = sendbuf.reshape(size, block) if block else sendbuf.reshape(size, 0)

    # Phase 1: rotate blocks upward so working[j] holds the data destined for
    # rank (rank + j) % size.
    working = np.empty_like(send_view)
    indices = (np.arange(size) + rank) % size
    working[:] = send_view[indices]

    # Phase 2: log2(p) packed exchanges.
    distance = 1
    while distance < size:
        dest = (rank + distance) % size
        source = (rank - distance) % size
        mask = (np.arange(size) & distance) != 0
        selected = np.flatnonzero(mask)
        packed = np.ascontiguousarray(working[selected]).reshape(-1)
        incoming = np.empty_like(packed)
        # Packing/unpacking is a real memory cost on many-core nodes; charge
        # it through the machine's copy bandwidth.
        pack_seconds = _pack_cost(comm, packed.nbytes)
        if pack_seconds:
            yield Delay(pack_seconds)
        yield from comm.sendrecv(packed, dest, incoming, source, sendtag=_TAG, recvtag=_TAG)
        if block:
            working[selected] = incoming.reshape(len(selected), block)
        if pack_seconds:
            yield Delay(pack_seconds)
        distance *= 2

    # Phase 3: working[j] now holds the data *from* rank (rank - j) % size;
    # undo the rotation (shift down by rank + 1, then reverse) so the result
    # is ordered by source rank.
    recv_view = recvbuf.reshape(size, block) if block else recvbuf.reshape(size, 0)
    source_of = (rank - np.arange(size)) % size
    recv_view[source_of] = working
    del params


def _pack_cost(comm: Communicator, nbytes: int) -> float:
    """Seconds of local packing work for ``nbytes`` (0 when the engine has no machine attached)."""
    # Communicators do not carry the machine parameters; the Bruck pack cost
    # is charged with a conservative fixed memory bandwidth so that flat
    # Bruck on sub-communicators remains comparable across machines.
    if nbytes <= 0:
        return 0.0
    return nbytes / 2.0e10 + 2.0e-7


class BruckAlltoall(AlltoallAlgorithm):
    """Flat Bruck exchange over the world communicator (small-message optimised)."""

    name = "bruck"

    def run(self, ctx: RankContext, sendbuf: np.ndarray, recvbuf: np.ndarray):
        yield from exchange_bruck(ctx.world, sendbuf, recvbuf)
